"""Tests for JSON serialization and Graphviz export of BPMN processes."""

import json

import pytest

from repro.bpmn import (
    dumps,
    loads,
    lts_to_dot,
    process_from_dict,
    process_to_dict,
    process_to_dot,
)
from repro.cows import LTS
from repro.bpmn import encode
from repro.errors import ProcessValidationError
from repro.scenarios import (
    clinical_trial_process,
    fig8_process,
    fig9_process,
    fig10_process,
    healthcare_treatment_process,
)

ALL_PROCESSES = [
    fig8_process,
    fig9_process,
    fig10_process,
    clinical_trial_process,
    healthcare_treatment_process,
]


class TestJsonRoundTrip:
    @pytest.mark.parametrize("factory", ALL_PROCESSES)
    def test_round_trip_preserves_structure(self, factory):
        original = factory()
        rebuilt = loads(dumps(original))
        assert rebuilt.process_id == original.process_id
        assert rebuilt.purpose == original.purpose
        assert set(rebuilt.elements) == set(original.elements)
        assert rebuilt.flows == original.flows
        assert rebuilt.error_flows == original.error_flows
        for eid, element in original.elements.items():
            assert rebuilt.elements[eid] == element

    def test_dict_is_json_compatible(self):
        data = process_to_dict(fig9_process())
        assert json.loads(json.dumps(data)) == data

    def test_malformed_document_rejected(self):
        with pytest.raises(ProcessValidationError):
            process_from_dict({"process_id": "x", "elements": [{"id": "a"}]})

    def test_invalid_json_rejected(self):
        with pytest.raises(ProcessValidationError):
            loads("{not json")

    def test_deserialization_validates(self):
        data = process_to_dict(fig8_process())
        data["flows"].append(["G", "ghost"])
        with pytest.raises(ProcessValidationError):
            process_from_dict(data)

    def test_validation_can_be_skipped(self):
        data = process_to_dict(fig8_process())
        data["flows"].append(["G", "ghost"])
        process = process_from_dict(data, validated=False)
        assert ["G", "ghost"] in data["flows"]
        assert process.process_id == "fig8"


class TestDotExport:
    def test_process_dot_contains_pools_and_elements(self):
        dot = process_to_dot(healthcare_treatment_process())
        assert dot.startswith("digraph")
        for pool in ("GP", "Cardiologist", "MedicalLabTech", "Radiologist"):
            assert f'label="{pool}"' in dot
        assert '"T01"' in dot
        assert "style=dashed" in dot  # the error flow
        assert "style=dotted" in dot  # message links

    def test_lts_dot_renders_explored_fragment(self):
        encoded = encode(fig8_process())
        result = LTS(encoded.term).explore()
        dot = lts_to_dot(result)
        assert dot.startswith("digraph LTS")
        assert '"St0"' in dot  # the initial state
        assert "->" in dot
