"""Tests for the BPMN -> COWS encoding: every element type's behaviour at
the LTS level, cross-checked against the paper's appendix patterns."""

import pytest

from repro.bpmn import ProcessBuilder, encode
from repro.cows import LTS, CommLabel, format_label
from repro.errors import EncodingError
from repro.scenarios import (
    FIG7_COWS,
    fig7_process,
    fig8_process,
    fig9_process,
    fig10_process,
)
from repro.cows import parse


def observable_traces(encoded, max_length=30, partner_filter=None):
    lts = LTS(encoded.term)

    def keep(label):
        if not isinstance(label, CommLabel):
            return False
        partner = str(label.endpoint.partner)
        operation = str(label.endpoint.operation)
        if operation == "Err":
            return True
        if partner_filter is not None and partner not in partner_filter:
            return False
        return partner in encoded.roles and operation in encoded.tasks

    return {
        tuple(format_label(l) for l in t)
        for t in lts.traces(max_length, label_filter=keep)
    }


class TestBasicShapes:
    def test_fig7_sequence(self):
        encoded = encode(fig7_process())
        assert observable_traces(encoded) == {("P.T",)}

    def test_fig7_matches_hand_written_cows(self):
        encoded = encode(fig7_process())
        ours = LTS(encoded.term).explore()
        paper = LTS(parse(FIG7_COWS)).explore()
        assert {format_label(l) for l in ours.labels()} >= {
            format_label(l) for l in paper.labels()
        }

    def test_exclusive_gateway_fig8(self):
        encoded = encode(fig8_process())
        traces = observable_traces(encoded)
        assert traces == {("P.T", "P.T1"), ("P.T", "P.T2")}

    def test_error_event_fig9(self):
        encoded = encode(fig9_process())
        traces = observable_traces(encoded)
        assert traces == {
            ("P.T", "P.T2"),
            ("P.T", "sys.Err", "P.T1"),
        }

    def test_message_flow_cycle_fig10(self):
        encoded = encode(fig10_process())
        result = LTS(encoded.term).explore(max_states=200)
        assert result.complete  # normalization closes the cycle
        labels = {format_label(l) for l in result.labels()}
        assert "P2.S3 (msg1)" in labels
        assert "P1.S2 (msg2)" in labels


class TestGateways:
    def test_parallel_gateway_interleaves_branches(self):
        builder = ProcessBuilder("par")
        pool = builder.pool("P")
        pool.start_event("S").parallel_gateway("G")
        pool.task("A").task("B")
        pool.parallel_gateway("J").task("Z").end_event("E")
        builder.chain("S", "G")
        builder.flow("G", "A").flow("G", "B")
        builder.flow("A", "J").flow("B", "J")
        builder.chain("J", "Z", "E")
        traces = observable_traces(encode(builder.build()))
        assert traces == {("P.A", "P.B", "P.Z"), ("P.B", "P.A", "P.Z")}

    def test_parallel_join_waits_for_all_branches(self):
        builder = ProcessBuilder("parwait")
        pool = builder.pool("P")
        pool.start_event("S").parallel_gateway("G")
        pool.task("A").task("B")
        pool.parallel_gateway("J").task("Z").end_event("E")
        builder.chain("S", "G")
        builder.flow("G", "A").flow("G", "B")
        builder.flow("A", "J").flow("B", "J")
        builder.chain("J", "Z", "E")
        for trace in observable_traces(encode(builder.build())):
            if "P.Z" in trace:
                assert trace.index("P.Z") > max(
                    trace.index("P.A"), trace.index("P.B")
                )

    def test_inclusive_gateway_offers_all_subsets(self):
        builder = ProcessBuilder("orsplit")
        pool = builder.pool("P")
        pool.start_event("S").inclusive_gateway("G")
        pool.task("A").task("B")
        pool.inclusive_gateway("J", join_of="G")
        pool.task("Z").end_event("E")
        builder.chain("S", "G")
        builder.flow("G", "A").flow("G", "B")
        builder.flow("A", "J").flow("B", "J")
        builder.chain("J", "Z", "E")
        traces = observable_traces(encode(builder.build()))
        assert traces == {
            ("P.A", "P.Z"),
            ("P.B", "P.Z"),
            ("P.A", "P.B", "P.Z"),
            ("P.B", "P.A", "P.Z"),
        }

    def test_inclusive_join_waits_for_chosen_branches_only(self):
        # With both branches chosen, Z never fires after just one of them.
        builder = ProcessBuilder("orwait")
        pool = builder.pool("P")
        pool.start_event("S").inclusive_gateway("G")
        pool.task("A").task("B")
        pool.inclusive_gateway("J", join_of="G")
        pool.task("Z").end_event("E")
        builder.chain("S", "G")
        builder.flow("G", "A").flow("G", "B")
        builder.flow("A", "J").flow("B", "J")
        builder.chain("J", "Z", "E")
        for trace in observable_traces(encode(builder.build())):
            if "P.A" in trace and "P.B" in trace:
                assert trace.index("P.Z") > max(
                    trace.index("P.A"), trace.index("P.B")
                )

    def test_exclusive_gateway_as_merge(self):
        builder = ProcessBuilder("merge")
        pool = builder.pool("P")
        pool.start_event("S").exclusive_gateway("G")
        pool.task("A").task("B").exclusive_gateway("M").task("Z").end_event("E")
        builder.chain("S", "G")
        builder.flow("G", "A").flow("G", "B")
        builder.flow("A", "M").flow("B", "M")
        builder.chain("M", "Z", "E")
        traces = observable_traces(encode(builder.build()))
        assert traces == {("P.A", "P.Z"), ("P.B", "P.Z")}


class TestCyclesAndErrors:
    def test_loop_via_error_flow(self):
        builder = ProcessBuilder("errloop")
        pool = builder.pool("P")
        pool.start_event("S").task("T").task("Z").end_event("E")
        builder.chain("S", "T", "Z", "E")
        builder.error_flow("T", "T")
        encoded = encode(builder.build())
        traces = observable_traces(encoded, max_length=25)
        assert ("P.T", "P.Z") in traces
        assert any(
            t[:3] == ("P.T", "sys.Err", "P.T") for t in traces
        )

    def test_xor_loop_closes_finitely(self):
        from repro.scenarios import loop_process

        encoded = encode(loop_process(2))
        result = LTS(encoded.term).explore(max_states=500)
        assert result.complete  # canonical forms close the loop


class TestEncodedMetadata:
    def test_roles_and_tasks_exposed(self):
        encoded = encode(fig8_process())
        assert encoded.roles == {"P"}
        assert encoded.tasks == {"T", "T1", "T2"}

    def test_purpose_passthrough(self):
        encoded = encode(fig7_process())
        assert encoded.purpose == "fig7"

    def test_invalid_process_rejected_at_encode(self):
        builder = ProcessBuilder("bad")
        builder.pool("P").task("T")  # no start event, no flows
        from repro.errors import ProcessValidationError

        with pytest.raises(ProcessValidationError):
            encode(builder.build(validate=False))

    def test_duplicate_gateway_flows_rejected(self):
        builder = ProcessBuilder("dup")
        pool = builder.pool("P")
        pool.start_event("S").exclusive_gateway("G").task("A").end_event("E")
        builder.chain("S", "G")
        builder.flow("G", "A").flow("G", "A")
        builder.chain("A", "E")
        with pytest.raises(EncodingError):
            encode(builder.build(validate=False), validated=True)
