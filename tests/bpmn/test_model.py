"""Unit tests for the BPMN process model."""

import pytest

from repro.bpmn import Element, ElementType, ProcessBuilder


def two_pool_process():
    builder = ProcessBuilder("proc", purpose="demo")
    a = builder.pool("A")
    a.start_event("S").task("T1").message_end_event("E1", message="m")
    b = builder.pool("B")
    b.message_start_event("S2", message="m").task("T2").end_event("E2")
    builder.chain("S", "T1", "E1")
    builder.chain("S2", "T2", "E2")
    return builder.build()


class TestElement:
    def test_message_event_requires_message(self):
        with pytest.raises(ValueError):
            Element("E", ElementType.MESSAGE_END_EVENT, "P")

    def test_join_of_only_on_inclusive(self):
        with pytest.raises(ValueError):
            Element("G", ElementType.EXCLUSIVE_GATEWAY, "P", join_of="X")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Element("", ElementType.TASK, "P")

    def test_label_falls_back_to_id(self):
        element = Element("T1", ElementType.TASK, "P")
        assert element.label == "T1"
        named = Element("T1", ElementType.TASK, "P", name="Do a thing")
        assert named.label == "Do a thing"

    def test_type_predicates(self):
        assert ElementType.START_EVENT.is_start
        assert ElementType.MESSAGE_START_EVENT.is_start
        assert ElementType.END_EVENT.is_end
        assert ElementType.MESSAGE_END_EVENT.is_end
        assert ElementType.EXCLUSIVE_GATEWAY.is_gateway
        assert not ElementType.TASK.is_gateway


class TestProcessQueries:
    def test_pools_in_first_seen_order(self):
        assert two_pool_process().pools == ["A", "B"]

    def test_purpose_defaults_to_process_id(self):
        builder = ProcessBuilder("some-id")
        builder.pool("P").start_event("S").task("T").end_event("E")
        builder.chain("S", "T", "E")
        assert builder.build().purpose == "some-id"

    def test_task_ids(self):
        assert two_pool_process().task_ids == {"T1", "T2"}

    def test_incoming_outgoing(self):
        process = two_pool_process()
        assert process.outgoing("S") == ["T1"]
        assert process.incoming("T1") == ["S"]
        assert process.outgoing("E2") == []

    def test_element_lookup_error(self):
        with pytest.raises(KeyError):
            two_pool_process().element("nope")

    def test_contains_and_len(self):
        process = two_pool_process()
        assert "T1" in process
        assert "zzz" not in process
        assert len(process) == 6

    def test_message_links(self):
        process = two_pool_process()
        links = list(process.message_links())
        assert len(links) == 1
        thrower, catcher = links[0]
        assert (thrower.element_id, catcher.element_id) == ("E1", "S2")

    def test_role_of_task(self):
        process = two_pool_process()
        assert process.role_of_task("T1") == "A"
        assert process.role_of_task("T2") == "B"
        with pytest.raises(ValueError):
            process.role_of_task("S")

    def test_start_and_end_events(self):
        process = two_pool_process()
        assert {e.element_id for e in process.start_events} == {"S", "S2"}
        assert {e.element_id for e in process.end_events} == {"E1", "E2"}

    def test_error_target(self):
        builder = ProcessBuilder("err")
        pool = builder.pool("P")
        pool.start_event("S").task("T").task("H").end_event("E").end_event("E9")
        builder.chain("S", "T", "E")
        builder.chain("H", "E9")
        builder.error_flow("T", "H")
        process = builder.build(validate=False)
        assert process.error_target("T") == "H"
        assert process.error_target("H") is None
