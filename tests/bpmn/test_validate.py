"""Tests for structural validation and the well-foundedness check (Section 5)."""

import pytest

from repro.bpmn import (
    ProcessBuilder,
    is_well_founded,
    non_well_founded_cycles,
    structural_problems,
    validate,
)
from repro.errors import NotWellFoundedError, ProcessValidationError


def linear(builder_id="p"):
    builder = ProcessBuilder(builder_id)
    builder.pool("P").start_event("S").task("T").end_event("E")
    builder.chain("S", "T", "E")
    return builder


class TestStructuralValidation:
    def test_valid_process_passes(self):
        validate(linear().build(validate=False))

    def test_empty_process_rejected(self):
        problems = structural_problems(ProcessBuilder("x").build(validate=False))
        assert problems == ["process has no elements"]

    def test_unknown_flow_endpoint(self):
        builder = linear()
        builder.flow("T", "ghost")
        problems = structural_problems(builder.build(validate=False))
        assert any("unknown element 'ghost'" in p for p in problems)

    def test_missing_start_event(self):
        builder = ProcessBuilder("p")
        builder.pool("P").task("T").end_event("E")
        builder.flow("T", "E")
        problems = structural_problems(builder.build(validate=False))
        assert any("no start event" in p for p in problems)

    def test_start_event_with_incoming_rejected(self):
        builder = linear()
        builder.flow("T", "S")
        problems = structural_problems(builder.build(validate=False))
        assert any("has incoming flows" in p for p in problems)

    def test_task_needs_exactly_one_outgoing(self):
        builder = ProcessBuilder("p")
        builder.pool("P").start_event("S").task("T").end_event("E1").end_event("E2")
        builder.chain("S", "T")
        builder.flow("T", "E1").flow("T", "E2")
        problems = structural_problems(builder.build(validate=False))
        assert any("exactly one outgoing flow" in p for p in problems)

    def test_end_event_with_outgoing_rejected(self):
        builder = ProcessBuilder("p")
        builder.pool("P").start_event("S").task("T").end_event("E")
        builder.chain("S", "T", "E")
        builder.flow("E", "T")
        problems = structural_problems(builder.build(validate=False))
        assert any("end event 'E' has outgoing" in p for p in problems)

    def test_unreachable_element_flagged(self):
        builder = linear()
        builder.pool("P").task("orphan").end_event("E9")
        builder.flow("orphan", "E9")
        problems = structural_problems(builder.build(validate=False))
        assert any("'orphan' is unreachable" in p for p in problems)

    def test_thrown_message_needs_catcher(self):
        builder = ProcessBuilder("p")
        builder.pool("P").start_event("S").task("T").message_end_event(
            "E", message="lost"
        )
        builder.chain("S", "T", "E")
        problems = structural_problems(builder.build(validate=False))
        assert any("no catching event" in p for p in problems)

    def test_awaited_message_needs_thrower(self):
        builder = ProcessBuilder("p")
        builder.pool("P").message_start_event("S", message="never").task(
            "T"
        ).end_event("E")
        builder.chain("S", "T", "E")
        problems = structural_problems(builder.build(validate=False))
        assert any("is never thrown" in p for p in problems)

    def test_mixed_parallel_gateway_rejected(self):
        builder = ProcessBuilder("p")
        pool = builder.pool("P")
        pool.start_event("S1").start_event("S2")
        pool.parallel_gateway("G")
        pool.task("A").task("B").end_event("E1").end_event("E2")
        builder.flow("S1", "G").flow("S2", "G")
        builder.flow("G", "A").flow("G", "B")
        builder.chain("A", "E1")
        builder.chain("B", "E2")
        problems = structural_problems(builder.build(validate=False))
        assert any("mixes split and join" in p for p in problems)

    def test_inclusive_join_needs_pairing(self):
        builder = ProcessBuilder("p")
        pool = builder.pool("P")
        pool.start_event("S").inclusive_gateway("G").task("A").task("B")
        pool.inclusive_gateway("J")  # join_of missing
        pool.task("Z").end_event("E")
        builder.chain("S", "G")
        builder.flow("G", "A").flow("G", "B")
        builder.flow("A", "J").flow("B", "J")
        builder.chain("J", "Z", "E")
        problems = structural_problems(builder.build(validate=False))
        assert any("must declare join_of" in p for p in problems)

    def test_error_flow_source_must_be_task(self):
        builder = linear()
        builder.error_flow("S", "T")
        problems = structural_problems(builder.build(validate=False))
        assert any("is not a task" in p for p in problems)

    def test_validate_raises_with_problem_list(self):
        builder = linear()
        builder.flow("T", "ghost")
        with pytest.raises(ProcessValidationError) as excinfo:
            validate(builder.build(validate=False))
        assert excinfo.value.problems


class TestWellFoundedness:
    def test_task_cycle_is_well_founded(self):
        builder = ProcessBuilder("p")
        pool = builder.pool("P")
        pool.start_event("S").task("T").exclusive_gateway("G").end_event("E")
        builder.chain("S", "T", "G")
        builder.flow("G", "T")
        builder.flow("G", "E")
        assert is_well_founded(builder.build(validate=False))

    def test_gateway_only_cycle_is_not_well_founded(self):
        builder = ProcessBuilder("p")
        pool = builder.pool("P")
        pool.start_event("S").task("T")
        pool.exclusive_gateway("G1").exclusive_gateway("G2")
        pool.end_event("E")
        builder.chain("S", "T", "G1", "G2")
        builder.flow("G2", "G1")  # silent loop between two gateways
        builder.flow("G2", "E")
        process = builder.build(validate=False)
        assert not is_well_founded(process)
        cycles = non_well_founded_cycles(process)
        assert cycles and set(cycles[0]) == {"G1", "G2"}

    def test_validate_rejects_non_well_founded(self):
        builder = ProcessBuilder("p")
        pool = builder.pool("P")
        pool.start_event("S").task("T")
        pool.exclusive_gateway("G1").exclusive_gateway("G2")
        pool.end_event("E")
        builder.chain("S", "T", "G1", "G2")
        builder.flow("G2", "G1")
        builder.flow("G2", "E")
        with pytest.raises(NotWellFoundedError):
            validate(builder.build(validate=False))

    def test_error_edge_makes_cycle_well_founded(self):
        # A cycle closed purely by an error flow is observable via sys.Err.
        builder = ProcessBuilder("p")
        pool = builder.pool("P")
        pool.start_event("S").task("T").end_event("E")
        builder.chain("S", "T", "E")
        builder.error_flow("T", "T")  # retry the task on failure
        # the error self-cycle contains the task anyway; the check passes
        assert is_well_founded(builder.build(validate=False))

    def test_message_cycle_with_tasks_is_well_founded(self):
        from repro.scenarios import fig10_process

        assert is_well_founded(fig10_process())

    def test_builder_build_validates_by_default(self):
        builder = linear()
        builder.flow("T", "ghost")
        with pytest.raises(ProcessValidationError):
            builder.build()


class TestBuilderBasics:
    def test_duplicate_element_id_rejected(self):
        builder = ProcessBuilder("p")
        builder.pool("P").task("T")
        with pytest.raises(ProcessValidationError):
            builder.pool("Q").task("T")

    def test_same_pool_returned_for_same_role(self):
        builder = ProcessBuilder("p")
        assert builder.pool("P") is builder.pool("P")

    def test_self_loop_flow_rejected(self):
        builder = ProcessBuilder("p")
        builder.pool("P").task("T")
        with pytest.raises(ValueError):
            builder.flow("T", "T")


class TestSilentCycleEnumeration:
    """The SCC-condensed enumeration must match the old whole-graph one."""

    def test_disjoint_silent_cycles_all_reported(self):
        builder = ProcessBuilder("p")
        pool = builder.pool("P")
        pool.start_event("S").task("T1").task("T2").end_event("E")
        pool.exclusive_gateway("G1").exclusive_gateway("G2")
        pool.exclusive_gateway("H1").exclusive_gateway("H2")
        builder.chain("S", "G1", "G2", "G1")  # first silent SCC
        builder.chain("G2", "T1", "H1", "H2", "H1")  # second silent SCC
        builder.chain("H2", "T2", "E")
        cycles = non_well_founded_cycles(builder.build(validate=False))
        assert len(cycles) == 2
        assert {frozenset(c) for c in cycles} == {
            frozenset({"G1", "G2"}),
            frozenset({"H1", "H2"}),
        }

    def test_cycle_through_task_is_not_silent(self):
        builder = ProcessBuilder("p")
        pool = builder.pool("P")
        pool.start_event("S").task("T").exclusive_gateway("G").end_event("E")
        builder.chain("S", "T", "G")
        builder.flow("G", "T")
        builder.flow("G", "E")
        assert non_well_founded_cycles(builder.build(validate=False)) == []

    def test_overlapping_cycles_in_one_scc(self):
        builder = ProcessBuilder("p")
        pool = builder.pool("P")
        pool.start_event("S").task("T").end_event("E")
        pool.exclusive_gateway("G1").exclusive_gateway("G2")
        pool.exclusive_gateway("G3")
        builder.chain("S", "G1", "G2", "G1")
        builder.flow("G2", "G3").flow("G3", "G1")
        builder.chain("G3", "T", "E")
        cycles = non_well_founded_cycles(builder.build(validate=False))
        assert {frozenset(c) for c in cycles} == {
            frozenset({"G1", "G2"}),
            frozenset({"G1", "G2", "G3"}),
        }
