"""Tests for the structural process metrics."""

import pytest

from repro.bpmn.metrics import measure
from repro.scenarios import (
    clinical_trial_process,
    healthcare_treatment_process,
    loop_process,
    parallel_process,
    sequential_process,
    xor_process,
)


class TestPaperProcesses:
    def test_treatment_profile(self):
        metrics = measure(healthcare_treatment_process())
        assert metrics.process_id == "healthcare-treatment"
        assert metrics.elements == 33
        assert metrics.tasks == 15
        assert metrics.pools == 4
        assert metrics.inclusive_gateways == 2
        assert metrics.error_flows == 1
        # referral, diagnosis_ready, lab_order, scan_order, lab_done, scan_done
        assert metrics.message_links == 6
        assert metrics.cycles >= 2  # the T02 error loop + the G2/G3 loop

    def test_trial_profile(self):
        metrics = measure(clinical_trial_process())
        assert metrics.tasks == 5
        assert metrics.pools == 1
        assert metrics.cycles == 1  # the T94 measurement loop
        assert metrics.exclusive_gateways == 1


class TestFamilies:
    def test_sequential(self):
        metrics = measure(sequential_process(4))
        assert metrics.tasks == 4
        assert metrics.cycles == 0
        assert metrics.gateways == 0
        assert metrics.depth == 5  # S -> T1 -> T2 -> T3 -> T4 -> E

    def test_xor_fanout(self):
        metrics = measure(xor_process(3))
        assert metrics.max_split_fanout == 3
        assert metrics.exclusive_gateways == 2

    def test_loop_counted(self):
        metrics = measure(loop_process(2))
        assert metrics.cycles == 1

    def test_parallel_gateways(self):
        metrics = measure(parallel_process(2))
        assert metrics.parallel_gateways == 2

    def test_observable_density_bounds(self):
        for process in (
            sequential_process(3),
            xor_process(2),
            healthcare_treatment_process(),
        ):
            metrics = measure(process)
            assert 0.0 < metrics.observable_density < 1.0

    def test_as_rows_complete(self):
        rows = measure(sequential_process(2)).as_rows()
        names = [name for name, _ in rows]
        assert "tasks" in names
        assert "observable density" in names
        assert len(rows) == 14

    def test_depth_with_cycle_is_finite(self):
        # Depth condenses strongly connected components, so loops don't
        # make it diverge.
        metrics = measure(loop_process(3))
        assert metrics.depth >= 4


class TestCycleCap:
    def _many_cycles(self, n):
        from repro.bpmn import ProcessBuilder

        builder = ProcessBuilder("loops")
        pool = builder.pool("P")
        pool.start_event("S").exclusive_gateway("G").end_event("E")
        builder.flow("S", "G")
        for index in range(n):
            task = f"T{index}"
            pool.task(task)
            builder.flow("G", task).flow(task, "G")
        builder.flow("G", "E")
        return builder.build(validate=False)

    def test_uncapped_counts_exactly(self):
        metrics = measure(self._many_cycles(4))
        assert metrics.cycles == 4
        assert not metrics.cycles_capped

    def test_cap_stops_enumeration(self):
        metrics = measure(self._many_cycles(4), max_cycles=2)
        assert metrics.cycles == 2
        assert metrics.cycles_capped

    def test_capped_count_renders_as_lower_bound(self):
        rows = dict(measure(self._many_cycles(4), max_cycles=2).as_rows())
        assert rows["cycles"] == ">= 2"
        uncapped = dict(measure(self._many_cycles(4)).as_rows())
        assert uncapped["cycles"] == 4
