"""Tests for BPMN 2.0 XML interchange."""

import pytest

from repro.bpmn import encode
from repro.bpmn.xml import process_from_bpmn_xml, process_to_bpmn_xml
from repro.core import ComplianceChecker
from repro.errors import ProcessValidationError
from repro.scenarios import (
    clinical_trial_process,
    fig8_process,
    fig9_process,
    fig10_process,
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
)

ROUND_TRIP_PROCESSES = [
    fig8_process,
    fig9_process,
    fig10_process,
    clinical_trial_process,
    healthcare_treatment_process,
]


class TestRoundTrip:
    @pytest.mark.parametrize("factory", ROUND_TRIP_PROCESSES)
    def test_structure_preserved(self, factory):
        original = factory()
        rebuilt = process_from_bpmn_xml(process_to_bpmn_xml(original))
        assert set(rebuilt.elements) == set(original.elements)
        assert rebuilt.task_ids == original.task_ids
        assert set(rebuilt.pools) == set(original.pools)
        assert sorted(
            (f.source, f.target) for f in rebuilt.flows
        ) == sorted((f.source, f.target) for f in original.flows)
        assert rebuilt.error_flows == original.error_flows
        for eid, element in original.elements.items():
            assert rebuilt.elements[eid].element_type == element.element_type
            assert rebuilt.elements[eid].join_of == element.join_of

    def test_round_tripped_treatment_process_replays_fig4(self):
        rebuilt = process_from_bpmn_xml(
            process_to_bpmn_xml(healthcare_treatment_process())
        )
        rebuilt.purpose = "treatment"
        checker = ComplianceChecker(encode(rebuilt), role_hierarchy())
        trail = paper_audit_trail()
        assert checker.check(trail.for_case("HT-1")).compliant
        assert not checker.check(trail.for_case("HT-11")).compliant

    def test_export_declares_messages(self):
        document = process_to_bpmn_xml(healthcare_treatment_process())
        assert 'name="referral"' in document
        assert "messageFlow" in document

    def test_export_is_namespaced(self):
        document = process_to_bpmn_xml(fig8_process())
        assert "http://www.omg.org/spec/BPMN/20100524/MODEL" in document


MODELER_STYLE = """<?xml version="1.0" encoding="UTF-8"?>
<bpmn:definitions xmlns:bpmn="http://www.omg.org/spec/BPMN/20100524/MODEL"
                  id="defs1" targetNamespace="http://example.com/bpmn">
  <bpmn:process id="Process_1" name="approval" isExecutable="false">
    <bpmn:startEvent id="Start_1">
      <bpmn:outgoing>f1</bpmn:outgoing>
    </bpmn:startEvent>
    <bpmn:userTask id="Review" name="Review request">
      <bpmn:incoming>f1</bpmn:incoming>
      <bpmn:outgoing>f2</bpmn:outgoing>
    </bpmn:userTask>
    <bpmn:exclusiveGateway id="Gate_1"/>
    <bpmn:serviceTask id="Approve" name="Approve"/>
    <bpmn:userTask id="Reject" name="Reject"/>
    <bpmn:endEvent id="End_1"/>
    <bpmn:endEvent id="End_2"/>
    <bpmn:sequenceFlow id="f1" sourceRef="Start_1" targetRef="Review"/>
    <bpmn:sequenceFlow id="f2" sourceRef="Review" targetRef="Gate_1"/>
    <bpmn:sequenceFlow id="f3" sourceRef="Gate_1" targetRef="Approve"/>
    <bpmn:sequenceFlow id="f4" sourceRef="Gate_1" targetRef="Reject"/>
    <bpmn:sequenceFlow id="f5" sourceRef="Approve" targetRef="End_1"/>
    <bpmn:sequenceFlow id="f6" sourceRef="Reject" targetRef="End_2"/>
  </bpmn:process>
</bpmn:definitions>
"""


class TestModelerStyleImport:
    def test_single_process_becomes_one_pool(self):
        process = process_from_bpmn_xml(MODELER_STYLE)
        assert process.pools == ["approval"]
        assert process.task_ids == {"Review", "Approve", "Reject"}
        assert process.purpose == "approval"

    def test_task_flavours_accepted(self):
        process = process_from_bpmn_xml(MODELER_STYLE)
        # userTask and serviceTask both became plain tasks
        assert process.element("Review").element_type.value == "task"
        assert process.element("Approve").element_type.value == "task"

    def test_incoming_outgoing_children_ignored(self):
        process = process_from_bpmn_xml(MODELER_STYLE)
        assert len(process.flows) == 6

    def test_imported_process_is_auditable(self):
        from datetime import datetime
        from repro.audit import LogEntry, Status

        process = process_from_bpmn_xml(MODELER_STYLE)
        checker = ComplianceChecker(encode(process))
        entries = [
            LogEntry(
                user="u", role="approval", action="work", obj=None,
                task=task, case="A-1",
                timestamp=datetime(2026, 1, 1, 9, minute),
                status=Status.SUCCESS,
            )
            for minute, task in enumerate(["Review", "Approve"])
        ]
        assert checker.check(entries).compliant
        assert not checker.check(list(reversed(entries))).compliant


class TestErrors:
    def test_invalid_xml(self):
        with pytest.raises(ProcessValidationError):
            process_from_bpmn_xml("<definitions><process>")

    def test_wrong_root(self):
        with pytest.raises(ProcessValidationError):
            process_from_bpmn_xml("<foo/>")

    def test_no_process(self):
        with pytest.raises(ProcessValidationError):
            process_from_bpmn_xml(
                f'<definitions xmlns="{"http://www.omg.org/spec/BPMN/20100524/MODEL"}"/>'
            )

    def test_unsupported_element_rejected_not_dropped(self):
        document = MODELER_STYLE.replace(
            '<bpmn:serviceTask id="Approve" name="Approve"/>',
            '<bpmn:subProcess id="Approve" name="Approve"/>',
        )
        with pytest.raises(ProcessValidationError) as excinfo:
            process_from_bpmn_xml(document)
        assert "subProcess" in str(excinfo.value)

    def test_non_error_boundary_rejected(self):
        document = MODELER_STYLE.replace(
            '<bpmn:endEvent id="End_2"/>',
            '<bpmn:endEvent id="End_2"/>'
            '<bpmn:boundaryEvent id="b1" attachedToRef="Review"/>',
        )
        with pytest.raises(ProcessValidationError):
            process_from_bpmn_xml(document)

    def test_ambiguous_inclusive_pairing_rejected(self):
        document = """<?xml version="1.0"?>
        <definitions xmlns="http://www.omg.org/spec/BPMN/20100524/MODEL">
          <process id="p" name="p">
            <startEvent id="S"/>
            <inclusiveGateway id="G1"/>
            <task id="A"/><task id="B"/>
            <inclusiveGateway id="G2"/>
            <task id="C"/><task id="D"/>
            <inclusiveGateway id="J1"/>
            <inclusiveGateway id="J2"/>
            <endEvent id="E"/>
            <sequenceFlow id="s0" sourceRef="S" targetRef="G1"/>
            <sequenceFlow id="s1" sourceRef="G1" targetRef="A"/>
            <sequenceFlow id="s2" sourceRef="G1" targetRef="B"/>
            <sequenceFlow id="s3" sourceRef="A" targetRef="G2"/>
            <sequenceFlow id="s3b" sourceRef="B" targetRef="J1"/>
            <sequenceFlow id="s4" sourceRef="G2" targetRef="C"/>
            <sequenceFlow id="s5" sourceRef="G2" targetRef="D"/>
            <sequenceFlow id="s6" sourceRef="C" targetRef="J2"/>
            <sequenceFlow id="s7" sourceRef="D" targetRef="J2"/>
            <sequenceFlow id="s8" sourceRef="J2" targetRef="J1"/>
            <sequenceFlow id="s9" sourceRef="J1" targetRef="E"/>
          </process>
        </definitions>
        """
        with pytest.raises(ProcessValidationError) as excinfo:
            process_from_bpmn_xml(document)
        assert "joinOf" in str(excinfo.value)
