"""Tests for LTS equivalences: strong bisimulation and weak trace
equivalence, including the encoder-vs-paper cross-checks."""

import pytest

from repro.bpmn import encode
from repro.cows import LTS, CommLabel, parse
from repro.cows.equivalence import (
    IncompleteFragmentError,
    observable_determinization,
    strong_bisimilar,
    weak_trace_equivalent,
)
from repro.scenarios import (
    FIG7_COWS,
    FIG8_COWS,
    FIG9_COWS,
    fig7_process,
    fig8_process,
    fig9_process,
)


def explored(source, max_states=500):
    return LTS(parse(source)).explore(max_states=max_states)


def classify_tasks(roles, tasks):
    def classify(label):
        if not isinstance(label, CommLabel):
            return None
        partner = str(label.endpoint.partner)
        operation = str(label.endpoint.operation)
        if operation == "Err":
            return "sys.Err"
        if partner in roles and operation in tasks:
            return f"{partner}.{operation}"
        return None

    return classify


class TestStrongBisimulation:
    def test_identical_terms_bisimilar(self):
        assert strong_bisimilar(explored(FIG7_COWS), explored(FIG7_COWS))

    def test_renamed_states_bisimilar(self):
        # Same behaviour through different private bookkeeping names.
        left = explored("[n](n.go!<> | n.go?<>.P.T!<> | P.T?<>)")
        right = explored("[m](m.tick!<> | m.tick?<>.P.T!<> | P.T?<>)")
        # Labels differ textually (n.go vs m.tick) so NOT strongly bisimilar
        assert not strong_bisimilar(left, right)
        # ...but with a key that hides the private-step identity they are.
        def key(label):
            text = str(label)
            return "tau" if text.startswith(("n.", "m.")) else text

        assert strong_bisimilar(left, right, label_key=key)

    def test_choice_vs_single_not_bisimilar(self):
        left = explored("P.a!<> | P.a?<>")
        right = explored("P.a!<> | P.b!<> | P.a?<> | P.b?<>")
        assert not strong_bisimilar(left, right)

    def test_deadlock_depth_distinguished(self):
        left = explored("P.a!<> | P.a?<>")
        right = explored("P.a!<> | P.a?<>.P.b!<> | P.b?<>")
        assert not strong_bisimilar(left, right)

    def test_incomplete_fragment_rejected(self):
        from repro.scenarios import FIG10_COWS

        fragment = LTS(parse(FIG10_COWS)).explore(max_states=2)
        complete = explored(FIG7_COWS)
        with pytest.raises(IncompleteFragmentError):
            strong_bisimilar(fragment, complete)


class TestObservableDeterminization:
    def test_fig8_automaton_shape(self):
        fragment = explored(FIG8_COWS)
        classify = classify_tasks({"P"}, {"T", "T1", "T2"})
        auto = observable_determinization(fragment, classify)
        first = auto.step(auto.initial, "P.T")
        assert first is not None
        assert set(auto.transitions[first]) == {"P.T1", "P.T2"}

    def test_accepting_states_mark_possible_stops(self):
        fragment = explored(FIG7_COWS)
        classify = classify_tasks({"P"}, {"T"})
        auto = observable_determinization(fragment, classify)
        after_t = auto.step(auto.initial, "P.T")
        # After P.T the process silently finishes: the macro-state accepts.
        assert after_t in auto.accepting


class TestEncoderAgreement:
    """The library encoder is weak-trace-equivalent to the paper's terms."""

    @pytest.mark.parametrize(
        "factory, source, tasks",
        [
            (fig7_process, FIG7_COWS, {"T"}),
            (fig8_process, FIG8_COWS, {"T", "T1", "T2"}),
            (fig9_process, FIG9_COWS, {"T", "T1", "T2"}),
        ],
    )
    def test_weak_trace_equivalence(self, factory, source, tasks):
        encoded = encode(factory())
        ours = LTS(encoded.term).explore(max_states=2000)
        paper = explored(source)
        classify = classify_tasks({"P"}, tasks)
        assert weak_trace_equivalent(ours, paper, classify)

    def test_non_equivalent_processes_detected(self):
        fig7 = explored(FIG7_COWS)
        fig8 = explored(FIG8_COWS)
        classify = classify_tasks({"P"}, {"T", "T1", "T2"})
        assert not weak_trace_equivalent(fig7, fig8, classify)

    def test_mutated_encoding_detected(self):
        # Swap the two branch targets' roles: T1 becomes unreachable.
        broken = explored(
            FIG8_COWS.replace("sys.T1?<>.(kill(k) | {| P.T1!<> |})",
                              "sys.T1?<>.(kill(k) | {| P.T2!<> |})")
        )
        original = explored(FIG8_COWS)
        classify = classify_tasks({"P"}, {"T", "T1", "T2"})
        assert not weak_trace_equivalent(broken, original, classify)
