"""Unit tests for the COWS term language: construction, free identifiers,
substitution, active-task extraction."""

import pytest

from repro.cows import (
    Choice,
    Invoke,
    Kill,
    Nil,
    Parallel,
    Protect,
    Replicate,
    Request,
    Scope,
    TaskMarker,
    active_tasks,
    choice,
    endpoint,
    free_identifiers,
    killer,
    name,
    parallel,
    scope,
    substitute,
    var,
)
from repro.errors import SubstitutionError


def invoke(p, o, *params):
    return Invoke(endpoint(p, o), tuple(params))


def request(p, o, *params, cont=None):
    return Request(endpoint(p, o), tuple(params), cont if cont is not None else Nil())


class TestConstruction:
    def test_parallel_helper_flattens(self):
        inner = parallel(invoke("a", "b"), invoke("c", "d"))
        outer = parallel(inner, invoke("e", "f"))
        assert isinstance(outer, Parallel)
        assert len(outer.components) == 3

    def test_parallel_helper_drops_nil(self):
        assert parallel(Nil(), Nil()) == Nil()
        assert parallel(invoke("a", "b"), Nil()) == invoke("a", "b")

    def test_choice_helper(self):
        r1 = request("p", "o1")
        r2 = request("p", "o2")
        assert choice(r1) == r1
        assert choice() == Nil()
        both = choice(r1, r2)
        assert isinstance(both, Choice)
        assert both.branches == (r1, r2)

    def test_choice_rejects_non_requests(self):
        with pytest.raises(TypeError):
            Choice((invoke("a", "b"),))

    def test_scope_helper_stacks_binders(self):
        term = scope([killer("k"), name("sys")], invoke("a", "b"))
        assert isinstance(term, Scope)
        assert term.binder == killer("k")
        assert isinstance(term.body, Scope)
        assert term.body.binder == name("sys")

    def test_scope_helper_single_binder(self):
        term = scope(name("sys"), invoke("a", "b"))
        assert isinstance(term, Scope)
        assert term.binder == name("sys")

    def test_terms_are_hashable(self):
        t1 = parallel(invoke("a", "b"), request("c", "d"))
        t2 = parallel(invoke("a", "b"), request("c", "d"))
        assert t1 == t2
        assert hash(t1) == hash(t2)


class TestStr:
    def test_invoke(self):
        assert str(invoke("GP", "T01")) == "GP.T01!<>"
        assert str(invoke("P2", "S3", name("msg1"))) == "P2.S3!<msg1>"

    def test_request_with_continuation(self):
        term = request("P", "T", cont=invoke("P", "E"))
        assert str(term) == "P.T?<>.P.E!<>"

    def test_request_without_continuation(self):
        assert str(request("P", "E")) == "P.E?<>"

    def test_kill_and_protect(self):
        assert str(Kill(killer("k"))) == "kill(k)"
        assert str(Protect(invoke("a", "b"))) == "{|a.b!<>|}"

    def test_replicate(self):
        assert str(Replicate(request("P", "T"))) == "*(P.T?<>)"

    def test_variable_parameter(self):
        assert str(request("P1", "S2", var("z"))) == "P1.S2?<?z>"


class TestFreeIdentifiers:
    def test_invoke_exposes_endpoint_and_params(self):
        fi = free_identifiers(invoke("P", "o", name("v")))
        assert fi == {name("P"), name("o"), name("v")}

    def test_scope_removes_binder(self):
        body = parallel(invoke("sys", "a"), Kill(killer("k")))
        fi = free_identifiers(scope([name("sys"), killer("k")], body))
        assert name("sys") not in fi
        assert killer("k") not in fi
        assert name("a") in fi

    def test_variable_free_in_pattern(self):
        fi = free_identifiers(request("P", "o", var("z")))
        assert var("z") in fi

    def test_variable_bound_by_scope(self):
        fi = free_identifiers(Scope(var("z"), request("P", "o", var("z"))))
        assert var("z") not in fi

    def test_kill_exposes_label(self):
        assert free_identifiers(Kill(killer("k"))) == {killer("k")}

    def test_marker_exposes_role_and_task(self):
        term = TaskMarker(name("GP"), name("T01"), Nil())
        assert free_identifiers(term) == {name("GP"), name("T01")}


class TestSubstitute:
    def test_substitutes_in_invoke_params(self):
        term = invoke("P", "o", var("x"))
        result = substitute(term, {var("x"): name("v")})
        assert result == invoke("P", "o", name("v"))

    def test_substitutes_in_continuation(self):
        term = request("P", "o", var("x"), cont=invoke("Q", "p", var("x")))
        result = substitute(term, {var("x"): name("v")})
        assert result.continuation == invoke("Q", "p", name("v"))

    def test_empty_mapping_is_identity(self):
        term = invoke("P", "o", var("x"))
        assert substitute(term, {}) is term

    def test_shadowing_scope_stops_substitution(self):
        inner = Scope(var("x"), invoke("P", "o", var("x")))
        result = substitute(inner, {var("x"): name("v")})
        assert result == inner

    def test_capture_of_private_name_is_an_error(self):
        term = Scope(name("v"), invoke("P", "o", var("x")))
        with pytest.raises(SubstitutionError):
            substitute(term, {var("x"): name("v")})

    def test_substitution_under_replication_and_protect(self):
        term = Replicate(Protect(invoke("P", "o", var("x"))))
        result = substitute(term, {var("x"): name("v")})
        assert result == Replicate(Protect(invoke("P", "o", name("v"))))

    def test_kill_and_nil_unaffected(self):
        assert substitute(Kill(killer("k")), {var("x"): name("v")}) == Kill(killer("k"))
        assert substitute(Nil(), {var("x"): name("v")}) == Nil()


class TestActiveTasks:
    def test_marker_at_top_level(self):
        term = TaskMarker(name("GP"), name("T01"), invoke("GP", "G1"))
        assert active_tasks(term) == {(name("GP"), name("T01"))}

    def test_marker_under_parallel_and_scope(self):
        marker = TaskMarker(name("C"), name("T06"), invoke("C", "G2"))
        term = Scope(name("sys"), parallel(marker, invoke("a", "b")))
        assert active_tasks(term) == {(name("C"), name("T06"))}

    def test_marker_under_prefix_is_not_active(self):
        marker = TaskMarker(name("GP"), name("T01"), invoke("GP", "G1"))
        term = request("GP", "T01", cont=marker)
        assert active_tasks(term) == frozenset()

    def test_marker_under_replication_is_not_active(self):
        marker = TaskMarker(name("GP"), name("T01"), invoke("GP", "G1"))
        assert active_tasks(Replicate(marker)) == frozenset()

    def test_multiple_markers(self):
        m1 = TaskMarker(name("C"), name("T08"), invoke("a", "b"))
        m2 = TaskMarker(name("C"), name("T09"), invoke("c", "d"))
        assert active_tasks(parallel(m1, m2)) == {
            (name("C"), name("T08")),
            (name("C"), name("T09")),
        }

    def test_nested_markers_both_reported(self):
        inner = TaskMarker(name("R"), name("T10"), invoke("a", "b"))
        outer = TaskMarker(name("C"), name("T08"), inner)
        assert active_tasks(outer) == {
            (name("C"), name("T08")),
            (name("R"), name("T10")),
        }
