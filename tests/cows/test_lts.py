"""LTS-level tests: the appendix encodings of the paper (Figs 7-10) and the
generic exploration/trace machinery."""

import pytest

from repro.cows import (
    LTS,
    CommLabel,
    count_traces,
    endpoint,
    format_label,
    parse,
)

FIG7 = "P.T!<> | P.T?<>.P.E!<> | P.E?<>"

FIG8 = """
P.T!<>
| P.T?<>. P.G!<>
| P.G?<>. [ +k, sys ] ( sys.T1!<> | sys.T2!<>
    | sys.T1?<>.(kill(k) | {| P.T1!<> |})
    | sys.T2?<>.(kill(k) | {| P.T2!<> |}) )
| P.T1?<>. P.E1!<>
| P.E1?<>
| P.T2?<>. P.E2!<>
| P.E2?<>
"""

FIG9 = """
P.T!<>
| P.T?<>. [ +k, sys ] ( sys.Err!<> | sys.T2!<>
    | sys.Err?<>.(kill(k) | {| P.T1!<> |})
    | sys.T2?<>.(kill(k) | {| P.T2!<> |}) )
| P.T1?<>. P.E1!<>
| P.E1?<>
| P.T2?<>. P.E2!<>
| P.E2?<>
"""

FIG10 = """
P1.T1!<>
| *( [?z] P1.S2?<?z>. P1.T1!<> )
| *( P1.T1?<>. P1.E1!<> )
| *( P1.E1?<>. P2.S3!<msg1> )
| *( [?z] P2.S3?<?z>. P2.T2!<> )
| *( P2.T2?<>. P2.E2!<> )
| *( P2.E2?<>. P1.S2!<msg2> )
"""


def comm_labels(result):
    return {format_label(l) for l in result.labels() if isinstance(l, CommLabel)}


class TestFig7SimpleSequence:
    """Fig. 7: start -> task -> end gives the two-step LTS of the paper."""

    def test_three_states(self):
        result = LTS(parse(FIG7)).explore()
        assert result.state_count == 3
        assert result.complete

    def test_single_path_p_t_then_p_e(self):
        lts = LTS(parse(FIG7))
        traces = list(lts.traces(max_length=10))
        assert len(traces) == 1
        assert [format_label(l) for l in traces[0]] == ["P.T", "P.E"]


class TestFig8ExclusiveGateway:
    """Fig. 8: exactly one of T1/T2 runs; both paths converge."""

    def test_no_trace_contains_both_tasks(self):
        lts = LTS(parse(FIG8))
        for trace in lts.traces(max_length=20):
            labels = [format_label(l) for l in trace]
            assert not ("P.T1" in labels and "P.T2" in labels)

    def test_both_alternatives_possible(self):
        lts = LTS(parse(FIG8))
        flat = [tuple(format_label(l) for l in t) for t in lts.traces(max_length=20)]
        assert any("P.T1" in t for t in flat)
        assert any("P.T2" in t for t in flat)

    def test_terminates(self):
        result = LTS(parse(FIG8)).explore()
        assert result.complete

    def test_each_branch_reaches_a_deadlocked_end(self):
        # The paper's Fig. 8(c) draws one shared end state St6; at the COWS
        # level the two ends differ by which inert task request survived
        # the kill, but both are deadlocked (no communication possible).
        result = LTS(parse(FIG8)).explore()
        terminal = [s for s in result.states if not result.successors_of(s)]
        assert len(terminal) == 2


class TestFig9ErrorEvent:
    """Fig. 9: a task either proceeds normally or signals sys.Err."""

    def test_error_and_normal_paths_exist(self):
        lts = LTS(parse(FIG9))
        flat = [tuple(format_label(l) for l in t) for t in lts.traces(max_length=20)]
        assert any("sys.Err" in t and "P.T1" in t for t in flat)
        assert any("sys.T2" in t and "P.T2" in t for t in flat)

    def test_error_path_excludes_normal_task(self):
        lts = LTS(parse(FIG9))
        for trace in lts.traces(max_length=20):
            labels = [format_label(l) for l in trace]
            if "sys.Err" in labels:
                assert "P.T2" not in labels


class TestFig10MessageFlowCycle:
    """Fig. 10: two pools ping-pong messages in an infinite cycle."""

    def test_cycle_closes_into_six_states(self):
        result = LTS(parse(FIG10)).explore(max_states=100)
        assert result.complete
        assert result.state_count == 6

    def test_labels_match_paper(self):
        result = LTS(parse(FIG10)).explore(max_states=100)
        assert comm_labels(result) == {
            "P1.T1",
            "P1.E1",
            "P2.S3 (msg1)",
            "P2.T2",
            "P2.E2",
            "P1.S2 (msg2)",
        }

    def test_every_state_has_exactly_one_successor(self):
        result = LTS(parse(FIG10)).explore(max_states=100)
        for state in result.states:
            assert len(result.successors_of(state)) == 1


class TestExploration:
    def test_max_states_truncates(self):
        result = LTS(parse(FIG8)).explore(max_states=3)
        assert not result.complete
        assert result.state_count == 3

    def test_initial_state_is_canonical(self):
        lts = LTS(parse("P.a!<> | 0 | (P.b!<> | 0)"))
        assert str(lts.initial) == str(LTS(parse("P.b!<> | P.a!<>")).initial)

    def test_successors_are_memoized(self):
        lts = LTS(parse(FIG7))
        first = lts.successors(lts.initial)
        second = lts.successors(lts.initial)
        assert first is second

    def test_open_mode_exposes_partial_labels(self):
        lts = LTS(parse("P.T!<>"), closed=False)
        ((label, _),) = lts.successors(lts.initial)
        assert format_label(label) == "(P.T) <| <>"

    def test_closed_mode_hides_partial_labels(self):
        lts = LTS(parse("P.T!<>"))
        assert lts.successors(lts.initial) == ()


class TestTraces:
    def test_trace_count_fig8(self):
        stats = count_traces(LTS(parse(FIG8)), max_length=20)
        assert stats.trace_count == 2  # one per exclusive branch
        assert not stats.truncated

    def test_max_traces_truncation(self):
        stats = count_traces(LTS(parse(FIG10)), max_length=30, max_traces=1)
        assert stats.trace_count == 1

    def test_label_filter_projects_traces(self):
        lts = LTS(parse(FIG8))
        observable = lambda l: isinstance(l, CommLabel) and str(
            l.endpoint.partner
        ) == "P"
        traces = {
            tuple(format_label(l) for l in t)
            for t in lts.traces(max_length=20, label_filter=observable)
        }
        assert traces == {
            ("P.T", "P.G", "P.T1", "P.E1"),
            ("P.T", "P.G", "P.T2", "P.E2"),
        }


class TestReachableBy:
    def test_follows_exact_label_sequence(self):
        lts = LTS(parse(FIG7))
        labels = [CommLabel(endpoint("P", "T"), ())]
        states = lts.reachable_by(labels)
        assert len(states) == 1

    def test_unreachable_sequence_gives_empty(self):
        lts = LTS(parse(FIG7))
        labels = [CommLabel(endpoint("P", "E"), ())]
        assert lts.reachable_by(labels) == []
