"""Tests for the multi-line pretty printer and label formatting."""

import pytest

from repro.cows import (
    InvokeLabel,
    KillDone,
    KillSignal,
    RequestLabel,
    endpoint,
    format_label,
    killer,
    parse,
    pretty,
)
from repro.cows.labels import CommLabel
from repro.cows.names import Name


class TestPretty:
    @pytest.mark.parametrize(
        "source",
        [
            "0",
            "P.T!<>",
            "P.T?<>.P.E!<>",
            "kill(k)",
            "{|P.T!<>|}",
            "*(P.T?<>)",
            "P.a!<> | P.b!<>",
            "p.o1?<> + p.o2?<>",
            "[ +k, sys ] ( sys.a!<> | kill(k) )",
            "[?z] P1.S2?<?z>.P1.T1!<>",
        ],
    )
    def test_pretty_round_trips_through_parser(self, source):
        term = parse(source)
        rendered = pretty(term)
        # Multi-line layout must still be parseable and mean the same.
        assert parse(rendered) == term

    def test_indentation_increases_with_depth(self):
        term = parse("P.a?<>.P.b?<>.P.c!<>")
        lines = pretty(term).splitlines()
        indents = [len(line) - len(line.lstrip()) for line in lines]
        assert indents == sorted(indents)

    def test_marker_rendering(self):
        from repro.cows import Invoke, TaskMarker

        marker = TaskMarker(Name("GP"), Name("T01"), Invoke(endpoint("GP", "G1"), ()))
        rendered = pretty(marker)
        assert "<GP.T01>" in rendered


class TestFormatLabel:
    def test_pure_synchronization(self):
        assert format_label(CommLabel(endpoint("GP", "T01"), ())) == "GP.T01"

    def test_value_carrying_communication(self):
        label = CommLabel(endpoint("P2", "S3"), (Name("msg1"),))
        assert format_label(label) == "P2.S3 (msg1)"

    def test_partial_labels(self):
        assert "<|" in format_label(InvokeLabel(endpoint("P", "o"), ()))
        assert "|>" in format_label(RequestLabel(endpoint("P", "o"), ()))

    def test_kill_labels(self):
        assert format_label(KillSignal(killer("k"))) == "+k"
        assert format_label(KillDone()) == "+"

    def test_rejects_non_labels(self):
        with pytest.raises(TypeError):
            format_label("not a label")  # type: ignore[arg-type]
