"""Unit tests for the COWS operational semantics: each rule in isolation,
kill priority, the halt function, pattern matching, scope crossing."""

from repro.cows import (
    CommLabel,
    Invoke,
    InvokeLabel,
    Kill,
    KillDone,
    KillSignal,
    Nil,
    Protect,
    Replicate,
    Request,
    RequestLabel,
    Scope,
    TaskMarker,
    enabled,
    endpoint,
    halt,
    killer,
    match,
    name,
    normalize,
    parallel,
    transitions,
    var,
)
from repro.cows.terms import Choice


def invoke(p, o, *params):
    return Invoke(endpoint(p, o), tuple(params))


def request(p, o, *params, cont=None):
    return Request(endpoint(p, o), tuple(params), cont if cont is not None else Nil())


class TestMatch:
    def test_ground_equal_names(self):
        assert match((name("a"),), (name("a"),)) == {}

    def test_ground_unequal_names_fail(self):
        assert match((name("a"),), (name("b"),)) is None

    def test_variable_binds_value(self):
        assert match((var("x"),), (name("v"),)) == {var("x"): name("v")}

    def test_arity_mismatch_fails(self):
        assert match((var("x"),), (name("a"), name("b"))) is None

    def test_repeated_variable_must_match_same_value(self):
        assert match((var("x"), var("x")), (name("a"), name("a"))) == {
            var("x"): name("a")
        }
        assert match((var("x"), var("x")), (name("a"), name("b"))) is None

    def test_empty_patterns(self):
        assert match((), ()) == {}


class TestBasicRules:
    def test_nil_has_no_transitions(self):
        assert transitions(Nil()) == ()

    def test_ground_invoke_emits_invoke_label(self):
        term = invoke("P", "o", name("v"))
        ((label, target),) = transitions(term)
        assert label == InvokeLabel(endpoint("P", "o"), (name("v"),))
        assert target == Nil()

    def test_non_ground_invoke_is_stuck(self):
        assert transitions(invoke("P", "o", var("x"))) == ()

    def test_request_emits_request_label(self):
        cont = invoke("P", "next")
        term = request("P", "o", cont=cont)
        ((label, target),) = transitions(term)
        assert label == RequestLabel(endpoint("P", "o"), ())
        assert target == cont

    def test_kill_emits_kill_signal(self):
        ((label, target),) = transitions(Kill(killer("k")))
        assert label == KillSignal(killer("k"))
        assert target == Nil()

    def test_choice_offers_all_branches(self):
        term = Choice((request("p", "o1"), request("p", "o2")))
        labels = {label for label, _ in transitions(term)}
        assert labels == {
            RequestLabel(endpoint("p", "o1"), ()),
            RequestLabel(endpoint("p", "o2"), ()),
        }

    def test_protect_is_transparent_but_kept(self):
        term = Protect(invoke("P", "o"))
        ((label, target),) = transitions(term)
        assert isinstance(label, InvokeLabel)
        assert target == Protect(Nil())

    def test_marker_is_transparent_and_dropped(self):
        term = TaskMarker(name("GP"), name("T01"), invoke("GP", "G1"))
        ((label, target),) = transitions(term)
        assert isinstance(label, InvokeLabel)
        assert target == Nil()  # the marker evaporated with the move


class TestCommunication:
    def test_synchronization_without_values(self):
        term = parallel(invoke("P", "T"), request("P", "T", cont=invoke("P", "E")))
        comms = [t for t in transitions(term) if isinstance(t[0], CommLabel)]
        assert len(comms) == 1
        label, target = comms[0]
        assert label == CommLabel(endpoint("P", "T"), ())
        assert normalize(target) == invoke("P", "E")

    def test_value_passing_substitutes_continuation(self):
        sender = invoke("P", "S", name("msg"))
        receiver = Scope(
            var("z"),
            request("P", "S", var("z"), cont=invoke("P", "out", var("z"))),
        )
        term = parallel(sender, receiver)
        comms = [t for t in transitions(term) if isinstance(t[0], CommLabel)]
        assert len(comms) == 1
        label, target = comms[0]
        assert label.values == (name("msg"),)
        assert normalize(target) == invoke("P", "out", name("msg"))

    def test_mismatched_endpoint_does_not_sync(self):
        term = parallel(invoke("P", "a"), request("P", "b"))
        assert not any(isinstance(t[0], CommLabel) for t in transitions(term))

    def test_mismatched_values_do_not_sync(self):
        term = parallel(invoke("P", "o", name("v1")), request("P", "o", name("v2")))
        assert not any(isinstance(t[0], CommLabel) for t in transitions(term))

    def test_two_competing_requests_give_two_comms(self):
        term = parallel(
            invoke("P", "o"),
            request("P", "o", cont=invoke("x", "a")),
            request("P", "o", cont=invoke("x", "b")),
        )
        comms = [t for t in transitions(term) if isinstance(t[0], CommLabel)]
        targets = {normalize(t) for _, t in comms}
        assert len(comms) == 2
        assert targets == {
            normalize(parallel(invoke("x", "a"), request("P", "o", cont=invoke("x", "b")))),
            normalize(parallel(invoke("x", "b"), request("P", "o", cont=invoke("x", "a")))),
        }


class TestScopeRules:
    def test_private_name_blocks_partial_labels(self):
        term = Scope(name("sys"), invoke("sys", "o"))
        assert transitions(term) == ()

    def test_private_name_lets_internal_comm_through(self):
        body = parallel(invoke("sys", "o"), request("sys", "o", cont=invoke("P", "next")))
        term = Scope(name("sys"), body)
        comms = [t for t in transitions(term) if isinstance(t[0], CommLabel)]
        assert len(comms) == 1
        assert comms[0][0] == CommLabel(endpoint("sys", "o"), ())

    def test_private_name_blocks_value_mention(self):
        term = Scope(name("secret"), invoke("P", "o", name("secret")))
        assert transitions(term) == ()

    def test_unrelated_label_passes_name_scope(self):
        term = Scope(name("sys"), invoke("P", "o"))
        ((label, target),) = transitions(term)
        assert isinstance(label, InvokeLabel)
        assert target == Scope(name("sys"), Nil())

    def test_killer_scope_converts_signal_to_done(self):
        term = Scope(killer("k"), Kill(killer("k")))
        ((label, target),) = transitions(term)
        assert label == KillDone()
        assert normalize(target) == Nil()

    def test_killer_scope_passes_other_kill_signals(self):
        term = Scope(killer("k"), Kill(killer("j")))
        ((label, _),) = transitions(term)
        assert label == KillSignal(killer("j"))

    def test_variable_scope_opens_for_matching_request(self):
        term = Scope(var("z"), request("P", "o", var("z")))
        ((label, target),) = transitions(term)
        assert label == RequestLabel(endpoint("P", "o"), (var("z"),))
        assert target == Nil()  # binder dropped so the comm can substitute


class TestKillSemantics:
    def test_halt_kills_unprotected(self):
        term = parallel(invoke("P", "o"), request("P", "o"), Kill(killer("k")))
        assert normalize(halt(term)) == Nil()

    def test_halt_preserves_protected(self):
        protected = Protect(invoke("P", "o"))
        term = parallel(invoke("Q", "x"), protected)
        assert normalize(halt(term)) == protected

    def test_halt_kills_replication(self):
        assert halt(Replicate(request("P", "o"))) == Nil()

    def test_halt_drops_marker_keeps_protected_inside(self):
        protected = Protect(invoke("P", "o"))
        term = TaskMarker(name("GP"), name("T01"), parallel(protected, invoke("a", "b")))
        assert normalize(halt(term)) == protected

    def test_kill_signal_halts_siblings(self):
        term = parallel(Kill(killer("k")), invoke("P", "o"), Protect(invoke("Q", "x")))
        kills = [t for t in transitions(term) if isinstance(t[0], KillSignal)]
        assert len(kills) == 1
        _, target = kills[0]
        assert normalize(target) == Protect(invoke("Q", "x"))

    def test_kill_priority_suppresses_communication(self):
        term = Scope(
            killer("k"),
            parallel(
                Kill(killer("k")),
                invoke("P", "o"),
                request("P", "o", cont=invoke("P", "next")),
            ),
        )
        labels = [label for label, _ in enabled(term)]
        assert labels == [KillDone()]

    def test_exclusive_gateway_kills_losing_branch(self):
        # After one sys branch of Fig. 8 wins, the kill removes the other
        # branch entirely: no state ever executes both tasks.
        k = killer("k")
        sys = name("sys")
        gateway_body = parallel(
            invoke("sys", "T1"),
            invoke("sys", "T2"),
            request("sys", "T1", cont=parallel(Kill(k), Protect(invoke("P", "T1")))),
            request("sys", "T2", cont=parallel(Kill(k), Protect(invoke("P", "T2")))),
        )
        term = Scope(k, Scope(sys, gateway_body))
        first = [t for t in enabled(term) if isinstance(t[0], CommLabel)]
        assert {str(label) for label, _ in first} == {"sys.T1", "sys.T2"}
        # Take the sys.T1 branch, then the forced kill.
        _, after_choice = next(t for t in first if str(t[0]) == "sys.T1")
        (kill_transition,) = enabled(normalize(after_choice))
        assert kill_transition[0] == KillDone()
        survivor = normalize(kill_transition[1])
        ((label, _),) = enabled(survivor)
        assert str(label) == "(P.T1) <| <>"


class TestReplication:
    def test_replication_spawns_copy(self):
        term = Replicate(request("P", "o", cont=invoke("P", "next")))
        ((label, target),) = transitions(term)
        assert isinstance(label, RequestLabel)
        normal = normalize(target)
        assert normal == normalize(parallel(term, invoke("P", "next")))

    def test_replication_allows_repeated_triggering(self):
        service = Replicate(request("P", "T", cont=invoke("P", "E")))
        term = parallel(invoke("P", "T"), invoke("P", "T"), service)
        comms = [t for t in transitions(term) if isinstance(t[0], CommLabel)]
        assert len(comms) == 2  # one per pending token

    def test_cross_copy_synchronization(self):
        body = parallel(invoke("P", "o"), request("P", "o", cont=invoke("P", "done")))
        term = Replicate(body)
        comms = [t for t in transitions(term) if isinstance(t[0], CommLabel)]
        # Internal comm of one copy plus the cross-copy comm.
        assert len(comms) >= 2
