"""Unit tests for COWS identifiers (names, variables, killer labels, endpoints)."""

import pytest

from repro.cows import Endpoint, KillerLabel, Name, Variable, endpoint, killer, name, var


class TestName:
    def test_equality_is_by_value(self):
        assert Name("GP") == Name("GP")
        assert Name("GP") != Name("C")

    def test_hashable_and_usable_in_sets(self):
        assert len({Name("a"), Name("a"), Name("b")}) == 2

    def test_str(self):
        assert str(Name("T01")) == "T01"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Name("")

    def test_disjoint_from_variables_and_killers(self):
        assert Name("x") != Variable("x")
        assert Name("k") != KillerLabel("k")
        assert Variable("k") != KillerLabel("k")


class TestVariable:
    def test_str_has_question_mark(self):
        assert str(Variable("z")) == "?z"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Variable("")


class TestKillerLabel:
    def test_str_has_plus(self):
        assert str(KillerLabel("k")) == "+k"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KillerLabel("")


class TestEndpoint:
    def test_str_uses_dot(self):
        assert str(Endpoint(Name("GP"), Name("T01"))) == "GP.T01"

    def test_equality(self):
        assert endpoint("P", "o") == Endpoint(Name("P"), Name("o"))
        assert endpoint("P", "o") != endpoint("P", "o2")
        assert endpoint("P", "o") != endpoint("Q", "o")

    def test_mentions(self):
        ep = endpoint("P", "o")
        assert ep.mentions(Name("P"))
        assert ep.mentions(Name("o"))
        assert not ep.mentions(Name("x"))


class TestShorthands:
    def test_name_var_killer(self):
        assert name("a") == Name("a")
        assert var("x") == Variable("x")
        assert killer("k") == KillerLabel("k")

    def test_endpoint_accepts_names_and_strings(self):
        assert endpoint(Name("P"), "o") == endpoint("P", Name("o"))
