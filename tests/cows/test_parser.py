"""Unit tests for the textual COWS syntax."""

import pytest

from repro.cows import (
    Choice,
    Invoke,
    Kill,
    Nil,
    Parallel,
    Protect,
    Replicate,
    Request,
    Scope,
    endpoint,
    killer,
    name,
    normalize,
    parse,
    var,
)
from repro.errors import CowsSyntaxError


class TestBasicForms:
    def test_nil(self):
        assert parse("0") == Nil()

    def test_invoke_no_args(self):
        assert parse("P.T!<>") == Invoke(endpoint("P", "T"), ())

    def test_invoke_with_args(self):
        assert parse("P2.S3!<msg1>") == Invoke(endpoint("P2", "S3"), (name("msg1"),))

    def test_request_with_continuation(self):
        term = parse("P.T?<>.P.E!<>")
        assert term == Request(endpoint("P", "T"), (), Invoke(endpoint("P", "E"), ()))

    def test_request_without_continuation(self):
        assert parse("P.E?<>") == Request(endpoint("P", "E"), (), Nil())

    def test_request_with_variable_pattern(self):
        term = parse("[?z] P1.S2?<?z>.P1.T1!<>")
        assert isinstance(term, Scope)
        assert term.binder == var("z")
        assert term.body.params == (var("z"),)

    def test_kill(self):
        assert parse("kill(k)") == Kill(killer("k"))

    def test_protect(self):
        assert parse("{| P.T1!<> |}") == Protect(Invoke(endpoint("P", "T1"), ()))

    def test_replication(self):
        term = parse("*(P.T?<>)")
        assert isinstance(term, Replicate)
        assert isinstance(term.body, Request)

    def test_replication_binds_tighter_than_parallel(self):
        term = parse("* P.T?<> | P.T!<>")
        assert isinstance(term, Parallel)
        kinds = {type(c) for c in term.components}
        assert kinds == {Replicate, Invoke}


class TestCompositeForms:
    def test_parallel(self):
        term = parse("P.T!<> | P.T?<>")
        assert isinstance(term, Parallel)
        assert len(term.components) == 2

    def test_choice(self):
        term = parse("p.o1?<> + p.o2?<>")
        assert isinstance(term, Choice)
        assert len(term.branches) == 2

    def test_choice_of_non_requests_rejected(self):
        with pytest.raises(CowsSyntaxError):
            parse("p.o!<> + p.o2?<>")

    def test_scope_multiple_binders(self):
        term = parse("[ +k, sys ] ( kill(k) | sys.a!<> )")
        assert isinstance(term, Scope)
        assert term.binder == killer("k")
        assert isinstance(term.body, Scope)
        assert term.body.binder == name("sys")

    def test_parentheses_group(self):
        term = parse("(P.a!<> | P.b!<>) | P.c!<>")
        assert isinstance(term, Parallel)
        # parallel() flattens, so all three at the same level after parse
        assert len(normalize(term).components) == 3

    def test_fig8_gateway_parses(self):
        term = parse(
            "P.G?<>. [ +k, sys ] ( sys.T1!<> | sys.T2!<>"
            " | sys.T1?<>.(kill(k) | {| P.T1!<> |})"
            " | sys.T2?<>.(kill(k) | {| P.T2!<> |}) )"
        )
        assert isinstance(term, Request)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "0",
            "P.T!<>",
            "P2.S3!<msg1>",
            "P.T?<>.P.E!<>",
            "kill(k)",
            "{|P.T1!<>|}",
            "*(P.T?<>)",
            "P.T!<> | P.T?<>",
            "[sys](sys.a!<> | sys.a?<>)",
            "[?z](P1.S2?<?z>.P1.T1!<>)",
        ],
    )
    def test_parse_str_parse_fixpoint(self, source):
        term = parse(source)
        assert parse(str(term)) == term


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(CowsSyntaxError):
            parse("P.T!<>;")

    def test_truncated_input(self):
        with pytest.raises(CowsSyntaxError):
            parse("P.T!")

    def test_trailing_input(self):
        with pytest.raises(CowsSyntaxError):
            parse("P.T!<> P.E!<>")

    def test_missing_operation(self):
        with pytest.raises(CowsSyntaxError):
            parse("P.!<>")

    def test_error_carries_position(self):
        try:
            parse("P.T!<> @")
        except CowsSyntaxError as error:
            assert error.position == 7
        else:
            pytest.fail("expected CowsSyntaxError")
