"""Unit tests for structural normalization (canonical forms)."""

from repro.cows import (
    Choice,
    Invoke,
    Kill,
    Nil,
    Parallel,
    Protect,
    Replicate,
    Request,
    Scope,
    TaskMarker,
    endpoint,
    killer,
    name,
    normalize,
    var,
)


def invoke(p, o):
    return Invoke(endpoint(p, o), ())


def request(p, o, cont=None):
    return Request(endpoint(p, o), (), cont if cont is not None else Nil())


class TestParallelNormalization:
    def test_drops_nil_components(self):
        term = Parallel((invoke("a", "b"), Nil(), Nil()))
        assert normalize(term) == invoke("a", "b")

    def test_all_nil_collapses_to_nil(self):
        assert normalize(Parallel((Nil(), Nil()))) == Nil()

    def test_flattens_nested_parallel(self):
        inner = Parallel((invoke("a", "b"), invoke("c", "d")))
        outer = Parallel((inner, invoke("e", "f")))
        result = normalize(outer)
        assert isinstance(result, Parallel)
        assert len(result.components) == 3

    def test_sorts_components_commutativity(self):
        t1 = normalize(Parallel((invoke("a", "b"), invoke("c", "d"))))
        t2 = normalize(Parallel((invoke("c", "d"), invoke("a", "b"))))
        assert t1 == t2

    def test_associativity(self):
        a, b, c = invoke("a", "x"), invoke("b", "x"), invoke("c", "x")
        left = Parallel((Parallel((a, b)), c))
        right = Parallel((a, Parallel((b, c))))
        assert normalize(left) == normalize(right)


class TestScopeNormalization:
    def test_unused_binder_garbage_collected(self):
        term = Scope(name("sys"), invoke("a", "b"))
        assert normalize(term) == invoke("a", "b")

    def test_used_binder_kept(self):
        term = Scope(name("sys"), invoke("sys", "b"))
        assert normalize(term) == term

    def test_unused_killer_label_collected(self):
        term = Scope(killer("k"), invoke("a", "b"))
        assert normalize(term) == invoke("a", "b")

    def test_used_killer_label_kept(self):
        term = Scope(killer("k"), Kill(killer("k")))
        assert normalize(term) == term

    def test_scope_of_nil_is_nil(self):
        assert normalize(Scope(name("sys"), Nil())) == Nil()

    def test_unused_variable_collected(self):
        term = Scope(var("z"), invoke("a", "b"))
        assert normalize(term) == invoke("a", "b")


class TestOtherNormalizations:
    def test_protect_of_nil(self):
        assert normalize(Protect(Nil())) == Nil()

    def test_nested_protect_collapses(self):
        inner = Protect(invoke("a", "b"))
        assert normalize(Protect(inner)) == inner

    def test_replicate_of_nil(self):
        assert normalize(Replicate(Nil())) == Nil()

    def test_nested_replicate_collapses(self):
        inner = Replicate(request("a", "b"))
        assert normalize(Replicate(inner)) == inner

    def test_marker_of_nil_vanishes(self):
        term = TaskMarker(name("GP"), name("T01"), Nil())
        assert normalize(term) == Nil()

    def test_choice_duplicates_removed(self):
        r = request("p", "o")
        assert normalize(Choice((r, r))) == r

    def test_choice_branches_sorted(self):
        r1, r2 = request("p", "o1"), request("p", "o2")
        assert normalize(Choice((r1, r2))) == normalize(Choice((r2, r1)))

    def test_normalizes_under_request_continuation(self):
        cont = Parallel((invoke("a", "b"), Nil()))
        term = request("p", "o", cont=cont)
        assert normalize(term) == request("p", "o", cont=invoke("a", "b"))


class TestIdempotence:
    def test_normalize_is_idempotent_on_samples(self):
        samples = [
            Parallel((Nil(), Parallel((invoke("a", "b"), Nil())))),
            Scope(name("s"), Scope(killer("k"), Kill(killer("k")))),
            Protect(Protect(Protect(invoke("x", "y")))),
            Replicate(Parallel((request("p", "o"), Nil()))),
            TaskMarker(name("GP"), name("T01"), Parallel((Nil(),))),
        ]
        for term in samples:
            once = normalize(term)
            assert normalize(once) == once
