"""Tests for XES import/export."""

import pytest

from repro.audit import AuditTrail
from repro.audit.xes import XesError, export_xes, import_xes
from repro.bpmn import encode
from repro.core import ComplianceChecker
from repro.scenarios import (
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
)


class TestRoundTrip:
    def test_paper_trail_round_trips(self):
        original = paper_audit_trail()
        rebuilt = import_xes(export_xes(original))
        assert len(rebuilt) == len(original)
        assert rebuilt.cases() == original.cases()
        for left, right in zip(original, rebuilt):
            assert (left.user, left.role, left.action) == (
                right.user, right.role, right.action,
            )
            assert left.obj == right.obj
            assert (left.task, left.case) == (right.task, right.case)
            assert left.timestamp == right.timestamp
            assert left.status == right.status

    def test_imported_trail_replays_identically(self):
        checker = ComplianceChecker(
            encode(healthcare_treatment_process()), role_hierarchy()
        )
        rebuilt = import_xes(export_xes(paper_audit_trail()))
        assert checker.check(rebuilt.for_case("HT-1")).compliant
        assert not checker.check(rebuilt.for_case("HT-11")).compliant

    def test_empty_trail(self):
        assert len(import_xes(export_xes(AuditTrail([])))) == 0


class TestDocumentShape:
    def test_one_trace_per_case(self):
        document = export_xes(paper_audit_trail())
        assert document.count("<trace>") == len(paper_audit_trail().cases())

    def test_xml_declaration_present(self):
        assert export_xes(paper_audit_trail()).startswith("<?xml")

    def test_objectless_entries_have_no_object_attribute(self):
        document = export_xes(paper_audit_trail())
        # the one cancel entry exports without purpose:object
        rebuilt = import_xes(document)
        cancels = [e for e in rebuilt if e.action == "cancel"]
        assert len(cancels) == 1
        assert cancels[0].obj is None


class TestPlainXesImport:
    """Task-level XES without the purpose extension still imports."""

    PLAIN = """<?xml version='1.0'?>
    <log xes.version="1.0">
      <trace>
        <string key="concept:name" value="HT-5"/>
        <event>
          <string key="concept:name" value="T01"/>
          <string key="org:resource" value="John"/>
          <string key="org:role" value="GP"/>
          <date key="time:timestamp" value="2010-03-12T12:10:00"/>
        </event>
      </trace>
    </log>
    """

    def test_defaults_applied(self):
        trail = import_xes(self.PLAIN)
        entry = trail[0]
        assert entry.task == "T01"
        assert entry.case == "HT-5"
        assert entry.action == "execute"
        assert entry.obj is None
        assert entry.succeeded

    def test_plain_log_is_replayable(self):
        checker = ComplianceChecker(
            encode(healthcare_treatment_process()), role_hierarchy()
        )
        assert checker.check(import_xes(self.PLAIN)).compliant

    def test_timezone_aware_timestamps_normalized(self):
        document = self.PLAIN.replace(
            "2010-03-12T12:10:00", "2010-03-12T12:10:00+02:00"
        )
        trail = import_xes(document)
        assert trail[0].timestamp.tzinfo is None


class TestErrors:
    def test_invalid_xml(self):
        with pytest.raises(XesError):
            import_xes("<log><trace>")

    def test_wrong_root(self):
        with pytest.raises(XesError):
            import_xes("<notalog/>")

    def test_event_missing_task(self):
        document = """<log><trace>
            <string key="concept:name" value="C-1"/>
            <event><date key="time:timestamp" value="2010-01-01T00:00:00"/></event>
        </trace></log>"""
        with pytest.raises(XesError):
            import_xes(document)

    def test_bad_timestamp(self):
        document = """<log><trace>
            <string key="concept:name" value="C-1"/>
            <event>
              <string key="concept:name" value="T01"/>
              <date key="time:timestamp" value="yesterday"/>
            </event>
        </trace></log>"""
        with pytest.raises(XesError):
            import_xes(document)

    def test_unnamed_trace_gets_index_case(self):
        document = """<log><trace>
            <event>
              <string key="concept:name" value="T01"/>
              <date key="time:timestamp" value="2010-01-01T00:00:00"/>
            </event>
        </trace></log>"""
        trail = import_xes(document)
        assert trail[0].case == "trace-0"


class TestQuarantine:
    BAD_TS = """<log><trace>
        <string key="concept:name" value="C-1"/>
        <event>
          <string key="concept:name" value="T01"/>
          <date key="time:timestamp" value="2010-01-01T00:00:00"/>
        </event>
        <event>
          <string key="concept:name" value="T02"/>
          <date key="time:timestamp" value="yesterday"/>
        </event>
        <event>
          <string key="concept:name" value="T03"/>
          <date key="time:timestamp" value="2010-01-01T00:02:00"/>
        </event>
    </trace></log>"""

    def test_bad_status_raises_xes_error(self):
        document = """<log><trace>
            <string key="concept:name" value="C-1"/>
            <event>
              <string key="concept:name" value="T01"/>
              <date key="time:timestamp" value="2010-01-01T00:00:00"/>
              <string key="purpose:status" value="maybe"/>
            </event>
        </trace></log>"""
        with pytest.raises(XesError):
            import_xes(document)

    def test_corrupt_event_quarantined_not_fatal(self):
        from repro.core.resilience import Quarantine

        quarantine = Quarantine()
        trail = import_xes(self.BAD_TS, quarantine=quarantine)
        assert [e.task for e in trail] == ["T01", "T03"]
        assert len(quarantine) == 1
        record = quarantine.entries[0]
        assert record.source == "xes"
        assert record.position == 1  # the second event of the document
        assert "yesterday" in record.reason or "yesterday" in record.raw

    def test_document_level_errors_still_raise_with_quarantine(self):
        from repro.core.resilience import Quarantine

        with pytest.raises(XesError):
            import_xes("<notalog/>", quarantine=Quarantine())
        with pytest.raises(XesError):
            import_xes("<log><trace>", quarantine=Quarantine())

    def test_quarantine_free_import_unchanged(self):
        with pytest.raises(XesError):
            import_xes(self.BAD_TS)
