"""Tests for audit-log retention (prefix purge with chain re-anchoring)."""

from datetime import datetime

import pytest

from repro.audit import AuditStore, GENESIS
from repro.errors import IntegrityError
from repro.scenarios import paper_audit_trail


@pytest.fixture
def store():
    with AuditStore(":memory:") as s:
        s.append_many(paper_audit_trail())
        yield s


class TestPurge:
    def test_purge_removes_old_prefix(self, store):
        before = len(store)
        purged = store.purge_before(datetime(2010, 4, 1))
        assert purged > 0
        assert len(store) == before - purged
        remaining = store.query()
        assert all(e.timestamp >= datetime(2010, 4, 1) for e in remaining)

    def test_chain_still_verifies_after_purge(self, store):
        store.purge_before(datetime(2010, 4, 1))
        store.verify_integrity()
        assert store.is_intact()

    def test_appends_continue_after_purge(self, store):
        store.purge_before(datetime(2010, 4, 1))
        extra = paper_audit_trail()[0].shifted(
            datetime(2011, 1, 1) - paper_audit_trail()[0].timestamp
        )
        store.append(extra)
        store.verify_integrity()

    def test_tamper_after_purge_still_detected(self, store):
        store.purge_before(datetime(2010, 4, 1))
        first_remaining = store._connection.execute(
            "SELECT seq FROM audit_log ORDER BY seq LIMIT 1"
        ).fetchone()[0]
        store.tamper(first_remaining, user="Mallory")
        with pytest.raises(IntegrityError):
            store.verify_integrity()

    def test_purge_everything(self, store):
        purged = store.purge_before(datetime(2030, 1, 1))
        assert purged == 28
        assert len(store) == 0
        store.verify_integrity()  # empty but anchored: fine

    def test_purge_nothing(self, store):
        assert store.purge_before(datetime(2000, 1, 1)) == 0
        assert len(store) == 28

    def test_repeated_purges_accumulate(self, store):
        first = store.purge_before(datetime(2010, 3, 15))
        second = store.purge_before(datetime(2010, 4, 1))
        info = store.retention_info()
        assert info["purged_entries"] == first + second
        store.verify_integrity()

    def test_interleaved_young_entry_blocks_purge(self):
        """Prefix semantics: an old entry logged *after* a young one is
        retained (the chain cannot be holed)."""
        from repro.audit import LogEntry, Status

        with AuditStore(":memory:") as store:
            young = LogEntry.at(
                "u", "r", "read", "[A]EPR", "T1", "C-1", "202006010900"
            )
            old = LogEntry.at(
                "u", "r", "read", "[A]EPR", "T1", "C-2", "201001010900"
            )
            store.append(young)
            store.append(old)  # logged later, but timestamped older
            purged = store.purge_before(datetime(2015, 1, 1))
            assert purged == 0  # the young head blocks the prefix
            assert len(store) == 2


class TestRetentionInfo:
    def test_fresh_store_unanchored(self):
        with AuditStore(":memory:") as store:
            info = store.retention_info()
            assert info["anchored"] is False
            assert info["anchor_hash"] == GENESIS
            assert info["purged_entries"] == 0

    def test_anchored_after_purge(self, store):
        store.purge_before(datetime(2010, 4, 1))
        info = store.retention_info()
        assert info["anchored"] is True
        assert info["anchor_hash"] != GENESIS
        assert info["purged_upto"] == datetime(2010, 4, 1).isoformat()
        assert info["retained_entries"] == len(store)
