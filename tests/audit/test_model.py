"""Tests for log entries and audit trails (Definitions 4-5)."""

from datetime import datetime, timedelta

import pytest

from repro.audit import (
    AuditTrail,
    LogEntry,
    Status,
    format_timestamp,
    parse_timestamp,
)
from repro.errors import TrailOrderError
from repro.policy import ObjectRef


def entry(task="T01", case="HT-1", ts="201003121210", status=Status.SUCCESS, **kw):
    defaults = dict(
        user="John", role="GP", action="read", obj="[Jane]EPR/Clinical"
    )
    defaults.update(kw)
    return LogEntry.at(
        defaults["user"], defaults["role"], defaults["action"],
        defaults["obj"], task, case, ts, status,
    )


class TestTimestamps:
    def test_paper_format_round_trip(self):
        when = parse_timestamp("201003121210")
        assert when == datetime(2010, 3, 12, 12, 10)
        assert format_timestamp(when) == "201003121210"

    def test_invalid_format_rejected(self):
        with pytest.raises(ValueError):
            parse_timestamp("2010-03-12")


class TestLogEntry:
    def test_status_helpers(self):
        assert entry().succeeded
        assert entry(status=Status.FAILURE).failed

    def test_objectless_entry(self):
        cancel = entry(obj=None, status=Status.FAILURE, action="cancel")
        assert cancel.obj is None
        assert "N/A" in str(cancel)

    def test_as_access_request(self):
        request = entry().as_access_request()
        assert request is not None
        assert request.user == "John"
        assert request.task == "T01"
        assert request.case == "HT-1"
        assert request.obj == ObjectRef.parse("[Jane]EPR/Clinical")

    def test_objectless_entry_has_no_access_request(self):
        assert entry(obj=None).as_access_request() is None

    def test_shifted(self):
        moved = entry().shifted(timedelta(hours=2))
        assert moved.timestamp == entry().timestamp + timedelta(hours=2)
        assert moved.task == entry().task

    def test_str_matches_figure_layout(self):
        text = str(entry())
        assert text.startswith("John GP read [Jane]EPR/Clinical T01 HT-1 ")
        assert text.endswith("201003121210 success")


class TestAuditTrailOrdering:
    def test_constructor_sorts_by_timestamp(self):
        late = entry(ts="201003121220")
        early = entry(ts="201003121210")
        trail = AuditTrail([late, early])
        assert trail[0] is early
        assert trail[1] is late

    def test_ties_keep_input_order(self):
        first = entry(task="T02", ts="201004151210")
        second = entry(task="T03", ts="201004151210")
        trail = AuditTrail([first, second])
        assert [e.task for e in trail] == ["T02", "T03"]

    def test_strict_mode_rejects_out_of_order(self):
        with pytest.raises(TrailOrderError):
            AuditTrail(
                [entry(ts="201003121220"), entry(ts="201003121210")],
                strict=True,
            )

    def test_strict_mode_accepts_ordered(self):
        trail = AuditTrail(
            [entry(ts="201003121210"), entry(ts="201003121220")], strict=True
        )
        assert len(trail) == 2


class TestProjections:
    @pytest.fixture
    def trail(self):
        return AuditTrail(
            [
                entry(task="T01", case="HT-1", ts="201003121210"),
                entry(task="T06", case="HT-2", ts="201003121211", user="Bob", role="Cardiologist"),
                entry(task="T02", case="HT-1", ts="201003121212"),
                entry(
                    task="T91",
                    case="CT-1",
                    ts="201003121213",
                    user="Bob",
                    role="Cardiologist",
                    obj="ClinicalTrial/Criteria",
                    action="write",
                ),
            ]
        )

    def test_for_case(self, trail):
        sub = trail.for_case("HT-1")
        assert [e.task for e in sub] == ["T01", "T02"]

    def test_for_user(self, trail):
        assert len(trail.for_user("Bob")) == 2

    def test_cases_in_first_appearance_order(self, trail):
        assert trail.cases() == ["HT-1", "HT-2", "CT-1"]

    def test_touching_subtree(self, trail):
        jane = ObjectRef.parse("[Jane]EPR")
        assert len(trail.touching(jane)) == 3

    def test_cases_touching(self, trail):
        jane = ObjectRef.parse("[Jane]EPR")
        assert trail.cases_touching(jane) == ["HT-1", "HT-2"]

    def test_filtered(self, trail):
        writes = trail.filtered(lambda e: e.action == "write")
        assert len(writes) == 1

    def test_task_sequence(self, trail):
        assert trail.task_sequence()[0] == ("GP", "T01", Status.SUCCESS)

    def test_merged_with(self, trail):
        merged = trail.merged_with(AuditTrail([entry(ts="201003121209")]))
        assert len(merged) == 5
        assert merged[0].timestamp == parse_timestamp("201003121209")

    def test_span(self, trail):
        start, end = trail.span()
        assert start == parse_timestamp("201003121210")
        assert end == parse_timestamp("201003121213")

    def test_empty_trail_span(self):
        assert AuditTrail([]).span() is None

    def test_equality(self, trail):
        assert trail == AuditTrail(trail.entries)
        assert trail != AuditTrail([])
