"""Tests for the SQLite audit store and its hash-chain integrity."""

from dataclasses import replace
from datetime import datetime, timedelta, timezone

import pytest

from repro.audit import AuditStore, AuditTrail, LogEntry, Status
from repro.errors import IntegrityError, MalformedEntryError
from repro.policy import ObjectRef
from repro.scenarios import paper_audit_trail


@pytest.fixture
def store():
    with AuditStore(":memory:") as s:
        yield s


@pytest.fixture
def loaded(store):
    store.append_many(paper_audit_trail())
    return store


class TestAppendAndQuery:
    def test_append_returns_increasing_seq(self, store):
        trail = paper_audit_trail()
        first = store.append(trail[0])
        second = store.append(trail[1])
        assert second == first + 1

    def test_len_counts_entries(self, loaded):
        assert len(loaded) == len(paper_audit_trail())

    def test_query_all_round_trips(self, loaded):
        assert loaded.query() == paper_audit_trail()

    def test_query_by_case(self, loaded):
        ht1 = loaded.query(case="HT-1")
        assert len(ht1) == 16
        assert all(e.case == "HT-1" for e in ht1)

    def test_query_by_user(self, loaded):
        bobs = loaded.query(user="Bob")
        assert all(e.user == "Bob" for e in bobs)
        assert len(bobs) == 15

    def test_query_by_object_subtree(self, loaded):
        jane = loaded.query(obj=ObjectRef.parse("[Jane]EPR"))
        assert all(str(e.obj).startswith("[Jane]EPR") for e in jane)
        assert len(jane) > 0

    def test_query_time_range(self, loaded):
        april = loaded.query(since=datetime(2010, 4, 1))
        assert all(e.timestamp >= datetime(2010, 4, 1) for e in april)
        march = loaded.query(until=datetime(2010, 3, 31, 23, 59))
        assert len(april) + len(march) == len(loaded.query())

    def test_combined_filters(self, loaded):
        result = loaded.query(case="HT-1", user="Charlie")
        assert len(result) == 3

    def test_cases_in_first_seen_order(self, loaded):
        cases = loaded.cases()
        assert cases[0] == "HT-1"
        assert "CT-1" in cases

    def test_cases_touching(self, loaded):
        cases = loaded.cases_touching(ObjectRef.parse("[Jane]EPR"))
        assert set(cases) == {"HT-1", "HT-11"}

    def test_objectless_entries_round_trip(self, store):
        cancel = LogEntry.at(
            "John", "GP", "cancel", None, "T02", "HT-1", "201003121216",
            Status.FAILURE,
        )
        store.append(cancel)
        fetched = store.query()[0]
        assert fetched.obj is None
        assert fetched.failed


class TestAtomicBatchAppend:
    """append_many is one transaction: a bad entry rolls everything back."""

    def test_failed_batch_leaves_no_partial_prefix(self, store):
        trail = paper_audit_trail()
        batch = list(trail[:5])
        # a stringly-typed status cannot be serialized (no .value)
        batch.insert(3, replace(trail[5], status="oops"))
        with pytest.raises(MalformedEntryError) as excinfo:
            store.append_many(batch)
        assert excinfo.value.position == 3
        # NOTHING was written — not even the three good leading entries
        assert len(store) == 0
        assert store.query() == AuditTrail([])
        store.verify_integrity()  # the (empty) chain is still coherent

    def test_failed_batch_preserves_earlier_appends(self, store):
        trail = paper_audit_trail()
        store.append_many(trail[:3])
        bad = [trail[3], replace(trail[4], status="oops")]
        with pytest.raises(MalformedEntryError):
            store.append_many(bad)
        assert len(store) == 3
        store.verify_integrity()
        # and the store is still appendable afterwards
        store.append(trail[3])
        assert len(store) == 4
        store.verify_integrity()

    def test_successful_batch_counts_entries(self, store):
        written = store.append_many(paper_audit_trail())
        assert written == len(paper_audit_trail()) == len(store)

    def test_duplicate_entry_in_one_batch_is_chained_not_merged(self, store):
        """The same entry twice is two rows, each with its own link."""
        trail = paper_audit_trail()
        store.append_many([trail[0], trail[0], trail[1]])
        assert len(store) == 3
        store.verify_integrity()

    def test_reentrant_write_during_batch_is_rejected_atomically(self, store):
        """A batch iterable that writes to the same store mid-iteration
        would commit a partial prefix (sqlite3 connection context
        managers do not nest — the inner commit ends the outer
        transaction) and fork the hash chain: two rows chaining off the
        same predecessor, i.e. a duplicate-seq link.  The store must
        refuse the reentrant write and roll the whole batch back."""
        trail = paper_audit_trail()

        def evil_batch():
            yield trail[0]
            yield trail[1]
            # side effect: the iterable appends to the store it is
            # being consumed into
            store.append(trail[2])
            yield trail[3]

        from repro.errors import AuditError

        with pytest.raises(AuditError, match="reentrant"):
            store.append_many(evil_batch())
        # nothing from the batch NOR the sneaky inner append survived
        assert len(store) == 0
        store.verify_integrity()
        # the guard resets: the store remains writable afterwards
        store.append(trail[0])
        store.append_many(trail[1:3])
        assert len(store) == 3
        store.verify_integrity()

    def test_iterable_raising_mid_batch_rolls_back(self, store):
        trail = paper_audit_trail()

        def exploding_batch():
            yield trail[0]
            yield trail[1]
            raise RuntimeError("source hiccup")

        with pytest.raises(RuntimeError, match="source hiccup"):
            store.append_many(exploding_batch())
        assert len(store) == 0
        store.verify_integrity()
        store.append_many(trail[:2])
        assert len(store) == 2
        store.verify_integrity()


class TestTimestampNormalization:
    """Aware and naive timestamps must compare meaningfully in queries."""

    def entry_at(self, when, case="TZ-1", task="T1"):
        return LogEntry(
            user="Sam", role="Staff", action="work", obj=None,
            task=task, case=case, timestamp=when,
        )

    def test_aware_entries_stored_as_naive_utc(self, store):
        plus_two = timezone(timedelta(hours=2))
        store.append(
            self.entry_at(datetime(2010, 5, 1, 12, 0, tzinfo=plus_two))
        )
        fetched = store.query()[0]
        assert fetched.timestamp.tzinfo is None
        assert fetched.timestamp == datetime(2010, 5, 1, 10, 0)

    def test_mixed_aware_and_naive_query_bounds(self, store):
        plus_two = timezone(timedelta(hours=2))
        store.append_many([
            self.entry_at(datetime(2010, 5, 1, 10, 0), task="T1"),
            # 12:00+02:00 == 10:30 UTC — between the two naive entries
            self.entry_at(
                datetime(2010, 5, 1, 12, 30, tzinfo=plus_two), task="T2"
            ),
            self.entry_at(datetime(2010, 5, 1, 11, 0), task="T3"),
        ])
        # an aware bound filters against the naive-UTC storage form
        since = datetime(2010, 5, 1, 12, 15, tzinfo=plus_two)  # 10:15 UTC
        late = store.query(since=since)
        assert [e.task for e in late] == ["T2", "T3"]
        until = datetime(2010, 5, 1, 12, 45, tzinfo=plus_two)  # 10:45 UTC
        early = store.query(until=until)
        assert [e.task for e in early] == ["T1", "T2"]
        store.verify_integrity()


class TestPurgeOutOfOrder:
    def entry_at(self, when, task):
        return LogEntry(
            user="Sam", role="Staff", action="work", obj=None,
            task=task, case="P-1", timestamp=when,
        )

    def test_young_entry_blocks_purging_older_successors(self, store):
        # appended out of chronological order: old, young, old
        store.append_many([
            self.entry_at(datetime(2010, 1, 1), "T1"),
            self.entry_at(datetime(2010, 6, 1), "T2"),
            self.entry_at(datetime(2010, 2, 1), "T3"),
        ])
        purged = store.purge_before(datetime(2010, 3, 1))
        # only the prefix strictly older than the cutoff goes: T1.  T2 is
        # younger and blocks T3, even though T3 is old enough.
        assert purged == 1
        assert {e.task for e in store.query()} == {"T2", "T3"}
        store.verify_integrity()

    def test_aware_cutoff_is_normalized(self, store):
        store.append_many([
            self.entry_at(datetime(2010, 1, 1, 10, 0), "T1"),
            self.entry_at(datetime(2010, 1, 1, 12, 0), "T2"),
        ])
        plus_two = timezone(timedelta(hours=2))
        # 13:00+02:00 == 11:00 UTC: purges T1 (10:00), keeps T2 (12:00)
        purged = store.purge_before(
            datetime(2010, 1, 1, 13, 0, tzinfo=plus_two)
        )
        assert purged == 1
        assert [e.task for e in store.query()] == ["T2"]
        store.verify_integrity()


class TestIntegrity:
    def test_fresh_store_is_intact(self, store):
        store.verify_integrity()
        assert store.is_intact()

    def test_loaded_store_is_intact(self, loaded):
        assert loaded.is_intact()

    def test_modified_row_detected(self, loaded):
        loaded.tamper(3, user="Mallory")
        with pytest.raises(IntegrityError) as excinfo:
            loaded.verify_integrity()
        assert excinfo.value.first_bad_seq == 3
        assert not loaded.is_intact()

    def test_case_relabeling_detected(self, loaded):
        # The mimicry cover-up: relabeling an access to another case.
        loaded.tamper(7, case_id="HT-99")
        assert not loaded.is_intact()

    def test_status_flip_detected(self, loaded):
        loaded.tamper(3, status="success")
        assert not loaded.is_intact()

    def test_tamper_rejects_unknown_columns(self, loaded):
        with pytest.raises(ValueError):
            loaded.tamper(1, hash="0" * 64)

    @pytest.mark.parametrize(
        "column, value",
        [
            ("user", "Mallory"),
            ("role", "Admin"),
            ("action", "exfiltrate"),
            ("obj", "[Mallory]EPR"),
            ("task", "T99"),
            ("case_id", "HT-99"),
            ("status", "failure"),
        ],
    )
    def test_every_tamperable_column_is_detected(self, loaded, column, value):
        loaded.tamper(5, **{column: value})
        with pytest.raises(IntegrityError) as excinfo:
            loaded.verify_integrity()
        assert excinfo.value.first_bad_seq == 5

    def test_undecodable_row_is_an_integrity_breach(self, loaded):
        # garbage that no longer parses as a Status: verify_integrity
        # reports it as tampering, not as a crash
        loaded.tamper(4, status="not-a-status")
        with pytest.raises(IntegrityError) as excinfo:
            loaded.verify_integrity()
        assert excinfo.value.first_bad_seq == 4
        assert "no longer decodes" in str(excinfo.value)


class TestQuarantinedReads:
    def test_malformed_row_raises_without_quarantine(self, loaded):
        loaded.tamper(4, status="not-a-status")
        with pytest.raises(MalformedEntryError) as excinfo:
            loaded.query()
        assert excinfo.value.position == 4

    def test_malformed_row_diverted_to_quarantine(self, loaded):
        from repro.core.resilience import Quarantine

        loaded.tamper(4, status="not-a-status")
        quarantine = Quarantine()
        trail = loaded.query(quarantine=quarantine)
        assert len(trail) == len(paper_audit_trail()) - 1
        assert len(quarantine) == 1
        record = quarantine.entries[0]
        assert record.source == "store"
        assert record.position == 4
        assert "not-a-status" in record.raw

    def test_quarantine_telemetry_counter(self, loaded):
        from repro.core.resilience import Quarantine
        from repro.obs import Telemetry

        loaded.tamper(4, status="not-a-status")
        telemetry = Telemetry.create()
        quarantine = Quarantine(telemetry)
        loaded.query(quarantine=quarantine)
        assert telemetry.registry.counter(
            "quarantined_entries_total"
        ).value(source="store") == 1


class TestStoreTrailInterop:
    def test_store_query_feeds_algorithm(self, loaded):
        from repro.bpmn import encode
        from repro.core import ComplianceChecker
        from repro.scenarios import healthcare_treatment_process, role_hierarchy

        checker = ComplianceChecker(
            encode(healthcare_treatment_process()), role_hierarchy()
        )
        assert checker.check(loaded.query(case="HT-1")).compliant
        assert not checker.check(loaded.query(case="HT-11")).compliant

    def test_round_trip_preserves_order_strictly(self, loaded):
        AuditTrail(loaded.query().entries, strict=True)


class TestKeysetPagination:
    def test_after_seq_resumes_where_the_page_ended(self, loaded):
        first = loaded.entries_with_seq(limit=10)
        assert len(first) == 10
        assert [seq for seq, _ in first] == list(range(1, 11))
        second = loaded.entries_with_seq(after_seq=first[-1][0], limit=10)
        assert second[0][0] == 11
        assert all(seq > first[-1][0] for seq, _ in second)

    def test_pages_reassemble_the_full_trail(self, loaded):
        pages, cursor = [], 0
        while True:
            page = loaded.entries_with_seq(after_seq=cursor, limit=7)
            if not page:
                break
            cursor = page[-1][0]
            pages.extend(entry for _, entry in page)
        assert pages == list(loaded.query().entries)

    def test_query_supports_the_same_cursor(self, loaded):
        total = len(loaded)
        trail = loaded.query(after_seq=total - 3)
        assert len(trail) == 3
        assert len(loaded.query(after_seq=total)) == 0

    def test_case_filter_composes_with_pagination(self, loaded):
        page = loaded.entries_with_seq(case="HT-1", limit=3)
        assert len(page) == 3
        assert all(entry.case == "HT-1" for _, entry in page)

    def test_negative_limit_is_refused(self, loaded):
        from repro.errors import AuditError

        with pytest.raises(AuditError, match="non-negative"):
            loaded.query(limit=-1)

    def test_cases_prefix_filter(self, loaded):
        assert loaded.cases(prefix="CT") == ["CT-1"]
        assert set(loaded.cases(prefix="HT")) == {
            "HT-1", "HT-2", "HT-10", "HT-11", "HT-20", "HT-21", "HT-30",
        }
        # Prefixes match whole case-id segments, not raw characters: a
        # prefix "H" matches no "HT-*" case.
        assert loaded.cases(prefix="H") == []


class TestControlLog:
    def test_record_and_read_back(self, loaded):
        seq = loaded.record_control(
            "dismiss", case="HT-10", actor="alice", reason="known fault"
        )
        assert seq == 1
        records = loaded.control_records()
        assert len(records) == 1
        record = records[0]
        assert record["action"] == "dismiss"
        assert record["case"] == "HT-10"
        assert record["actor"] == "alice"
        assert record["reason"] == "known fault"
        assert loaded.control_records(case="HT-99") == []

    def test_control_chain_is_separate_from_the_trail_chain(self, loaded):
        before = len(loaded)
        loaded.record_control("requeue", case="HT-10")
        # Operator actions never interleave with (or re-anchor) the
        # audit trail itself.
        assert len(loaded) == before
        loaded.verify_integrity()

    def test_empty_action_is_refused(self, loaded):
        from repro.errors import AuditError

        with pytest.raises(AuditError, match="action"):
            loaded.record_control("")

    def test_tampered_control_row_is_detected(self, loaded):
        loaded.record_control("dismiss", case="HT-10", actor="alice")
        loaded.record_control("requeue", case="HT-11", actor="bob")
        with loaded._write_transaction():
            loaded._connection.execute(
                "UPDATE control_log SET actor = 'mallory' WHERE seq = 1"
            )
        with pytest.raises(IntegrityError):
            loaded.verify_integrity()
