"""Tests for the SQLite audit store and its hash-chain integrity."""

from datetime import datetime

import pytest

from repro.audit import AuditStore, AuditTrail, LogEntry, Status
from repro.errors import IntegrityError
from repro.policy import ObjectRef
from repro.scenarios import paper_audit_trail


@pytest.fixture
def store():
    with AuditStore(":memory:") as s:
        yield s


@pytest.fixture
def loaded(store):
    store.append_many(paper_audit_trail())
    return store


class TestAppendAndQuery:
    def test_append_returns_increasing_seq(self, store):
        trail = paper_audit_trail()
        first = store.append(trail[0])
        second = store.append(trail[1])
        assert second == first + 1

    def test_len_counts_entries(self, loaded):
        assert len(loaded) == len(paper_audit_trail())

    def test_query_all_round_trips(self, loaded):
        assert loaded.query() == paper_audit_trail()

    def test_query_by_case(self, loaded):
        ht1 = loaded.query(case="HT-1")
        assert len(ht1) == 16
        assert all(e.case == "HT-1" for e in ht1)

    def test_query_by_user(self, loaded):
        bobs = loaded.query(user="Bob")
        assert all(e.user == "Bob" for e in bobs)
        assert len(bobs) == 15

    def test_query_by_object_subtree(self, loaded):
        jane = loaded.query(obj=ObjectRef.parse("[Jane]EPR"))
        assert all(str(e.obj).startswith("[Jane]EPR") for e in jane)
        assert len(jane) > 0

    def test_query_time_range(self, loaded):
        april = loaded.query(since=datetime(2010, 4, 1))
        assert all(e.timestamp >= datetime(2010, 4, 1) for e in april)
        march = loaded.query(until=datetime(2010, 3, 31, 23, 59))
        assert len(april) + len(march) == len(loaded.query())

    def test_combined_filters(self, loaded):
        result = loaded.query(case="HT-1", user="Charlie")
        assert len(result) == 3

    def test_cases_in_first_seen_order(self, loaded):
        cases = loaded.cases()
        assert cases[0] == "HT-1"
        assert "CT-1" in cases

    def test_cases_touching(self, loaded):
        cases = loaded.cases_touching(ObjectRef.parse("[Jane]EPR"))
        assert set(cases) == {"HT-1", "HT-11"}

    def test_objectless_entries_round_trip(self, store):
        cancel = LogEntry.at(
            "John", "GP", "cancel", None, "T02", "HT-1", "201003121216",
            Status.FAILURE,
        )
        store.append(cancel)
        fetched = store.query()[0]
        assert fetched.obj is None
        assert fetched.failed


class TestIntegrity:
    def test_fresh_store_is_intact(self, store):
        store.verify_integrity()
        assert store.is_intact()

    def test_loaded_store_is_intact(self, loaded):
        assert loaded.is_intact()

    def test_modified_row_detected(self, loaded):
        loaded.tamper(3, user="Mallory")
        with pytest.raises(IntegrityError) as excinfo:
            loaded.verify_integrity()
        assert excinfo.value.first_bad_seq == 3
        assert not loaded.is_intact()

    def test_case_relabeling_detected(self, loaded):
        # The mimicry cover-up: relabeling an access to another case.
        loaded.tamper(7, case_id="HT-99")
        assert not loaded.is_intact()

    def test_status_flip_detected(self, loaded):
        loaded.tamper(3, status="success")
        assert not loaded.is_intact()

    def test_tamper_rejects_unknown_columns(self, loaded):
        with pytest.raises(ValueError):
            loaded.tamper(1, hash="0" * 64)


class TestStoreTrailInterop:
    def test_store_query_feeds_algorithm(self, loaded):
        from repro.bpmn import encode
        from repro.core import ComplianceChecker
        from repro.scenarios import healthcare_treatment_process, role_hierarchy

        checker = ComplianceChecker(
            encode(healthcare_treatment_process()), role_hierarchy()
        )
        assert checker.check(loaded.query(case="HT-1")).compliant
        assert not checker.check(loaded.query(case="HT-11")).compliant

    def test_round_trip_preserves_order_strictly(self, loaded):
        AuditTrail(loaded.query().entries, strict=True)
