"""Tests for the synthetic trail generator and violation injection."""

from datetime import datetime

import pytest

from repro.audit import (
    AuditTrail,
    TaskAction,
    TaskProfile,
    TrailGenerator,
    inject_mimicry_case,
    inject_repurposed_tail,
    inject_swap,
    inject_task_skip,
    inject_wrong_role,
)
from repro.bpmn import encode
from repro.core import ComplianceChecker
from repro.errors import GenerationError
from repro.scenarios import (
    healthcare_treatment_process,
    role_hierarchy,
    sequential_process,
)
from repro.scenarios.workloads import HOSPITAL_PROFILE, HOSPITAL_STAFF


@pytest.fixture(scope="module")
def ht_encoded():
    return encode(healthcare_treatment_process())


@pytest.fixture(scope="module")
def ht_checker(ht_encoded):
    return ComplianceChecker(ht_encoded, role_hierarchy())


def make_generator(encoded, seed=7):
    return TrailGenerator(
        encoded,
        users_by_role=HOSPITAL_STAFF,
        profile=HOSPITAL_PROFILE,
        hierarchy=role_hierarchy(),
        seed=seed,
    )


class TestTaskProfile:
    def test_defined_actions_returned(self):
        profile = TaskProfile()
        profile.define("T01", TaskAction("read", "[{subject}]EPR"))
        assert profile.actions_for("T01")[0].action == "read"

    def test_default_action_for_unknown_task(self):
        profile = TaskProfile()
        assert profile.actions_for("T99") == [profile.default]

    def test_materialize_substitutes_subject(self):
        action = TaskAction("read", "[{subject}]EPR/Clinical")
        assert str(action.materialize("Jane")) == "[Jane]EPR/Clinical"

    def test_materialize_none_template(self):
        assert TaskAction("cancel", None).materialize("Jane") is None


class TestGeneratedCompliance:
    """The generator's central contract: its output replays compliantly."""

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_cases_are_compliant(self, ht_encoded, ht_checker, seed):
        generator = make_generator(ht_encoded, seed=seed)
        generated = generator.generate_case(f"HT-{seed}", "PatientX", min_steps=2)
        result = ht_checker.check(generated.trail)
        assert result.compliant, (
            f"seed {seed}: failed at {result.failed_entry}"
        )

    def test_entries_carry_case_and_subject_objects(self, ht_encoded):
        generated = make_generator(ht_encoded).generate_case("HT-5", "Zoe", min_steps=2)
        assert all(e.case == "HT-5" for e in generated.trail)
        subject_objects = [
            e.obj for e in generated.trail if e.obj and e.obj.subject
        ]
        assert all(o.subject == "Zoe" for o in subject_objects)

    def test_timestamps_strictly_increase(self, ht_encoded):
        generated = make_generator(ht_encoded).generate_case("HT-5", "Zoe", min_steps=3)
        times = [e.timestamp for e in generated.trail]
        assert times == sorted(times)

    def test_determinism_per_seed(self, ht_encoded):
        one = make_generator(ht_encoded, seed=42).generate_case("HT-1", "A", min_steps=2)
        two = make_generator(ht_encoded, seed=42).generate_case("HT-1", "A", min_steps=2)
        assert one.trail == two.trail

    def test_roles_come_from_pool_staffing(self, ht_encoded):
        generated = make_generator(ht_encoded).generate_case("HT-5", "Zoe", min_steps=4)
        known_roles = {r for staff in HOSPITAL_STAFF.values() for _, r in staff}
        assert all(e.role in known_roles for e in generated.trail)

    def test_missing_staffing_rejected(self, ht_encoded):
        with pytest.raises(GenerationError):
            TrailGenerator(ht_encoded, users_by_role={"GP": [("John", "GP")]})


class TestInjection:
    @pytest.fixture
    def compliant(self, ht_encoded):
        return make_generator(ht_encoded, seed=3).generate_case(
            "HT-1", "Jane", min_steps=4, stop_probability=0.0
        ).trail

    def test_wrong_role_breaks_compliance(self, ht_checker, compliant):
        violated = inject_wrong_role(compliant, 0, "MedicalLabTech")
        assert not ht_checker.check(violated).compliant

    def test_task_skip_usually_breaks_compliance(self, ht_checker, compliant):
        # Dropping the first task's entries makes the prefix invalid.
        first_task = compliant[0].task
        violated = inject_task_skip(compliant, first_task)
        assert not ht_checker.check(violated).compliant

    def test_task_skip_requires_existing_task(self, compliant):
        with pytest.raises(GenerationError):
            inject_task_skip(compliant, "T99")

    def test_swap_exchanges_timestamps(self, compliant):
        swapped = inject_swap(compliant, 0)
        assert swapped[0].task == compliant[1].task
        assert swapped[1].task == compliant[0].task

    def test_swap_past_end_rejected(self, compliant):
        with pytest.raises(GenerationError):
            inject_swap(compliant, len(compliant) - 1)

    def test_mimicry_case_detected(self, ht_checker, compliant):
        violated = inject_mimicry_case(
            compliant,
            case="HT-99",
            user="Bob",
            role="Cardiologist",
            task="T06",
            obj="[Jane]EPR/Clinical",
            when=datetime(2010, 5, 1, 9, 0),
        )
        assert not ht_checker.check(violated.for_case("HT-99")).compliant
        # the original case is untouched
        assert ht_checker.check(violated.for_case("HT-1")).compliant

    def test_repurposed_tail_relabels_entries(self, compliant):
        moved = inject_repurposed_tail(compliant, "HT-1", "HT-2", count=2)
        assert len(moved.for_case("HT-2")) == 2
        assert len(moved.for_case("HT-1")) == len(compliant) - 2

    def test_repurposed_tail_needs_enough_entries(self, compliant):
        with pytest.raises(GenerationError):
            inject_repurposed_tail(compliant, "HT-1", "HT-2", count=999)


class TestErrorPaths:
    def test_generator_emits_failure_entries(self):
        # The sequential process has no error events, so no failures ever;
        # the HT process can produce T02 failures - look for one.
        encoded = encode(healthcare_treatment_process())
        saw_failure = False
        for seed in range(30):
            generator = make_generator(encoded, seed=seed)
            trail = generator.generate_case(
                "HT-1", "P", min_steps=3, stop_probability=0.0
            ).trail
            if any(e.failed for e in trail):
                saw_failure = True
                break
        assert saw_failure

    def test_sequential_process_generation(self):
        encoded = encode(sequential_process(4, role="Staff"))
        generator = TrailGenerator(
            encoded,
            users_by_role={"Staff": [("Sam", "Staff")]},
            seed=1,
        )
        generated = generator.generate_case(
            "SEQ-1", "Subject", min_steps=10, stop_probability=0.0
        )
        tasks = [e.task for e in generated.trail]
        # All four tasks in order (with possible repeats from 1-to-n entries)
        deduped = [t for i, t in enumerate(tasks) if i == 0 or tasks[i - 1] != t]
        assert deduped == ["T1", "T2", "T3", "T4"]
