"""Tests for the statistical triage model."""

import pytest

from repro.audit.stats import (
    BehaviourModel,
    entry_key,
    triage_precision_at_k,
)
from repro.scenarios import hospital_day
from repro.scenarios.workloads import VIOLATION_KINDS


@pytest.fixture(scope="module")
def history():
    """A clean historical day to fit on."""
    return hospital_day(n_cases=60, violation_rate=0.0, seed=101).trail


@pytest.fixture(scope="module")
def model(history):
    return BehaviourModel().fit(history)


@pytest.fixture(scope="module")
def mixed_day():
    return hospital_day(
        n_cases=40,
        violation_rate=0.3,
        seed=202,
        violation_mix={kind: 1.0 for kind in VIOLATION_KINDS},
    )


class TestFitting:
    def test_unfitted_model_refuses_to_score(self, history):
        model = BehaviourModel()
        with pytest.raises(ValueError):
            model.entry_surprise(history[0])
        with pytest.raises(ValueError):
            model.case_surprise(history)

    def test_fit_returns_self(self, history):
        model = BehaviourModel()
        assert model.fit(history) is model
        assert model.fitted

    def test_alpha_must_be_positive(self):
        with pytest.raises(ValueError):
            BehaviourModel(alpha=0)

    def test_entry_key_shape(self, history):
        key = entry_key(history[0])
        assert len(key) == 4


class TestEntrySurprise:
    def test_common_activity_scores_low(self, model, history):
        # An entry from the history itself should be unsurprising.
        assert model.entry_surprise(history[0]) < 8.0

    def test_unknown_user_scored_against_population(self, model, history):
        from dataclasses import replace

        stranger = replace(history[0], user="Nobody")
        assert model.entry_surprise(stranger) > 0.0

    def test_unseen_activity_scores_higher(self, model, history):
        from dataclasses import replace

        known = model.entry_surprise(history[0])
        weird = replace(history[0], action="exfiltrate", task="T99")
        assert model.entry_surprise(weird) > known

    def test_unusual_entries_thresholding(self, model, mixed_day):
        flagged = model.unusual_entries(mixed_day.trail, threshold_bits=12.0)
        scores = [s for _, s in flagged]
        assert scores == sorted(scores, reverse=True)
        assert all(s > 12.0 for s in scores)


class TestCaseSurprise:
    def test_empty_case_scores_zero(self, model):
        from repro.audit import AuditTrail

        assert model.case_surprise(AuditTrail([])) == 0.0

    def test_single_entry_mid_process_case_scores_high(self, model, mixed_day):
        mimicry = mixed_day.cases_of_kind("mimicry")
        if not mimicry:
            pytest.skip("no mimicry case in this draw")
        normal_case = next(
            c for c, ok in mixed_day.ground_truth.items() if ok
        )
        bad = model.case_surprise(mixed_day.trail.for_case(mimicry[0]))
        good = model.case_surprise(mixed_day.trail.for_case(normal_case))
        assert bad > good


class TestTriageRanking:
    def test_ranking_covers_all_cases(self, model, mixed_day):
        ranking = model.rank_cases(mixed_day.trail)
        assert {case for case, _ in ranking} == set(mixed_day.trail.cases())

    def test_ranking_prioritizes_violations(self, model, mixed_day):
        """The triage signal is imperfect by design (it has no process
        model), but it must beat random ordering comfortably."""
        ranking = model.rank_cases(mixed_day.trail)
        bad = {c for c, ok in mixed_day.ground_truth.items() if not ok}
        precision = triage_precision_at_k(ranking, bad)
        base_rate = len(bad) / mixed_day.case_count
        assert precision >= min(1.0, base_rate * 1.5)

    def test_precision_at_k_edge_cases(self):
        assert triage_precision_at_k([], set()) == 1.0
        assert triage_precision_at_k([("C-1", 5.0)], {"C-1"}) == 1.0
        assert triage_precision_at_k([("C-1", 5.0)], {"C-2"}, k=1) == 0.0
