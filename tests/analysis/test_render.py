"""Rendering: golden files for text/JSON/SARIF plus SARIF schema checks.

The golden files under ``tests/analysis/golden/`` pin the exact output
of each renderer for the seeded defective process; the tool version is
normalized to ``X.Y.Z`` so releases do not churn the goldens.  The SARIF
document is additionally validated against a condensed subset of the
OASIS 2.1.0 schema (``sarif_subset_schema.json``) with jsonschema.
"""

import json
from pathlib import Path

import jsonschema
import pytest

from repro import __version__
from repro.analysis import (
    LintReport,
    SARIF_SCHEMA_URI,
    diag,
    lint_processes,
    render,
    render_json,
    render_sarif,
    render_text,
)
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import ObjectRef, Policy, Statement

GOLDEN_DIR = Path(__file__).parent / "golden"


def defective_report(defective_review):
    policy = Policy(
        [
            Statement("Reviewer", "read", ObjectRef.parse("[.]Dossier"), "review"),
            Statement(
                "Reviewer", "write", ObjectRef.parse("[.]Dossier/Notes"), "review"
            ),
        ]
    )
    return lint_processes(
        [defective_review], policy=policy, hierarchy=RoleHierarchy()
    )


def normalize(text):
    return text.replace(__version__, "X.Y.Z")


class TestGoldenFiles:
    @pytest.mark.parametrize("fmt,suffix", [
        ("text", "txt"),
        ("json", "json"),
        ("sarif", "sarif"),
    ])
    def test_matches_golden(self, defective_review, fmt, suffix):
        report = defective_report(defective_review)
        rendered = normalize(render(report, fmt))
        golden = (GOLDEN_DIR / f"defective_review.{suffix}").read_text()
        assert rendered == golden

    def test_goldens_agree_on_the_findings(self):
        golden = json.loads(
            (GOLDEN_DIR / "defective_review.json").read_text()
        )
        assert {d["code"] for d in golden["diagnostics"]} == {
            "PC201",
            "PC203",
            "PC301",
        }
        # two deadlocked markings (one per XOR branch) + dead task + policy
        assert golden["summary"]["errors"] == 4
        assert not golden["summary"]["clean"]


class TestTextRendering:
    def test_groups_by_process_and_shows_hints(self):
        report = LintReport(processes=("p", "q")).add(
            diag("PC201", "stuck", process_id="p", elements=("J",),
                 hint="fix the join"),
            diag("PC302", "no statements", process_id="q"),
        )
        text = render_text(report)
        assert "p:" in text and "q:" in text
        assert "hint: fix the join" in text
        assert "1 error(s), 1 warning(s)" in text

    def test_clean_report_renders_summary_only(self):
        text = render_text(LintReport(processes=("p",)))
        assert "clean" in text


class TestJsonRendering:
    def test_payload_shape(self):
        payload = json.loads(
            render_json(LintReport(processes=("p",)).add(diag("PC204", "omega")))
        )
        assert payload["tool"] == "repro-lint"
        assert payload["version"] == __version__
        assert payload["summary"] == {
            "errors": 1,
            "warnings": 0,
            "infos": 0,
            "clean": False,
        }
        assert payload["diagnostics"][0]["rule"] == "unbounded"


class TestSarifRendering:
    def _sarif(self, report):
        return json.loads(render_sarif(report))

    def test_document_validates_against_subset_schema(self, defective_review):
        schema = json.loads(
            (Path(__file__).parent / "sarif_subset_schema.json").read_text()
        )
        document = self._sarif(defective_report(defective_review))
        jsonschema.validate(document, schema)

    def test_schema_uri_and_version(self):
        document = self._sarif(LintReport())
        assert document["$schema"] == SARIF_SCHEMA_URI
        assert document["version"] == "2.1.0"

    def test_only_used_rules_are_declared(self):
        document = self._sarif(LintReport().add(diag("PC201", "x")))
        driver = document["runs"][0]["tool"]["driver"]
        assert [r["id"] for r in driver["rules"]] == ["PC201"]

    def test_logical_locations(self):
        document = self._sarif(
            LintReport().add(
                diag("PC203", "dead", process_id="p", elements=("T1",))
            )
        )
        locations = document["runs"][0]["results"][0]["locations"]
        assert locations[0]["logicalLocations"] == [
            {"name": "T1", "kind": "member", "fullyQualifiedName": "p::T1"}
        ]

    def test_info_maps_to_note_level(self):
        document = self._sarif(LintReport().add(diag("PC205", "meh")))
        assert document["runs"][0]["results"][0]["level"] == "note"


class TestRenderDispatch:
    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown lint format"):
            render(LintReport(), "yaml")
