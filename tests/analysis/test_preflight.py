"""The auditor's opt-in static preflight and its telemetry."""

from datetime import datetime, timedelta

import pytest

from repro.audit.model import AuditTrail, LogEntry, Status
from repro.core import PurposeControlAuditor
from repro.core.resilience import OutcomeKind
from repro.obs import PREFLIGHT_UNSOUND, MemoryEventLog, Telemetry, Tracer
from repro.policy.registry import ProcessRegistry
from repro.scenarios import workloads


def entry(case, task, minute, role="Reviewer"):
    return LogEntry(
        user="ann",
        role=role,
        action="work",
        obj=None,
        task=task,
        case=case,
        timestamp=datetime(2010, 1, 1, 9, 0) + timedelta(minutes=minute),
        status=Status.SUCCESS,
    )


@pytest.fixture
def review_registry(defective_review):
    return ProcessRegistry().register(defective_review, "RV")


@pytest.fixture
def review_trail():
    return AuditTrail(
        [
            entry("RV-1", "T0", 0),
            entry("RV-1", "B1", 1),
            entry("RV-2", "T0", 5),
        ]
    )


class TestQuarantine:
    def test_unsound_purpose_is_undecidable(self, review_registry, review_trail):
        auditor = PurposeControlAuditor(review_registry, preflight=True)
        report = auditor.audit(review_trail)
        for result in report.cases.values():
            assert result.outcome is OutcomeKind.UNDECIDABLE
            (finding,) = result.infringements
            assert finding.kind.value == "undecidable"
            assert "PC201" in finding.detail
            assert "PC203" in finding.detail
            assert "repro lint" in finding.detail

    def test_preflight_is_opt_in(self, review_registry, review_trail):
        # Without preflight the open prefix replays fine: nothing in the
        # trail itself is wrong — the *model* is.
        report = PurposeControlAuditor(review_registry).audit(review_trail)
        assert report.compliant

    def test_sound_purposes_are_untouched(self):
        registry = ProcessRegistry().register(
            workloads.sequential_process(3), "SQ"
        )
        trail = AuditTrail(
            [entry(f"SQ-1", f"T{i}", i, role="Staff") for i in range(1, 4)]
        )
        auditor = PurposeControlAuditor(registry, preflight=True)
        report = auditor.audit(trail)
        assert report.compliant
        assert report.cases["SQ-1"].outcome is OutcomeKind.COMPLIANT


class TestPreflightTelemetry:
    def test_counter_and_event_fire_once_per_purpose(
        self, review_registry, review_trail
    ):
        sink = MemoryEventLog()
        telemetry = Telemetry.create(events=sink.events, tracer=Tracer())
        auditor = PurposeControlAuditor(
            review_registry, preflight=True, telemetry=telemetry
        )
        auditor.audit(review_trail)  # two cases of the same purpose

        counter = telemetry.registry.counter("preflight_unsound_total")
        assert counter.total == 1  # cached after the first case

        events = sink.named(PREFLIGHT_UNSOUND)
        assert len(events) == 1
        assert events[0]["purpose"] == "review"
        assert "PC201" in events[0]["codes"]

    def test_sound_purpose_emits_nothing(self):
        registry = ProcessRegistry().register(
            workloads.sequential_process(3), "SQ"
        )
        sink = MemoryEventLog()
        telemetry = Telemetry.create(events=sink.events, tracer=Tracer())
        auditor = PurposeControlAuditor(
            registry, preflight=True, telemetry=telemetry
        )
        auditor.audit(AuditTrail([entry("SQ-1", "T1", 0, role="Staff")]))
        assert telemetry.registry.counter("preflight_unsound_total").total == 0
        assert sink.named(PREFLIGHT_UNSOUND) == []
