"""The coverability-based soundness analyzer (PC2xx)."""

from repro.analysis import analyze_soundness, soundness_diagnostics
from repro.analysis.soundness import OMEGA
from repro.bpmn.builder import ProcessBuilder
from repro.conformance.bpmn_to_petri import bpmn_to_petri
from repro.scenarios import appendix, healthcare, insurance, workloads


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestDeadlockDetection:
    def test_xor_split_into_and_join_deadlocks(self, defective_review):
        result = analyze_soundness(defective_review)
        assert result.complete
        assert result.deadlocks
        assert not result.sound

    def test_diagnostics_carry_codes_and_elements(self, defective_review):
        found = soundness_diagnostics(defective_review)
        assert {"PC201", "PC203"} <= codes(found)
        dead_task = next(d for d in found if d.code == "PC203")
        assert dead_task.elements == ("TZ",)
        deadlock = next(d for d in found if d.code == "PC201")
        assert "J" in deadlock.elements

    def test_sound_process_is_sound(self):
        result = analyze_soundness(workloads.sequential_process(4))
        assert result.sound
        assert soundness_diagnostics(workloads.sequential_process(4)) == []


class TestImproperCompletion:
    def test_and_split_xor_join_leaks(self, leaky_process):
        found = soundness_diagnostics(leaky_process)
        assert "PC202" in codes(found)
        improper = next(d for d in found if d.code == "PC202")
        assert "E" in improper.elements

    def test_message_reinstantiation_is_not_improper(self):
        # The healthcare service pools (Lab, Radiology) complete once per
        # request; the error loop can legitimately re-throw the referral.
        found = soundness_diagnostics(
            healthcare.healthcare_treatment_process()
        )
        assert codes(found) == set()


class TestUnboundedness:
    def test_token_generating_loop_pumps_omega(self, unbounded_process):
        result = analyze_soundness(unbounded_process)
        assert result.unbounded_places
        found = soundness_diagnostics(unbounded_process)
        assert "PC204" in codes(found)

    def test_omega_is_infinity(self):
        assert OMEGA == float("inf")
        assert OMEGA - 1 == OMEGA  # Marking arithmetic stays at omega

    def test_fig10_message_pingpong_is_bounded(self):
        # fig10's message loop circulates a single token forever; the
        # done-place cap keeps the state space finite and omega silent.
        result = analyze_soundness(appendix.fig10_process())
        assert result.complete
        assert not result.unbounded_places


class TestBudget:
    def test_exhausted_budget_degrades_to_inconclusive(self):
        process = workloads.parallel_process(4)
        found = soundness_diagnostics(process, state_budget=5)
        assert "PC205" in codes(found)
        inconclusive = next(d for d in found if d.code == "PC205")
        assert inconclusive.severity.value == "info"
        # Dead-task claims require a complete exploration.
        assert "PC203" not in codes(found)

    def test_budget_does_not_fabricate_findings(self):
        process = workloads.sequential_process(3)
        found = soundness_diagnostics(process, state_budget=2)
        assert codes(found) == {"PC205"}


class TestCountedOrJoin:
    def test_counted_mode_adds_count_places(self):
        process = healthcare.healthcare_treatment_process()
        subset = bpmn_to_petri(process)
        counted = bpmn_to_petri(process, inclusive_join="counted")
        count_places = {
            p for p in counted.net.places if p.startswith("orcnt_")
        }
        assert count_places  # the paired G3/J3 gateways use them
        assert not {p for p in subset.net.places if p.startswith("orcnt_")}

    def test_subset_mode_unchanged_is_default(self):
        process = healthcare.healthcare_treatment_process()
        default = bpmn_to_petri(process)
        explicit = bpmn_to_petri(process, inclusive_join="subset")
        assert default.net.places == explicit.net.places
        assert set(default.net.transitions) == set(explicit.net.transitions)

    def test_counted_join_prevents_early_firing_false_positives(self):
        # Under the subset ("early firing") join the OR-join could fire
        # on one branch while the other still runs, stranding a token;
        # the counted analysis net must not report that phantom.
        found = soundness_diagnostics(
            healthcare.healthcare_treatment_process()
        )
        assert "PC202" not in codes(found)


class TestShippedScenariosAreSound:
    def test_all_scenarios(self):
        processes = [
            healthcare.healthcare_treatment_process(),
            healthcare.clinical_trial_process(),
            insurance.claim_handling_process(),
            insurance.marketing_process(),
            appendix.fig7_process(),
            appendix.fig8_process(),
            appendix.fig9_process(),
            appendix.fig10_process(),
            workloads.sequential_process(6),
            workloads.xor_process(4),
            workloads.loop_process(2),
            workloads.parallel_process(3),
            workloads.staged_xor_process(2, 3),
        ]
        for process in processes:
            found = soundness_diagnostics(process)
            assert found == [], (
                f"{process.process_id} unexpectedly unsound: "
                + "; ".join(str(d) for d in found)
            )


class TestErrorFlowSoundness:
    def test_error_retry_loop_is_sound(self):
        builder = ProcessBuilder("retry", purpose="retry")
        staff = builder.pool("Staff")
        staff.start_event("S")
        staff.task("T")
        staff.end_event("E")
        builder.chain("S", "T", "E")
        builder.error_flow("T", "T")
        process = builder.build()
        assert analyze_soundness(process).sound
