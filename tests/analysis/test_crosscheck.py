"""Static purpose control: the PC3xx policy/process cross-checks."""

from repro.analysis import crosscheck_diagnostics
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import ObjectRef, Policy, Statement
from repro.policy.registry import ProcessRegistry
from repro.scenarios import healthcare, insurance


def codes(diagnostics):
    return {d.code for d in diagnostics}


def review_policy():
    return Policy(
        [Statement("Reviewer", "read", ObjectRef.parse("[.]Dossier"), "review")]
    )


class TestUnauthorizableTask:
    def test_unknown_pool_is_flagged(self, defective_review):
        registry = ProcessRegistry().register(defective_review, "RV")
        found = crosscheck_diagnostics(
            review_policy(), registry, RoleHierarchy()
        )
        unauthorized = [d for d in found if d.code == "PC301"]
        assert [d.elements for d in unauthorized] == [("B2",)]

    def test_hierarchy_can_authorize_via_ancestor(self, defective_review):
        registry = ProcessRegistry().register(defective_review, "RV")
        hierarchy = RoleHierarchy().add_role("Ghost", "Reviewer")
        found = crosscheck_diagnostics(review_policy(), registry, hierarchy)
        assert "PC301" not in codes(found)

    def test_non_role_subject_is_conservatively_trusted(self, defective_review):
        # "alice" is not a known role, so it may be a concrete user
        # holding any role — PC301 must not fire on a guess.
        registry = ProcessRegistry().register(defective_review, "RV")
        policy = Policy(
            [Statement("alice", "read", ObjectRef.parse("[.]Dossier"), "review")]
        )
        found = crosscheck_diagnostics(policy, registry, RoleHierarchy())
        assert "PC301" not in codes(found)


class TestPurposeCoverage:
    def test_purpose_without_statements(self, defective_review):
        registry = ProcessRegistry().register(defective_review, "RV")
        policy = Policy(
            [Statement("Reviewer", "read", ObjectRef.parse("[.]X"), "other")]
        )
        found = crosscheck_diagnostics(policy, registry, RoleHierarchy())
        assert "PC302" in codes(found)
        orphan = next(d for d in found if d.code == "PC303")
        assert orphan.purpose == "other"

    def test_policy_purpose_without_process(self):
        policy = Policy(
            [Statement("Clerk", "read", ObjectRef.parse("[.]X"), "ghostpurpose")]
        )
        found = crosscheck_diagnostics(
            policy, ProcessRegistry(), RoleHierarchy()
        )
        assert codes(found) == {"PC303"}


class TestUnresolvableRole:
    def test_unknown_pool_role_warns_when_hierarchy_in_use(self, defective_review):
        registry = ProcessRegistry().register(defective_review, "RV")
        hierarchy = RoleHierarchy().add_role("Reviewer", "Staff")
        found = crosscheck_diagnostics(review_policy(), registry, hierarchy)
        unresolved = [d for d in found if d.code == "PC304"]
        assert len(unresolved) == 1
        assert unresolved[0].elements == ("B2",)

    def test_flat_organizations_do_not_warn(self, defective_review):
        # With no hierarchy at all, bare string matching is the intended
        # semantics, not an accident worth warning about.
        registry = ProcessRegistry().register(defective_review, "RV")
        found = crosscheck_diagnostics(
            review_policy(), registry, RoleHierarchy()
        )
        assert "PC304" not in codes(found)


class TestShippedPoliciesAreClean:
    def test_healthcare(self):
        found = crosscheck_diagnostics(
            healthcare.extended_policy(),
            healthcare.process_registry(),
            healthcare.role_hierarchy(),
        )
        assert codes(found) == set()

    def test_insurance(self):
        found = crosscheck_diagnostics(
            insurance.insurance_policy(),
            insurance.insurance_registry(),
            insurance.insurance_role_hierarchy(),
        )
        assert codes(found) == set()
