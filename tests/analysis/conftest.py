"""Shared fixtures: intentionally-defective processes for the analyzers."""

import pytest

from repro.bpmn.builder import ProcessBuilder


@pytest.fixture
def defective_review():
    """XOR split feeding an AND join: deadlock (PC201) + dead task TZ
    (PC203); pool 'Ghost' is statically unauthorizable (PC301) under the
    review policy.  Mirrors ``examples/defective_review.json``."""
    builder = ProcessBuilder("defective-review", purpose="review")
    reviewer = builder.pool("Reviewer")
    ghost = builder.pool("Ghost")
    reviewer.start_event("S")
    reviewer.task("T0", name="Open dossier")
    reviewer.exclusive_gateway("G")
    reviewer.task("B1", name="Desk review")
    ghost.task("B2", name="Shadow review")
    reviewer.parallel_gateway("J")
    reviewer.task("TZ", name="Archive dossier")
    reviewer.end_event("E")
    builder.chain("S", "T0", "G")
    builder.flow("G", "B1")
    builder.flow("G", "B2")
    builder.flow("B1", "J")
    builder.flow("B2", "J")
    builder.chain("J", "TZ", "E")
    return builder.build(validate=False)


@pytest.fixture
def leaky_process():
    """AND split merged by an XOR join: the end event fires twice
    (improper completion, PC202)."""
    builder = ProcessBuilder("leaky", purpose="leak")
    staff = builder.pool("Staff")
    staff.start_event("S")
    staff.parallel_gateway("G")
    staff.task("A")
    staff.task("B")
    staff.exclusive_gateway("J")
    staff.end_event("E")
    builder.flow("S", "G")
    builder.flow("G", "A")
    builder.flow("G", "B")
    builder.flow("A", "J")
    builder.flow("B", "J")
    builder.flow("J", "E")
    return builder.build(validate=False)


@pytest.fixture
def unbounded_process():
    """A loop whose AND split spawns a fresh token every round: the
    coverability analysis pumps omega (PC204)."""
    builder = ProcessBuilder("unbounded", purpose="grow")
    staff = builder.pool("Staff")
    staff.start_event("S")
    staff.exclusive_gateway("G")
    staff.task("T")
    staff.parallel_gateway("P")
    staff.task("W")
    staff.end_event("E1")
    staff.end_event("E2")
    builder.flow("S", "G")
    builder.flow("G", "T")
    builder.flow("T", "P")
    builder.flow("P", "W")
    builder.flow("P", "G")
    builder.flow("W", "E1")
    builder.flow("G", "E2")
    return builder.build(validate=False)
