"""Structural and automaton-facing lint (PC1xx / PC4xx)."""

from repro.analysis import structure_diagnostics
from repro.bpmn.builder import ProcessBuilder
from repro.scenarios import healthcare, workloads


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestStructuralProblems:
    def test_broken_document_yields_pc101_only(self):
        process = ProcessBuilder("empty", purpose="none").build(validate=False)
        found = structure_diagnostics(process)
        assert codes(found) == {"PC101"}

    def test_pc101_short_circuits_deeper_checks(self):
        # A dangling flow AND a silent cycle: only PC101 is reported,
        # because graph analyses on a broken document are meaningless.
        builder = ProcessBuilder("broken", purpose="none")
        staff = builder.pool("Staff")
        staff.start_event("S")
        staff.exclusive_gateway("G1")
        staff.exclusive_gateway("G2")
        staff.task("T")
        staff.end_event("E")
        builder.chain("S", "G1", "G2", "G1")
        builder.chain("G2", "T", "E")
        builder.flow("T", "MISSING")
        found = structure_diagnostics(builder.build(validate=False))
        assert codes(found) == {"PC101"}


class TestSilentCycles:
    def test_gateway_only_cycle_is_pc102(self):
        builder = ProcessBuilder("silent", purpose="spin")
        staff = builder.pool("Staff")
        staff.start_event("S")
        staff.exclusive_gateway("G1")
        staff.exclusive_gateway("G2")
        staff.task("T")
        staff.end_event("E")
        builder.chain("S", "G1", "G2", "G1")
        builder.chain("G2", "T", "E")
        found = structure_diagnostics(builder.build(validate=False))
        silent = [d for d in found if d.code == "PC102"]
        assert len(silent) == 1
        assert set(silent[0].elements) == {"G1", "G2"}
        assert silent[0].hint

    def test_task_on_cycle_silences_pc102(self):
        found = structure_diagnostics(workloads.loop_process(2))
        assert "PC102" not in codes(found)


class TestInclusiveFanout:
    def _or_split(self, fanout):
        builder = ProcessBuilder("orsplit", purpose="fan")
        staff = builder.pool("Staff")
        staff.start_event("S")
        staff.inclusive_gateway("G")
        staff.inclusive_gateway("J", join_of="G")
        staff.end_event("E")
        builder.flow("S", "G")
        for index in range(fanout):
            staff.task(f"T{index}")
            builder.flow("G", f"T{index}")
            builder.flow(f"T{index}", "J")
        builder.flow("J", "E")
        return builder.build(validate=False)

    def test_wide_split_warns_with_subset_count(self):
        found = structure_diagnostics(self._or_split(4))
        fanout = next(d for d in found if d.code == "PC401")
        assert fanout.elements == ("G",)
        assert "15" in fanout.message  # 2^4 - 1 enumerated subsets

    def test_narrow_split_is_quiet(self):
        found = structure_diagnostics(self._or_split(3))
        assert "PC401" not in codes(found)


class TestStateExplosion:
    def test_high_concurrency_estimate_warns(self):
        found = structure_diagnostics(workloads.parallel_process(8))
        explosion = [d for d in found if d.code == "PC402"]
        assert len(explosion) == 1
        assert explosion[0].elements  # names the offending splits

    def test_modest_concurrency_is_quiet(self):
        found = structure_diagnostics(workloads.parallel_process(3))
        assert "PC402" not in codes(found)


class TestFragileWellFoundedness:
    def test_single_task_loop_warns(self):
        # clinical-trial's consent loop is kept well-founded by exactly
        # one task; deleting it would break the Section 5 precondition.
        found = structure_diagnostics(healthcare.clinical_trial_process())
        fragile = [d for d in found if d.code == "PC403"]
        assert fragile
        assert all(d.severity.value == "warning" for d in fragile)

    def test_two_observables_on_cycle_are_sturdy(self):
        builder = ProcessBuilder("sturdy", purpose="loop")
        staff = builder.pool("Staff")
        staff.start_event("S")
        staff.exclusive_gateway("G")
        staff.task("T1")
        staff.task("T2")
        staff.end_event("E")
        builder.chain("S", "G", "T1", "T2", "G")
        builder.flow("G", "E")
        found = structure_diagnostics(builder.build(validate=False))
        assert "PC403" not in codes(found)
