"""The lint engine: orchestration, options, and telemetry."""

import pytest

from repro.analysis import LintOptions, lint_process, lint_processes, lint_registry
from repro.bpmn.builder import ProcessBuilder
from repro.obs import LINT_RUN, MemoryEventLog, Telemetry, Tracer
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import ObjectRef, Policy, Statement
from repro.policy.registry import ProcessRegistry
from repro.scenarios import healthcare, insurance, workloads


def review_policy():
    return Policy(
        [Statement("Reviewer", "read", ObjectRef.parse("[.]Dossier"), "review")]
    )


class TestLintProcess:
    def test_broken_document_skips_soundness(self):
        process = ProcessBuilder("empty", purpose="x").build(validate=False)
        report = lint_process(process)
        assert report.codes() == {"PC101"}

    def test_soundness_can_be_disabled(self, defective_review):
        report = lint_process(
            defective_review, LintOptions(soundness=False)
        )
        assert not report.codes() & {"PC201", "PC202", "PC203", "PC204", "PC205"}

    def test_options_reject_nonpositive_budget(self):
        with pytest.raises(ValueError, match="state_budget"):
            LintOptions(state_budget=0)


class TestLintProcesses:
    def test_synthetic_registry_enables_crosschecks(self, defective_review):
        # No registry passed: the engine builds one from the processes'
        # own purposes so PC3xx still runs.
        report = lint_processes(
            [defective_review],
            policy=review_policy(),
            hierarchy=RoleHierarchy(),
        )
        assert "PC301" in report.codes()

    def test_no_policy_no_crosschecks(self, defective_review):
        report = lint_processes([defective_review])
        assert not report.codes() & {"PC301", "PC302", "PC303", "PC304"}

    def test_report_is_sorted_across_processes(self, defective_review):
        report = lint_processes(
            [workloads.sequential_process(2), defective_review]
        )
        ranks = [d.severity.rank for d in report.diagnostics]
        assert ranks == sorted(ranks)

    def test_telemetry_counters_and_event(self, defective_review):
        sink = MemoryEventLog()
        telemetry = Telemetry.create(events=sink.events, tracer=Tracer())
        report = lint_processes([defective_review], telemetry=telemetry)

        assert telemetry.registry.counter("lint_runs_total").total == 1
        diagnostics = telemetry.registry.counter("lint_diagnostics_total")
        assert diagnostics.value(severity="error") == len(report.errors)

        (event,) = sink.named(LINT_RUN)
        assert event["processes"] == 1
        assert event["errors"] == len(report.errors)
        assert "duration_s" in event


class TestLintRegistry:
    def test_lints_every_registered_process(self):
        report = lint_registry(
            healthcare.process_registry(),
            policy=healthcare.extended_policy(),
            hierarchy=healthcare.role_hierarchy(),
        )
        assert set(report.processes) == {
            p.process_id for p in healthcare.process_registry()
        }
        assert report.clean  # shipped scenarios lint without errors

    def test_insurance_registry_is_clean(self):
        report = lint_registry(
            insurance.insurance_registry(),
            policy=insurance.insurance_policy(),
            hierarchy=insurance.insurance_role_hierarchy(),
        )
        assert report.clean
