"""The diagnostics engine: rules, records, reports."""

import pytest

from repro.analysis import (
    RULES,
    Diagnostic,
    LintReport,
    Severity,
    diag,
    merge_reports,
)


class TestRuleRegistry:
    def test_all_documented_codes_exist(self):
        expected = {
            "PC101", "PC102",
            "PC201", "PC202", "PC203", "PC204", "PC205",
            "PC301", "PC302", "PC303", "PC304",
            "PC401", "PC402", "PC403",
        }
        assert set(RULES) == expected

    def test_codes_match_their_rule(self):
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.name
            assert rule.summary

    def test_severity_partition(self):
        errors = {c for c, r in RULES.items() if r.severity is Severity.ERROR}
        assert errors == {
            "PC101", "PC102", "PC201", "PC202", "PC203", "PC204", "PC301"
        }
        assert RULES["PC205"].severity is Severity.INFO

    def test_sarif_levels(self):
        assert Severity.ERROR.sarif_level == "error"
        assert Severity.WARNING.sarif_level == "warning"
        assert Severity.INFO.sarif_level == "note"


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            diag("PC999", "nope")

    def test_severity_defaults_from_rule(self):
        assert diag("PC201", "x").severity is Severity.ERROR
        assert diag("PC302", "x").severity is Severity.WARNING
        assert diag("PC205", "x").severity is Severity.INFO

    def test_str_includes_code_and_location(self):
        text = str(
            diag("PC203", "dead", process_id="p", elements=("T1", "T2"))
        )
        assert "PC203" in text
        assert "[T1, T2]" in text
        assert text.startswith("p: ")

    def test_to_dict_omits_empty_fields(self):
        payload = diag("PC201", "boom").to_dict()
        assert payload == {
            "code": "PC201",
            "rule": "deadlock",
            "severity": "error",
            "message": "boom",
        }

    def test_frozen(self):
        diagnostic = diag("PC201", "boom")
        with pytest.raises(AttributeError):
            diagnostic.message = "changed"


class TestLintReport:
    def _report(self):
        return LintReport(processes=("p",)).add(
            diag("PC302", "w", process_id="p"),
            diag("PC201", "e", process_id="p"),
            diag("PC205", "i", process_id="p"),
        )

    def test_severity_buckets(self):
        report = self._report()
        assert [d.code for d in report.errors] == ["PC201"]
        assert [d.code for d in report.warnings] == ["PC302"]
        assert [d.code for d in report.infos] == ["PC205"]
        assert not report.clean

    def test_sorted_orders_by_severity_then_code(self):
        codes = [d.code for d in self._report().sorted().diagnostics]
        assert codes == ["PC201", "PC302", "PC205"]

    def test_exit_codes(self):
        report = self._report()
        assert report.exit_code() == 1
        warnings_only = LintReport().add(diag("PC302", "w"))
        assert warnings_only.exit_code() == 0
        assert warnings_only.exit_code(strict=True) == 1
        assert LintReport().exit_code(strict=True) == 0

    def test_summary_counts(self):
        assert "1 error(s), 1 warning(s), 1 info(s)" in self._report().summary()
        assert "clean" in LintReport(processes=("p",)).summary()

    def test_merge_deduplicates_processes(self):
        merged = merge_reports(
            [
                LintReport([diag("PC201", "a")], processes=("p", "q")),
                LintReport([diag("PC302", "b")], processes=("q", "r")),
            ]
        )
        assert merged.processes == ("p", "q", "r")
        assert merged.codes() == {"PC201", "PC302"}
