"""Tests for incremental, revision-gated automaton checkpointing."""

from datetime import datetime, timedelta

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.compile import (
    CheckpointWriter,
    PurposeAutomaton,
    fingerprint_encoded,
    load_artifact,
)
from repro.core import ComplianceChecker
from repro.obs import MetricsRegistry, Telemetry
from repro.obs.log import AUTOMATON_CHECKPOINT, MemoryEventLog
from repro.scenarios import sequential_process


def entry(task, minute=0, case="C-1"):
    return LogEntry(
        user="Sam",
        role="Staff",
        action="work",
        obj=None,
        task=task,
        case=case,
        timestamp=datetime(2010, 1, 1, 9, 0) + timedelta(minutes=minute),
        status=Status.SUCCESS,
    )


def compiled_checker(n_tasks=4):
    checker = ComplianceChecker(encode(sequential_process(n_tasks)))
    automaton = PurposeAutomaton(
        fingerprint=fingerprint_encoded(checker.encoded),
        purpose=checker.purpose,
        roles=checker.encoded.roles,
    )
    checker.attach_automaton(automaton)
    return checker, automaton


def grow(checker, n_tasks=4):
    """Feed one compliant trail, materializing states lazily."""
    trail = [entry(f"T{i}", i, case="G") for i in range(1, n_tasks + 1)]
    assert checker.check(trail).compliant


class TestThresholds:
    def test_no_growth_is_always_a_noop(self, tmp_path):
        _, automaton = compiled_checker()
        writer = CheckpointWriter(automaton, tmp_path / "a.json")
        assert writer.pending_growth == 0
        assert writer.maybe_save() is None
        assert writer.maybe_save(force=True) is None
        assert not (tmp_path / "a.json").exists()

    def test_growth_below_threshold_waits(self, tmp_path):
        checker, automaton = compiled_checker()
        writer = CheckpointWriter(
            automaton, tmp_path / "a.json", min_growth=10_000
        )
        grow(checker)
        assert writer.pending_growth > 0
        assert writer.maybe_save() is None
        assert not (tmp_path / "a.json").exists()

    def test_force_flushes_any_growth(self, tmp_path):
        checker, automaton = compiled_checker()
        writer = CheckpointWriter(
            automaton, tmp_path / "a.json", min_growth=10_000
        )
        grow(checker)
        path = writer.maybe_save(force=True)
        assert path is not None
        loaded = load_artifact(path, expected_fingerprint=automaton.fingerprint)
        assert loaded.state_count == automaton.state_count

    def test_interval_rate_limits(self, tmp_path):
        checker, automaton = compiled_checker()
        writer = CheckpointWriter(
            automaton,
            tmp_path / "a.json",
            min_growth=1,
            min_interval_s=3600.0,
        )
        grow(checker)
        assert writer.maybe_save() is None  # too soon after construction

    def test_zero_interval_saves_on_growth(self, tmp_path):
        checker, automaton = compiled_checker()
        writer = CheckpointWriter(
            automaton, tmp_path / "a.json", min_growth=1, min_interval_s=0.0
        )
        grow(checker)
        assert writer.maybe_save() is not None


class TestIncrementality:
    def test_second_checkpoint_extends_the_first(self, tmp_path):
        checker, automaton = compiled_checker()
        writer = CheckpointWriter(automaton, tmp_path / "a.json")
        grow(checker)
        first = writer.maybe_save(force=True)
        first_states = load_artifact(first).state_count
        assert writer.pending_growth == 0

        # a violating trail reaches a new (rejection-adjacent) prefix
        assert not checker.check([entry("T1", 0), entry("T3", 1)]).compliant
        if writer.pending_growth > 0:
            second = writer.maybe_save(force=True)
            assert load_artifact(second).state_count >= first_states

    def test_close_is_force_flush(self, tmp_path):
        checker, automaton = compiled_checker()
        writer = CheckpointWriter(
            automaton, tmp_path / "a.json", min_growth=10_000
        )
        grow(checker)
        assert writer.close() is not None
        assert writer.close() is None  # nothing new to flush


class TestTelemetry:
    def test_counter_and_event(self, tmp_path):
        log = MemoryEventLog()
        registry = MetricsRegistry()
        tel = Telemetry.create(registry=registry, events=log.events)
        checker, automaton = compiled_checker()
        writer = CheckpointWriter(
            automaton, tmp_path / "a.json", telemetry=tel
        )
        grow(checker)
        writer.maybe_save(force=True)
        assert registry.counter("automaton_checkpoints_total").value() == 1.0
        events = log.named(AUTOMATON_CHECKPOINT)
        assert len(events) == 1
        assert events[0]["states"] == automaton.state_count
