"""Tests for shipping compiled automata to parallel workers.

The satellite guarantee under test: with compiled replay enabled, the
BPMN of each purpose is encoded **at most once per audit** — in the
parent, during pre-compilation.  Workers warmed from the shipped
automaton document never re-encode; the interpreted backend is built
lazily only when a case needs a transition the artifact does not cover.
"""

import importlib

import pytest

import repro.policy.registry as registry_module

# ``from repro.bpmn.encode import encode`` in the package __init__ shadows
# the submodule attribute, so resolve the module itself explicitly.
encode_module = importlib.import_module("repro.bpmn.encode")
from repro.core.parallel import (
    _WorkerState,
    _audit_case_guarded,
    _compile_for_workers,
    audit_cases_parallel,
)
from repro.obs import NULL_TELEMETRY
from repro.policy.registry import ProcessRegistry
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)


@pytest.fixture
def encode_counter(monkeypatch):
    """Count every BPMN encoding, wherever it is invoked from.

    ``repro.policy.registry`` binds ``encode`` at import time, so both
    the module attribute and the registry's reference must be patched.
    """
    calls = []
    real_encode = encode_module.encode

    def counting_encode(process, *args, **kwargs):
        calls.append(process.purpose)
        return real_encode(process, *args, **kwargs)

    monkeypatch.setattr(encode_module, "encode", counting_encode)
    monkeypatch.setattr(registry_module, "encode", counting_encode)
    return calls


def worker_state_for(registry, automaton_documents, hierarchy=None):
    from repro.bpmn.serialize import process_to_dict

    documents = {
        purpose: process_to_dict(registry.process_for(purpose))
        for purpose in registry.purposes()
    }
    prefixes = {
        prefix: purpose
        for purpose in registry.purposes()
        for prefix in [registry.case_prefix_of(purpose)]
        if prefix is not None
    }
    return _WorkerState(
        documents,
        prefixes,
        hierarchy.to_parent_map() if hierarchy is not None else None,
        50_000,
        False,
        None,
        None,
        automaton_documents,
    )


class TestEncodeAtMostOncePerAudit:
    def test_precompile_encodes_each_purpose_once(self, encode_counter):
        registry = process_registry()
        hierarchy = role_hierarchy()
        shipped = _compile_for_workers(
            registry, hierarchy, 50_000, None, 50_000, NULL_TELEMETRY
        )
        assert set(shipped) == set(registry.purposes())
        assert sorted(encode_counter) == sorted(registry.purposes())

    def test_warmed_workers_never_reencode(self, encode_counter):
        """Replaying the paper's full trail through a worker warmed from
        the shipped documents adds zero encode calls."""
        registry = process_registry()
        hierarchy = role_hierarchy()
        trail = paper_audit_trail()
        shipped = _compile_for_workers(
            registry, hierarchy, 50_000, None, 50_000, NULL_TELEMETRY
        )
        encodes_after_precompile = len(encode_counter)
        assert encodes_after_precompile == len(registry.purposes())

        state = worker_state_for(registry, shipped, hierarchy)
        results = {
            case: _audit_case_guarded(
                state, case, trail.for_case(case).entries
            )
            for case in trail.cases()
        }
        assert all(r["error"] is None for r in results.values())
        assert len(encode_counter) == encodes_after_precompile

    def test_unwarmed_worker_encodes_on_demand(self, encode_counter):
        """Without shipped automata a worker builds the interpreted
        checker — exactly one encode per purpose it actually touches."""
        registry = process_registry()
        trail = paper_audit_trail()
        state = worker_state_for(registry, None, role_hierarchy())
        for case in trail.cases():
            _audit_case_guarded(state, case, trail.for_case(case).entries)
        assert sorted(set(encode_counter)) == sorted(registry.purposes())
        assert len(encode_counter) == len(set(encode_counter))


class TestParallelCompiledVerdicts:
    def test_pool_with_compiled_matches_plain(self):
        registry = process_registry()
        hierarchy = role_hierarchy()
        trail = paper_audit_trail()
        plain = audit_cases_parallel(
            registry, trail, workers=2, hierarchy=hierarchy
        )
        compiled = audit_cases_parallel(
            registry, trail, workers=2, hierarchy=hierarchy, compiled=True
        )
        assert {c: o.verdict for c, o in plain.items()} == {
            c: o.verdict for c, o in compiled.items()
        }
        assert {c: o.failed_index for c, o in plain.items()} == {
            c: o.failed_index for c, o in compiled.items()
        }

    def test_artifact_dir_round_trip(self, tmp_path):
        """Second parallel run loads the artifacts the first one wrote."""
        registry = process_registry()
        hierarchy = role_hierarchy()
        trail = paper_audit_trail()
        first = audit_cases_parallel(
            registry,
            trail,
            workers=2,
            hierarchy=hierarchy,
            automaton_dir=str(tmp_path),
        )
        artifacts = sorted(tmp_path.glob("*.automaton.json"))
        assert len(artifacts) == len(registry.purposes())
        second = audit_cases_parallel(
            registry,
            trail,
            workers=2,
            hierarchy=hierarchy,
            automaton_dir=str(tmp_path),
        )
        assert {c: o.verdict for c, o in first.items()} == {
            c: o.verdict for c, o in second.items()
        }

    def test_poisoned_purpose_does_not_break_precompile(self, encode_counter):
        """A purpose whose compilation fails keeps its lazy containment;
        the others still ship automata."""
        registry = process_registry()

        class ExplodingRegistry(ProcessRegistry):
            def encoded_for(self, purpose):
                if purpose == "treatment":
                    raise RuntimeError("boom")
                return super().encoded_for(purpose)

        exploding = ExplodingRegistry()
        for purpose in registry.purposes():
            exploding.register(
                registry.process_for(purpose),
                registry.case_prefix_of(purpose),
            )
        shipped = _compile_for_workers(
            exploding, None, 50_000, None, 50_000, NULL_TELEMETRY
        )
        assert "treatment" not in shipped
        assert set(shipped) == set(registry.purposes()) - {"treatment"}
