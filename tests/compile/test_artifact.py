"""Tests for artifact persistence, validation, and the cache directory."""

import json

import pytest

from repro.bpmn import encode
from repro.compile import (
    FORMAT_NAME,
    FORMAT_VERSION,
    AutomatonCache,
    artifact_path,
    compile_automaton,
    load_artifact,
    save_artifact,
)
from repro.core import ComplianceChecker
from repro.errors import ArtifactError
from repro.obs import MetricsRegistry, Telemetry
from repro.obs.log import ARTIFACT_INVALID, MemoryEventLog
from repro.scenarios import sequential_process
from repro.testing import corrupt_artifact


@pytest.fixture
def automaton():
    checker = ComplianceChecker(encode(sequential_process(2)))
    return compile_automaton(checker)


@pytest.fixture
def saved(automaton, tmp_path):
    path = artifact_path(tmp_path, automaton.purpose, automaton.fingerprint)
    save_artifact(automaton, path)
    return path


def telemetry_with_log():
    log = MemoryEventLog()
    registry = MetricsRegistry()
    return Telemetry.create(registry=registry, events=log.events), log, registry


class TestSaveLoad:
    def test_round_trip(self, automaton, saved):
        loaded = load_artifact(
            saved, expected_fingerprint=automaton.fingerprint
        )
        assert loaded.tier == "disk"
        assert loaded.state_count == automaton.state_count
        assert loaded.transition_count == automaton.transition_count

    def test_envelope_shape(self, saved):
        envelope = json.loads(saved.read_text())
        assert envelope["format"] == FORMAT_NAME
        assert envelope["version"] == FORMAT_VERSION
        assert list(envelope)[-1] == "eof" and envelope["eof"] is True

    def test_path_is_keyed_by_purpose_and_fingerprint(
        self, automaton, tmp_path
    ):
        path = artifact_path(
            tmp_path, automaton.purpose, automaton.fingerprint
        )
        assert automaton.fingerprint[:16] in path.name
        assert path.suffix == ".json"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(tmp_path / "nope.json")
        assert excinfo.value.reason == "missing"


class TestCorruptionModes:
    """Every corruption must be detected with the right reason — the
    cache turns each into a transparent recompile, never a crash."""

    @pytest.mark.parametrize(
        "mode,reason",
        [
            ("truncate", "truncated"),
            ("garbage", "unreadable"),
            ("empty", "truncated"),
            ("version", "version"),
            ("fingerprint", "fingerprint"),
        ],
    )
    def test_detected_with_reason(self, automaton, saved, mode, reason):
        corrupt_artifact(saved, mode)
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(saved, expected_fingerprint=automaton.fingerprint)
        assert excinfo.value.reason == reason

    def test_wrong_format_name(self, automaton, saved):
        envelope = json.loads(saved.read_text())
        envelope["format"] = "something-else"
        saved.write_text(json.dumps(envelope))
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(saved)
        assert excinfo.value.reason == "format"

    def test_unknown_mode_rejected(self, saved):
        with pytest.raises(ValueError):
            corrupt_artifact(saved, "hammer")


class TestAutomatonCache:
    def test_miss_then_hit(self, automaton, tmp_path):
        cache = AutomatonCache(tmp_path)
        assert cache.load(automaton.purpose, automaton.fingerprint) is None
        cache.save(automaton)
        loaded = cache.load(automaton.purpose, automaton.fingerprint)
        assert loaded is not None
        assert loaded.state_count == automaton.state_count

    def test_invalid_artifact_is_a_miss_with_event(self, automaton, tmp_path):
        tel, log, registry = telemetry_with_log()
        cache = AutomatonCache(tmp_path, telemetry=tel)
        path = cache.save(automaton)
        corrupt_artifact(path, "truncate")
        assert cache.load(automaton.purpose, automaton.fingerprint) is None
        events = log.named(ARTIFACT_INVALID)
        assert len(events) == 1
        assert events[0]["reason"] == "truncated"
        assert (
            registry.counter("automaton_artifacts_invalid_total").value(
                reason="truncated"
            )
            == 1.0
        )

    def test_plain_miss_emits_no_event(self, automaton, tmp_path):
        tel, log, _ = telemetry_with_log()
        cache = AutomatonCache(tmp_path, telemetry=tel)
        assert cache.load(automaton.purpose, automaton.fingerprint) is None
        assert log.named(ARTIFACT_INVALID) == []

    def test_stale_fingerprint_is_a_miss(self, automaton, tmp_path):
        """A process edit changes the fingerprint; yesterday's artifact
        must not be served for today's process."""
        tel, log, _ = telemetry_with_log()
        cache = AutomatonCache(tmp_path, telemetry=tel)
        cache.save(automaton)
        stale = cache.path_for(automaton.purpose, "f" * 64)
        cache.path_for(automaton.purpose, automaton.fingerprint).rename(stale)
        assert cache.load(automaton.purpose, "f" * 64) is None
        assert log.named(ARTIFACT_INVALID)[0]["reason"] == "fingerprint"
