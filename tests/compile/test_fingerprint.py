"""Tests for artifact fingerprinting (cache keys and invalidation)."""

from repro.bpmn import encode
from repro.compile import (
    fingerprint_encoded,
    fingerprint_process,
    frontier_key,
    term_digest,
)
from repro.policy.hierarchy import RoleHierarchy
from repro.scenarios import (
    healthcare_treatment_process,
    role_hierarchy,
    sequential_process,
)


class TestFingerprintStability:
    def test_same_process_same_fingerprint(self):
        a = fingerprint_process(healthcare_treatment_process())
        b = fingerprint_process(healthcare_treatment_process())
        assert a == b

    def test_fingerprint_is_hex_sha256(self):
        fp = fingerprint_process(sequential_process(2))
        assert len(fp) == 64
        assert set(fp) <= set("0123456789abcdef")

    def test_encoded_matches_process(self):
        process = sequential_process(3)
        assert fingerprint_encoded(encode(process)) == fingerprint_process(
            process
        )


class TestFingerprintSensitivity:
    """Anything that changes replay semantics must change the key."""

    def test_different_structure(self):
        assert fingerprint_process(
            sequential_process(2)
        ) != fingerprint_process(sequential_process(3))

    def test_role_hierarchy_is_part_of_the_key(self):
        process = healthcare_treatment_process()
        bare = fingerprint_process(process)
        with_hierarchy = fingerprint_process(
            process, hierarchy=role_hierarchy()
        )
        assert bare != with_hierarchy

    def test_hierarchy_edges_matter(self):
        process = sequential_process(2)
        h1 = RoleHierarchy()
        h1.add_role("Senior", "Staff")
        h2 = RoleHierarchy()
        h2.add_role("Junior", "Staff")
        assert fingerprint_process(
            process, hierarchy=h1
        ) != fingerprint_process(process, hierarchy=h2)

    def test_silent_tasks_are_part_of_the_key(self):
        process = sequential_process(2)
        assert fingerprint_process(process) != fingerprint_process(
            process, silent_tasks=("T1",)
        )

    def test_silent_task_order_is_irrelevant(self):
        process = sequential_process(3)
        assert fingerprint_process(
            process, silent_tasks=("T1", "T2")
        ) == fingerprint_process(process, silent_tasks=("T2", "T1"))


class TestFrontierKey:
    def test_order_sensitive(self):
        """Interpreted replay's step records depend on frontier order, so
        two frontiers with the same configurations in different order are
        *different* automaton states."""
        a = ("d1", (("R", "T1"),))
        b = ("d2", (("R", "T2"),))
        assert frontier_key([a, b]) != frontier_key([b, a])

    def test_active_set_sensitive(self):
        assert frontier_key(
            [("d1", (("R", "T1"),))]
        ) != frontier_key([("d1", (("R", "T2"),))])

    def test_term_digest_deterministic(self):
        assert term_digest("some-term") == term_digest("some-term")
        assert term_digest("some-term") != term_digest("other-term")
