"""Tests for the lazy subset-construction purpose automaton."""

from datetime import datetime, timedelta

import pytest

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.compile import (
    ERR_KEY,
    REJECTED_STATE,
    EntryKeyer,
    PurposeAutomaton,
    compile_automaton,
    fingerprint_encoded,
)
from repro.core import ComplianceChecker
from repro.errors import ArtifactError, AutomatonExplosionError
from repro.obs import MetricsRegistry, Telemetry
from repro.policy.hierarchy import RoleHierarchy
from repro.scenarios import sequential_process
from repro.testing import assert_equivalent_verdicts


def entry(task, minute=0, role="Staff", status=Status.SUCCESS, case="C-1"):
    return LogEntry(
        user="Sam",
        role=role,
        action="work",
        obj=None,
        task=task,
        case=case,
        timestamp=datetime(2010, 1, 1, 9, 0) + timedelta(minutes=minute),
        status=status,
    )


def fresh_checker(n_tasks=2, **kwargs):
    return ComplianceChecker(encode(sequential_process(n_tasks)), **kwargs)


def attach_fresh_automaton(checker, **kwargs):
    automaton = PurposeAutomaton(
        fingerprint=fingerprint_encoded(checker.encoded),
        purpose=checker.purpose,
        roles=checker.encoded.roles,
        **kwargs,
    )
    checker.attach_automaton(automaton)
    return automaton


class TestEntryKeyer:
    def test_failed_entries_share_the_error_key(self):
        keyer = EntryKeyer(["Staff"], None)
        assert keyer.key(entry("T1", status=Status.FAILURE)) == ERR_KEY
        assert keyer.key(entry("T2", status=Status.FAILURE)) == ERR_KEY

    def test_key_separates_tasks(self):
        keyer = EntryKeyer(["Staff"], None)
        assert keyer.key(entry("T1")) != keyer.key(entry("T2"))

    def test_specialized_role_keys_like_its_pool_role(self):
        """A Senior (specializing Staff) drives the same alphabet symbol
        as a Staff entry — absorption and matching are identical."""
        hierarchy = RoleHierarchy()
        hierarchy.add_role("Senior", "Staff")
        keyer = EntryKeyer(["Staff"], hierarchy)
        assert keyer.matched_roles("Senior") == frozenset({"Staff"})
        assert keyer.key(entry("T1", role="Senior")) == keyer.key(
            entry("T1", role="Staff")
        )

    def test_unknown_role_keys_differently(self):
        keyer = EntryKeyer(["Staff"], None)
        assert keyer.matched_roles("Visitor") == frozenset()
        assert keyer.key(entry("T1", role="Visitor")) != keyer.key(
            entry("T1", role="Staff")
        )


class TestLazyConstruction:
    def test_bind_interns_the_initial_state(self):
        checker = fresh_checker()
        automaton = attach_fresh_automaton(checker)
        assert automaton.state_count == 1
        assert automaton.initial() == 0

    def test_states_materialize_on_demand_and_are_reused(self):
        registry = MetricsRegistry()
        tel = Telemetry.create(registry=registry)
        checker = fresh_checker(telemetry=tel)
        automaton = attach_fresh_automaton(checker, telemetry=tel)
        trail = [entry("T1", 0), entry("T2", 1)]

        assert checker.check(trail).compliant
        first_pass_states = automaton.state_count
        assert first_pass_states > 1
        misses = registry.counter("automaton_misses_total").value()
        assert misses >= 2.0

        assert checker.check(trail).compliant  # warm replay
        assert automaton.state_count == first_pass_states
        assert registry.counter("automaton_misses_total").value() == misses
        assert (
            registry.counter("automaton_hits_total").value(tier="memory")
            >= 2.0
        )

    def test_rejection_is_a_sink_not_a_state(self):
        checker = fresh_checker()
        automaton = attach_fresh_automaton(checker)
        transition = automaton.extend(
            automaton.initial(), automaton.entry_key(entry("T2"))
        )
        assert transition.target == REJECTED_STATE
        result = checker.check([entry("T2", 0)])
        assert not result.compliant
        assert result.failed_index == 0

    def test_compiled_verdicts_match_interpreted(self):
        compiled = fresh_checker()
        attach_fresh_automaton(compiled)
        interpreted = fresh_checker()
        for trail in (
            [entry("T1", 0), entry("T2", 1)],
            [entry("T1", 0)],
            [entry("T2", 0)],
            [entry("T1", 0), entry("T1", 1)],
            [entry("T1", 0, status=Status.FAILURE)],
        ):
            assert_equivalent_verdicts(
                interpreted.check(trail), compiled.check(trail)
            )

    def test_classification(self):
        checker = fresh_checker()
        automaton = attach_fresh_automaton(checker)
        session = checker.session()
        session.feed(entry("T1", 0))
        assert session.may_continue
        session.feed(entry("T2", 1))
        assert not session.may_continue
        result = session.result()
        assert result.compliant and not result.may_continue


class TestGuards:
    def test_max_states_raises_explosion(self):
        checker = fresh_checker()
        automaton = attach_fresh_automaton(checker, max_states=1)
        with pytest.raises(AutomatonExplosionError):
            automaton.extend(
                automaton.initial(), automaton.entry_key(entry("T1"))
            )

    def test_explosion_falls_back_to_interpreted(self):
        """A too-small automaton must degrade, not fail: the session
        transparently re-replays through the interpreted engine."""
        checker = fresh_checker()
        attach_fresh_automaton(checker, max_states=1)
        plain = fresh_checker()
        trail = [entry("T1", 0), entry("T2", 1)]
        assert_equivalent_verdicts(plain.check(trail), checker.check(trail))

    def test_dedupe_ablation_is_incompatible(self):
        checker = fresh_checker(dedupe_frontier=False)
        with pytest.raises(ValueError, match="dedupe_frontier"):
            attach_fresh_automaton(checker)


class TestEagerCompile:
    def test_exhaustive_compile_covers_the_alphabet(self):
        """After compile_automaton, replays of in-alphabet trails are
        pure lookups — the miss counter stays frozen."""
        registry = MetricsRegistry()
        tel = Telemetry.create(registry=registry)
        checker = fresh_checker(telemetry=tel)
        automaton = compile_automaton(checker, telemetry=tel)
        assert automaton.state_count >= 3
        assert automaton.transition_count > 0
        misses = registry.counter("automaton_misses_total").value()
        assert checker.check([entry("T1", 0), entry("T2", 1)]).compliant
        assert not checker.check([entry("T2", 0)]).compliant
        assert not checker.check(
            [entry("T1", 0, status=Status.FAILURE)]
        ).compliant
        assert registry.counter("automaton_misses_total").value() == misses

    def test_partial_compile_on_tiny_budget_still_replays(self):
        checker = fresh_checker()
        automaton = compile_automaton(checker, max_states=2)
        assert automaton.state_count <= 2
        plain = fresh_checker()
        trail = [entry("T1", 0), entry("T2", 1)]
        assert_equivalent_verdicts(plain.check(trail), checker.check(trail))


class TestDocumentRoundTrip:
    def test_round_trip_preserves_structure(self):
        checker = fresh_checker()
        automaton = compile_automaton(checker)
        clone = PurposeAutomaton.from_document(automaton.to_document())
        assert clone.tier == "disk"
        assert clone.fingerprint == automaton.fingerprint
        assert clone.purpose == automaton.purpose
        assert clone.state_count == automaton.state_count
        assert clone.transition_count == automaton.transition_count

    def test_materialize_rebuilds_configurations_from_witness_paths(self):
        checker = fresh_checker()
        automaton = compile_automaton(checker)
        clone = PurposeAutomaton.from_document(automaton.to_document())
        host = fresh_checker()
        clone.bind(host.engine, host.initial_configuration)
        target = clone.extend(
            clone.initial(), clone.entry_key(entry("T1"))
        ).target
        configs = clone.materialize(target)
        assert configs
        assert clone.state_active_sets(target) == frozenset(
            conf.active for conf in configs
        )

    def test_binding_a_foreign_process_is_rejected(self):
        checker = fresh_checker()
        automaton = compile_automaton(checker)
        clone = PurposeAutomaton.from_document(automaton.to_document())
        other = fresh_checker(n_tasks=3)
        with pytest.raises(ArtifactError):
            clone.bind(other.engine, other.initial_configuration)

    def test_malformed_document_raises_artifact_error(self):
        with pytest.raises(ArtifactError):
            PurposeAutomaton.from_document({"purpose": "x"})
        with pytest.raises(ArtifactError):
            PurposeAutomaton.from_document(
                {
                    "purpose": "x",
                    "fingerprint": "f",
                    "roles": [],
                    "hierarchy": {},
                    "max_states": 10,
                    "states": [],
                }
            )
