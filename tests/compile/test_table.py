"""Tests for the dense transition-table tier (:mod:`repro.compile.table`).

The table is the fastest rung of the replay ladder — two array lookups
per entry, zero hashing — and it earns that position only because these
tests hold it to the exact behavior of the tiers beneath it: every cell
serves the same :class:`Transition` the automaton memoized, every
artifact round-trips bit-for-bit, and every corruption mode is rejected
at load time with the right reason and degrades to lazy replay instead
of failing an audit.
"""

import pytest

from repro.bpmn import encode
from repro.compile import (
    TABLE_FORMAT_VERSION,
    UNKNOWN_SYMBOL,
    AutomatonCache,
    CompiledChecker,
    PurposeAutomaton,
    compile_automaton,
    compile_table,
    fingerprint_encoded,
    load_table,
    save_table,
    table_path,
    warm_checker,
)
from repro.core import ComplianceChecker
from repro.errors import ArtifactError
from repro.obs import MetricsRegistry, Telemetry
from repro.obs.log import (
    ARTIFACT_INVALID,
    AUTOMATON_TABLE_COMPILED,
    MemoryEventLog,
)
from repro.scenarios import hospital_day, role_hierarchy, sequential_process
from repro.testing import canonical_digest, corrupt_artifact


@pytest.fixture
def automaton():
    checker = ComplianceChecker(encode(sequential_process(3)))
    return compile_automaton(checker)


@pytest.fixture
def table(automaton):
    return compile_table(automaton)


@pytest.fixture
def saved(table, tmp_path):
    path = table_path(tmp_path, table.purpose, table.fingerprint)
    save_table(table, path)
    return path


def telemetry_with_log():
    log = MemoryEventLog()
    registry = MetricsRegistry()
    return Telemetry.create(registry=registry, events=log.events), log, registry


class TestCompile:
    def test_shape_covers_the_automaton(self, automaton, table):
        assert table.n_states == automaton.state_count
        assert table.n_symbols == len(table.symbols)
        assert len(table.cells) == table.n_states * table.n_symbols
        assert table.source == "memory"
        # Eagerly compiled automata memoize every canonical-alphabet
        # transition, so the flattened table is fully covered.
        assert table.coverage == 1.0

    def test_cells_agree_with_the_lazy_tier(self, automaton, table):
        for sid in range(automaton.state_count):
            for sym, key in enumerate(table.symbols):
                assert table.step(sid, sym) == automaton.lookup(sid, key)

    def test_pool_is_deduplicated(self, automaton, table):
        assert len(table.pool) == len(set(table.pool))
        assert len(table.pool) <= automaton.transition_count

    def test_may_continue_bitset(self, automaton, table):
        for sid in range(automaton.state_count):
            assert table.state_may_continue(sid) == (
                automaton.state_may_continue(sid)
            )

    def test_step_rejects_out_of_range(self, table):
        assert table.step(0, UNKNOWN_SYMBOL) is None
        assert table.step(-1, 0) is None
        assert table.step(table.n_states, 0) is None

    def test_step_batch_matches_step(self, table):
        sids, syms = [], []
        for sid in range(-1, table.n_states + 1):
            for sym in range(-1, table.n_symbols):
                sids.append(sid)
                syms.append(sym)
        batched = table.step_batch(sids, syms)
        assert len(batched) >= 8  # exercises the vectorized path
        for sid, sym, got in zip(sids, syms, batched):
            assert got == table.step(sid, sym), (sid, sym)
        # The short-input path (plain loop) must agree too.
        assert table.step_batch(sids[:3], syms[:3]) == batched[:3]

    def test_entry_symbol_interns_each_pair_once(self, automaton, table):
        state = automaton._states[0]
        key = next(k for k in state.transitions if "\x1f" in k)
        task = key.split("\x1f")[1]
        role = next(iter(automaton.keyer.roles))
        first = table.entry_symbol(task, role)
        assert table.entry_symbol(task, role) == first
        assert table.entry_symbol("NoSuchTask", role) == UNKNOWN_SYMBOL
        # Misses are cached as well — the negative result is interned.
        assert ("NoSuchTask", role) in table._entry_symbols

    def test_compile_emits_telemetry(self, automaton):
        telemetry, log, registry = telemetry_with_log()
        table = compile_table(automaton, telemetry=telemetry)
        events = log.named(AUTOMATON_TABLE_COMPILED)
        assert len(events) == 1
        assert events[0]["states"] == table.n_states
        assert events[0]["symbols"] == table.n_symbols
        assert events[0]["pool"] == len(table.pool)
        gauge = registry.gauge("automaton_table_states")
        assert gauge.value(purpose=automaton.purpose) == table.n_states


class TestRoundTrip:
    def test_path_is_keyed_by_purpose_and_fingerprint(self, table, tmp_path):
        path = table_path(tmp_path, table.purpose, table.fingerprint)
        assert table.fingerprint[:16] in path.name
        assert path.name.endswith(".table.bin")

    def test_mmap_load_is_bit_identical(self, table, saved):
        loaded = load_table(saved, expected_fingerprint=table.fingerprint)
        try:
            assert loaded.source == "mmap"
            assert loaded.fingerprint == table.fingerprint
            assert loaded.purpose == table.purpose
            assert loaded.symbols == table.symbols
            assert loaded.pool == table.pool
            assert loaded.n_states == table.n_states
            assert loaded.states_digest == table.states_digest
            assert loaded.may_continue_bits == table.may_continue_bits
            assert list(loaded.cells) == list(table.cells)
        finally:
            loaded.close()

    def test_loaded_table_keys_entries_without_the_automaton(
        self, automaton, table, saved
    ):
        """The artifact carries roles + hierarchy, so a loaded table can
        intern ``(task, role)`` pairs before any automaton binds it."""
        loaded = load_table(saved)
        try:
            state = automaton._states[0]
            key = next(k for k in state.transitions if "\x1f" in k)
            task = key.split("\x1f")[1]
            role = next(iter(automaton.keyer.roles))
            assert loaded.entry_symbol(task, role) == table.entry_symbol(
                task, role
            )
        finally:
            loaded.close()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError) as excinfo:
            load_table(tmp_path / "nope.table.bin")
        assert excinfo.value.reason == "missing"

    def test_fingerprint_mismatch(self, saved):
        with pytest.raises(ArtifactError) as excinfo:
            load_table(saved, expected_fingerprint="0" * 64)
        assert excinfo.value.reason == "fingerprint"


class TestCorruptionModes:
    """Every way a table artifact can rot must be detected at load time
    with the right reason — and absorbed as a cache miss, never raised
    into an audit."""

    MODES = [
        ("truncate", "truncated"),
        ("garbage", "format"),
        ("empty", "truncated"),
        ("version", "version"),
        ("bitflip", "tamper"),
        ("fingerprint", "fingerprint"),
    ]

    @pytest.mark.parametrize("mode,reason", MODES)
    def test_load_rejects_with_reason(self, table, saved, mode, reason):
        corrupt_artifact(saved, mode)
        with pytest.raises(ArtifactError) as excinfo:
            load_table(saved, expected_fingerprint=table.fingerprint)
        assert excinfo.value.reason == reason

    @pytest.mark.parametrize("mode,reason", MODES)
    def test_cache_treats_corruption_as_reported_miss(
        self, automaton, mode, reason, tmp_path
    ):
        telemetry, log, registry = telemetry_with_log()
        cache = AutomatonCache(tmp_path, telemetry=telemetry)
        cache.save_table(compile_table(automaton))
        corrupt_artifact(
            cache.table_path_for(automaton.purpose, automaton.fingerprint),
            mode,
        )
        assert cache.load_table(
            automaton.purpose, automaton.fingerprint
        ) is None
        events = log.named(ARTIFACT_INVALID)
        assert len(events) == 1
        assert events[0]["reason"] == reason
        counter = registry.counter("automaton_artifacts_invalid_total")
        assert counter.value(reason=reason) == 1

    @pytest.mark.parametrize("mode", [m for m, _ in MODES])
    def test_audit_survives_on_the_lazy_tier(self, mode, tmp_path):
        """warm_checker with a rotten table: the automaton still attaches
        and replay falls back to lazy-DFA with identical verdicts."""
        workload = hospital_day(n_cases=4, violation_rate=0.3, seed=11)
        hierarchy = role_hierarchy()
        cache = AutomatonCache(tmp_path)
        donor = ComplianceChecker(workload.encoded, hierarchy=hierarchy)
        automaton = compile_automaton(donor)
        cache.save(automaton)
        cache.save_table(compile_table(automaton))
        corrupt_artifact(
            cache.table_path_for(automaton.purpose, automaton.fingerprint),
            mode,
        )
        checker = ComplianceChecker(workload.encoded, hierarchy=hierarchy)
        warmed = warm_checker(checker, cache=cache)
        assert warmed.table is None  # the corrupt table was skipped
        interpreted = ComplianceChecker(workload.encoded, hierarchy=hierarchy)
        for case in workload.trail.cases():
            case_trail = workload.trail.for_case(case)
            assert canonical_digest(checker.check(case_trail)) == (
                canonical_digest(interpreted.check(case_trail))
            ), case


class TestStateAlignment:
    def test_attach_requires_matching_fingerprint(self, automaton, table):
        other = ComplianceChecker(encode(sequential_process(4)))
        stranger = compile_automaton(other)
        with pytest.raises(ArtifactError) as excinfo:
            stranger.attach_table(table)
        assert excinfo.value.reason == "fingerprint"

    def test_attach_rejects_misaligned_states(self, automaton, table):
        """Same fingerprint, different state numbering: a fresh lazy
        automaton has only the initial state, so the table's id space
        cannot be trusted against it."""
        fresh = PurposeAutomaton(
            fingerprint=automaton.fingerprint,
            purpose=automaton.purpose,
            roles=automaton.keyer.roles,
        )
        with pytest.raises(ArtifactError) as excinfo:
            fresh.attach_table(table)
        assert excinfo.value.reason == "state_mismatch"

    def test_attach_tolerates_automaton_growth(self, automaton, table):
        """A table stays valid while the automaton grows beyond it: the
        digest covers only the table's id prefix."""
        automaton.attach_table(table)
        assert automaton.table is table

    def test_version_constant_guards_the_layout(self):
        assert TABLE_FORMAT_VERSION == 1


class TestReplayThroughTheTable:
    def test_table_replay_matches_interpreted(self, tmp_path):
        workload = hospital_day(n_cases=6, violation_rate=0.4, seed=3)
        hierarchy = role_hierarchy()

        def factory():
            return ComplianceChecker(workload.encoded, hierarchy=hierarchy)

        automaton = compile_automaton(factory())
        saved = save_table(
            compile_table(automaton),
            table_path(tmp_path, automaton.purpose, automaton.fingerprint),
        )
        loaded = load_table(saved, expected_fingerprint=automaton.fingerprint)
        automaton.attach_table(loaded)
        compiled = CompiledChecker(automaton, checker_factory=factory)
        interpreted = factory()
        try:
            for case in workload.trail.cases():
                case_trail = workload.trail.for_case(case)
                assert canonical_digest(compiled.check(case_trail)) == (
                    canonical_digest(interpreted.check(case_trail))
                ), case
        finally:
            loaded.close()
