"""Tests for optimal trail-to-process alignments."""

from datetime import datetime, timedelta

import pytest

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.core import ComplianceChecker
from repro.core.alignment import MoveKind, align
from repro.scenarios import (
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
    sequential_process,
    xor_process,
)


def entries_for(tasks, role="Staff"):
    clock = datetime(2010, 1, 1)
    out = []
    for task in tasks:
        clock += timedelta(minutes=1)
        out.append(
            LogEntry(
                user="Sam", role=role, action="work", obj=None, task=task,
                case="C-1", timestamp=clock, status=Status.SUCCESS,
            )
        )
    return out


@pytest.fixture(scope="module")
def seq_checker():
    return ComplianceChecker(encode(sequential_process(4)))


class TestPerfectAlignments:
    def test_compliant_trail_costs_zero(self, seq_checker):
        alignment = align(seq_checker, entries_for(["T1", "T2", "T3"]))
        assert alignment.is_perfect
        assert all(m.kind is MoveKind.SYNC for m in alignment.moves)

    def test_absorbed_repeats_cost_zero(self, seq_checker):
        alignment = align(seq_checker, entries_for(["T1", "T1", "T1", "T2"]))
        assert alignment.is_perfect

    def test_empty_trail(self, seq_checker):
        alignment = align(seq_checker, [])
        assert alignment.is_perfect
        assert alignment.moves == ()


class TestRepairs:
    def test_skipped_task_costs_one_model_move(self, seq_checker):
        alignment = align(seq_checker, entries_for(["T1", "T3"]))
        assert alignment.complete
        assert alignment.cost == 1
        assert [str(m) for m in alignment.model_moves] == [
            "model-only(Staff.T2)"
        ]

    def test_far_jump_prefers_cheapest_repair(self, seq_checker):
        # Jumping T1 -> T4 over two tasks: deleting the single T4 entry
        # (1 log move) is cheaper than inserting T2 and T3 (2 model moves).
        alignment = align(seq_checker, entries_for(["T1", "T4"]))
        assert alignment.cost == 1
        assert [str(m) for m in alignment.log_moves] == ["log-only(Staff.T4)"]

    def test_two_skipped_tasks_with_corroborated_jump(self, seq_checker):
        # Two T4 entries corroborate that T4 really ran: now the two
        # model moves tie with two log moves, and the tie-break prefers
        # explaining through the process.
        alignment = align(seq_checker, entries_for(["T1", "T4", "T4"]))
        assert alignment.cost == 2
        assert {str(m) for m in alignment.model_moves} == {
            "model-only(Staff.T2)", "model-only(Staff.T3)",
        }
        assert not alignment.log_moves

    def test_garbage_entry_costs_one_log_move(self, seq_checker):
        alignment = align(seq_checker, entries_for(["T1", "T99", "T2"]))
        assert alignment.cost == 1
        assert [str(m) for m in alignment.log_moves] == [
            "log-only(Staff.T99)"
        ]

    def test_swap_costs_one(self, seq_checker):
        # T2 before T1: since any prefix of a valid run is acceptable,
        # the cheapest repair treats the premature T2 as extra work (one
        # log move) and syncs the T1 that follows.
        alignment = align(seq_checker, entries_for(["T2", "T1"]))
        assert alignment.complete
        assert alignment.cost == 1

    def test_moves_keep_trail_order(self, seq_checker):
        alignment = align(seq_checker, entries_for(["T1", "T3"]))
        kinds = [m.kind for m in alignment.moves]
        assert kinds == [MoveKind.SYNC, MoveKind.MODEL, MoveKind.SYNC]


class TestBranching:
    def test_alignment_picks_the_cheaper_branch(self):
        checker = ComplianceChecker(encode(xor_process(2)))
        # B1 taken but logged as B2: one log + one model, or vice versa.
        alignment = align(checker, entries_for(["T0", "B1", "B2"]))
        assert alignment.cost == 1  # the extra branch entry is log-only

    def test_fitness_normalization(self, seq_checker):
        entries = entries_for(["T1", "T3"])
        alignment = align(seq_checker, entries)
        fitness = alignment.fitness(len(entries))
        assert 0.0 < fitness < 1.0
        perfect = align(seq_checker, entries_for(["T1", "T2"]))
        assert perfect.fitness(2) == 1.0


class TestPaperScenario:
    @pytest.fixture(scope="class")
    def ht_checker(self):
        return ComplianceChecker(
            encode(healthcare_treatment_process()), role_hierarchy()
        )

    def test_ht1_aligns_perfectly(self, ht_checker):
        trail = list(paper_audit_trail().for_case("HT-1"))
        alignment = align(ht_checker, trail)
        assert alignment.is_perfect

    def test_harvesting_case_repair_plan(self, ht_checker):
        trail = list(paper_audit_trail().for_case("HT-11"))
        alignment = align(ht_checker, trail)
        assert alignment.complete
        # Cheapest explanations: treat the lone T06 read as extra work
        # (1 log move), since legitimizing it needs >= 2 model moves.
        assert alignment.cost == 1
        assert alignment.log_moves

    def test_graded_signal(self, ht_checker):
        """Alignment cost grades violations the boolean verdict cannot:
        a nearly-complete case scores closer to legitimate than a lone
        harvesting read."""
        legitimate = list(paper_audit_trail().for_case("HT-1"))
        nearly = legitimate[:5] + legitimate[6:]  # drop the first T06 read
        nearly_alignment = align(ht_checker, nearly)
        assert nearly_alignment.complete
        fitness_nearly = nearly_alignment.fitness(len(nearly))
        harvest = list(paper_audit_trail().for_case("HT-11"))
        fitness_harvest = align(ht_checker, harvest).fitness(len(harvest))
        assert fitness_nearly > fitness_harvest


class TestBudget:
    def test_budget_exhaustion_reports_incomplete(self, seq_checker):
        alignment = align(
            seq_checker, entries_for(["T9"] * 3), max_cost=0
        )
        assert not alignment.complete
        assert alignment.cost == 3  # the all-log-moves fallback bound
