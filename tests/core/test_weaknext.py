"""Tests for WeakNext (Definition 7), including the Fig. 5 example shape
and the decidability guard (Proposition 1)."""

import pytest

from repro.bpmn import ProcessBuilder, encode
from repro.core import ErrorEvent, Observables, TaskEvent, WeakNextEngine
from repro.core.configuration import Configuration
from repro.cows import parse
from repro.errors import NotFinitelyObservableError
from repro.scenarios import fig9_process, sequential_process


def engine_for(process):
    encoded = encode(process)
    return WeakNextEngine(Observables.from_encoded(encoded)), encoded


def fig5_like_process():
    """The shape of Fig. 5: one observable directly, two more behind a
    silent (gateway) step — WeakNext must return all three."""
    builder = ProcessBuilder("fig5")
    pool = builder.pool("P")
    pool.start_event("S").exclusive_gateway("G1")
    pool.task("A").exclusive_gateway("G2")
    pool.task("B").task("C")
    pool.end_event("EA").end_event("EB").end_event("EC")
    builder.chain("S", "G1")
    builder.flow("G1", "A").flow("G1", "G2")
    builder.flow("G2", "B").flow("G2", "C")
    builder.chain("A", "EA")
    builder.chain("B", "EB")
    builder.chain("C", "EC")
    return builder.build()


class TestFig5:
    def test_weaknext_collapses_silent_gateway_steps(self):
        engine, encoded = engine_for(fig5_like_process())
        results = engine.weak_next(encoded.term)
        events = {result[0] for result in results}
        assert events == {
            TaskEvent("P", "A"),
            TaskEvent("P", "B"),
            TaskEvent("P", "C"),
        }

    def test_states_behind_observables_not_returned(self):
        # Exactly one observable label: nothing beyond A/B/C is reachable.
        engine, encoded = engine_for(fig5_like_process())
        results = engine.weak_next(encoded.term)
        assert len(results) == 3


class TestExactlyOneObservable:
    def test_sequential_process_reveals_only_first_task(self):
        engine, encoded = engine_for(sequential_process(3))
        events = {r[0] for r in engine.weak_next(encoded.term)}
        assert events == {TaskEvent("Staff", "T1")}

    def test_chaining_reveals_subsequent_tasks(self):
        engine, encoded = engine_for(sequential_process(3))
        (first,) = engine.weak_next(encoded.term)
        events = {r[0] for r in engine.weak_next(first[1])}
        assert events == {TaskEvent("Staff", "T2")}

    def test_finished_process_has_empty_weaknext(self):
        engine, encoded = engine_for(sequential_process(1))
        (first,) = engine.weak_next(encoded.term)
        assert engine.weak_next(first[1]) == ()


class TestActiveTasks:
    def test_task_active_after_its_event(self):
        engine, encoded = engine_for(sequential_process(2))
        (first,) = engine.weak_next(encoded.term)
        event, _, active = first
        assert event == TaskEvent("Staff", "T1")
        assert active == {("Staff", "T1")}

    def test_initial_state_has_no_active_tasks(self):
        from repro.core.weaknext import state_active_tasks

        _, encoded = engine_for(sequential_process(2))
        assert state_active_tasks(encoded.term) == frozenset()

    def test_error_event_leads_to_empty_active_set(self):
        # Fig. 6 / St4: after sys.Err the failing task is no longer active.
        engine, encoded = engine_for(fig9_process())
        (first,) = engine.weak_next(encoded.term)
        results = engine.weak_next(first[1])
        error_results = [r for r in results if isinstance(r[0], ErrorEvent)]
        assert error_results
        for _, _, active in error_results:
            assert active == frozenset()


class TestErrorObservability:
    def test_error_and_success_both_offered(self):
        engine, encoded = engine_for(fig9_process())
        (first,) = engine.weak_next(encoded.term)
        events = {r[0] for r in engine.weak_next(first[1])}
        assert events == {ErrorEvent(), TaskEvent("P", "T2")}


class TestEngineMechanics:
    def test_memoization_returns_same_object(self):
        engine, encoded = engine_for(sequential_process(2))
        assert engine.weak_next(encoded.term) is engine.weak_next(encoded.term)

    def test_cache_size_grows(self):
        engine, encoded = engine_for(sequential_process(2))
        engine.weak_next(encoded.term)
        assert engine.cache_size() == 1

    def test_silent_state_accounting(self):
        engine, encoded = engine_for(fig5_like_process())
        engine.weak_next(encoded.term)
        assert engine.silent_states_explored >= 1


class TestDecidabilityGuard:
    def test_silent_livelock_raises(self):
        # A replicated silent producer: every silent step grows the state,
        # no observable is ever emitted -> not finitely observable.
        term = parse("[n]( *( n.t?<>.(n.t!<> | n.t!<>) ) | n.t!<>)")
        observables = Observables(frozenset({"P"}), frozenset({"T"}))
        engine = WeakNextEngine(observables, max_silent_states=50)
        with pytest.raises(NotFinitelyObservableError) as excinfo:
            engine.weak_next(engine.normalize(term))
        assert excinfo.value.states_explored >= 50

    def test_silent_cycle_terminates_via_state_dedup(self):
        # A silent *cycle* returns to the same canonical state: WeakNext
        # terminates with no results instead of diverging.
        term = parse("[n]( *( n.t?<>. n.t!<> ) | n.t!<>)")
        observables = Observables(frozenset({"P"}), frozenset({"T"}))
        engine = WeakNextEngine(observables, max_silent_states=1000)
        assert engine.weak_next(engine.normalize(term)) == ()


class TestConfigurationHelpers:
    def test_initial_configuration(self):
        engine, encoded = engine_for(sequential_process(2))
        conf = Configuration.initial(engine, encoded.term)
        assert conf.active == frozenset()
        assert len(conf.next) == 1
        assert conf.describe() == "(empty)"

    def test_reached_configuration(self):
        engine, encoded = engine_for(sequential_process(2))
        conf = Configuration.initial(engine, encoded.term)
        reached = Configuration.reached(engine, conf.next[0])
        assert reached.active == {("Staff", "T1")}
        assert reached.describe() == "{Staff.T1}"

    def test_configuration_identity_ignores_next(self):
        engine, encoded = engine_for(sequential_process(2))
        a = Configuration.initial(engine, encoded.term)
        b = Configuration(state=a.state, active=a.active, next=())
        assert a == b
        assert hash(a) == hash(b)
