"""Tests for the online (streaming) purpose-control monitor."""

from datetime import datetime, timedelta

import pytest

from repro.core.monitor import CaseState, OnlineMonitor
from repro.core.temporal import TemporalConstraints
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)


@pytest.fixture
def monitor():
    return OnlineMonitor(process_registry(), hierarchy=role_hierarchy())


class TestStreamingPaperTrail:
    def test_streaming_matches_batch_verdicts(self, monitor):
        for entry in paper_audit_trail():
            monitor.observe(entry)
        assert set(monitor.infringing_cases()) == {
            "HT-10", "HT-11", "HT-20", "HT-21", "HT-30",
        }
        assert monitor.case_state("HT-2") is CaseState.OPEN
        assert monitor.case_state("HT-1") in (CaseState.OPEN, CaseState.COMPLETED)

    def test_infringement_raised_at_offending_entry(self, monitor):
        trail = paper_audit_trail()
        raised = []
        for entry in trail:
            raised.extend((entry, i) for i in monitor.observe(entry))
        # The first infringement fires exactly on Bob's first harvest read.
        first_entry, first_infringement = raised[0]
        assert first_entry.case == "HT-10"
        assert first_infringement.case == "HT-10"

    def test_compliant_entries_raise_nothing(self, monitor):
        for entry in paper_audit_trail().for_case("HT-1"):
            assert monitor.observe(entry) == []

    def test_infringing_case_reported_once(self, monitor):
        trail = list(paper_audit_trail().for_case("HT-11"))
        extra = trail[0].shifted(timedelta(minutes=5))
        first = monitor.observe(trail[0])
        second = monitor.observe(extra)
        assert len(first) == 1
        assert second == []  # same case, already reported
        assert len(monitor.infringements) == 1

    def test_statistics(self, monitor):
        for entry in paper_audit_trail():
            monitor.observe(entry)
        stats = monitor.statistics()
        assert stats["entries"] == 28
        assert stats["infringing"] == 5


class TestUnknownPurpose:
    def test_unknown_case_prefix(self, monitor):
        entry = paper_audit_trail()[0]
        from dataclasses import replace

        alien = replace(entry, case="ZZ-1")
        raised = monitor.observe(alien)
        assert len(raised) == 1
        assert monitor.case_state("ZZ-1") is CaseState.INFRINGING


class TestTemporalSweep:
    def test_open_case_times_out(self):
        constraints = TemporalConstraints(max_case_duration=timedelta(days=10))
        monitor = OnlineMonitor(
            process_registry(),
            hierarchy=role_hierarchy(),
            temporal={"treatment": constraints},
        )
        for entry in paper_audit_trail().for_case("HT-2"):
            monitor.observe(entry)
        assert monitor.sweep(datetime(2010, 3, 15)) == []
        violations = monitor.sweep(datetime(2010, 6, 1))
        assert violations
        assert monitor.case_state("HT-2") is CaseState.TIMED_OUT

    def test_timed_out_case_not_reswept(self):
        constraints = TemporalConstraints(max_case_duration=timedelta(days=1))
        monitor = OnlineMonitor(
            process_registry(),
            hierarchy=role_hierarchy(),
            temporal={"treatment": constraints},
        )
        for entry in paper_audit_trail().for_case("HT-2"):
            monitor.observe(entry)
        first = monitor.sweep(datetime(2010, 6, 1))
        second = monitor.sweep(datetime(2010, 7, 1))
        assert first and not second

    def test_purposes_without_constraints_never_time_out(self, monitor):
        for entry in paper_audit_trail().for_case("HT-2"):
            monitor.observe(entry)
        assert monitor.sweep(datetime(2030, 1, 1)) == []


class TestCaseLifecycle:
    def test_open_cases_listing(self, monitor):
        for entry in paper_audit_trail().for_case("HT-2"):
            monitor.observe(entry)
        assert monitor.open_cases() == ["HT-2"]

    def test_unknown_case_state_is_none(self, monitor):
        assert monitor.case_state("HT-404") is None

    def test_ct_case_completes(self, monitor):
        # The CT-1 trail ends at T95 -> E90; depending on the loop the
        # frontier may still allow more T94 rounds from an earlier branch,
        # so accept OPEN or COMPLETED but require compliance.
        for entry in paper_audit_trail().for_case("CT-1"):
            assert monitor.observe(entry) == []
        assert monitor.case_state("CT-1") in (
            CaseState.OPEN, CaseState.COMPLETED,
        )


class TestFailureContainment:
    """Per-case failures are contained; the stream keeps flowing."""

    def sick_registry(self):
        from repro.bpmn import ProcessBuilder
        from repro.policy.registry import ProcessRegistry
        from repro.scenarios import sequential_process

        builder = ProcessBuilder("sick", purpose="sick")
        pool = builder.pool("Staff")
        pool.start_event("S").task("T")
        pool.exclusive_gateway("G1").exclusive_gateway("G2")
        pool.end_event("E")
        builder.chain("S", "T", "G1", "G2")
        builder.flow("G2", "G1")
        builder.flow("G2", "E")
        registry = ProcessRegistry()
        registry.register(sequential_process(2), "OK")
        registry.register(builder.build(validate=False), "NW")
        return registry

    def entry(self, case, task, minute=0):
        from repro.audit import LogEntry, Status

        return LogEntry(
            user="Sam", role="Staff", action="work", obj=None,
            task=task, case=case,
            timestamp=datetime(2010, 1, 1, 9, minute),
            status=Status.SUCCESS,
        )

    def test_non_well_founded_case_contained_as_undecidable(self):
        from repro.core import InfringementKind

        monitor = OnlineMonitor(self.sick_registry())
        raised = monitor.observe(self.entry("NW-1", "T"))
        assert len(raised) == 1
        assert raised[0].kind is InfringementKind.UNDECIDABLE
        assert monitor.case_state("NW-1") is CaseState.UNDECIDABLE
        assert monitor.failed_cases() == ["NW-1"]
        # reported once: further entries for the sick case are silent
        assert monitor.observe(self.entry("NW-1", "T", minute=1)) == []
        # ...and healthy cases keep streaming normally
        assert monitor.observe(self.entry("OK-1", "T1", minute=2)) == []
        assert monitor.case_state("OK-1") is CaseState.OPEN

    def test_feed_exception_contained_as_failed(self):
        from repro.core import InfringementKind

        monitor = OnlineMonitor(self.sick_registry())
        monitor.observe(self.entry("OK-1", "T1"))

        class ExplodingSession:
            def feed(self, entry):
                raise RuntimeError("checker blew up")

        monitor._cases["OK-1"].session = ExplodingSession()
        raised = monitor.observe(self.entry("OK-1", "T2", minute=1))
        assert len(raised) == 1
        assert raised[0].kind is InfringementKind.AUDIT_ERROR
        assert "checker blew up" in raised[0].detail
        assert monitor.case_state("OK-1") is CaseState.FAILED
        assert monitor.failed_cases() == ["OK-1"]
        # terminal: nothing more from this case
        assert monitor.observe(self.entry("OK-1", "T2", minute=2)) == []

    def test_contained_failures_counted_by_kind(self):
        from repro.obs import Telemetry

        telemetry = Telemetry.create()
        monitor = OnlineMonitor(self.sick_registry(), telemetry=telemetry)
        monitor.observe(self.entry("NW-1", "T"))
        assert telemetry.registry.counter("audit_errors_total").value(
            kind="undecidable"
        ) == 1

    def test_failed_cases_excluded_from_infringing_listing(self):
        monitor = OnlineMonitor(self.sick_registry())
        monitor.observe(self.entry("NW-1", "T"))
        assert monitor.infringing_cases() == []
        assert monitor.statistics()["undecidable"] == 1


class TestServeFacingSurface:
    """The methods the streaming audit service builds on."""

    def test_case_result_digests_match_batch_replay(self, monitor):
        """The incremental session result is byte-identical to a batch
        replay of the same trail — including infringing cases, whose
        sessions keep absorbing entries as REJECTED steps."""
        from repro.core.auditor import PurposeControlAuditor
        from repro.testing import canonical_digest

        trail = paper_audit_trail()
        for entry in trail:
            monitor.observe(entry)
        report = PurposeControlAuditor(
            process_registry(), hierarchy=role_hierarchy()
        ).audit(trail)
        for case, result in report.cases.items():
            if result.replay is None:
                continue
            streamed = monitor.case_result(case)
            assert streamed is not None, case
            assert canonical_digest(streamed) == canonical_digest(
                result.replay
            ), case

    def test_terminal_cases_still_account_entries(self, monitor):
        trail = paper_audit_trail()
        for entry in trail:
            monitor.observe(entry)
        # HT-10 infringes on its first entry; later entries return no
        # new findings but the replay accounting keeps growing.
        result = monitor.case_result("HT-10")
        assert result is not None
        assert result.trail_length == len(trail.for_case("HT-10"))
        assert not result.compliant

    def test_contain_classifies_timeouts(self, monitor):
        from repro.core.resilience import OutcomeKind
        from repro.errors import CaseTimeoutError

        for entry in paper_audit_trail():
            monitor.observe(entry)
        assert monitor.case_state("HT-2") is CaseState.OPEN
        finding = monitor.contain(
            "HT-2", CaseTimeoutError("budget blown", budget_s=1.0)
        )
        assert monitor.case_state("HT-2") is CaseState.FAILED
        assert monitor.case_failure_kind("HT-2") is OutcomeKind.TIMEOUT
        assert "budget blown" in finding.detail

    def test_contain_classifies_generic_errors(self, monitor):
        from repro.core.resilience import OutcomeKind

        monitor.observe(paper_audit_trail()[0])
        monitor.contain("HT-1", RuntimeError("shard hiccup"))
        assert monitor.case_failure_kind("HT-1") is OutcomeKind.ERROR
        assert monitor.case_state("HT-1") is CaseState.FAILED

    def test_checker_wrapper_seam_is_applied(self):
        wrapped_purposes = []

        def wrapper(checker, purpose):
            wrapped_purposes.append(purpose)
            return checker

        monitor = OnlineMonitor(
            process_registry(),
            hierarchy=role_hierarchy(),
            checker_wrapper=wrapper,
        )
        for entry in paper_audit_trail():
            monitor.observe(entry)
        assert sorted(set(wrapped_purposes)) == ["clinicaltrial", "treatment"]
        # wrapping must not perturb verdicts
        assert set(monitor.infringing_cases()) == {
            "HT-10", "HT-11", "HT-20", "HT-21", "HT-30",
        }

    def test_cases_and_purpose_inspection(self, monitor):
        for entry in paper_audit_trail():
            monitor.observe(entry)
        assert monitor.cases()[0] == "HT-1"
        assert monitor.case_purpose("HT-1") == "treatment"
        assert monitor.case_purpose("CT-1") == "clinicaltrial"
        assert monitor.case_purpose("nope") is None
        assert monitor.case_result("nope") is None
