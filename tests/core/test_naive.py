"""Tests for the naive trace-enumeration baseline (Section 1)."""

from datetime import datetime, timedelta

import pytest

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.core import ComplianceChecker, NaiveChecker, Verdict
from repro.scenarios import (
    fig9_process,
    loop_process,
    sequential_process,
    staged_xor_process,
    xor_process,
)


def entries_for(tasks, role="Staff", case="C-1"):
    clock = datetime(2010, 1, 1)
    result = []
    for task in tasks:
        clock += timedelta(minutes=1)
        status = Status.FAILURE if task == "!" else Status.SUCCESS
        result.append(
            LogEntry(
                user="Sam",
                role=role if task != "!" else role,
                action="work",
                obj=None,
                task=task if task != "!" else result[-1].task,
                case=case,
                timestamp=clock,
                status=status,
            )
        )
    return result


class TestAgreementWithAlgorithm1:
    """On loop-free processes the baseline and Algorithm 1 must agree."""

    @pytest.mark.parametrize(
        "tasks, expected",
        [
            (["T1", "T2", "T3"], True),
            (["T1", "T1", "T2", "T3"], True),  # absorption
            (["T1", "T3"], False),
            (["T2"], False),
            ([], True),
        ],
    )
    def test_sequential(self, tasks, expected):
        encoded = encode(sequential_process(3))
        naive = NaiveChecker(encoded)
        fast = ComplianceChecker(encoded)
        trail = entries_for(tasks)
        assert naive.check(trail).compliant == expected
        assert fast.check(trail).compliant == expected

    @pytest.mark.parametrize(
        "tasks, expected",
        [
            (["T0", "B1"], True),
            (["T0", "B2"], True),
            (["T0", "B1", "B2"], False),
            (["B1"], False),
        ],
    )
    def test_xor(self, tasks, expected):
        encoded = encode(xor_process(2))
        assert NaiveChecker(encoded).check(entries_for(tasks)).compliant == expected
        assert (
            ComplianceChecker(encoded).check(entries_for(tasks)).compliant
            == expected
        )

    def test_error_path(self):
        encoded = encode(fig9_process())
        trail = entries_for(["T", "!", "T1"], role="P")
        assert NaiveChecker(encoded).check(trail).compliant
        assert ComplianceChecker(encoded).check(trail).compliant


class TestLoopInfeasibility:
    """The paper's point: loops make enumeration explode or truncate."""

    def test_loop_process_compliant_trail_found_within_budget(self):
        encoded = encode(loop_process(1))
        trail = entries_for(["T1", "T1"])  # absorbed repeat: short trace
        result = NaiveChecker(encoded).check(trail)
        assert result.compliant

    def test_loop_trace_count_grows_with_depth(self):
        # A loop whose body contains a choice: the observable trace count
        # doubles per iteration, the blow-up the paper points out.
        from repro.bpmn import ProcessBuilder

        builder = ProcessBuilder("loopchoice")
        pool = builder.pool("Staff")
        pool.start_event("S").task("T1").exclusive_gateway("G1")
        pool.task("T2").task("T3").exclusive_gateway("M")
        pool.exclusive_gateway("G").end_event("E")
        builder.chain("S", "T1", "G1")
        builder.flow("G1", "T2").flow("G1", "T3")
        builder.flow("T2", "M").flow("T3", "M")
        builder.chain("M", "G")
        builder.flow("G", "T1")
        builder.flow("G", "E")
        encoded = encode(builder.build())
        naive = NaiveChecker(encoded)
        shallow, _ = naive.count_traces(max_depth=4)
        deep, _ = naive.count_traces(max_depth=8)
        assert deep > shallow

    def test_truncation_yields_undetermined(self):
        encoded = encode(loop_process(2))
        naive = NaiveChecker(encoded, max_traces=3)
        # A non-compliant trail that the tiny budget cannot refute.
        trail = entries_for(["T2", "T1"])
        result = naive.check(trail)
        assert result.verdict in (Verdict.UNDETERMINED, Verdict.NON_COMPLIANT)
        if result.verdict is Verdict.UNDETERMINED:
            assert result.truncated

    def test_staged_xor_counts_are_exponential(self):
        # width ** stages maximal traces.
        encoded = encode(staged_xor_process(3, width=2))
        naive = NaiveChecker(encoded)
        count, truncated = naive.count_traces(max_depth=10)
        assert not truncated
        assert count == 8


class TestVerdictPlumbing:
    def test_result_counts_traces(self):
        encoded = encode(sequential_process(2))
        result = NaiveChecker(encoded).check(entries_for(["T1", "T2"]))
        assert result.traces_enumerated >= 1

    def test_compliant_property(self):
        encoded = encode(sequential_process(1))
        assert NaiveChecker(encoded).check(entries_for(["T1"])).compliant
        assert not NaiveChecker(encoded).check(entries_for(["T9"])).compliant
