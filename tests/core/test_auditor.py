"""Tests for the end-to-end purpose-control auditor."""

from datetime import datetime

import pytest

from repro.audit import inject_mimicry_case
from repro.core import (
    InfringementKind,
    PurposeControlAuditor,
    SeverityModel,
)
from repro.policy import ObjectRef, PolicyDecisionPoint
from repro.scenarios import (
    COMPLIANT_CASES,
    OPEN_CASES,
    REPURPOSED_CASES,
    consent_registry,
    extended_policy,
    paper_audit_trail,
    process_registry,
    role_hierarchy,
    user_directory,
)


@pytest.fixture(scope="module")
def registry():
    return process_registry()


@pytest.fixture(scope="module")
def auditor(registry):
    return PurposeControlAuditor(registry, hierarchy=role_hierarchy())


@pytest.fixture(scope="module")
def full_auditor(registry):
    pdp = PolicyDecisionPoint(
        extended_policy(),
        user_directory(),
        role_hierarchy(),
        registry,
        consent_registry(),
    )
    return PurposeControlAuditor(
        registry,
        hierarchy=role_hierarchy(),
        pdp=pdp,
        severity_model=SeverityModel(registry),
    )


@pytest.fixture(scope="module")
def report(full_auditor):
    return full_auditor.audit(paper_audit_trail())


class TestPaperTrailAudit:
    def test_all_cases_audited(self, report):
        assert set(report.cases) == COMPLIANT_CASES | OPEN_CASES | REPURPOSED_CASES

    def test_compliant_cases_clean(self, report):
        for case in COMPLIANT_CASES:
            assert report.cases[case].compliant, case

    def test_open_case_compliant_and_open(self, report):
        for case in OPEN_CASES:
            result = report.cases[case]
            assert result.compliant
            assert result.open

    def test_repurposed_cases_flagged(self, report):
        for case in REPURPOSED_CASES:
            result = report.cases[case]
            assert not result.compliant, case
            kinds = {i.kind for i in result.infringements}
            assert InfringementKind.INVALID_EXECUTION in kinds

    def test_report_properties(self, report):
        assert not report.compliant
        assert set(report.infringing_cases) == REPURPOSED_CASES
        assert len(report.infringements) == len(REPURPOSED_CASES)

    def test_summary_mentions_every_case(self, report):
        summary = report.summary()
        for case in report.cases:
            assert case in summary

    def test_severity_attached_to_infringing_cases(self, report):
        for case in REPURPOSED_CASES:
            assert report.cases[case].severity is not None
            assert report.cases[case].severity.score > 0

    def test_no_false_policy_violations(self, report):
        # The preventive PDP sees nothing wrong — the paper's very point.
        kinds = {i.kind for i in report.infringements}
        assert kinds == {InfringementKind.INVALID_EXECUTION}


class TestUnknownPurpose:
    def test_unknown_case_prefix_flagged(self, auditor):
        trail = inject_mimicry_case(
            paper_audit_trail().for_case("HT-1"),
            case="ZZ-1",
            user="Bob",
            role="Cardiologist",
            task="T06",
            obj="[Jane]EPR/Clinical",
            when=datetime(2010, 5, 1),
        )
        report = auditor.audit(trail)
        result = report.cases["ZZ-1"]
        assert not result.compliant
        assert result.purpose is None
        assert result.infringements[0].kind is InfringementKind.UNKNOWN_PURPOSE


class TestObjectCentricAudit:
    def test_audit_object_covers_touching_cases(self, auditor):
        report = auditor.audit_object(
            paper_audit_trail(), ObjectRef.parse("[Jane]EPR")
        )
        assert set(report.cases) == {"HT-1", "HT-11"}
        assert report.cases["HT-1"].compliant
        assert not report.cases["HT-11"].compliant

    def test_audit_object_david(self, auditor):
        report = auditor.audit_object(
            paper_audit_trail(), ObjectRef.parse("[David]EPR")
        )
        assert set(report.cases) == {"HT-2", "HT-20", "HT-30"}
        assert report.cases["HT-2"].compliant

    def test_untouched_object_yields_empty_report(self, auditor):
        report = auditor.audit_object(
            paper_audit_trail(), ObjectRef.parse("[Nobody]EPR")
        )
        assert report.cases == {}
        assert report.compliant


class TestCheckerSharing:
    def test_checker_cached_per_purpose(self, auditor):
        assert auditor.checker_for("treatment") is auditor.checker_for("treatment")

    def test_checkers_differ_across_purposes(self, auditor):
        assert auditor.checker_for("treatment") is not auditor.checker_for(
            "clinicaltrial"
        )
