"""Tests for the fault-containment layer: rich outcomes, retry policy,
per-case budgets, serial/parallel failure isolation, and the acceptance
scenario of the robustness milestone (a poisoned batch still completes
with a verdict for every case)."""

from datetime import datetime, timedelta

import pytest

from repro.audit import AuditTrail, LogEntry, Status
from repro.bpmn import ProcessBuilder
from repro.core import InfringementKind, PurposeControlAuditor
from repro.core.parallel import audit_cases_parallel, verdicts_from_outcomes
from repro.core.resilience import (
    CaseOutcome,
    OutcomeKind,
    Quarantine,
    RetryPolicy,
    classify_failure,
    replay_with_deadline,
)
from repro.errors import (
    CaseTimeoutError,
    EncodingError,
    NotFinitelyObservableError,
    NotWellFoundedError,
    UnknownPurposeError,
)
from repro.obs import Telemetry
from repro.policy.registry import ProcessRegistry
from repro.scenarios import sequential_process
from repro.testing import FaultInjector, FaultPlan, InjectedFaultError


def non_well_founded_process(purpose="sick"):
    """A task-less gateway cycle: outside the decidable fragment (§5)."""
    builder = ProcessBuilder(purpose, purpose=purpose)
    pool = builder.pool("Staff")
    pool.start_event("S").task("T")
    pool.exclusive_gateway("G1").exclusive_gateway("G2")
    pool.end_event("E")
    builder.chain("S", "T", "G1", "G2")
    builder.flow("G2", "G1")  # silent loop between two gateways
    builder.flow("G2", "E")
    return builder.build(validate=False)


def entry(case, task, minute, role="Staff", user="Sam"):
    return LogEntry(
        user=user,
        role=role,
        action="work",
        obj=None,
        task=task,
        case=case,
        timestamp=datetime(2010, 1, 1, 9, 0) + timedelta(minutes=minute),
        status=Status.SUCCESS,
    )


@pytest.fixture
def mixed_registry():
    """One healthy purpose (prefix OK) and one non-well-founded (NW)."""
    registry = ProcessRegistry()
    registry.register(sequential_process(2), "OK")
    registry.register(non_well_founded_process(), "NW")
    return registry


def mixed_trail(n_healthy=4):
    """n_healthy OK cases (odd ones invalid) plus one NW case."""
    entries = []
    minute = 0
    for i in range(1, n_healthy + 1):
        case = f"OK-{i}"
        tasks = ["T1", "T2"] if i % 2 == 0 else ["T2", "T1"]  # odd: invalid
        for task in tasks:
            entries.append(entry(case, task, minute))
            minute += 1
    entries.append(entry("NW-1", "T", minute))
    return AuditTrail(entries)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.max_retries == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_none_never_retries(self):
        policy = RetryPolicy.none()
        assert not policy.allows_retry(1)
        assert policy.delay(1) == 0.0

    def test_allows_retry_boundary(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_s=0.1, multiplier=2.0, max_backoff_s=0.3
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(10) == pytest.approx(0.3)


class TestClassification:
    @pytest.mark.parametrize(
        "error, kind",
        [
            (NotFinitelyObservableError("bound", states_explored=7),
             OutcomeKind.UNDECIDABLE),
            (NotWellFoundedError("cycle"), OutcomeKind.UNDECIDABLE),
            (EncodingError("bad"), OutcomeKind.UNDECIDABLE),
            (UnknownPurposeError("who?"), OutcomeKind.UNKNOWN_PURPOSE),
            (CaseTimeoutError("slow", budget_s=1.0, elapsed_s=2.0),
             OutcomeKind.TIMEOUT),
            (RuntimeError("boom"), OutcomeKind.ERROR),
        ],
    )
    def test_mapping(self, error, kind):
        assert classify_failure(error) is kind

    def test_outcome_verdict_projection(self):
        assert CaseOutcome("c", OutcomeKind.COMPLIANT).verdict is True
        assert CaseOutcome("c", OutcomeKind.INVALID_EXECUTION).verdict is False
        for kind in (
            OutcomeKind.UNKNOWN_PURPOSE,
            OutcomeKind.UNDECIDABLE,
            OutcomeKind.ERROR,
            OutcomeKind.TIMEOUT,
        ):
            assert CaseOutcome("c", kind).verdict is None


class TestReplayWithDeadline:
    def test_no_budget_is_plain_check(self):
        from repro.bpmn import encode
        from repro.core import ComplianceChecker

        checker = ComplianceChecker(encode(sequential_process(2)))
        entries = [entry("OK-1", "T1", 0), entry("OK-1", "T2", 1)]
        budgeted = replay_with_deadline(checker, entries, None)
        plain = checker.check(entries)
        assert budgeted.compliant == plain.compliant
        assert budgeted.failed_index == plain.failed_index
        assert len(budgeted.steps) == len(plain.steps)

    def test_exhausted_budget_raises(self):
        from repro.bpmn import encode
        from repro.core import ComplianceChecker
        from repro.testing.faults import FaultyChecker

        plan = FaultPlan(name="deadline-test", slow_s=0.05)
        checker = FaultyChecker(
            ComplianceChecker(encode(sequential_process(2))), plan, "seq-2"
        )
        entries = [entry("OK-1", "T1", 0), entry("OK-1", "T2", 1)]
        with pytest.raises(CaseTimeoutError) as excinfo:
            replay_with_deadline(checker, entries, 0.01)
        assert excinfo.value.budget_s == 0.01
        assert excinfo.value.elapsed_s > 0.01


class TestSerialContainment:
    """Satellite: the serial auditor contains per-case replay failures."""

    def test_non_well_founded_case_is_undecidable(self, mixed_registry):
        auditor = PurposeControlAuditor(mixed_registry)
        report = auditor.audit(mixed_trail())
        # every case got a result, the sick one included
        assert set(report.cases) == {"OK-1", "OK-2", "OK-3", "OK-4", "NW-1"}
        sick = report.cases["NW-1"]
        assert sick.outcome is OutcomeKind.UNDECIDABLE
        assert sick.infringements[0].kind is InfringementKind.UNDECIDABLE
        assert "audit did not complete" in sick.infringements[0].detail
        # healthy cases decided exactly as before
        assert report.cases["OK-2"].compliant
        assert report.cases["OK-4"].compliant
        assert not report.cases["OK-1"].compliant
        assert report.failed_cases == ["NW-1"]
        assert "NOT AUDITABLE" not in report.summary()  # status is the kind
        assert "UNDECIDABLE" in report.summary()
        assert "(1 not auditable)" in report.summary()

    def test_silent_state_bound_contained_with_states_explored(self):
        registry = ProcessRegistry()
        registry.register(sequential_process(2), "OK")
        auditor = PurposeControlAuditor(registry, max_silent_states=1)
        report = auditor.audit(
            AuditTrail([entry("OK-1", "T1", 0), entry("OK-1", "T2", 1)])
        )
        result = report.cases["OK-1"]
        assert result.outcome is OutcomeKind.UNDECIDABLE
        assert result.error_type == "NotFinitelyObservableError"
        assert result.states_explored is not None
        assert "states explored" in result.infringements[0].detail

    def test_undecidable_counts_in_telemetry(self, mixed_registry):
        telemetry = Telemetry.create()
        auditor = PurposeControlAuditor(mixed_registry, telemetry=telemetry)
        auditor.audit(mixed_trail())
        assert telemetry.registry.counter("audit_errors_total").value(
            kind="undecidable"
        ) == 1


class TestOnErrorModes:
    def test_fail_mode_raises_unexpected_exceptions(self, mixed_registry):
        injector = FaultInjector(
            plan=FaultPlan(
                name="fail-mode", raise_on_case=1, only_in_workers=False
            ),
            purposes=("seq-2",),
        )
        auditor = PurposeControlAuditor(
            mixed_registry, checker_wrapper=injector
        )
        with pytest.raises(InjectedFaultError):
            auditor.audit(mixed_trail())

    def test_skip_mode_contains_unexpected_exceptions(self, mixed_registry):
        injector = FaultInjector(
            plan=FaultPlan(
                name="skip-mode", raise_on_case=1, only_in_workers=False
            ),
            purposes=("seq-2",),
        )
        auditor = PurposeControlAuditor(
            mixed_registry, checker_wrapper=injector, on_error="skip"
        )
        report = auditor.audit(mixed_trail())
        assert set(report.cases) == {"OK-1", "OK-2", "OK-3", "OK-4", "NW-1"}
        errored = [
            r for r in report.cases.values()
            if r.outcome is OutcomeKind.ERROR
        ]
        assert len(errored) == 1
        assert errored[0].error_type == "InjectedFaultError"
        assert errored[0].infringements[0].kind is InfringementKind.AUDIT_ERROR
        # the cases after the fault still got decided
        assert report.cases["NW-1"].outcome is OutcomeKind.UNDECIDABLE

    def test_case_timeout_contained_as_timeout(self, mixed_registry):
        injector = FaultInjector(
            plan=FaultPlan(name="slow-mode", slow_s=0.05),
            purposes=("seq-2",),
        )
        auditor = PurposeControlAuditor(
            mixed_registry, checker_wrapper=injector, case_timeout_s=0.01
        )
        report = auditor.audit(
            AuditTrail([entry("OK-1", "T1", 0), entry("OK-1", "T2", 1)])
        )
        result = report.cases["OK-1"]
        assert result.outcome is OutcomeKind.TIMEOUT
        assert result.infringements[0].kind is InfringementKind.TIMEOUT
        assert result.error_type == "CaseTimeoutError"


class TestParallelResilience:
    def test_worker_crash_is_recovered(self, mixed_registry):
        # every worker dies on the 3rd case it starts; retries shrink the
        # pending set until fresh workers finish before their trigger.
        trail = mixed_trail(n_healthy=6)
        injector = FaultInjector(
            plan=FaultPlan(name="crash-3rd", crash_on_case=3),
            purposes=("seq-2",),
        )
        outcomes = audit_cases_parallel(
            mixed_registry,
            trail,
            workers=2,
            checker_wrapper=injector,
            retry_policy=RetryPolicy(max_attempts=4, backoff_s=0.01),
        )
        assert set(outcomes) == set(trail.cases())
        # healthy verdicts identical to the serial, fault-free audit
        baseline = audit_cases_parallel(mixed_registry, trail, workers=1)
        for case in trail.cases():
            if case.startswith("OK"):
                assert outcomes[case].verdict == baseline[case].verdict, case
        assert outcomes["NW-1"].kind is OutcomeKind.UNDECIDABLE
        # at least one case was re-dispatched after the crash
        assert any(o.retries > 0 for o in outcomes.values())

    def test_repeated_crashes_fall_back_to_serial(self, mixed_registry):
        # crash on the FIRST case of every worker: no pool ever finishes
        # a job, so every case exhausts its attempts and the parent
        # replays it serially (the plan only crashes in workers).
        trail = mixed_trail(n_healthy=2)
        injector = FaultInjector(
            plan=FaultPlan(name="crash-always", crash_on_case=1),
            purposes=("seq-2", "sick"),
        )
        outcomes = audit_cases_parallel(
            mixed_registry,
            trail,
            workers=2,
            checker_wrapper=injector,
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.01),
            serial_fallback=True,
        )
        assert set(outcomes) == set(trail.cases())
        assert outcomes["OK-2"].kind is OutcomeKind.COMPLIANT
        assert outcomes["OK-1"].kind is OutcomeKind.INVALID_EXECUTION
        assert outcomes["NW-1"].kind is OutcomeKind.UNDECIDABLE

    def test_exhausted_attempts_without_fallback_is_error(self, mixed_registry):
        trail = mixed_trail(n_healthy=2)
        injector = FaultInjector(
            plan=FaultPlan(name="crash-nofb", crash_on_case=1),
            purposes=("seq-2", "sick"),
        )
        outcomes = audit_cases_parallel(
            mixed_registry,
            trail,
            workers=2,
            checker_wrapper=injector,
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.01),
            serial_fallback=False,
        )
        assert set(outcomes) == set(trail.cases())
        lost = [
            o for o in outcomes.values()
            if o.error_type == "WorkerLostError"
        ]
        assert lost
        assert all(o.kind is OutcomeKind.ERROR for o in lost)
        assert all(o.retries > 0 for o in lost)

    def test_crash_telemetry_counters(self, mixed_registry):
        trail = mixed_trail(n_healthy=2)
        injector = FaultInjector(
            plan=FaultPlan(name="crash-tel", crash_on_case=1),
            purposes=("seq-2", "sick"),
        )
        telemetry = Telemetry.create()
        outcomes = audit_cases_parallel(
            mixed_registry,
            trail,
            workers=2,
            checker_wrapper=injector,
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.01),
            telemetry=telemetry,
        )
        reg = telemetry.registry
        assert reg.counter("case_retries_total").total > 0
        assert reg.counter("audit_errors_total").value(kind="undecidable") == 1
        assert reg.counter("cases_audited_total").total == len(outcomes)


class TestSerialPathIsolation:
    """Satellite: back-to-back serial audits must not share worker state."""

    def test_back_to_back_audits_use_their_own_registry(self):
        registry_a = ProcessRegistry()
        registry_a.register(sequential_process(2), "P")

        builder = ProcessBuilder("alt", purpose="alt")
        pool = builder.pool("Staff")
        pool.start_event("S").task("A1").task("A2").end_event("E")
        builder.chain("S", "A1", "A2", "E")
        registry_b = ProcessRegistry()
        registry_b.register(builder.build(), "P")

        trail_a = AuditTrail([entry("P-1", "T1", 0), entry("P-1", "T2", 1)])
        trail_b = AuditTrail([entry("P-1", "A1", 0), entry("P-1", "A2", 1)])

        first = audit_cases_parallel(registry_a, trail_a, workers=1)
        assert first["P-1"].kind is OutcomeKind.COMPLIANT
        # were checkers cached across calls, P-1 would replay against
        # registry A's process and come back INVALID_EXECUTION here:
        second = audit_cases_parallel(registry_b, trail_b, workers=1)
        assert second["P-1"].kind is OutcomeKind.COMPLIANT
        assert second["P-1"].purpose == "alt"

    def test_parallel_globals_untouched_by_serial_path(self):
        import repro.core.parallel as parallel_module

        registry = ProcessRegistry()
        registry.register(sequential_process(2), "P")
        audit_cases_parallel(
            registry,
            AuditTrail([entry("P-1", "T1", 0)]),
            workers=1,
        )
        assert parallel_module._WORKER_STATE is None


class TestAcceptanceScenario:
    """The milestone's acceptance bar: a registry with a non-well-founded
    process, a trail with a corrupt entry, and a checker rigged to crash
    its worker on the 3rd case — the batch completes without raising,
    every case has an outcome, and healthy verdicts are identical to the
    serial auditor's."""

    def test_poisoned_batch_completes(self, mixed_registry):
        from repro.audit.xes import export_xes, import_xes
        from repro.testing import corrupt_xes_event

        trail = mixed_trail(n_healthy=6)
        # corrupt one OK-5 event at the ingestion boundary
        document = export_xes(trail)
        victim = trail.for_case("OK-5").entries[1]
        document = corrupt_xes_event(document, victim.timestamp.isoformat())
        quarantine = Quarantine()
        loaded = import_xes(document, quarantine=quarantine)
        assert len(quarantine) == 1
        assert quarantine.entries[0].source == "xes"
        assert len(loaded) == len(trail) - 1

        injector = FaultInjector(
            plan=FaultPlan(name="acceptance", crash_on_case=3),
            purposes=("seq-2",),
        )
        outcomes = audit_cases_parallel(
            mixed_registry,
            loaded,
            workers=2,
            checker_wrapper=injector,
            retry_policy=RetryPolicy(max_attempts=4, backoff_s=0.01),
        )
        # completes with an outcome for every case
        assert set(outcomes) == set(loaded.cases())
        assert outcomes["NW-1"].kind is OutcomeKind.UNDECIDABLE
        # healthy verdicts byte-identical to the serial auditor's
        serial_auditor = PurposeControlAuditor(mixed_registry)
        serial_baseline = audit_cases_parallel(mixed_registry, loaded, workers=1)
        for case in loaded.cases():
            if not case.startswith("OK"):
                continue
            result = serial_auditor.audit_case(case, loaded.for_case(case))
            assert outcomes[case].verdict is result.compliant, case
            assert (
                outcomes[case].failed_index
                == serial_baseline[case].failed_index
            ), case
