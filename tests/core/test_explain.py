"""Tests for infringement explanations (deviation classification)."""

from datetime import datetime, timedelta

import pytest

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.core import ComplianceChecker
from repro.core.explain import DeviationKind, explain
from repro.scenarios import (
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
    sequential_process,
)


def entries_for(tasks, role="Staff", statuses=None):
    clock = datetime(2010, 1, 1)
    out = []
    for position, task in enumerate(tasks):
        clock += timedelta(minutes=1)
        status = (
            statuses[position] if statuses else Status.SUCCESS
        )
        out.append(
            LogEntry(
                user="Sam", role=role, action="work", obj=None, task=task,
                case="C-1", timestamp=clock, status=status,
            )
        )
    return out


@pytest.fixture(scope="module")
def seq_checker():
    return ComplianceChecker(encode(sequential_process(4)))


def diagnose(checker, entries):
    result = checker.check(entries)
    assert not result.compliant
    explanation = explain(checker, entries, result)
    assert explanation is not None
    return explanation


class TestDeviationKinds:
    def test_compliant_result_has_no_explanation(self, seq_checker):
        entries = entries_for(["T1", "T2"])
        result = seq_checker.check(entries)
        assert explain(seq_checker, entries, result) is None

    def test_skipped_task(self, seq_checker):
        explanation = diagnose(seq_checker, entries_for(["T1", "T3"]))
        assert explanation.kind is DeviationKind.SKIPPED_TASKS
        assert explanation.skipped == ("Staff.T2",)

    def test_multiple_skipped_tasks(self, seq_checker):
        explanation = diagnose(seq_checker, entries_for(["T1", "T4"]))
        assert explanation.kind is DeviationKind.SKIPPED_TASKS
        assert explanation.skipped == ("Staff.T2", "Staff.T3")

    def test_wrong_start(self, seq_checker):
        explanation = diagnose(seq_checker, entries_for(["T3"]))
        assert explanation.kind is DeviationKind.WRONG_START
        assert explanation.entry_index == 0

    def test_alien_task(self, seq_checker):
        explanation = diagnose(seq_checker, entries_for(["T1", "T99"]))
        assert explanation.kind is DeviationKind.ALIEN_TASK

    def test_wrong_role(self, seq_checker):
        entries = entries_for(["T1"], role="Impostor")
        explanation = diagnose(seq_checker, entries)
        assert explanation.kind is DeviationKind.WRONG_ROLE
        assert "Staff" in explanation.detail

    def test_wrong_status(self, seq_checker):
        entries = entries_for(
            ["T1", "T2"], statuses=[Status.SUCCESS, Status.FAILURE]
        )
        explanation = diagnose(seq_checker, entries)
        assert explanation.kind is DeviationKind.WRONG_STATUS

    def test_not_reachable_backwards_jump(self, seq_checker):
        explanation = diagnose(
            seq_checker, entries_for(["T1", "T2", "T3", "T1"])
        )
        assert explanation.kind is DeviationKind.NOT_REACHABLE

    def test_expected_events_reported(self, seq_checker):
        explanation = diagnose(seq_checker, entries_for(["T1", "T3"]))
        assert explanation.expected == ("Staff.T2",)

    def test_str_is_informative(self, seq_checker):
        text = str(diagnose(seq_checker, entries_for(["T1", "T3"])))
        assert "skipped-tasks" in text
        assert "Staff.T2" in text


class TestPaperScenarioExplanations:
    @pytest.fixture(scope="class")
    def ht_checker(self):
        return ComplianceChecker(
            encode(healthcare_treatment_process()), role_hierarchy()
        )

    def test_harvesting_case_is_wrong_start(self, ht_checker):
        entries = list(paper_audit_trail().for_case("HT-11"))
        result = ht_checker.check(entries)
        explanation = explain(ht_checker, entries, result)
        assert explanation.kind is DeviationKind.WRONG_START
        # Bob's T06 needed the whole referral prefix first.
        assert "GP.T01" in explanation.skipped
        assert "GP.T05" in explanation.skipped

    def test_expected_start_is_gp_t01(self, ht_checker):
        entries = list(paper_audit_trail().for_case("HT-11"))
        result = ht_checker.check(entries)
        explanation = explain(ht_checker, entries, result)
        assert explanation.expected == ("GP.T01",)
