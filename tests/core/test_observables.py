"""Tests for the observable label set L (Section 3.5)."""

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.core import ErrorEvent, Observables, TaskEvent
from repro.cows import CommLabel, InvokeLabel, KillDone, endpoint
from repro.scenarios import fig8_process, role_hierarchy


def make_observables():
    return Observables.from_encoded(encode(fig8_process()))


def entry(role="P", task="T", status=Status.SUCCESS):
    return LogEntry.at(
        "user", role, "read", "[X]EPR", task, "C-1",
        "201001010000", status,
    )


class TestClassification:
    def test_task_label_is_observable(self):
        obs = make_observables()
        label = CommLabel(endpoint("P", "T1"), ())
        assert obs.classify(label) == TaskEvent("P", "T1")

    def test_error_label_is_observable(self):
        obs = make_observables()
        label = CommLabel(endpoint("sys", "Err"), ())
        assert obs.classify(label) == ErrorEvent()

    def test_gateway_sync_is_silent(self):
        obs = make_observables()
        label = CommLabel(endpoint("sys", "br_T1"), ())
        assert obs.classify(label) is None

    def test_non_task_operation_is_silent(self):
        obs = make_observables()
        label = CommLabel(endpoint("P", "G"), ())  # gateway trigger
        assert obs.classify(label) is None

    def test_unknown_partner_is_silent(self):
        obs = make_observables()
        label = CommLabel(endpoint("Q", "T1"), ())
        assert obs.classify(label) is None

    def test_partial_labels_are_silent(self):
        obs = make_observables()
        assert obs.classify(InvokeLabel(endpoint("P", "T1"), ())) is None
        assert obs.classify(KillDone()) is None

    def test_is_observable(self):
        obs = make_observables()
        assert obs.is_observable(CommLabel(endpoint("P", "T1"), ()))
        assert not obs.is_observable(CommLabel(endpoint("P", "G"), ()))


class TestEntryMatching:
    def test_task_event_matches_same_role_success(self):
        obs = make_observables()
        assert obs.event_matches_entry(TaskEvent("P", "T"), entry())

    def test_task_event_rejects_failure(self):
        obs = make_observables()
        assert not obs.event_matches_entry(
            TaskEvent("P", "T"), entry(status=Status.FAILURE)
        )

    def test_error_event_matches_any_failure(self):
        obs = make_observables()
        assert obs.event_matches_entry(
            ErrorEvent(), entry(status=Status.FAILURE)
        )
        assert not obs.event_matches_entry(ErrorEvent(), entry())

    def test_task_mismatch_rejected(self):
        obs = make_observables()
        assert not obs.event_matches_entry(TaskEvent("P", "T2"), entry(task="T"))

    def test_role_mismatch_rejected_without_hierarchy(self):
        obs = make_observables()
        assert not obs.event_matches_entry(
            TaskEvent("P", "T"), entry(role="Q")
        )

    def test_role_specialization_accepted_with_hierarchy(self):
        encoded = encode(fig8_process())
        obs = Observables.from_encoded(encoded, role_hierarchy())
        # A Cardiologist entry matches a Physician pool label.
        event = TaskEvent("Physician", "T")
        assert obs.event_matches_entry(event, entry(role="Cardiologist"))

    def test_generalization_not_accepted(self):
        encoded = encode(fig8_process())
        obs = Observables.from_encoded(encoded, role_hierarchy())
        # A Physician entry does NOT match a Cardiologist pool label.
        event = TaskEvent("Cardiologist", "T")
        assert not obs.event_matches_entry(event, entry(role="Physician"))


class TestActiveTaskMatching:
    def test_active_exact_match(self):
        obs = make_observables()
        active = frozenset({("P", "T")})
        assert obs.entry_task_active(active, entry())

    def test_active_respects_hierarchy(self):
        obs = Observables.from_encoded(encode(fig8_process()), role_hierarchy())
        active = frozenset({("Physician", "T")})
        assert obs.entry_task_active(active, entry(role="GP"))

    def test_inactive_task(self):
        obs = make_observables()
        active = frozenset({("P", "T2")})
        assert not obs.entry_task_active(active, entry(task="T"))

    def test_empty_active_set(self):
        obs = make_observables()
        assert not obs.entry_task_active(frozenset(), entry())
