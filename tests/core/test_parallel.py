"""Tests for parallel case auditing (Section 7's parallelization claim)."""

import pytest

from repro.core.parallel import audit_cases_parallel
from repro.scenarios import (
    hospital_day,
    paper_audit_trail,
    process_registry,
)


@pytest.fixture(scope="module")
def registry():
    return process_registry()


class TestSerialPath:
    def test_paper_trail_verdicts(self, registry):
        verdicts = audit_cases_parallel(registry, paper_audit_trail(), workers=1)
        assert verdicts["HT-1"] is True
        assert verdicts["CT-1"] is False or verdicts["CT-1"] is True
        # without a hierarchy CT-1's Cardiologist cannot match Physician:
        assert verdicts["CT-1"] is False
        for case in ("HT-10", "HT-11", "HT-20", "HT-21", "HT-30"):
            assert verdicts[case] is False

    def test_unknown_prefix_counts_as_non_compliant(self, registry):
        from repro.audit import AuditTrail
        from dataclasses import replace

        entry = replace(paper_audit_trail()[0], case="ZZ-1")
        verdicts = audit_cases_parallel(registry, AuditTrail([entry]), workers=1)
        assert verdicts == {"ZZ-1": False}


class TestMultiprocessPath:
    def test_workers_agree_with_serial(self, registry):
        workload = hospital_day(n_cases=12, violation_rate=0.25, seed=2)
        serial = audit_cases_parallel(registry, workload.trail, workers=1)
        multi = audit_cases_parallel(registry, workload.trail, workers=2)
        assert serial == multi == workload.ground_truth

    def test_every_case_gets_a_verdict(self, registry):
        workload = hospital_day(n_cases=7, violation_rate=0.0, seed=3)
        verdicts = audit_cases_parallel(registry, workload.trail, workers=2)
        assert set(verdicts) == set(workload.trail.cases())
