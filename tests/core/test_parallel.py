"""Tests for parallel case auditing (Section 7's parallelization claim)."""

import pytest

from repro.core.parallel import audit_cases_parallel, verdicts_from_outcomes
from repro.core.resilience import OutcomeKind
from repro.obs import Telemetry
from repro.scenarios import (
    hospital_day,
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)


@pytest.fixture(scope="module")
def registry():
    return process_registry()


class TestSerialPath:
    def test_paper_trail_verdicts(self, registry):
        outcomes = audit_cases_parallel(registry, paper_audit_trail(), workers=1)
        verdicts = verdicts_from_outcomes(outcomes)
        assert verdicts["HT-1"] is True
        assert outcomes["HT-1"].kind is OutcomeKind.COMPLIANT
        # without a hierarchy CT-1's Cardiologist cannot match Physician:
        assert verdicts["CT-1"] is False
        for case in ("HT-10", "HT-11", "HT-20", "HT-21", "HT-30"):
            assert verdicts[case] is False
            assert outcomes[case].kind is OutcomeKind.INVALID_EXECUTION

    def test_unknown_prefix_is_distinguishable_from_non_compliant(self, registry):
        # An unknown case prefix mirrors InfringementKind.UNKNOWN_PURPOSE:
        # the verdict is None, not the False of an invalid execution.
        from repro.audit import AuditTrail
        from dataclasses import replace

        entry = replace(paper_audit_trail()[0], case="ZZ-1")
        outcomes = audit_cases_parallel(registry, AuditTrail([entry]), workers=1)
        assert outcomes["ZZ-1"].kind is OutcomeKind.UNKNOWN_PURPOSE
        assert outcomes["ZZ-1"].verdict is None
        assert "ZZ" in (outcomes["ZZ-1"].error or "")

    def test_hierarchy_is_forwarded_to_checkers(self, registry):
        # With the Cardiologist:Physician specialization, CT-1's entries
        # match the Physician pool — exactly as the serial auditor decides.
        outcomes = audit_cases_parallel(
            registry,
            paper_audit_trail(),
            workers=1,
            hierarchy=role_hierarchy(),
        )
        assert outcomes["CT-1"].verdict is True

    def test_max_silent_states_contained_as_undecidable(self, registry):
        # The silent-state bound tripping no longer aborts the batch: the
        # affected cases come back UNDECIDABLE with the captured error.
        outcomes = audit_cases_parallel(
            registry, paper_audit_trail(), workers=1, max_silent_states=1
        )
        assert set(outcomes) == set(paper_audit_trail().cases())
        undecidable = [
            o for o in outcomes.values() if o.kind is OutcomeKind.UNDECIDABLE
        ]
        assert undecidable
        assert all(
            o.error_type == "NotFinitelyObservableError" for o in undecidable
        )
        assert all(o.states_explored is not None for o in undecidable)


class TestMultiprocessPath:
    def test_workers_agree_with_serial(self, registry):
        workload = hospital_day(n_cases=12, violation_rate=0.25, seed=2)
        serial = audit_cases_parallel(registry, workload.trail, workers=1)
        multi = audit_cases_parallel(registry, workload.trail, workers=2)
        assert (
            verdicts_from_outcomes(serial)
            == verdicts_from_outcomes(multi)
            == workload.ground_truth
        )

    def test_every_case_gets_an_outcome(self, registry):
        workload = hospital_day(n_cases=7, violation_rate=0.0, seed=3)
        outcomes = audit_cases_parallel(registry, workload.trail, workers=2)
        assert set(outcomes) == set(workload.trail.cases())
        assert all(o.kind is OutcomeKind.COMPLIANT for o in outcomes.values())

    def test_hierarchy_forwarded_across_processes(self, registry):
        outcomes = audit_cases_parallel(
            registry,
            paper_audit_trail(),
            workers=2,
            hierarchy=role_hierarchy(),
        )
        assert outcomes["CT-1"].verdict is True


class TestWorkerTelemetry:
    def test_worker_counters_merge_into_parent_registry(self, registry):
        telemetry = Telemetry.create()
        trail = paper_audit_trail()
        outcomes = audit_cases_parallel(
            registry, trail, workers=2, telemetry=telemetry
        )
        reg = telemetry.registry
        assert reg.counter("cases_audited_total").total == len(outcomes)
        # every replayed entry is accounted for under some outcome label
        entries = reg.counter("replay_entries_total")
        assert entries.total == len(trail)
        assert entries.value(outcome="rejected") > 0
        # the paper trail has invalid executions (and CT-1 without a
        # hierarchy), so infringement counters must be populated by kind
        assert reg.counter("infringements_total").value(
            kind="invalid-execution"
        ) > 0
        assert 1 <= reg.gauge("parallel_workers").value() <= 2

    def test_unknown_purpose_counted_by_kind(self, registry):
        from repro.audit import AuditTrail
        from dataclasses import replace

        entry = replace(paper_audit_trail()[0], case="ZZ-1")
        telemetry = Telemetry.create()
        audit_cases_parallel(
            registry, AuditTrail([entry]), workers=1, telemetry=telemetry
        )
        assert telemetry.registry.counter("infringements_total").value(
            kind="unknown-purpose"
        ) == 1

    def test_disabled_telemetry_hands_back_no_stats(self, registry):
        workload = hospital_day(n_cases=3, violation_rate=0.0, seed=5)
        outcomes = audit_cases_parallel(registry, workload.trail, workers=1)
        assert set(outcomes) == set(workload.trail.cases())
