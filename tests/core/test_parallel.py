"""Tests for parallel case auditing (Section 7's parallelization claim)."""

import pytest

from repro.core.parallel import audit_cases_parallel
from repro.obs import Telemetry
from repro.scenarios import (
    hospital_day,
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)


@pytest.fixture(scope="module")
def registry():
    return process_registry()


class TestSerialPath:
    def test_paper_trail_verdicts(self, registry):
        verdicts = audit_cases_parallel(registry, paper_audit_trail(), workers=1)
        assert verdicts["HT-1"] is True
        # without a hierarchy CT-1's Cardiologist cannot match Physician:
        assert verdicts["CT-1"] is False
        for case in ("HT-10", "HT-11", "HT-20", "HT-21", "HT-30"):
            assert verdicts[case] is False

    def test_unknown_prefix_is_distinguishable_from_non_compliant(self, registry):
        # An unknown case prefix mirrors InfringementKind.UNKNOWN_PURPOSE:
        # the verdict is None, not the False of an invalid execution.
        from repro.audit import AuditTrail
        from dataclasses import replace

        entry = replace(paper_audit_trail()[0], case="ZZ-1")
        verdicts = audit_cases_parallel(registry, AuditTrail([entry]), workers=1)
        assert verdicts == {"ZZ-1": None}
        assert verdicts["ZZ-1"] is not False

    def test_hierarchy_is_forwarded_to_checkers(self, registry):
        # With the Cardiologist:Physician specialization, CT-1's entries
        # match the Physician pool — exactly as the serial auditor decides.
        verdicts = audit_cases_parallel(
            registry,
            paper_audit_trail(),
            workers=1,
            hierarchy=role_hierarchy(),
        )
        assert verdicts["CT-1"] is True

    def test_max_silent_states_is_forwarded(self, registry):
        from repro.errors import NotFinitelyObservableError

        with pytest.raises(NotFinitelyObservableError):
            audit_cases_parallel(
                registry, paper_audit_trail(), workers=1, max_silent_states=1
            )


class TestMultiprocessPath:
    def test_workers_agree_with_serial(self, registry):
        workload = hospital_day(n_cases=12, violation_rate=0.25, seed=2)
        serial = audit_cases_parallel(registry, workload.trail, workers=1)
        multi = audit_cases_parallel(registry, workload.trail, workers=2)
        assert serial == multi == workload.ground_truth

    def test_every_case_gets_a_verdict(self, registry):
        workload = hospital_day(n_cases=7, violation_rate=0.0, seed=3)
        verdicts = audit_cases_parallel(registry, workload.trail, workers=2)
        assert set(verdicts) == set(workload.trail.cases())

    def test_hierarchy_forwarded_across_processes(self, registry):
        verdicts = audit_cases_parallel(
            registry,
            paper_audit_trail(),
            workers=2,
            hierarchy=role_hierarchy(),
        )
        assert verdicts["CT-1"] is True


class TestWorkerTelemetry:
    def test_worker_counters_merge_into_parent_registry(self, registry):
        telemetry = Telemetry.create()
        trail = paper_audit_trail()
        verdicts = audit_cases_parallel(
            registry, trail, workers=2, telemetry=telemetry
        )
        reg = telemetry.registry
        assert reg.counter("cases_audited_total").total == len(verdicts)
        # every replayed entry is accounted for under some outcome label
        entries = reg.counter("replay_entries_total")
        assert entries.total == len(trail)
        assert entries.value(outcome="rejected") > 0
        # the paper trail has invalid executions (and CT-1 without a
        # hierarchy), so infringement counters must be populated by kind
        assert reg.counter("infringements_total").value(
            kind="invalid-execution"
        ) > 0
        assert 1 <= reg.gauge("parallel_workers").value() <= 2

    def test_unknown_purpose_counted_by_kind(self, registry):
        from repro.audit import AuditTrail
        from dataclasses import replace

        entry = replace(paper_audit_trail()[0], case="ZZ-1")
        telemetry = Telemetry.create()
        audit_cases_parallel(
            registry, AuditTrail([entry]), workers=1, telemetry=telemetry
        )
        assert telemetry.registry.counter("infringements_total").value(
            kind="unknown-purpose"
        ) == 1

    def test_disabled_telemetry_hands_back_no_stats(self, registry):
        workload = hospital_day(n_cases=3, violation_rate=0.0, seed=5)
        verdicts = audit_cases_parallel(registry, workload.trail, workers=1)
        assert set(verdicts) == set(workload.trail.cases())
