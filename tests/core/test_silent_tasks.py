"""Tests for silent (unloggable) activities — Section 7 future work.

"Process specifications may contain human activities that cannot be
logged by the IT system (e.g., a physician discussing patient data over
the phone for second opinion).  These silent activities make it not
possible to determine if an audit trail corresponds to a valid execution
of the organizational process."  Declaring such tasks *silent* makes
their execution unobservable: WeakNext steps over them and the replay
accepts trails in which they leave no entries.
"""

from datetime import datetime, timedelta

import pytest

from repro.audit import LogEntry, Status
from repro.bpmn import ProcessBuilder, encode
from repro.core import ComplianceChecker, Observables, TaskEvent


def entries_for(tasks, role="Physician"):
    clock = datetime(2010, 1, 1)
    out = []
    for task in tasks:
        clock += timedelta(minutes=1)
        out.append(
            LogEntry(
                user="Eve", role=role, action="work", obj=None, task=task,
                case="C-1", timestamp=clock, status=Status.SUCCESS,
            )
        )
    return out


@pytest.fixture(scope="module")
def consult_process():
    """Examine -> discuss on the phone (unloggable) -> prescribe."""
    builder = ProcessBuilder("consult")
    pool = builder.pool("Physician")
    pool.start_event("S").task("Examine").task("Discuss").task("Prescribe")
    pool.end_event("E")
    builder.chain("S", "Examine", "Discuss", "Prescribe", "E")
    return encode(builder.build())


class TestSilentTaskReplay:
    def test_without_declaration_missing_task_rejected(self, consult_process):
        checker = ComplianceChecker(consult_process)
        trail = entries_for(["Examine", "Prescribe"])
        result = checker.check(trail)
        assert not result.compliant
        assert result.failed_entry.task == "Prescribe"

    def test_declared_silent_task_may_be_skipped(self, consult_process):
        checker = ComplianceChecker(
            consult_process, silent_tasks=frozenset({"Discuss"})
        )
        assert checker.check(entries_for(["Examine", "Prescribe"])).compliant

    def test_other_violations_still_detected(self, consult_process):
        checker = ComplianceChecker(
            consult_process, silent_tasks=frozenset({"Discuss"})
        )
        assert not checker.check(entries_for(["Prescribe"])).compliant
        assert not checker.check(
            entries_for(["Prescribe", "Examine"])
        ).compliant

    def test_unknown_silent_task_rejected(self, consult_process):
        with pytest.raises(ValueError):
            ComplianceChecker(
                consult_process, silent_tasks=frozenset({"Ghost"})
            )


class TestSilentClassification:
    def test_silent_task_label_classified_as_silence(self, consult_process):
        from repro.cows import CommLabel, endpoint

        observables = Observables.from_encoded(
            consult_process, silent_tasks=frozenset({"Discuss"})
        )
        assert observables.classify(
            CommLabel(endpoint("Physician", "Discuss"), ())
        ) is None
        assert observables.classify(
            CommLabel(endpoint("Physician", "Examine"), ())
        ) == TaskEvent("Physician", "Examine")


class TestBranchingWithSilence:
    def test_silent_branch_choice_ambiguity_is_tracked(self):
        """When one XOR branch is silent, the replay must keep both the
        'silent branch ran' and the 'other branch pending' explanations
        alive until evidence arrives."""
        builder = ProcessBuilder("silentbranch")
        pool = builder.pool("Physician")
        pool.start_event("S").task("T0").exclusive_gateway("G")
        pool.task("Loud").task("Quiet")
        pool.exclusive_gateway("M").task("Final").end_event("E")
        builder.chain("S", "T0", "G")
        builder.flow("G", "Loud").flow("G", "Quiet")
        builder.flow("Loud", "M").flow("Quiet", "M")
        builder.chain("M", "Final", "E")
        encoded = encode(builder.build())
        checker = ComplianceChecker(
            encoded, silent_tasks=frozenset({"Quiet"})
        )
        # Quiet path: no entry between T0 and Final.
        assert checker.check(entries_for(["T0", "Final"])).compliant
        # Loud path still replays explicitly.
        assert checker.check(entries_for(["T0", "Loud", "Final"])).compliant
        # But Loud cannot come after Final.
        assert not checker.check(
            entries_for(["T0", "Final", "Loud"])
        ).compliant
