"""Tests for Algorithm 1: absorption, task/error transitions, rejection,
frontier behaviour and the incremental session API."""

from datetime import datetime, timedelta

import pytest

from repro.audit import AuditTrail, LogEntry, Status
from repro.bpmn import ProcessBuilder, encode
from repro.core import (
    ABSORBED,
    ERROR_TRANSITION,
    REJECTED,
    TASK_TRANSITION,
    ComplianceChecker,
)
from repro.scenarios import (
    fig9_process,
    parallel_process,
    role_hierarchy,
    sequential_process,
    xor_process,
)


class EntryFactory:
    """Builds well-timed entries for a fixed case."""

    def __init__(self, case="C-1", role="Staff", user="Sam"):
        self.case = case
        self.role = role
        self.user = user
        self.clock = datetime(2010, 1, 1, 9, 0)

    def __call__(self, task, status=Status.SUCCESS, role=None, user=None):
        self.clock += timedelta(minutes=1)
        return LogEntry(
            user=user or self.user,
            role=role or self.role,
            action="work",
            obj=None,
            task=task,
            case=self.case,
            timestamp=self.clock,
            status=status,
        )


@pytest.fixture
def entries():
    return EntryFactory()


def checker_for(process, hierarchy=None):
    return ComplianceChecker(encode(process), hierarchy)


class TestSequentialReplay:
    def test_exact_run_is_compliant(self, entries):
        checker = checker_for(sequential_process(3))
        result = checker.check([entries("T1"), entries("T2"), entries("T3")])
        assert result.compliant
        assert result.accepted_prefix_length == 3

    def test_prefix_is_compliant_and_may_continue(self, entries):
        checker = checker_for(sequential_process(3))
        result = checker.check([entries("T1")])
        assert result.compliant
        assert result.may_continue

    def test_complete_run_may_not_continue(self, entries):
        checker = checker_for(sequential_process(2))
        result = checker.check([entries("T1"), entries("T2")])
        assert result.compliant
        assert not result.may_continue

    def test_skipped_task_rejected(self, entries):
        checker = checker_for(sequential_process(3))
        result = checker.check([entries("T1"), entries("T3")])
        assert not result.compliant
        assert result.failed_index == 1
        assert result.failed_entry.task == "T3"

    def test_out_of_order_rejected(self, entries):
        checker = checker_for(sequential_process(2))
        result = checker.check([entries("T2"), entries("T1")])
        assert not result.compliant
        assert result.failed_index == 0

    def test_empty_trail_is_trivially_compliant(self):
        checker = checker_for(sequential_process(2))
        result = checker.check(AuditTrail([]))
        assert result.compliant
        assert result.trail_length == 0

    def test_unknown_task_rejected(self, entries):
        checker = checker_for(sequential_process(2))
        assert not checker.check([entries("T99")]).compliant


class TestAbsorption:
    """Line 16: the 1-to-n mapping between tasks and log entries."""

    def test_repeated_entries_of_active_task_absorbed(self, entries):
        checker = checker_for(sequential_process(2))
        result = checker.check(
            [entries("T1"), entries("T1"), entries("T1"), entries("T2")]
        )
        assert result.compliant
        outcomes = [step.outcome for step in result.steps]
        assert outcomes == [TASK_TRANSITION, ABSORBED, ABSORBED, TASK_TRANSITION]

    def test_absorption_does_not_advance_the_state(self, entries):
        checker = checker_for(sequential_process(2))
        session = checker.session()
        session.feed(entries("T1"))
        frontier_before = session.frontier
        session.feed(entries("T1"))
        assert session.frontier == frontier_before

    def test_task_no_longer_absorbs_after_next_task(self, entries):
        checker = checker_for(sequential_process(2))
        result = checker.check([entries("T1"), entries("T2"), entries("T1")])
        assert not result.compliant
        assert result.failed_index == 2


class TestErrorHandling:
    def test_failure_takes_error_transition(self, entries):
        checker = checker_for(fig9_process())
        factory = EntryFactory(role="P")
        result = checker.check(
            [factory("T"), factory("T", status=Status.FAILURE), factory("T1")]
        )
        assert result.compliant
        outcomes = [step.outcome for step in result.steps]
        assert outcomes == [TASK_TRANSITION, ERROR_TRANSITION, TASK_TRANSITION]

    def test_failure_without_reachable_error_rejected(self, entries):
        checker = checker_for(sequential_process(2))
        result = checker.check([entries("T1", status=Status.FAILURE)])
        assert not result.compliant

    def test_failure_of_inactive_task_uses_error_if_reachable(self):
        # Line 8's disjunction: a failure entry always goes through the
        # transition search, never absorption.
        checker = checker_for(fig9_process())
        factory = EntryFactory(role="P")
        first = factory("T")
        fail = factory("T", status=Status.FAILURE)
        result = checker.check([first, fail])
        assert result.compliant

    def test_success_required_for_task_labels(self):
        checker = checker_for(sequential_process(2))
        factory = EntryFactory()
        result = checker.check([factory("T1", status=Status.FAILURE)])
        assert not result.compliant


class TestBranching:
    def test_xor_branches_both_accepted(self):
        checker = checker_for(xor_process(3))
        factory = EntryFactory()
        for branch in ("B1", "B2", "B3"):
            result = checker.check(
                [factory("T0"), factory(branch)]
            )
            assert result.compliant, branch

    def test_xor_double_branch_rejected(self):
        checker = checker_for(xor_process(2))
        factory = EntryFactory()
        result = checker.check([factory("T0"), factory("B1"), factory("B2")])
        assert not result.compliant

    def test_parallel_branches_any_order(self):
        checker = checker_for(parallel_process(2))
        for order in (("B1", "B2"), ("B2", "B1")):
            factory = EntryFactory()
            trail = [factory("T0"), factory(order[0]), factory(order[1]), factory("TZ")]
            assert checker.check(trail).compliant, order

    def test_parallel_join_requires_both(self):
        checker = checker_for(parallel_process(2))
        factory = EntryFactory()
        result = checker.check([factory("T0"), factory("B1"), factory("TZ")])
        assert not result.compliant

    def test_interleaved_parallel_work_keeps_multiple_configurations(self):
        checker = checker_for(parallel_process(2))
        factory = EntryFactory()
        session = checker.session()
        session.feed(factory("T0"))
        session.feed(factory("B1"))
        session.feed(factory("B2"))
        # B1's marker may or may not still be present -> several configs.
        assert len(session.frontier) >= 1
        session.feed(factory("B1"))  # late extra action inside task B1
        assert session.compliant


class TestRoleMatching:
    def test_entry_role_must_match_pool(self, entries):
        checker = checker_for(sequential_process(2))
        result = checker.check([entries("T1", role="Intruder")])
        assert not result.compliant

    def test_specialized_role_accepted_with_hierarchy(self):
        builder = ProcessBuilder("phys")
        pool = builder.pool("Physician")
        pool.start_event("S").task("T1").end_event("E")
        builder.chain("S", "T1", "E")
        checker = checker_for(builder.build(), role_hierarchy())
        factory = EntryFactory(role="Cardiologist")
        assert checker.check([factory("T1")]).compliant

    def test_generalized_role_rejected(self):
        builder = ProcessBuilder("cardio")
        pool = builder.pool("Cardiologist")
        pool.start_event("S").task("T1").end_event("E")
        builder.chain("S", "T1", "E")
        checker = checker_for(builder.build(), role_hierarchy())
        factory = EntryFactory(role="Physician")
        assert not checker.check([factory("T1")]).compliant


class TestSessionApi:
    def test_feed_reports_compliance_incrementally(self, entries):
        checker = checker_for(sequential_process(2))
        session = checker.session()
        assert session.feed(entries("T1"))
        assert not session.feed(entries("T9"))
        assert not session.compliant

    def test_entries_after_failure_are_rejected_steps(self, entries):
        checker = checker_for(sequential_process(3))
        session = checker.session()
        session.feed(entries("T9"))
        session.feed(entries("T1"))
        result = session.result()
        assert [s.outcome for s in result.steps] == [REJECTED, REJECTED]
        assert result.failed_index == 0

    def test_result_reflects_configuration_accounting(self, entries):
        checker = checker_for(sequential_process(2))
        result = checker.check([entries("T1"), entries("T2")])
        assert result.configurations_created >= 3
        assert result.final_configurations

    def test_replay_steps_str(self, entries):
        checker = checker_for(sequential_process(2))
        result = checker.check([entries("T1")])
        assert "T1" in str(result.steps[0])

    def test_checker_reusable_across_cases(self, entries):
        checker = checker_for(sequential_process(2))
        first = checker.check([entries("T1")])
        factory = EntryFactory(case="C-2")
        second = checker.check([factory("T1"), factory("T2")])
        assert first.compliant and second.compliant

    def test_result_bool(self, entries):
        checker = checker_for(sequential_process(2))
        assert bool(checker.check([entries("T1")]))
        assert not bool(checker.check([entries("T2")]))
