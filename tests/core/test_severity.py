"""Tests for the infringement-severity metrics (Section 7 future work)."""

import pytest

from repro.core import PurposeControlAuditor, SeverityModel
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)
from repro.audit import LogEntry, Status


@pytest.fixture(scope="module")
def registry():
    return process_registry()


@pytest.fixture(scope="module")
def model(registry):
    return SeverityModel(registry)


@pytest.fixture(scope="module")
def audited(registry, model):
    auditor = PurposeControlAuditor(
        registry, hierarchy=role_hierarchy(), severity_model=model
    )
    return auditor.audit(paper_audit_trail())


def make_entry(task, obj):
    return LogEntry.at(
        "Bob", "Cardiologist", "read", obj, task, "HT-99",
        "201005010900", Status.SUCCESS,
    )


class TestFactors:
    def test_object_sensitivity_clinical_highest(self, model):
        clinical = make_entry("T06", "[Jane]EPR/Clinical")
        demographics = make_entry("T06", "[Jane]EPR/Demographics")
        assert model.object_sensitivity(clinical) > model.object_sensitivity(
            demographics
        )

    def test_object_sensitivity_unknown_object(self, model):
        other = make_entry("T06", "SomethingElse")
        assert model.object_sensitivity(other) == 0.0

    def test_objectless_entry_sensitivity_zero(self, model):
        entry = LogEntry.at(
            "Bob", "Cardiologist", "cancel", None, "T06", "HT-99",
            "201005010900", Status.FAILURE,
        )
        assert model.object_sensitivity(entry) == 0.0

    def test_cross_purpose_detection(self, model):
        # T91 belongs to the clinical-trial process, claimed as treatment.
        assert model.is_cross_purpose(make_entry("T91", "[Jane]EPR"), "treatment")
        assert not model.is_cross_purpose(make_entry("T06", "[Jane]EPR"), "treatment")

    def test_cross_purpose_without_registry(self):
        model = SeverityModel()
        assert not model.is_cross_purpose(make_entry("T91", "[Jane]EPR"), "treatment")


class TestScores:
    def test_repurposed_cases_scored_high(self, audited):
        for case in ("HT-10", "HT-11", "HT-20"):
            severity = audited.cases[case].severity
            assert severity is not None
            assert severity.score >= 5.0

    def test_clinical_access_scores_above_demographics(self, audited):
        clinical = audited.cases["HT-11"].severity  # read EPR/Clinical
        demographics = audited.cases["HT-21"].severity  # read EPR/Demographics
        assert clinical.score > demographics.score

    def test_compliant_cases_have_no_severity(self, audited):
        assert audited.cases["HT-1"].severity is None

    def test_score_bounded(self, audited):
        for result in audited.cases.values():
            if result.severity:
                assert 0.0 <= result.severity.score <= 10.0

    def test_str_rendering(self, audited):
        severity = audited.cases["HT-11"].severity
        assert "severity" in str(severity)

    def test_zero_progress_case(self, audited):
        severity = audited.cases["HT-11"].severity
        assert severity.progress == 0.0
        assert severity.rejected_entries == 1


class TestCustomSensitivity:
    def test_custom_weights_used(self, registry):
        model = SeverityModel(
            registry, sensitivity={("ClinicalTrial",): 0.9}
        )
        entry = make_entry("T91", "ClinicalTrial/Criteria")
        assert model.object_sensitivity(entry) == 0.9
