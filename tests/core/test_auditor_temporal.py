"""Tests for temporal constraints integrated into the full auditor."""

from datetime import datetime, timedelta

import pytest

from repro.core import (
    InfringementKind,
    PurposeControlAuditor,
    TemporalConstraints,
)
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)


def make_auditor(constraints, now=None):
    return PurposeControlAuditor(
        process_registry(),
        hierarchy=role_hierarchy(),
        temporal={"treatment": constraints},
        now=now,
    )


class TestTemporalAuditing:
    def test_ht1_spans_a_month_and_can_be_flagged(self):
        # HT-1 runs 2010-03-12 .. 2010-04-15 (about 34 days).
        auditor = make_auditor(
            TemporalConstraints(max_case_duration=timedelta(days=30))
        )
        report = auditor.audit(paper_audit_trail())
        result = report.cases["HT-1"]
        kinds = {i.kind for i in result.infringements}
        assert InfringementKind.TEMPORAL_VIOLATION in kinds

    def test_generous_budget_keeps_ht1_clean(self):
        auditor = make_auditor(
            TemporalConstraints(max_case_duration=timedelta(days=60))
        )
        report = auditor.audit(paper_audit_trail())
        assert report.cases["HT-1"].compliant

    def test_open_case_times_out_against_audit_time(self):
        auditor = make_auditor(
            TemporalConstraints(max_case_duration=timedelta(days=30)),
            now=datetime(2010, 8, 1),
        )
        report = auditor.audit(paper_audit_trail())
        result = report.cases["HT-2"]  # a single March entry, still open
        kinds = {i.kind for i in result.infringements}
        assert InfringementKind.TEMPORAL_VIOLATION in kinds

    def test_open_case_without_now_not_timed_out(self):
        auditor = make_auditor(
            TemporalConstraints(max_case_duration=timedelta(days=30))
        )
        report = auditor.audit(paper_audit_trail())
        assert report.cases["HT-2"].compliant

    def test_purposes_without_constraints_unaffected(self):
        auditor = make_auditor(
            TemporalConstraints(max_case_duration=timedelta(minutes=1)),
        )
        report = auditor.audit(paper_audit_trail())
        # clinical trial has no constraints registered
        assert report.cases["CT-1"].compliant

    def test_temporal_and_replay_infringements_compose(self):
        auditor = make_auditor(
            TemporalConstraints(max_case_duration=timedelta(days=1)),
            now=datetime(2010, 8, 1),
        )
        report = auditor.audit(paper_audit_trail())
        # HT-11 is both an invalid execution and (as an open case) overdue.
        kinds = {i.kind for i in report.cases["HT-11"].infringements}
        assert InfringementKind.INVALID_EXECUTION in kinds
