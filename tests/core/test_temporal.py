"""Tests for temporal constraints (Section 4's maximum-duration remark)."""

from datetime import datetime, timedelta

import pytest

from repro.audit import AuditTrail, LogEntry, Status
from repro.core.temporal import (
    TemporalConstraints,
    TemporalViolationKind,
)


def entry(task, day, hour=9, case="HT-1"):
    return LogEntry(
        user="John", role="GP", action="work", obj=None, task=task,
        case=case, timestamp=datetime(2010, 3, day, hour, 0),
        status=Status.SUCCESS,
    )


@pytest.fixture
def week_long_trail():
    return AuditTrail([entry("T01", 1), entry("T02", 3), entry("T03", 8)])


class TestCaseDuration:
    def test_within_budget(self, week_long_trail):
        constraints = TemporalConstraints(max_case_duration=timedelta(days=30))
        assert constraints.is_satisfied("HT-1", week_long_trail)

    def test_exceeded_by_recorded_entries(self, week_long_trail):
        constraints = TemporalConstraints(max_case_duration=timedelta(days=5))
        violations = constraints.check("HT-1", week_long_trail)
        assert [v.kind for v in violations] == [
            TemporalViolationKind.CASE_TOO_LONG
        ]
        assert violations[0].entry.task == "T03"

    def test_open_case_times_out_against_now(self, week_long_trail):
        constraints = TemporalConstraints(max_case_duration=timedelta(days=10))
        late = datetime(2010, 3, 20)
        violations = constraints.check("HT-1", week_long_trail, now=late)
        assert violations
        assert violations[0].kind is TemporalViolationKind.CASE_TOO_LONG
        assert violations[0].entry is None  # no entry caused it: time did

    def test_completed_case_ignores_now(self, week_long_trail):
        constraints = TemporalConstraints(max_case_duration=timedelta(days=10))
        late = datetime(2010, 3, 20)
        assert constraints.is_satisfied(
            "HT-1", week_long_trail, now=late, case_open=False
        )


class TestInactivity:
    def test_gap_between_entries_flagged(self, week_long_trail):
        constraints = TemporalConstraints(max_inactivity=timedelta(days=3))
        violations = constraints.check("HT-1", week_long_trail)
        assert len(violations) == 1
        assert violations[0].kind is TemporalViolationKind.CASE_STALLED
        assert violations[0].entry.task == "T03"  # after the 5-day gap

    def test_tail_silence_flagged_for_open_case(self, week_long_trail):
        constraints = TemporalConstraints(max_inactivity=timedelta(days=10))
        violations = constraints.check(
            "HT-1", week_long_trail, now=datetime(2010, 3, 25)
        )
        assert [v.kind for v in violations] == [
            TemporalViolationKind.CASE_STALLED
        ]


class TestTaskDeadlines:
    def test_met_deadline(self, week_long_trail):
        constraints = TemporalConstraints().with_deadline(
            "T02", timedelta(days=5)
        )
        assert constraints.is_satisfied("HT-1", week_long_trail)

    def test_missed_deadline(self, week_long_trail):
        constraints = TemporalConstraints().with_deadline(
            "T03", timedelta(days=5)
        )
        violations = constraints.check("HT-1", week_long_trail)
        assert violations[0].kind is TemporalViolationKind.TASK_DEADLINE_MISSED
        assert "T03" in violations[0].detail

    def test_unperformed_task_times_out_when_open(self, week_long_trail):
        constraints = TemporalConstraints().with_deadline(
            "T04", timedelta(days=10)
        )
        violations = constraints.check(
            "HT-1", week_long_trail, now=datetime(2010, 3, 20)
        )
        assert violations
        assert violations[0].kind is TemporalViolationKind.TASK_DEADLINE_MISSED

    def test_unperformed_task_ok_within_budget(self, week_long_trail):
        constraints = TemporalConstraints().with_deadline(
            "T04", timedelta(days=30)
        )
        assert constraints.is_satisfied(
            "HT-1", week_long_trail, now=datetime(2010, 3, 20)
        )


class TestEdgeCases:
    def test_empty_trail_never_violates(self):
        constraints = TemporalConstraints(
            max_case_duration=timedelta(seconds=1),
            max_inactivity=timedelta(seconds=1),
        )
        assert constraints.is_satisfied("HT-1", AuditTrail([]))

    def test_single_entry_trail(self):
        constraints = TemporalConstraints(
            max_case_duration=timedelta(days=1),
            max_inactivity=timedelta(days=1),
        )
        assert constraints.is_satisfied("HT-1", AuditTrail([entry("T01", 1)]))

    def test_no_constraints_accept_everything(self, week_long_trail):
        assert TemporalConstraints().is_satisfied("HT-1", week_long_trail)

    def test_violation_str(self, week_long_trail):
        constraints = TemporalConstraints(max_case_duration=timedelta(days=5))
        violation = constraints.check("HT-1", week_long_trail)[0]
        assert "HT-1" in str(violation)
        assert "case-duration-exceeded" in str(violation)
