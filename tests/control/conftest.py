"""Shared fixtures for the control-plane suites.

``scenario_config`` materializes a bundled scenario as an on-disk
config (process documents + JSON config file) plus an audit store
holding its trail — the inputs every control-plane surface (API,
re-audit, CLI) consumes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.serve.conftest import serve_factory  # noqa: F401 - shared fixture

from repro.audit.model import AuditTrail
from repro.audit.store import AuditStore
from repro.bpmn.serialize import dumps as dump_process
from repro.policy.registry import ProcessRegistry
from repro.scenarios import (
    clinical_trial_process,
    claim_handling_process,
    fig7_process,
    fig8_process,
    fig9_process,
    fig10_process,
    healthcare_treatment_process,
    insurance_audit_trail,
    insurance_role_hierarchy,
    marketing_process,
    paper_audit_trail,
    role_hierarchy,
)


def _appendix_trail():
    """Generated trails for the appendix figures (no bundled trail)."""
    from repro.audit.generator import TrailGenerator

    registry = ProcessRegistry()
    figures = [
        ("FIG7", fig7_process()),
        ("FIG8", fig8_process()),
        ("FIG9", fig9_process()),
        ("FIG10", fig10_process()),
    ]
    entries = []
    for prefix, process in figures:
        registry.register(process, prefix)
        encoded = registry.encoded_for(
            registry.purpose_of_case(f"{prefix}-0")
        )
        users = {role: [(f"u-{role}", role)] for role in encoded.roles}
        generator = TrailGenerator(encoded, users_by_role=users, seed=7)
        for index in range(1, 3):
            generated = generator.generate_case(
                f"{prefix}-{index}", f"Subject{index}", min_steps=1
            )
            entries.extend(generated.trail)
    entries.sort(key=lambda entry: entry.timestamp)
    return AuditTrail(entries)


#: name -> (tenants [(prefix, process-factory)], hierarchy-factory, trail)
SCENARIOS = {
    "healthcare": (
        [("HT", healthcare_treatment_process), ("CT", clinical_trial_process)],
        role_hierarchy,
        paper_audit_trail,
    ),
    "insurance": (
        [("CL", claim_handling_process), ("MK", marketing_process)],
        insurance_role_hierarchy,
        insurance_audit_trail,
    ),
    "appendix": (
        [
            ("FIG7", fig7_process),
            ("FIG8", fig8_process),
            ("FIG9", fig9_process),
            ("FIG10", fig10_process),
        ],
        lambda: None,
        _appendix_trail,
    ),
}


def write_scenario_config(
    directory: Path, name: str, budgets: dict | None = None
) -> Path:
    """Write a scenario's processes + config.json; returns the config path."""
    tenants, hierarchy_factory, _ = SCENARIOS[name]
    specs = []
    for prefix, factory in tenants:
        process = factory()
        doc_path = directory / f"{prefix.lower()}.json"
        doc_path.write_text(dump_process(process, indent=2))
        specs.append(
            {
                "purpose": process.purpose,
                "prefix": prefix,
                "process": doc_path.name,
            }
        )
    document: dict = {"version": "1", "tenants": specs}
    hierarchy = hierarchy_factory()
    if hierarchy is not None:
        document["hierarchy"] = hierarchy.to_parent_map()
    if budgets:
        document["budgets"] = budgets
    config_path = directory / "audit.json"
    config_path.write_text(json.dumps(document, indent=2))
    return config_path


def write_scenario_store(directory: Path, name: str) -> str:
    """Persist the scenario's trail into a fresh audit store."""
    _, _, trail_factory = SCENARIOS[name]
    store_path = str(directory / "audit.db")
    with AuditStore(store_path) as store:
        for entry in trail_factory():
            store.append(entry)
    return store_path


def mutate_tenant_process(config_path: Path, prefix: str) -> None:
    """Edit one tenant's process document in place (changes its role).

    Reassigning a task to a different pool changes the compiler's
    canonical fingerprint, which is exactly what a real process-model
    revision does — the tenant's verdicts may genuinely change.
    """
    doc_path = config_path.parent / f"{prefix.lower()}.json"
    document = json.loads(doc_path.read_text())
    for element in document["elements"]:
        if element.get("type") == "task":
            element["pool"] = "Mutated"
            break
    else:  # pragma: no cover - every scenario process has a task
        raise AssertionError(f"no task element in {doc_path}")
    doc_path.write_text(json.dumps(document, indent=2))


@pytest.fixture
def scenario_config(tmp_path):
    """``make(name, budgets=None) -> (config_path, store_path)``."""

    def make(name: str, budgets: dict | None = None):
        config_path = write_scenario_config(tmp_path, name, budgets=budgets)
        store_path = write_scenario_store(tmp_path, name)
        return config_path, store_path

    return make
