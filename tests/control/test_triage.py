"""Quarantine triage against a live service.

The operator-facing loop: a case crashes its checker and lands in
quarantine; the control plane requeues it — the replay runs *on the
case's own shard thread*, serialized with live ingest that keeps
flowing the whole time — or dismisses it, leaving a durable,
hash-chained operator record next to the audit trail.
"""

import threading

import pytest

from repro.audit.store import AuditStore
from repro.control import ControlPlane
from repro.obs import MemoryEventLog, MetricsRegistry, Telemetry
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)
from repro.serve import AuditStreamClient, ServeConfig
from repro.serve.core import RequeueResult
from repro.testing import FaultInjector, FaultPlan, reset_fault_counters


@pytest.fixture(autouse=True)
def _fresh_fault_counters():
    reset_fault_counters()
    yield
    reset_fault_counters()


def _telemetry():
    log = MemoryEventLog()
    return Telemetry.create(registry=MetricsRegistry(), events=log.events), log


def _crashing_service(serve_factory, tmp_path, telemetry):
    """A service where the first treatment case's checker raises."""
    injector = FaultInjector(
        FaultPlan(raise_on_case=1, only_in_workers=False),
        purposes=("treatment",),
    )
    return serve_factory(
        process_registry(),
        hierarchy=role_hierarchy(),
        config=ServeConfig(
            shards=3, store_path=str(tmp_path / "audit.db")
        ),
        telemetry=telemetry,
        checker_wrapper=injector,
        control="mount",
    )


class TestRequeue:
    def test_requeue_races_live_ingest_and_recovers_the_case(
        self, serve_factory, tmp_path
    ):
        telemetry, log = _telemetry()
        handle = _crashing_service(serve_factory, tmp_path, telemetry)
        plane = ControlPlane(router=handle.router, telemetry=telemetry)
        trail = list(paper_audit_trail())
        victim = trail[0].case

        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            client.send_entry(trail[0])
            client.sync()
            assert (
                handle.router.quarantined_cases().get(victim) is not None
            )

            # Requeue while the rest of the stream pours in concurrently.
            pump_errors = []

            def pump():
                try:
                    with AuditStreamClient(
                        handle.host, handle.port
                    ) as second:
                        second.recv_until("hello")
                        second.send_trail(trail[1:])
                        second.sync()
                except Exception as error:  # pragma: no cover
                    pump_errors.append(error)

            pumper = threading.Thread(target=pump)
            pumper.start()
            status, payload, _ = plane.handle(
                "POST", f"/api/v1/quarantine/{victim}/requeue", {}, None
            )
            pumper.join(timeout=30)
            client.sync()
            served = client.results()

        assert not pump_errors
        assert status == 200, payload
        assert payload["accepted"] is True
        # The injected fault fired once; the replay is clean, so the
        # case resumes as a live, compliant-so-far case.
        assert payload["state"] == "open"
        assert payload["replayed_entries"] >= 1
        assert victim not in handle.router.quarantined_cases()
        assert served[victim]["state"] in ("open", "completed")
        # Live ingest was never poisoned: the burst of violation cases
        # streamed during the requeue all carry verdicts.
        assert served["HT-10"]["state"] == "infringing"
        # The operator action is durably chained next to the trail.
        handle.drain()
        with AuditStore(str(tmp_path / "audit.db")) as store:
            actions = store.control_records(case=victim)
            assert [a["action"] for a in actions] == ["requeue"]
            store.verify_integrity()
        assert any(
            event["event"] == "control.requeue" for event in log.records()
        )
        assert (
            telemetry.registry.counter("serve_requeues_total").value(
                outcome="replayed"
            )
            == 1
        )

    def test_requeue_of_unquarantined_case_is_409(
        self, serve_factory, tmp_path
    ):
        telemetry, _ = _telemetry()
        handle = _crashing_service(serve_factory, tmp_path, telemetry)
        plane = ControlPlane(router=handle.router, telemetry=telemetry)
        status, payload, _ = plane.handle(
            "POST", "/api/v1/quarantine/HT-99/requeue", {}, None
        )
        assert status == 409
        assert payload["accepted"] is False

    def test_busy_shard_maps_to_503_with_retry_after(
        self, serve_factory, tmp_path, monkeypatch
    ):
        telemetry, _ = _telemetry()
        handle = _crashing_service(serve_factory, tmp_path, telemetry)
        plane = ControlPlane(router=handle.router, telemetry=telemetry)
        monkeypatch.setattr(
            handle.router,
            "requeue_case",
            lambda case, wait_s=5.0: RequeueResult(
                case=case, accepted=False, busy=True, retry_after_s=0.05
            ),
        )
        status, payload, headers = plane.handle(
            "POST", "/api/v1/quarantine/HT-1/requeue", {}, None
        )
        assert status == 503
        assert payload["retry_after_s"] == 0.05
        # The header carries the same hint the wire protocol's busy
        # response does, as a raw decimal.
        assert headers["Retry-After"] == "0.05"


class TestDismiss:
    def test_dismiss_removes_and_records(self, serve_factory, tmp_path):
        telemetry, log = _telemetry()
        handle = _crashing_service(serve_factory, tmp_path, telemetry)
        plane = ControlPlane(router=handle.router, telemetry=telemetry)
        trail = list(paper_audit_trail())
        victim = trail[0].case
        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            client.send_entry(trail[0])
            client.sync()
        assert victim in handle.router.quarantined_cases()

        status, payload, _ = plane.handle(
            "POST",
            f"/api/v1/quarantine/{victim}/dismiss",
            {},
            {"actor": "oncall", "reason": "injected fault, known"},
        )
        assert status == 200
        assert payload["dismissed"] is True
        assert payload["kind"] == "error"
        assert victim not in handle.router.quarantined_cases()
        # Dismissing again 404s — the triage queue does not resurrect.
        status, _, _ = plane.handle(
            "POST", f"/api/v1/quarantine/{victim}/dismiss", {}, None
        )
        assert status == 404

        handle.drain()
        with AuditStore(str(tmp_path / "audit.db")) as store:
            actions = store.control_records(case=victim)
            assert [a["action"] for a in actions] == ["dismiss"]
            assert actions[0]["actor"] == "oncall"
            store.verify_integrity()
        assert any(
            event["event"] == "control.dismiss" for event in log.records()
        )
        assert (
            telemetry.registry.counter("serve_dismissals_total").total == 1
        )
