"""The control API, standalone over a store file (no daemon).

Every endpoint the operator console uses, driven through
``ControlPlane.handle`` exactly as both transports do — route parsing,
filters, keyset pagination, drill-down, and the error contract
(unknown endpoints 404, bad parameters 400, live-only actions 409).
"""

import pytest

from repro.audit.store import AuditStore
from repro.control import ControlPlane, LocalControlClient, load_config
from repro.errors import ReproError


@pytest.fixture
def offline_plane(scenario_config):
    config_path, store_path = scenario_config("healthcare")
    plane = ControlPlane(
        config=load_config(str(config_path)), store_path=store_path
    )
    return plane, store_path


@pytest.fixture
def client(offline_plane):
    return LocalControlClient(offline_plane[0])


class TestRouting:
    def test_plane_needs_a_router_or_a_store(self):
        with pytest.raises(ReproError, match="live router or a store"):
            ControlPlane()

    @pytest.mark.parametrize(
        "method, path",
        [
            ("GET", "/api/v1/nope"),
            ("GET", "/api/v2/tenants"),
            ("GET", "/api"),
            ("POST", "/api/v1/tenants"),
            ("GET", "/api/v1/quarantine/HT-1/requeue"),
        ],
    )
    def test_unknown_endpoints_404(self, offline_plane, method, path):
        status, payload, _ = offline_plane[0].handle(method, path, {}, None)
        assert status == 404
        assert "error" in payload

    def test_head_is_a_reader(self, offline_plane):
        status, payload, _ = offline_plane[0].handle(
            "HEAD", "/api/v1/tenants", {}, None
        )
        assert status == 200 and payload["tenants"]


class TestVerdicts:
    def test_tenants_aggregate_per_purpose(self, client):
        status, payload = client.tenants()
        assert status == 200
        by_purpose = {t["purpose"]: t for t in payload["tenants"]}
        treatment = by_purpose["treatment"]
        assert treatment["prefix"] == "HT"
        assert treatment["cases"] == 7
        assert treatment["states"]["infringing"] == 5
        assert len(treatment["fingerprint"]) == 64
        assert by_purpose["clinicaltrial"]["states"] == {"completed": 1}

    def test_outcome_and_purpose_filters(self, client):
        status, payload = client.verdicts(outcome="infringing")
        assert status == 200
        assert {v["case"] for v in payload["verdicts"]} == {
            "HT-10", "HT-11", "HT-20", "HT-21", "HT-30",
        }
        status, payload = client.verdicts(purpose="clinicaltrial")
        assert [v["case"] for v in payload["verdicts"]] == ["CT-1"]

    def test_keyset_pagination_walks_every_case(self, client):
        seen, cursor = [], None
        for _ in range(10):
            status, payload = client.verdicts(limit=3, after_case=cursor)
            assert status == 200
            seen.extend(v["case"] for v in payload["verdicts"])
            cursor = payload.get("next_after_case")
            if cursor is None:
                break
        assert len(seen) == len(set(seen)) == 8
        assert seen == sorted(seen)

    def test_time_range_filter_uses_the_store(self, client):
        # The paper trail: HT-1 runs on 2010-03-12, the violation burst
        # on 2010-04-15.
        status, payload = client.verdicts(until="2010-03-13T00:00:00")
        assert status == 200
        assert {v["case"] for v in payload["verdicts"]} == {"HT-1", "HT-2"}
        status, payload = client.verdicts(since="2010-04-15T14:00:00")
        cases = {v["case"] for v in payload["verdicts"]}
        assert "HT-1" not in cases and "HT-2" not in cases
        assert {"CT-1", "HT-10"} <= cases

    def test_bad_limit_is_a_400(self, client):
        for bad in (0, -1, 100_000, "many"):
            status, payload = client.verdicts(limit=bad)
            assert status == 400, bad
            assert "error" in payload

    def test_standalone_without_config_refuses_verdicts(self, offline_plane):
        _, store_path = offline_plane
        bare = ControlPlane(store_path=store_path)
        status, payload, _ = bare.handle("GET", "/api/v1/verdicts", {}, None)
        assert status == 400
        assert "config" in payload["error"]


class TestDrillDown:
    def test_case_carries_findings_and_control_log(self, client):
        status, payload = client.case("HT-10")
        assert status == 200
        assert payload["state"] == "infringing"
        assert payload["purpose"] == "treatment"
        assert payload["quarantined"] is False
        assert payload["control_log"] == []
        assert payload["findings"], "an infringing case must explain itself"
        assert all(
            {"kind", "detail"} <= set(f) for f in payload["findings"]
        )

    def test_unknown_case_404s(self, client):
        status, payload = client.case("HT-999")
        assert status == 404

    def test_trail_pages_by_store_seq(self, offline_plane, client):
        _, store_path = offline_plane
        with AuditStore(store_path) as store:
            expected = len(store.query(case="HT-1"))
        status, first = client.trail("HT-1", limit=2)
        assert status == 200
        assert len(first["entries"]) == 2
        cursor = first["next_after_seq"]
        assert cursor == first["entries"][-1]["seq"]
        status, rest = client.trail("HT-1", after_seq=cursor, limit=1000)
        assert status == 200
        assert all(e["seq"] > cursor for e in rest["entries"])
        assert "next_after_seq" not in rest
        assert len(first["entries"]) + len(rest["entries"]) == expected
        assert all(e["case"] == "HT-1" for e in rest["entries"])


class TestTriageOffline:
    def test_requeue_needs_a_live_service(self, client):
        status, payload = client.requeue("HT-10")
        assert status == 409
        assert "live service" in payload["error"]

    def test_dismiss_of_unquarantined_case_404s(self, client):
        status, payload = client.dismiss("HT-10")
        assert status == 404

    def test_offline_dismiss_records_and_hides_the_case(
        self, scenario_config, monkeypatch
    ):
        config_path, store_path = scenario_config("healthcare")
        plane = ControlPlane(
            config=load_config(str(config_path)), store_path=store_path
        )
        client = LocalControlClient(plane)
        # Make HT-10 look quarantined in the replayed records: offline
        # quarantine is whatever the replay classifies as failed.
        records = plane._records()
        monkeypatch.setitem(records["HT-10"], "failure_kind", "error")
        status, payload = client.quarantine()
        assert status == 200
        assert [q["case"] for q in payload["quarantined"]] == ["HT-10"]

        status, payload = client.dismiss(
            "HT-10", actor="alice", reason="known tooling bug"
        )
        assert status == 200
        assert payload["dismissed"] is True and payload["recorded"] is True

        # Dismissed cases leave the quarantine listing...
        status, payload = client.quarantine()
        assert payload["count"] == 0
        # ...and the operator action is on the durable control log.
        with AuditStore(store_path) as store:
            actions = store.control_records(case="HT-10")
            assert [a["action"] for a in actions] == ["dismiss"]
            assert actions[0]["actor"] == "alice"
            assert actions[0]["reason"] == "known tooling bug"
            store.verify_integrity()  # raises on a broken chain
        status, payload = client.case("HT-10")
        assert [a["action"] for a in payload["control_log"]] == ["dismiss"]


class TestReauditEndpoint:
    def test_reaudit_full_then_incremental_via_ledger(
        self, tmp_path, offline_plane
    ):
        plane, _ = offline_plane
        client = LocalControlClient(plane)
        ledger = str(tmp_path / "ledger.json")
        status, payload = client.reaudit(ledger_out=ledger)
        assert status == 200
        assert payload["mode"] == "full"
        assert payload["replayed_cases"] == 8
        status, payload = client.reaudit(
            ledger=ledger, include_records=True
        )
        assert status == 200
        assert payload["mode"] == "incremental"
        assert payload["replayed_cases"] == 0
        assert payload["reused_cases"] == 8
        assert payload["records"]["CT-1"]["state"] == "completed"

    def test_full_flag_forces_a_cold_run(self, tmp_path, offline_plane):
        plane, _ = offline_plane
        client = LocalControlClient(plane)
        ledger = str(tmp_path / "ledger.json")
        client.reaudit(ledger_out=ledger)
        status, payload = client.reaudit(ledger=ledger, full=True)
        assert status == 200
        assert payload["mode"] == "full"
        assert payload["replayed_cases"] == 8

    def test_bad_baseline_ledger_is_a_400(self, tmp_path, offline_plane):
        plane, _ = offline_plane
        client = LocalControlClient(plane)
        status, payload = client.reaudit(
            ledger=str(tmp_path / "missing-ledger.json")
        )
        assert status == 400
        assert "ledger" in payload["error"]

    def test_config_info_reports_fingerprints(self, offline_plane):
        plane, _ = offline_plane
        status, payload = LocalControlClient(plane).config_info()
        assert status == 200
        assert payload["fingerprint"] == plane.config.fingerprint()
        assert set(payload["tenants"]) == {"treatment", "clinicaltrial"}

    def test_config_info_404s_without_a_config(self, offline_plane):
        _, store_path = offline_plane
        bare = ControlPlane(store_path=store_path)
        status, _, _ = bare.handle("GET", "/api/v1/config", {}, None)
        assert status == 404
