"""The ``repro control`` command and ``repro serve --config``.

The CLI is a thin shell over the control clients: every action prints
the API's JSON payload and maps API errors to exit code 2. The serve
side is covered up to the preflight gate (boot-and-drain lives in the
integration suite).
"""

import json
import types

from repro.cli import EXIT_BAD_INPUT, EXIT_OK, build_parser, main


def _run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr()


class TestControlCommand:
    def test_tenants_prints_the_payload(self, capsys, scenario_config):
        config_path, store_path = scenario_config("healthcare")
        code, captured = _run(
            capsys,
            "control", "--store", store_path, "--config", str(config_path),
            "tenants",
        )
        assert code == EXIT_OK
        payload = json.loads(captured.out)
        assert {t["purpose"] for t in payload["tenants"]} == {
            "treatment",
            "clinicaltrial",
        }

    def test_verdict_filters_pass_through(self, capsys, scenario_config):
        config_path, store_path = scenario_config("healthcare")
        code, captured = _run(
            capsys,
            "control", "--store", store_path, "--config", str(config_path),
            "verdicts", "--outcome", "infringing", "--limit", "2",
        )
        assert code == EXIT_OK
        payload = json.loads(captured.out)
        assert payload["count"] == 2
        assert payload["next_after_case"] == payload["verdicts"][-1]["case"]

    def test_api_errors_exit_2(self, capsys, scenario_config):
        config_path, store_path = scenario_config("healthcare")
        code, captured = _run(
            capsys,
            "control", "--store", store_path, "--config", str(config_path),
            "case", "HT-999",
        )
        assert code == EXIT_BAD_INPUT
        assert "error" in json.loads(captured.out)

    def test_needs_a_target(self, capsys):
        code, captured = _run(capsys, "control", "tenants")
        assert code == EXIT_BAD_INPUT
        assert "--url" in captured.err

    def test_reaudit_round_trip_via_ledger_files(
        self, capsys, tmp_path, scenario_config
    ):
        config_path, store_path = scenario_config("healthcare")
        ledger = str(tmp_path / "ledger.json")
        code, captured = _run(
            capsys,
            "control", "--store", store_path, "--config", str(config_path),
            "reaudit", "--ledger-out", ledger,
        )
        assert code == EXIT_OK
        assert json.loads(captured.out)["mode"] == "full"
        code, captured = _run(
            capsys,
            "control", "--store", store_path, "--config", str(config_path),
            "reaudit", "--ledger", ledger,
        )
        assert code == EXIT_OK
        payload = json.loads(captured.out)
        assert payload["mode"] == "incremental"
        assert payload["replayed_cases"] == 0


class TestServeConfigFlag:
    def test_parser_accepts_config_and_no_preflight(self):
        args = build_parser().parse_args(
            ["serve", "--config", "audit.toml", "--no-preflight"]
        )
        assert args.config == "audit.toml"
        assert args.no_preflight is True

    def test_serve_without_inputs_names_config(self, capsys):
        code, captured = _run(capsys, "serve")
        assert code == EXIT_BAD_INPUT
        assert "--config" in captured.err

    def test_preflight_errors_refuse_startup(
        self, capsys, monkeypatch, scenario_config
    ):
        config_path, _ = scenario_config("healthcare")
        from repro.control.config import AuditConfig

        bad = types.SimpleNamespace(
            code="PC301", process_id="treatment", message="policy mismatch"
        )
        monkeypatch.setattr(
            AuditConfig,
            "preflight",
            lambda self, options=None, telemetry=None: types.SimpleNamespace(
                clean=False, errors=[bad]
            ),
        )
        code, captured = _run(
            capsys, "serve", "--config", str(config_path), "--http-port", "-1"
        )
        assert code == EXIT_BAD_INPUT
        assert "preflight failed" in captured.err
        assert "PC301" in captured.err
