"""Differential suite: incremental re-audit == cold full re-audit.

The whole point of fingerprint-scoped replay is that it is *not* an
approximation: for every bundled scenario and every kind of config
drift (no change, an edited process, an added tenant, a removed
tenant), ``incremental_reaudit`` must produce a ledger whose canonical
bytes equal a cold ``full_reaudit`` of the same new config — while
actually replaying only the affected tenants' cases.
"""

import json

import pytest

from repro.control import (
    ReauditLedger,
    full_reaudit,
    incremental_reaudit,
    load_config,
)

from tests.control.conftest import (
    SCENARIOS,
    mutate_tenant_process,
    write_scenario_config,
    write_scenario_store,
)


def _count_cases(store_path, prefix):
    from repro.audit.store import AuditStore

    with AuditStore(store_path) as store:
        return sum(
            1 for case in store.cases() if case.startswith(prefix + "-")
        )


class TestDifferential:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_no_change_reuses_everything(self, tmp_path, scenario):
        config_path = write_scenario_config(tmp_path, scenario)
        store_path = write_scenario_store(tmp_path, scenario)
        config = load_config(str(config_path))
        baseline = full_reaudit(config, store_path)
        incremental = incremental_reaudit(
            config, store_path, baseline.ledger
        )
        assert incremental.replayed_cases == 0
        assert incremental.reused_cases == len(baseline.ledger.records)
        assert (
            incremental.ledger.canonical() == baseline.ledger.canonical()
        )

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_process_edit_replays_only_that_tenant(self, tmp_path, scenario):
        config_path = write_scenario_config(tmp_path, scenario)
        store_path = write_scenario_store(tmp_path, scenario)
        old = load_config(str(config_path))
        baseline = full_reaudit(old, store_path)

        victim_prefix = SCENARIOS[scenario][0][0][0]
        victim_purpose = SCENARIOS[scenario][0][0][1]().purpose
        mutate_tenant_process(config_path, victim_prefix)
        new = load_config(str(config_path))

        incremental = incremental_reaudit(new, store_path, baseline.ledger)
        cold = full_reaudit(new, store_path)
        assert incremental.changed_purposes == (victim_purpose,)
        assert incremental.replayed_cases == _count_cases(
            store_path, victim_prefix
        )
        assert incremental.reused_cases == (
            len(baseline.ledger.records) - incremental.replayed_cases
        )
        # The headline guarantee: byte-identical to a cold run.
        assert incremental.ledger.canonical() == cold.ledger.canonical()

    def test_removed_tenant_replays_its_now_unroutable_cases(self, tmp_path):
        config_path = write_scenario_config(tmp_path, "healthcare")
        store_path = write_scenario_store(tmp_path, "healthcare")
        old = load_config(str(config_path))
        baseline = full_reaudit(old, store_path)

        document = json.loads(config_path.read_text())
        document["tenants"] = [
            spec
            for spec in document["tenants"]
            if spec["prefix"] != "CT"
        ]
        config_path.write_text(json.dumps(document))
        new = load_config(str(config_path))

        incremental = incremental_reaudit(new, store_path, baseline.ledger)
        cold = full_reaudit(new, store_path)
        assert incremental.removed_purposes == ("clinicaltrial",)
        assert incremental.ledger.canonical() == cold.ledger.canonical()
        # The orphaned cases audit as unknown-purpose now, not silently
        # under their stale verdicts.
        ct_records = [
            record
            for case, record in incremental.ledger.records.items()
            if case.startswith("CT-")
        ]
        assert ct_records and all(
            record["purpose"] is None for record in ct_records
        )

    def test_added_tenant_replays_newly_routable_cases(self, tmp_path):
        config_path = write_scenario_config(tmp_path, "healthcare")
        store_path = write_scenario_store(tmp_path, "healthcare")
        full_document = json.loads(config_path.read_text())
        # Start with CT unknown, then add it.
        old_document = dict(
            full_document,
            tenants=[
                spec
                for spec in full_document["tenants"]
                if spec["prefix"] != "CT"
            ],
        )
        old_path = tmp_path / "old.json"
        old_path.write_text(json.dumps(old_document))
        old = load_config(str(old_path))
        baseline = full_reaudit(old, store_path)

        new = load_config(str(config_path))
        incremental = incremental_reaudit(new, store_path, baseline.ledger)
        cold = full_reaudit(new, store_path)
        assert incremental.added_purposes == ("clinicaltrial",)
        assert incremental.ledger.canonical() == cold.ledger.canonical()
        assert (
            incremental.ledger.records["CT-1"]["state"] == "completed"
        )


class TestLedgerAndForensics:
    def test_ledger_save_load_round_trip(self, tmp_path, scenario_config):
        config_path, store_path = scenario_config("healthcare")
        report = full_reaudit(load_config(str(config_path)), store_path)
        path = tmp_path / "ledger.json"
        report.ledger.save(str(path))
        loaded = ReauditLedger.load(str(path))
        assert loaded.canonical() == report.ledger.canonical()

    def test_fingerprint_log_collects_forensics_lines(
        self, tmp_path, scenario_config
    ):
        config_path, store_path = scenario_config("healthcare")
        config = load_config(str(config_path))
        log_path = str(tmp_path / "fingerprints.jsonl")
        baseline = full_reaudit(config, store_path, fingerprint_log=log_path)
        incremental_reaudit(
            config, store_path, baseline.ledger, fingerprint_log=log_path
        )
        lines = [
            json.loads(line)
            for line in open(log_path, encoding="utf-8")
        ]
        assert [line["mode"] for line in lines] == ["full", "incremental"]
        assert all(
            line["fingerprints"] == config.tenant_fingerprints()
            for line in lines
        )
        assert lines[1]["replayed_cases"] == 0

    def test_stale_fingerprint_version_forces_full_replay(
        self, scenario_config
    ):
        config_path, store_path = scenario_config("healthcare")
        config = load_config(str(config_path))
        baseline = full_reaudit(config, store_path)
        # A ledger whose fingerprints no current tenant matches (e.g.
        # written under an older CONFIG_FINGERPRINT_VERSION) offers
        # nothing to reuse — everything replays, nothing is lost.
        stale = ReauditLedger(
            config_fingerprint="stale",
            fingerprints={
                purpose: "0" * 64
                for purpose in config.tenant_fingerprints()
            },
            records=dict(baseline.ledger.records),
        )
        incremental = incremental_reaudit(config, store_path, stale)
        assert incremental.reused_cases == 0
        assert (
            incremental.ledger.canonical() == baseline.ledger.canonical()
        )
