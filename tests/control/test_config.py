"""Declarative audit configs: parsing, validation, fingerprints.

The config is the deployment's auditable record of *what every case was
audited against*, so the properties under test are archival ones:
loading is strict (unknown keys, duplicates and broken references all
refuse loudly), fingerprints are content hashes (stable across
re-parses, moved files and inlining; sensitive to anything that can
change a verdict), and budgets never leak into tenant fingerprints.
"""

import json

import pytest

from repro.control import AuditConfig, load_config, parse_config
from repro.control.config import TenantSpec
from repro.errors import ConfigError
from repro.serve import ServeConfig

from tests.control.conftest import mutate_tenant_process, write_scenario_config


class TestParsing:
    def test_load_json_scenario_config(self, tmp_path):
        config = load_config(str(write_scenario_config(tmp_path, "healthcare")))
        assert config.version == "1"
        assert {t.purpose for t in config.tenants} == {
            "treatment",
            "clinicaltrial",
        }
        assert config.tenant("treatment").prefix == "HT"
        assert config.hierarchy is not None
        registry = config.registry()
        assert registry.purpose_of_case("HT-1") == "treatment"
        assert registry.purpose_of_case("CT-9") == "clinicaltrial"

    def test_load_toml_scenario_config(self, tmp_path):
        pytest.importorskip("tomllib")
        write_scenario_config(tmp_path, "healthcare")
        toml = tmp_path / "audit.toml"
        toml.write_text(
            'version = "1"\n'
            "\n"
            "[hierarchy]\n"
            'Cardiologist = ["Physician"]\n'
            "\n"
            "[budgets]\n"
            "shards = 2\n"
            "\n"
            "[[tenants]]\n"
            'prefix = "HT"\n'
            'process = "ht.json"\n'
            "\n"
            "[[tenants]]\n"
            'prefix = "CT"\n'
            'process = "ct.json"\n'
        )
        config = load_config(str(toml))
        assert {t.purpose for t in config.tenants} == {
            "treatment",
            "clinicaltrial",
        }
        assert config.budgets == {"shards": 2}
        assert config.serve_config().shards == 2

    def test_single_tenant_object_is_promoted_to_a_list(self, tmp_path):
        write_scenario_config(tmp_path, "healthcare")
        config = parse_config(
            {"tenants": {"prefix": "HT", "process": "ht.json"}},
            base_dir=str(tmp_path),
        )
        assert len(config.tenants) == 1

    def test_inline_process_document(self, tmp_path):
        source = load_config(
            str(write_scenario_config(tmp_path, "healthcare"))
        )
        config = parse_config(source.to_document())
        assert {t.purpose for t in config.tenants} == {
            "treatment",
            "clinicaltrial",
        }

    @pytest.mark.parametrize(
        "document, fragment",
        [
            ([], "must be a JSON/TOML object"),
            ({"tenant": []}, "unknown config keys"),
            ({"tenants": []}, "non-empty list"),
            ({}, "'tenants' list"),
            ({"tenants": [{"prefix": "HT"}], "hierarchy": 3}, "hierarchy"),
            (
                {"tenants": [{"prefix": "HT"}], "budgets": {"turbo": 1}},
                "unknown budget keys",
            ),
            ({"tenants": [{"prefix": "HT"}]}, "'process' path"),
            ({"tenants": [{"process": "x.json"}]}, "cannot read process"),
        ],
    )
    def test_structural_errors(self, document, fragment):
        with pytest.raises(ConfigError, match=fragment):
            parse_config(document)

    def test_duplicate_purpose_and_prefix_refuse(self, tmp_path):
        write_scenario_config(tmp_path, "healthcare")
        base = {"prefix": "HT", "process": "ht.json"}
        with pytest.raises(ConfigError, match="duplicate tenant purpose"):
            parse_config(
                {"tenants": [base, {"prefix": "H2", "process": "ht.json"}]},
                base_dir=str(tmp_path),
            )
        with pytest.raises(ConfigError, match="duplicate case prefix"):
            parse_config(
                {"tenants": [base, {"prefix": "HT", "process": "ct.json"}]},
                base_dir=str(tmp_path),
            )

    def test_purpose_alias_must_match_the_process(self, tmp_path):
        write_scenario_config(tmp_path, "healthcare")
        with pytest.raises(ConfigError, match="does not match"):
            parse_config(
                {
                    "tenants": [
                        {
                            "purpose": "not-treatment",
                            "prefix": "HT",
                            "process": "ht.json",
                        }
                    ]
                },
                base_dir=str(tmp_path),
            )

    def test_bad_policy_text_refuses(self, tmp_path):
        write_scenario_config(tmp_path, "healthcare")
        with pytest.raises(ConfigError, match="bad policy"):
            parse_config(
                {
                    "tenants": [
                        {
                            "prefix": "HT",
                            "process": "ht.json",
                            "policy_text": ":::not a policy:::",
                        }
                    ]
                },
                base_dir=str(tmp_path),
            )

    def test_unreadable_config_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read config"):
            load_config(str(tmp_path / "missing.json"))
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_config(str(broken))


class TestFingerprints:
    def test_reload_is_fingerprint_stable(self, tmp_path):
        path = str(write_scenario_config(tmp_path, "healthcare"))
        first, second = load_config(path), load_config(path)
        assert first.fingerprint() == second.fingerprint()
        assert first.tenant_fingerprints() == second.tenant_fingerprints()

    def test_round_trip_through_to_document(self, tmp_path):
        original = load_config(
            str(write_scenario_config(tmp_path, "healthcare"))
        )
        round_tripped = parse_config(original.to_document())
        # File-referenced and inlined forms are the same audit inputs.
        assert (
            round_tripped.tenant_fingerprints()
            == original.tenant_fingerprints()
        )
        assert round_tripped.fingerprint() == original.fingerprint()

    def test_process_change_moves_only_its_tenant(self, tmp_path):
        config_path = write_scenario_config(tmp_path, "healthcare")
        before = load_config(str(config_path)).tenant_fingerprints()
        mutate_tenant_process(config_path, "CT")
        after = load_config(str(config_path)).tenant_fingerprints()
        assert after["treatment"] == before["treatment"]
        assert after["clinicaltrial"] != before["clinicaltrial"]

    def test_budgets_do_not_move_tenant_fingerprints(self, tmp_path):
        plain = load_config(
            str(write_scenario_config(tmp_path, "healthcare"))
        )
        budgeted = load_config(
            str(
                write_scenario_config(
                    tmp_path, "healthcare", budgets={"shards": 7}
                )
            )
        )
        # Budgets cannot change a verdict, so they must not force a
        # re-audit — but the whole-document fingerprint does move.
        assert (
            budgeted.tenant_fingerprints() == plain.tenant_fingerprints()
        )
        assert budgeted.fingerprint() != plain.fingerprint()

    def test_prefix_change_moves_the_tenant_fingerprint(self, tmp_path):
        config = load_config(
            str(write_scenario_config(tmp_path, "healthcare"))
        )
        respec = []
        for tenant in config.tenants:
            prefix = "HX" if tenant.prefix == "HT" else tenant.prefix
            respec.append(
                TenantSpec(
                    purpose=tenant.purpose,
                    prefix=prefix,
                    process=tenant.process,
                    policy_text=tenant.policy_text,
                )
            )
        moved = AuditConfig(
            version=config.version,
            tenants=tuple(respec),
            hierarchy=config.hierarchy,
        )
        assert (
            moved.tenant_fingerprints()["treatment"]
            != config.tenant_fingerprints()["treatment"]
        )


class TestServeConfigAndPreflight:
    def test_budgets_win_over_flag_defaults(self, tmp_path):
        config = load_config(
            str(
                write_scenario_config(
                    tmp_path,
                    "healthcare",
                    budgets={"shards": 2, "case_timeout_s": 1.5},
                )
            )
        )
        serve = config.serve_config(shards=8, queue_capacity=500)
        assert isinstance(serve, ServeConfig)
        assert serve.shards == 2  # document wins
        assert serve.case_timeout_s == 1.5
        assert serve.queue_capacity == 500  # flag untouched by the doc

    def test_preflight_is_clean_for_shipped_scenarios(self, tmp_path):
        config = load_config(
            str(write_scenario_config(tmp_path, "healthcare"))
        )
        report = config.preflight()
        assert report.clean, [d.code for d in report.errors]
