"""Tests for the deterministic fault-injection harness itself."""

import multiprocessing
import os
from datetime import datetime, timedelta

import pytest

from repro.audit import AuditTrail, LogEntry, Status
from repro.audit.store import AuditStore
from repro.audit.xes import XesError, export_xes, import_xes
from repro.bpmn import encode
from repro.core import ComplianceChecker, PurposeControlAuditor
from repro.core.resilience import Quarantine
from repro.obs import MetricsRegistry, Telemetry
from repro.obs.log import ARTIFACT_INVALID, MemoryEventLog
from repro.policy.registry import ProcessRegistry
from repro.scenarios import sequential_process
from repro.testing import (
    FaultInjector,
    FaultPlan,
    FaultyChecker,
    InjectedFaultError,
    cases_started,
    corrupt_artifact,
    corrupt_store_row,
    corrupt_xes_event,
    reset_fault_counters,
)


def entry(case, task, minute):
    return LogEntry(
        user="Sam",
        role="Staff",
        action="work",
        obj=None,
        task=task,
        case=case,
        timestamp=datetime(2010, 1, 1, 9, 0) + timedelta(minutes=minute),
        status=Status.SUCCESS,
    )


@pytest.fixture
def checker():
    return ComplianceChecker(encode(sequential_process(2)))


class TestCaseCounters:
    def test_counts_per_plan_name(self, checker):
        reset_fault_counters()
        plan = FaultPlan(name="counting")
        faulty = FaultyChecker(checker, plan, "seq-2")
        assert cases_started("counting") == 0
        faulty.check([entry("C-1", "T1", 0)])
        faulty.session()
        assert cases_started("counting") == 2
        assert cases_started("other") == 0
        reset_fault_counters("counting")
        assert cases_started("counting") == 0


class TestRaiseFault:
    def test_raises_on_exactly_the_nth_case(self, checker):
        reset_fault_counters()
        plan = FaultPlan(name="raise-2nd", raise_on_case=2)
        faulty = FaultyChecker(checker, plan, "seq-2")
        first = faulty.check([entry("C-1", "T1", 0), entry("C-1", "T2", 1)])
        assert first.compliant  # case 1: inert
        with pytest.raises(InjectedFaultError) as excinfo:
            faulty.check([entry("C-2", "T1", 0)])
        assert "case #2" in str(excinfo.value)
        # case 3: the trigger has passed, back to normal
        assert faulty.check([entry("C-3", "T1", 0)]).compliant

    def test_inert_plan_is_byte_identical(self, checker):
        reset_fault_counters()
        plan = FaultPlan(name="inert")
        faulty = FaultyChecker(checker, plan, "seq-2")
        entries = [entry("C-1", "T1", 0), entry("C-1", "T2", 1)]
        wrapped = faulty.check(entries)
        plain = checker.check(entries)
        assert wrapped.compliant == plain.compliant
        assert wrapped.failed_index == plain.failed_index
        assert len(wrapped.steps) == len(plain.steps)

    def test_faulty_session_delegates(self, checker):
        reset_fault_counters()
        plan = FaultPlan(name="session")
        session = FaultyChecker(checker, plan, "seq-2").session()
        assert session.feed(entry("C-1", "T1", 0))
        assert session.entries_fed == 1
        assert session.compliant
        assert session.result().compliant


class TestCrashFault:
    def test_guarded_crash_is_inert_in_the_arming_process(self, checker):
        # only_in_workers (default): armed in THIS process, so the crash
        # must not fire here — the serial-fallback safety property.
        reset_fault_counters()
        plan = FaultPlan(name="guarded-crash", crash_on_case=1)
        assert plan.armed_pid == os.getpid()
        faulty = FaultyChecker(checker, plan, "seq-2")
        assert faulty.check([entry("C-1", "T1", 0)]).compliant  # still alive

    def test_crash_fires_in_another_process(self, checker):
        plan = FaultPlan(name="real-crash", crash_on_case=1, exit_code=17)
        context = multiprocessing.get_context()
        process = context.Process(
            target=_crash_victim, args=(plan,), daemon=True
        )
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 17


def _crash_victim(plan):
    plan.on_case_start("seq-2")  # different pid: os._exit(17)
    os._exit(0)  # pragma: no cover - unreachable when the fault fires


class TestInjectorTargeting:
    def test_untargeted_purpose_is_left_unwrapped(self, checker):
        injector = FaultInjector(
            plan=FaultPlan(name="target"), purposes=("other",)
        )
        assert injector(checker, "seq-2") is checker
        assert isinstance(injector(checker, "other"), FaultyChecker)

    def test_no_purpose_filter_wraps_everything(self, checker):
        injector = FaultInjector(plan=FaultPlan(name="target-all"))
        assert isinstance(injector(checker, "anything"), FaultyChecker)

    def test_injector_is_picklable(self):
        import pickle

        injector = FaultInjector(
            plan=FaultPlan(name="pickled", crash_on_case=2),
            purposes=("seq-2",),
        )
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.plan.crash_on_case == 2
        assert clone.plan.armed_pid == injector.plan.armed_pid


class TestEntryCorruptors:
    def test_corrupt_xes_event_quarantines_exactly_one(self):
        trail = AuditTrail(
            [entry("C-1", "T1", 0), entry("C-1", "T2", 1),
             entry("C-2", "T1", 2)]
        )
        document = export_xes(trail)
        corrupted = corrupt_xes_event(
            document, entry("C-1", "T2", 1).timestamp.isoformat()
        )
        with pytest.raises(XesError):
            import_xes(corrupted)
        quarantine = Quarantine()
        loaded = import_xes(corrupted, quarantine=quarantine)
        assert len(loaded) == len(trail) - 1
        assert len(quarantine) == 1
        assert quarantine.entries[0].source == "xes"

    def test_corrupt_xes_event_rejects_unknown_timestamp(self):
        with pytest.raises(ValueError):
            corrupt_xes_event("<log></log>", "2010-01-01T09:00:00")

    def test_corrupt_store_row_surfaces_as_dead_letter(self, tmp_path):
        db = tmp_path / "trail.db"
        with AuditStore(str(db)) as store:
            store.append_many(
                [entry("C-1", "T1", 0), entry("C-1", "T2", 1)]
            )
            corrupt_store_row(store, 2)
            quarantine = Quarantine()
            trail = store.query(quarantine=quarantine)
            assert len(trail) == 1
            assert len(quarantine) == 1
            assert quarantine.entries[0].source == "store"
            assert quarantine.entries[0].position == 2


class TestArtifactCorruptor:
    """The compiled-replay robustness promise, exercised end to end: a
    damaged automaton artifact is logged and recompiled — it never
    changes a verdict and never fails the audit."""

    @staticmethod
    def _registry():
        return ProcessRegistry().register(sequential_process(2), "C")

    @staticmethod
    def _trail():
        return AuditTrail(
            [
                entry("C-1", "T1", 0),
                entry("C-1", "T2", 1),
                entry("C-2", "T2", 2),  # invalid: skips T1
            ]
        )

    def _flagged(self, auditor, trail):
        return set(auditor.audit(trail).infringing_cases)

    @pytest.mark.parametrize(
        "mode", ["truncate", "garbage", "version", "fingerprint", "empty"]
    )
    def test_corrupted_artifact_never_fails_the_audit(self, tmp_path, mode):
        registry = self._registry()
        trail = self._trail()
        baseline = self._flagged(
            PurposeControlAuditor(registry), trail
        )

        # first compiled run writes the artifact
        first = PurposeControlAuditor(
            registry, automaton_dir=str(tmp_path)
        )
        assert self._flagged(first, trail) == baseline
        artifacts = sorted(tmp_path.glob("*.automaton.json"))
        assert len(artifacts) == 1

        corrupt_artifact(artifacts[0], mode)

        log = MemoryEventLog()
        tel = Telemetry.create(registry=MetricsRegistry(), events=log.events)
        second = PurposeControlAuditor(
            registry, automaton_dir=str(tmp_path), telemetry=tel
        )
        assert self._flagged(second, trail) == baseline  # verdicts intact
        invalid = log.named(ARTIFACT_INVALID)
        assert len(invalid) == 1
        assert invalid[0]["reason"] in (
            "truncated", "unreadable", "version", "fingerprint"
        )

        # the recompile healed the cache: a third run loads it cleanly
        from repro.compile import load_artifact

        third_log = MemoryEventLog()
        third = PurposeControlAuditor(
            registry,
            automaton_dir=str(tmp_path),
            telemetry=Telemetry.create(
                registry=MetricsRegistry(), events=third_log.events
            ),
        )
        assert self._flagged(third, trail) == baseline
        assert third_log.named(ARTIFACT_INVALID) == []
        load_artifact(sorted(tmp_path.glob("*.automaton.json"))[0])
