"""The serve-smoke load driver (run in CI's ``serve-smoke`` job).

Boots the daemon with a store and pushes a generated hospital workload
through one TCP connection as fast as the socket allows, then asserts
the service-level objectives the CI job enforces:

* **throughput** — the stream sustains at least 1 000 entries/s end to
  end (send → shard-processed), measured over the whole workload;
* **latency** — p95 per-entry shard processing time stays in
  single-digit milliseconds (from the ``serve_ingest_seconds``
  histogram);
* **zero dropped entries** — every entry sent is accounted for: router
  received == client sent == store rows, with the hash chain intact.
"""

import time

import pytest

from repro.audit.store import AuditStore
from repro.obs import MetricsRegistry, Telemetry
from repro.scenarios import hospital_day, process_registry, role_hierarchy
from repro.serve import AuditStreamClient, ServeConfig


@pytest.fixture(scope="module")
def workload():
    return hospital_day(n_cases=60, violation_rate=0.2, seed=99)


class TestServeSmoke:
    def test_hospital_workload_slo(self, serve_factory, workload, tmp_path):
        telemetry = Telemetry.create(registry=MetricsRegistry())
        store_path = str(tmp_path / "load.db")
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(
                shards=4,
                store_path=store_path,
                flush_max_batch=128,
                # The SLO is a compiled-path promise: the daemon
                # pre-compiles every purpose automaton at startup and
                # each shard replays by transition-table lookup.
                compiled=True,
            ),
            telemetry=telemetry,
        )

        entries = list(workload.trail)
        assert len(entries) >= 400, "workload too small to measure"

        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            # Warm the engine out-of-band so the measurement reflects
            # steady state, like a daemon that has been up for a while.
            client.send_trail(entries[:20])
            client.sync()

            started = time.perf_counter()
            client.send_trail(entries[20:])
            client.sync()
            elapsed = time.perf_counter() - started

            measured = len(entries) - 20
            rate = measured / elapsed
            assert rate >= 1000, (
                f"sustained only {rate:.0f} entries/s over {measured} "
                f"entries (need >= 1000)"
            )

            served = client.results()
            infringing = {
                case
                for case, info in served.items()
                if info["state"] == "infringing"
            }
            expected = {
                case for case, ok in workload.ground_truth.items() if not ok
            }
            assert infringing == expected

        # p95 ingest latency from the shard-side histogram.
        ingest = telemetry.registry.get("serve_ingest_seconds")
        p95 = ingest.quantile(0.95)
        assert p95 < 0.05, f"p95 ingest latency {p95 * 1000:.1f} ms"

        report = handle.drain()
        # Zero dropped entries, end to end.
        assert report.entries_received == len(entries)
        assert report.entries_written == len(entries)
        assert report.quarantined_cases == 0
        assert report.store_intact is True
        with AuditStore(store_path) as store:
            assert len(store) == len(entries)
            store.verify_integrity()

    def test_flush_batching_actually_batches(
        self, serve_factory, workload, tmp_path
    ):
        """The store writer commits in append_many transactions, not one
        transaction per entry."""
        telemetry = Telemetry.create(registry=MetricsRegistry())
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(
                shards=2,
                store_path=str(tmp_path / "batched.db"),
                flush_max_batch=64,
            ),
            telemetry=telemetry,
        )
        entries = list(workload.trail)
        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            client.send_trail(entries)
            client.sync()
        handle.drain()
        flushes = telemetry.registry.counter("serve_flushes_total").total
        assert 0 < flushes <= len(entries) / 32, (
            f"{flushes} flushes for {len(entries)} entries — batching "
            "is not happening"
        )
