"""Shared harness for the streaming-audit-service suites.

``serve_factory`` boots a real :class:`~repro.serve.AuditService` — TCP
socket, HTTP endpoint and all — on an asyncio loop running in a
background thread, and tears everything down (drain included) when the
test finishes.  Tests talk to it with the shipped
:class:`~repro.serve.AuditStreamClient`, exactly like an external log
shipper would.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve import AuditService, ServeConfig, ShardRouter
from repro.serve.core import DrainReport


class RunningService:
    """One live service on a background event loop (test handle)."""

    def __init__(self, service: AuditService, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.service = service
        self.router = service.router
        self._loop = loop
        self._thread = thread
        self._report: "DrainReport | None" = None

    @property
    def host(self) -> str:
        return "127.0.0.1"

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    @property
    def http_port(self) -> int:
        assert self.service.http_port is not None
        return self.service.http_port

    def drain(self) -> DrainReport:
        if self._report is None:
            future = asyncio.run_coroutine_threadsafe(
                self.service.drain(), self._loop
            )
            self._report = future.result(timeout=30)
        return self._report

    def stop(self) -> None:
        self.drain()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        if not self._loop.is_running():
            self._loop.close()


@pytest.fixture
def serve_factory():
    """``start(registry, ...) -> RunningService``; auto-stopped."""
    running: list[RunningService] = []

    def start(
        registry,
        hierarchy=None,
        config: "ServeConfig | None" = None,
        telemetry=None,
        checker_wrapper=None,
        temporal=None,
        http: bool = False,
        control=None,
    ) -> RunningService:
        router = ShardRouter(
            registry,
            hierarchy=hierarchy,
            config=config or ServeConfig(shards=3),
            telemetry=telemetry,
            checker_wrapper=checker_wrapper,
            temporal=temporal,
        )
        if control == "mount":
            # Convenience: build a ControlPlane over the router itself.
            from repro.control import ControlPlane

            control = ControlPlane(router=router, telemetry=telemetry)
        service = AuditService(
            router, http_port=0 if http else None, control=control
        )
        loop = asyncio.new_event_loop()
        thread = threading.Thread(
            target=loop.run_forever, name="serve-test-loop", daemon=True
        )
        thread.start()
        asyncio.run_coroutine_threadsafe(service.start(), loop).result(
            timeout=30
        )
        handle = RunningService(service, loop, thread)
        running.append(handle)
        return handle

    yield start
    for handle in running:
        handle.stop()
