"""Crash recovery: store + WAL delta → byte-identical in-flight state.

These tests crash the router the cheap way — abandon it without a
drain, exactly what ``kill -9`` leaves on disk (a store missing its
unflushed tail, a WAL holding every accepted record) — and assert that
a fresh router after :func:`repro.serve.recovery.recover` produces
per-case canonical digests identical to an uninterrupted run.  The
subprocess version (real SIGKILL over a real socket) lives in
``test_chaos.py``.
"""

import pytest

from repro.audit.store import AuditStore
from repro.core.auditor import PurposeControlAuditor
from repro.errors import ReproError
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)
from repro.serve import ServeConfig, ShardRouter, recover
from repro.serve.recovery import collect_case_histories
from repro.serve.wal import WalCorruptionError, read_wal
from repro.testing import canonical_digest, corrupt_wal_tail


def _batch_digests():
    registry, hierarchy = process_registry(), role_hierarchy()
    report = PurposeControlAuditor(registry, hierarchy=hierarchy).audit(
        paper_audit_trail()
    )
    return {
        case: canonical_digest(result.replay)
        for case, result in report.cases.items()
        if result.replay is not None
    }


def _config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(
        shards=3,
        store_path=str(tmp_path / "audit.db"),
        wal_dir=str(tmp_path / "wal"),
        flush_max_batch=10_000,  # flushes only when the test says so
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _router(tmp_path, **overrides) -> ShardRouter:
    router = ShardRouter(
        process_registry(),
        hierarchy=role_hierarchy(),
        config=_config(tmp_path, **overrides),
    )
    router.start()
    return router


def _crash(router: ShardRouter) -> None:
    """Abandon a router the way kill -9 does: no drain, no WAL reset.

    The WAL buffers are committed first — the chaos suite covers the
    fsync-lost tail; here every *acknowledged* (synced) entry is on
    disk, which is the durability level the protocol promises.
    """
    for wal in router._wals.values():
        wal.commit()
        wal.close()
    router._accepting = False  # the old threads idle harmlessly


def _digests(router: ShardRouter) -> dict:
    return {
        case: info["digest"]
        for case, info in router.results().items()
        if info["digest"] is not None
    }


class TestRecoverEndToEnd:
    def test_crash_before_any_flush_recovers_from_wal_alone(self, tmp_path):
        trail = list(paper_audit_trail())
        first = _router(tmp_path)
        for entry in trail:
            assert first.submit(entry).accepted
        assert first.wait_idle(timeout=30)
        _crash(first)  # nothing was flushed: the store is empty

        second = _router(tmp_path)
        report = recover(second)
        assert report.store_entries == 0
        assert report.replayed == len(trail)
        assert report.cases > 0
        assert second.wait_idle(timeout=30)
        assert _digests(second) == _batch_digests()
        drained = second.drain()
        assert drained.store_intact is True
        # Post-recovery flush caught the store up with every entry.
        assert drained.entries_written == len(trail)

    def test_crash_between_flush_and_retirement_never_double_counts(
        self, tmp_path
    ):
        trail = list(paper_audit_trail())
        half = len(trail) // 2
        first = _router(tmp_path)
        for entry in trail[:half]:
            first.submit(entry)
        first.flush()
        assert first._writer_sync(timeout=30)
        for entry in trail[half:]:
            first.submit(entry)
        assert first.wait_idle(timeout=30)
        _crash(first)

        # The store holds the first half; the WAL still holds *all*
        # accepted records for some shards (retirement only drops whole
        # sealed segments).  Recovery must dedupe by case_seq.
        second = _router(tmp_path)
        report = recover(second)
        assert report.store_entries == half
        assert report.replayed == len(trail)
        assert second.wait_idle(timeout=30)
        assert _digests(second) == _batch_digests()
        stats = second.statistics()
        assert stats["entries_observed"] == len(trail)
        drained = second.drain()
        assert drained.store_intact is True
        # Only the WAL delta is (re)written — the stored prefix is not
        # appended twice.
        assert drained.entries_written == len(trail) - half
        store = AuditStore(str(tmp_path / "audit.db"))
        assert len(store.query()) == len(trail)
        store.close()

    def test_repeated_partial_recovery_is_idempotent(self, tmp_path):
        trail = list(paper_audit_trail())
        first = _router(tmp_path)
        for entry in trail:
            first.submit(entry)
        assert first.wait_idle(timeout=30)
        _crash(first)

        # Crash *during* recovery, after the replay flushed but before
        # the WAL was reset — then recover again on the leftovers.
        second = _router(tmp_path)
        recover(second)
        assert second.wait_idle(timeout=30)
        _crash(second)

        third = _router(tmp_path)
        report = recover(third)
        assert third.wait_idle(timeout=30)
        assert _digests(third) == _batch_digests()
        assert report.duplicates == 0 or report.replayed == len(trail)
        drained = third.drain()
        assert drained.store_intact is True
        store = AuditStore(str(tmp_path / "audit.db"))
        assert len(store.query()) == len(trail)
        store.close()

    @pytest.mark.parametrize("shards", [1, 5])
    def test_recovery_across_a_shard_count_change(self, tmp_path, shards):
        trail = list(paper_audit_trail())
        first = _router(tmp_path)  # 3 shards
        for entry in trail:
            first.submit(entry)
        assert first.wait_idle(timeout=30)
        _crash(first)

        # The replacement runs a different topology: WAL segments are
        # keyed by *old* shard names, cases re-home through the new
        # ring, and the verdicts must not care.
        second = _router(tmp_path, shards=shards)
        recover(second)
        assert second.wait_idle(timeout=30)
        assert _digests(second) == _batch_digests()
        # Stale-topology segments were cleaned up once the store owned
        # everything.
        leftover = {r.shard for r in read_wal(tmp_path / "wal").records}
        assert leftover <= {f"shard-{i}" for i in range(shards)}
        second.drain()

    def test_torn_wal_tail_recovers_the_acknowledged_prefix(self, tmp_path):
        trail = list(paper_audit_trail())
        first = _router(tmp_path, shards=1)
        for entry in trail:
            first.submit(entry)
        assert first.wait_idle(timeout=30)
        _crash(first)
        from repro.serve.wal import segment_paths

        last = segment_paths(tmp_path / "wal", "shard-0")[-1]
        corrupt_wal_tail(last, mode="truncate")

        second = _router(tmp_path, shards=1)
        report = recover(second)
        assert report.torn_segments
        # The torn record was never durably acknowledged; everything
        # before it must replay cleanly.
        assert report.replayed == len(trail) - 1
        assert second.wait_idle(timeout=30)
        second.drain()


class TestRecoverGuards:
    def test_recover_requires_a_wal(self, tmp_path):
        router = ShardRouter(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(shards=2, store_path=str(tmp_path / "a.db")),
        )
        router.start()
        with pytest.raises(ReproError, match="wal_dir"):
            recover(router)
        router.drain()

    def test_recover_refuses_a_tampered_store(self, tmp_path):
        trail = list(paper_audit_trail())
        first = _router(tmp_path)
        for entry in trail:
            first.submit(entry)
        first.flush()
        assert first._writer_sync(timeout=30)
        assert first.wait_idle(timeout=30)
        _crash(first)

        store = AuditStore(str(tmp_path / "audit.db"))
        store.tamper(1, status="failure")
        store.close()

        second = _router(tmp_path)
        with pytest.raises(ReproError, match="hash-chain"):
            recover(second)
        second.drain()

    def test_gap_in_sealed_wal_data_raises(self, tmp_path):
        trail = list(paper_audit_trail())
        first = _router(tmp_path, shards=1)
        for entry in trail:
            first.submit(entry)
        assert first.wait_idle(timeout=30)
        _crash(first)

        # Drop a middle record by rewriting the (single) segment without
        # it — a hole in fsynced data, which no crash produces.
        wal_dir = tmp_path / "wal"
        result = read_wal(wal_dir, "shard-0")
        by_case: dict = {}
        victim = None
        for record in result.records:
            by_case.setdefault(record.case, []).append(record)
        for case, records in by_case.items():
            if len(records) >= 3:
                victim = records[1]  # a strict middle entry
                break
        assert victim is not None
        from repro.serve.wal import WalWriter, segment_paths

        for path in segment_paths(wal_dir):
            path.unlink()
        writer = WalWriter(wal_dir, "shard-0")
        for record in result.records:
            if record is victim:
                continue
            writer.append(record.entry, record.case_seq)
        writer.close()

        with pytest.raises(WalCorruptionError, match="missing"):
            collect_case_histories(None, str(wal_dir))

    def test_sequence_high_water_mark_survives_recovery(self, tmp_path):
        trail = list(paper_audit_trail())
        case = trail[0].case
        case_entries = [e for e in trail if e.case == case]
        first = _router(tmp_path)
        for seq, entry in enumerate(case_entries, start=1):
            assert first.submit(entry, seq=seq).accepted
        assert first.wait_idle(timeout=30)
        _crash(first)

        second = _router(tmp_path)
        recover(second)
        assert second.wait_idle(timeout=30)
        # A client resuming its numbered stream re-sends the tail; every
        # re-send must come back as an idempotent duplicate.
        resend = second.submit(case_entries[-1], seq=len(case_entries))
        assert not resend.accepted
        assert resend.duplicate
        # ... and the *next* number is accepted as fresh work would be.
        assert second.case_sequence(case) == len(case_entries)
        second.drain()


class TestRecoverThroughTableTier:
    """``--recover`` with the dense-table replay tier on: the rebuilt
    in-flight state must be byte-identical to batch ground truth, and
    the replay must actually run on the table (not silently fall back)."""

    def _table_router(self, tmp_path, telemetry=None):
        from repro.obs import NULL_TELEMETRY
        from repro.serve import ShardRouter

        router = ShardRouter(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=_config(
                tmp_path,
                compiled=True,
                table=True,
                automaton_dir=str(tmp_path / "automata"),
            ),
            telemetry=telemetry if telemetry is not None else NULL_TELEMETRY,
        )
        router.start()
        return router

    def test_recovery_replays_through_the_dense_table(self, tmp_path):
        from repro.obs import MetricsRegistry, Telemetry

        trail = list(paper_audit_trail())
        first = self._table_router(tmp_path)
        for entry in trail:
            assert first.submit(entry).accepted
        assert first.wait_idle(timeout=30)
        _crash(first)

        registry = MetricsRegistry()
        second = self._table_router(
            tmp_path, telemetry=Telemetry.create(registry=registry)
        )
        report = recover(second)
        assert report.replayed == len(trail)
        assert second.wait_idle(timeout=30)
        assert _digests(second) == _batch_digests()
        # The recovered replay ran on the table tier, not a fallback.
        assert registry.counter("automaton_table_hits_total").total > 0
        second.drain()

    def test_recovery_survives_a_corrupt_table_artifact(self, tmp_path):
        """A table that rots while the service is down must cost only
        the fast tier: recovery completes on lazy replay, digests
        unchanged."""
        from pathlib import Path

        from repro.testing import corrupt_artifact

        trail = list(paper_audit_trail())
        first = self._table_router(tmp_path)
        for entry in trail:
            assert first.submit(entry).accepted
        assert first.wait_idle(timeout=30)
        _crash(first)

        # Corrupt *after* the restarted router's startup precompile
        # rewrites the artifacts: the rot must be caught at warm-load
        # time, on the recovery replay path itself.
        second = self._table_router(tmp_path)
        tables = sorted(Path(tmp_path / "automata").glob("*.table.bin"))
        assert tables, "precompile should have persisted table artifacts"
        for path in tables:
            corrupt_artifact(path, "bitflip")
        report = recover(second)
        assert report.replayed == len(trail)
        assert second.wait_idle(timeout=30)
        assert _digests(second) == _batch_digests()
        second.drain()
