"""Torn/truncated JSON-lines tolerance and the idempotence ``seq`` field.

A crash mid-write (the shipper's or the daemon's) leaves a partial
trailing line.  The protocol layer must salvage every complete line
before it (``decode_jsonl``), the service must drop a torn trailing
request line silently instead of dead-lettering it, and numbered
entries must round-trip so re-sends dedupe.
"""

import pytest

from repro.scenarios import paper_audit_trail
from repro.serve import AuditStreamClient, ServeConfig
from repro.serve.protocol import (
    ProtocolError,
    decode_jsonl,
    encode_message,
    entry_from_message,
    entry_seq,
    entry_to_message,
)


class TestDecodeJsonl:
    def test_clean_buffer_decodes_fully(self):
        data = b'{"a":1}\n{"b":2}\n'
        messages, torn = decode_jsonl(data)
        assert messages == [{"a": 1}, {"b": 2}]
        assert not torn

    def test_torn_trailing_line_is_tolerated(self):
        data = b'{"a":1}\n{"b":2}\n{"c":'  # cut mid-write
        messages, torn = decode_jsonl(data)
        assert messages == [{"a": 1}, {"b": 2}]
        assert torn

    def test_torn_trailing_line_raises_when_strict(self):
        with pytest.raises(ProtocolError):
            decode_jsonl(b'{"a":1}\n{"b":', tolerant=False)

    def test_junk_mid_buffer_is_corruption_not_truncation(self):
        # The bad line is *followed* by a good one: that is not a torn
        # tail, and silently skipping it would hide real corruption.
        with pytest.raises(ProtocolError):
            decode_jsonl(b'{"a":1}\nnot json\n{"b":2}\n')

    def test_complete_final_line_of_non_object_raises(self):
        # A newline-terminated array is a protocol violation, not a tear.
        with pytest.raises(ProtocolError):
            decode_jsonl(b'{"a":1}\n[1,2]\n')

    def test_torn_multibyte_utf8_tail(self):
        clean = encode_message({"case": "ACME-1", "note": "café"})
        torn = clean + encode_message({"note": "naïve"})[:-4]
        messages, was_torn = decode_jsonl(torn)
        assert messages[0]["note"] == "café"
        assert was_torn

    def test_empty_and_blank_buffers(self):
        assert decode_jsonl(b"") == ([], False)
        assert decode_jsonl(b"\n\n  \n") == ([], False)

    def test_wal_style_roundtrip_through_entries(self):
        entries = list(paper_audit_trail())[:5]
        buffer = b"".join(
            encode_message(entry_to_message(e)) for e in entries
        )
        # Tear the final record mid-line.
        torn = buffer[:-9]
        messages, was_torn = decode_jsonl(torn)
        assert was_torn
        assert [entry_from_message(m) for m in messages] == entries[:4]


class TestEntrySeq:
    def test_roundtrip(self):
        entry = list(paper_audit_trail())[0]
        message = entry_to_message(entry, seq=7)
        assert message["seq"] == 7
        assert entry_seq(message) == 7
        assert entry_from_message(message) == entry

    def test_absent_means_unnumbered(self):
        entry = list(paper_audit_trail())[0]
        assert entry_seq(entry_to_message(entry)) is None

    @pytest.mark.parametrize("bad", [0, -3, "1", 1.5, True, [1]])
    def test_junk_seq_rejected(self, bad):
        with pytest.raises(ProtocolError):
            entry_seq({"seq": bad})


class TestServiceTornTail:
    def test_torn_trailing_request_line_is_dropped_silently(
        self, serve_factory
    ):
        from repro.scenarios import process_registry, role_hierarchy

        trail = list(paper_audit_trail())
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(shards=2),
        )
        client = AuditStreamClient(handle.host, handle.port)
        client.recv_until("hello")
        client.send_trail(trail[:3])
        client.sync()
        # A torn final line: bytes flushed without the newline, then the
        # connection dies (exactly what a killed shipper leaves behind).
        payload = encode_message(entry_to_message(trail[3]))[:-10]
        client._file.write(payload)
        client._file.flush()
        client.abort()

        # The service must treat it as truncation, not a protocol error.
        second = AuditStreamClient(handle.host, handle.port)
        second.recv_until("hello")
        second.sync()
        status = second.status()
        assert status["entries_received"] == 3
        assert status["dead_letters"] == 0
        second.bye()
        handle.drain()
