"""Bounded queues, busy/shed admission control, and client retry.

Overload must degrade explicitly: the library path blocks (TCP
push-back), the service path refuses with ``busy``/``retry_after``
below capacity and sheds above it, and a well-behaved shipper
(:class:`~repro.serve.client.ResilientAuditClient`) converges to the
exact uninterrupted verdicts anyway — no accepted entry lost, none
double-counted.
"""

import random
import time
from collections import deque

import pytest

from repro.core.auditor import PurposeControlAuditor
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)
from repro.serve import ResilientAuditClient, ServeConfig, ShardRouter
from repro.testing import FaultInjector, FaultPlan, canonical_digest


def _batch_digests():
    report = PurposeControlAuditor(
        process_registry(), hierarchy=role_hierarchy()
    ).audit(paper_audit_trail())
    return {
        case: canonical_digest(result.replay)
        for case, result in report.cases.items()
        if result.replay is not None
    }


def _digests(router) -> dict:
    return {
        case: info["digest"]
        for case, info in router.results().items()
        if info["digest"] is not None
    }


def _slow(slow_s: float) -> FaultInjector:
    return FaultInjector(
        plan=FaultPlan(name=f"slow-{slow_s}", slow_s=slow_s)
    )


def _router(**config) -> ShardRouter:
    defaults = dict(shards=1, queue_capacity=4)
    defaults.update(config)
    router = ShardRouter(
        process_registry(),
        hierarchy=role_hierarchy(),
        config=ServeConfig(**defaults),
        checker_wrapper=_slow(0.02),
    )
    router.start()
    return router


class TestAdmissionControl:
    def test_nonblocking_submit_refuses_busy_under_load(self):
        trail = list(paper_audit_trail())
        router = _router(busy_watermark=2, shed_watermark=3)
        pending = deque(trail)
        busy_seen = 0
        while pending:
            entry = pending.popleft()
            admission = router.submit(entry, block=False)
            if admission.accepted:
                continue
            assert admission.busy
            assert admission.retry_after_s > 0
            assert "watermark" in admission.reason
            busy_seen += 1
            # Per-case order must survive the retry: put it back at the
            # *front*, exactly where a sequenced shipper would resume.
            pending.appendleft(entry)
            time.sleep(admission.retry_after_s)
        # A µs-scale submit loop against a 20 ms/entry shard must have
        # tripped the watermark.
        assert busy_seen > 0
        assert router.wait_idle(timeout=60)
        assert _digests(router) == _batch_digests()
        stats = router.statistics()["backpressure"]
        assert stats["busy"] == busy_seen
        assert stats["busy_watermark"] == 2
        router.drain()

    def test_shed_watermark_refuses_above_busy(self):
        trail = list(paper_audit_trail())
        router = _router(
            queue_capacity=8, busy_watermark=2, shed_watermark=4
        )
        # Blocking submitters (the library path) are allowed past the
        # watermarks; use them to pile the queue above the shed line...
        for entry in trail[:6]:
            router.submit(entry, block=True)
        # ...so the service path's next entry is shed outright.
        admission = router.submit(trail[6], block=False)
        assert not admission.accepted
        assert admission.shed and admission.busy
        assert router.statistics()["backpressure"]["shed"] >= 1
        assert router.wait_idle(timeout=60)
        router.drain()

    def test_blocking_submit_never_refuses(self):
        trail = list(paper_audit_trail())
        router = _router(busy_watermark=1, shed_watermark=2)
        for entry in trail:
            assert router.submit(entry, block=True).accepted
        assert router.wait_idle(timeout=60)
        assert _digests(router) == _batch_digests()
        stats = router.statistics()["backpressure"]
        assert stats["busy"] == 0 and stats["shed"] == 0
        router.drain()

    def test_sequence_gap_is_refused_not_fatal(self):
        trail = list(paper_audit_trail())
        case = trail[0].case
        entries = [e for e in trail if e.case == case]
        assert len(entries) >= 2
        router = _router(queue_capacity=64)
        assert router.submit(entries[0], seq=1).accepted
        skipped = router.submit(entries[1], seq=3)
        assert not skipped.accepted
        assert skipped.busy and not skipped.shed
        assert "sequence gap" in skipped.reason
        # Delivering the gap first unblocks the stream.
        assert router.submit(entries[1], seq=2).accepted
        router.drain()

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(
                process_registry(),
                config=ServeConfig(
                    shards=1,
                    queue_capacity=4,
                    busy_watermark=3,
                    shed_watermark=2,
                ),
            )


class TestOverloadOverTheWire:
    def test_burst_converges_through_busy_retries(self, serve_factory):
        trail = list(paper_audit_trail())
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(
                shards=1,
                queue_capacity=3,
                busy_watermark=1,
                shed_watermark=3,
                retry_after_s=0.02,
            ),
            checker_wrapper=_slow(0.02),
        )
        shipper = ResilientAuditClient(
            handle.host,
            handle.port,
            max_attempts=30,
            backoff_s=0.02,
            rng=random.Random(7),
        )
        # One burst, ~10x what the slowed shard absorbs in real time.
        outcome = shipper.ship(trail)
        assert outcome["accepted"] == len(trail)
        # The burst *must* have been pushed back on, and the shipper
        # must have absorbed it invisibly.
        assert outcome["busy_retries"] > 0
        shipper.sync()
        status = shipper.status()
        assert status["entries_received"] == len(trail)
        assert status["backpressure"]["busy"] > 0
        assert status["dead_letters"] == 0
        shipper.bye()
        assert handle.router.wait_idle(timeout=60)
        assert _digests(handle.router) == _batch_digests()
        drained = handle.drain()
        assert drained.store_intact in (True, None)

    def test_duplicate_resends_are_acked_not_reprocessed(
        self, serve_factory
    ):
        trail = list(paper_audit_trail())
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(shards=2, queue_capacity=256),
        )
        shipper = ResilientAuditClient(
            handle.host, handle.port, rng=random.Random(3)
        )
        shipper.ship(trail)
        # A shipper that lost its ack state re-ships everything.
        second = ResilientAuditClient(
            handle.host, handle.port, rng=random.Random(4)
        )
        outcome = second.ship(trail)
        assert outcome["duplicates"] == len(trail)
        shipper.bye()
        second.bye()
        assert handle.router.wait_idle(timeout=60)
        status = handle.router.statistics()
        assert status["entries_received"] == len(trail)
        assert status["backpressure"]["duplicates"] == len(trail)
        assert _digests(handle.router) == _batch_digests()
        handle.drain()
