"""Chaos: ``kill -9`` the real daemon mid-stream, recover, compare.

The ISSUE 7 acceptance scenario, end to end over real sockets and a
real process: boot ``repro serve --wal-dir``, stream part of the
paper's trail with sequence numbers, SIGKILL the daemon, restart it
with ``--recover``, finish the stream through the resilient shipper,
and assert the per-case verdict digests are byte-identical to an
uninterrupted batch replay — for 1/3/5 shards, interpreted and
compiled.
"""

import json
import os
import random
import signal
import subprocess
import sys

import pytest

from repro.audit.store import AuditStore
from repro.core.auditor import PurposeControlAuditor
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)
from repro.serve import ResilientAuditClient
from repro.testing import canonical_digest


def _batch_digests():
    report = PurposeControlAuditor(
        process_registry(), hierarchy=role_hierarchy()
    ).audit(paper_audit_trail())
    return {
        case: canonical_digest(result.replay)
        for case, result in report.cases.items()
        if result.replay is not None
    }


def _spawn(tmp_path, shards: int, compiled: bool, recover: bool = False):
    """Boot ``repro serve`` as an operator would; returns (proc, ports)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--scenario", "paper",
        "--shards", str(shards),
        "--store", str(tmp_path / "audit.db"),
        "--wal-dir", str(tmp_path / "wal"),
        "--flush-interval", "0.05",
        "--http-port", "-1",
    ]
    if compiled:
        argv.append("--compiled")
    if recover:
        argv.append("--recover")
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    recovered = None
    line = process.stdout.readline()
    assert line, process.stderr.read()
    report = json.loads(line)
    if recover:
        recovered = report["recovered"]
        line = process.stdout.readline()
        assert line, process.stderr.read()
        report = json.loads(line)
    return process, report["listening"], recovered


@pytest.mark.parametrize("compiled", [False, True], ids=["interp", "compiled"])
@pytest.mark.parametrize("shards", [1, 3, 5])
class TestKillNineRecover:
    def test_sigkill_midstream_then_recover_matches_batch(
        self, tmp_path, shards, compiled
    ):
        trail = list(paper_audit_trail())
        cut = len(trail) // 2
        first, listening, _ = _spawn(tmp_path, shards, compiled)
        try:
            shipper = ResilientAuditClient(
                listening["host"], listening["port"], rng=random.Random(11)
            )
            outcome = shipper.ship(trail[:cut])
            assert outcome["accepted"] == cut
            # The stream is mid-flight and synced; now the machine
            # "loses power".
            first.send_signal(signal.SIGKILL)
            first.wait(timeout=30)
            assert first.returncode == -signal.SIGKILL
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=10)

        second, listening, recovered = _spawn(
            tmp_path, shards, compiled, recover=True
        )
        try:
            # The daemon reported its reconstruction before listening.
            assert recovered["store_intact"] in (True, None)
            assert recovered["replayed"] == cut
            # A shipper that lost its ack state replays from the top:
            # the recovered prefix dedupes, the tail lands fresh.
            resumed = ResilientAuditClient(
                listening["host"], listening["port"], rng=random.Random(13)
            )
            outcome = resumed.ship(trail)
            # "accepted" counts entries the server owns — the recovered
            # prefix acks as duplicates, the tail lands fresh.
            assert outcome["accepted"] == len(trail)
            assert outcome["duplicates"] == cut
            resumed.sync()

            results = resumed.results()
            digests = {
                case: info["digest"]
                for case, info in results.items()
                if info["digest"] is not None
            }
            assert digests == _batch_digests()

            resumed.bye()
            second.send_signal(signal.SIGTERM)
            stdout, stderr = second.communicate(timeout=60)
            assert second.returncode == 0, stderr
            drained = json.loads(stdout.splitlines()[-1])["drained"]
            assert drained["store_intact"] is True
        finally:
            if second.poll() is None:
                second.kill()
                second.wait(timeout=10)

        # The on-disk chain holds the whole trail exactly once.
        with AuditStore(str(tmp_path / "audit.db")) as store:
            assert len(store) == len(trail)
            store.verify_integrity()
