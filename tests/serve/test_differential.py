"""Differential suite: the streaming service vs. batch replay.

For every shipped scenario, drive the daemon over a real TCP socket —
entries arrive exactly as a log shipper would send them — and assert
that the canonical verdict digest the service reports for each case is
**byte-identical** to a batch :class:`PurposeControlAuditor` replay of
the same trail.  Both the interpreted and the compiled service paths
are exercised, across several shard counts, so neither sharding, the
wire protocol, nor automaton replay may perturb a verdict.
"""

import pytest

from repro.audit.generator import TrailGenerator
from repro.audit.model import AuditTrail
from repro.audit.xes import export_xes
from repro.core.auditor import PurposeControlAuditor
from repro.policy.registry import ProcessRegistry
from repro.scenarios import (
    fig7_process,
    fig8_process,
    fig9_process,
    fig10_process,
    hospital_day,
    insurance_audit_trail,
    insurance_registry,
    insurance_role_hierarchy,
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)
from repro.serve import AuditStreamClient, ServeConfig
from repro.testing import canonical_digest

SHARD_COUNTS = (1, 3, 5)


def _appendix_scenario():
    """The appendix figures as a registry plus generated trails."""
    registry = ProcessRegistry()
    figures = [
        ("FIG7", fig7_process()),
        ("FIG8", fig8_process()),
        ("FIG9", fig9_process()),
        ("FIG10", fig10_process()),
    ]
    entries = []
    for prefix, process in figures:
        registry.register(process, prefix)
        encoded = registry.encoded_for(registry.purpose_of_case(f"{prefix}-0"))
        users = {role: [(f"u-{role}", role)] for role in encoded.roles}
        generator = TrailGenerator(encoded, users_by_role=users, seed=7)
        for index in range(1, 4):
            generated = generator.generate_case(
                f"{prefix}-{index}", f"Subject{index}", min_steps=1
            )
            entries.extend(generated.trail)
    entries.sort(key=lambda entry: entry.timestamp)
    return registry, None, AuditTrail(entries)


def _violation_mix_scenario():
    workload = hospital_day(
        n_cases=12,
        violation_rate=0.5,
        seed=42,
        violation_mix={
            "mimicry": 1.0,
            "wrong-role": 1.0,
            "skip": 1.0,
            "reorder": 1.0,
        },
    )
    return process_registry(), role_hierarchy(), workload.trail


SCENARIOS = {
    "healthcare": lambda: (
        process_registry(), role_hierarchy(), paper_audit_trail()
    ),
    "insurance": lambda: (
        insurance_registry(), insurance_role_hierarchy(),
        insurance_audit_trail(),
    ),
    "appendix-figures": _appendix_scenario,
    "violation-mix": _violation_mix_scenario,
}


@pytest.fixture(scope="module")
def batch_digests():
    """Per-scenario ground truth: interpreted batch replay digests."""
    cache: dict[str, dict[str, str]] = {}

    def digests_for(name: str) -> dict[str, str]:
        if name not in cache:
            registry, hierarchy, trail = SCENARIOS[name]()
            report = PurposeControlAuditor(
                registry, hierarchy=hierarchy
            ).audit(trail)
            cache[name] = {
                case: canonical_digest(result.replay)
                for case, result in report.cases.items()
                if result.replay is not None
            }
        return cache[name]

    return digests_for


#: The replay ladder as served configurations: ``compiled`` picks the
#: automaton path at all, ``table`` pins the dense-table tier on or off
#: (``None`` would follow ``compiled``; the matrix pins it explicitly so
#: each rung is exercised regardless of defaults).
TIERS = {
    "interpreted": dict(compiled=False),
    "lazy-dfa": dict(compiled=True, table=False),
    "table": dict(compiled=True, table=True),
}


def _stream_and_collect(serve_factory, name, shards, tier, tmp_path):
    registry, hierarchy, trail = SCENARIOS[name]()
    options = TIERS[tier]
    config = ServeConfig(
        shards=shards,
        automaton_dir=(
            str(tmp_path / "automata") if options["compiled"] else None
        ),
        **options,
    )
    handle = serve_factory(registry, hierarchy=hierarchy, config=config)
    with AuditStreamClient(handle.host, handle.port) as client:
        client.recv_until("hello")
        sent = client.send_trail(trail)
        assert client.sync()["received"] == sent
        return client.results()


@pytest.mark.parametrize("tier", sorted(TIERS))
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
class TestServiceTierMatrix:
    """tier x shard-count x scenario: every rung of the replay ladder,
    behind real sockets and real sharding, byte-identical to the batch
    auditor's interpreted ground truth."""

    def test_verdict_digests_match_batch_replay(
        self, serve_factory, batch_digests, scenario, shards, tier, tmp_path
    ):
        served = _stream_and_collect(
            serve_factory, scenario, shards, tier, tmp_path
        )
        expected = batch_digests(scenario)
        assert set(served) >= set(expected)
        for case, digest in expected.items():
            assert served[case]["digest"] == digest, (
                f"{scenario}: case {case} diverged from batch replay "
                f"({shards} shards, {tier})"
            )


class TestXesIngestion:
    def test_xes_fragment_matches_batch_replay(
        self, serve_factory, batch_digests
    ):
        registry, hierarchy, trail = SCENARIOS["healthcare"]()
        handle = serve_factory(
            registry, hierarchy=hierarchy, config=ServeConfig(shards=3)
        )
        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            client.send_xes(export_xes(trail))
            client.sync()
            served = client.results()
        for case, digest in batch_digests("healthcare").items():
            assert served[case]["digest"] == digest, case

    def test_final_states_survive_drain(self, serve_factory):
        registry, hierarchy, trail = SCENARIOS["healthcare"]()
        handle = serve_factory(
            registry, hierarchy=hierarchy, config=ServeConfig(shards=2)
        )
        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            client.send_trail(trail)
            client.sync()
        report = handle.drain()
        assert report.entries_received == len(trail)
        assert report.final_states["HT-1"] == "completed"
        assert report.final_states["HT-10"] == "infringing"


class TestAutomatonDirImpliesTableTier:
    """The CLI passes ``automaton_dir`` without setting ``compiled`` —
    an unset ``table`` must still resolve to the dense tier (the wiring
    once resolved it off ``compiled`` alone, so ``repro serve
    --automaton-dir`` silently served from the lazy DFA)."""

    def test_table_tier_engages_from_automaton_dir_alone(self, tmp_path):
        from repro.obs import MetricsRegistry, Telemetry
        from repro.serve import ShardRouter

        registry, hierarchy, trail = SCENARIOS["healthcare"]()
        metrics = MetricsRegistry()
        router = ShardRouter(
            registry,
            hierarchy=hierarchy,
            config=ServeConfig(
                shards=2, automaton_dir=str(tmp_path / "automata")
            ),
            telemetry=Telemetry.create(registry=metrics),
        )
        router.start()
        try:
            for entry in trail:
                assert router.submit(entry, block=True).accepted
            assert router.wait_idle(timeout=30)
            served = {
                case: info["digest"]
                for case, info in router.results().items()
                if info["digest"] is not None
            }
        finally:
            router.drain()
        report = PurposeControlAuditor(registry, hierarchy=hierarchy).audit(
            trail
        )
        expected = {
            case: canonical_digest(result.replay)
            for case, result in report.cases.items()
            if result.replay is not None
        }
        assert served == expected
        assert metrics.counter("automaton_table_hits_total").total > 0
        assert list((tmp_path / "automata").glob("*.table.bin"))
