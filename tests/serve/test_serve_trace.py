"""End-to-end distributed tracing through the streaming service.

One streamed case must become **one trace**: the client mints a W3C
traceparent, the service adopts it as the remote parent of the case's
ingest root, shard-side replay and the store flush join the same trace,
and the whole thing exports as OTLP/JSON that ``repro trace <case-id>``
can render.  This is the acceptance path for the trace-context layer —
a real socket, real shard threads, a real SQLite store.
"""

import json

import pytest

from repro.cli import EXIT_OK, main
from repro.obs import (
    MetricsRegistry,
    OtlpExporter,
    Telemetry,
    TraceContext,
    Tracer,
)
from repro.obs.console import case_trace_ids, load_otlp_spans, render_case
from repro.scenarios import paper_audit_trail, process_registry, role_hierarchy
from repro.serve import AuditStreamClient, ServeConfig


@pytest.fixture
def traced_service(serve_factory, tmp_path):
    telemetry = Telemetry.create(registry=MetricsRegistry(), tracer=Tracer())
    handle = serve_factory(
        process_registry(),
        hierarchy=role_hierarchy(),
        config=ServeConfig(
            shards=3, store_path=str(tmp_path / "traced.db")
        ),
        telemetry=telemetry,
    )
    return handle, telemetry


def _case_entries(case):
    return [entry for entry in paper_audit_trail() if entry.case == case]


class TestSingleCaseSingleTrace:
    def _stream_and_export(self, traced_service, tmp_path):
        handle, telemetry = traced_service
        remote = TraceContext.new()
        with AuditStreamClient(handle.host, handle.port) as client:
            client.send_trail(
                _case_entries("HT-1"), traceparent=remote.to_traceparent()
            )
            client.sync()
        handle.drain()  # flushes the store inside the case's trace
        destination = tmp_path / "trace-export.jsonl"
        OtlpExporter(str(destination)).export(
            tracer=telemetry.tracer, registry=telemetry.registry
        )
        return handle, telemetry, remote, destination

    def test_one_streamed_case_is_one_trace(self, traced_service, tmp_path):
        handle, telemetry, remote, destination = self._stream_and_export(
            traced_service, tmp_path
        )
        spans = load_otlp_spans(str(destination))

        # Every stage of the case joined the client's trace.
        assert case_trace_ids(spans, "HT-1") == [remote.trace_id]
        names = {s["name"] for s in spans if s["trace_id"] == remote.trace_id}
        assert {"serve.ingest", "serve.replay", "store.flush"} <= names

        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        ingests = by_name["serve.ingest"]
        assert len(ingests) == len(_case_entries("HT-1"))
        # The first ingest is the case root, parented on the remote
        # (client) context; later ingests join under it.
        roots = [s for s in ingests if s["parent_id"] == remote.span_id]
        assert len(roots) == 1
        root = roots[0]
        for span in ingests:
            assert span["trace_id"] == remote.trace_id
            if span is not root:
                assert span["parent_id"] == root["span_id"]
        for span in by_name["serve.replay"]:
            assert span["trace_id"] == remote.trace_id
            assert span["attrs"]["case"] == "HT-1"
            assert span["attrs"]["shard"].startswith("shard-")
        # A single-case batch parents the flush under the case root.
        flushes = [
            s
            for s in by_name["store.flush"]
            if s["trace_id"] == remote.trace_id
        ]
        assert flushes
        assert all(s["parent_id"] == root["span_id"] for s in flushes)
        assert handle.router.case_trace("HT-1").trace_id == remote.trace_id

    def test_ingest_exemplars_carry_the_case_trace_id(
        self, traced_service, tmp_path
    ):
        handle, telemetry, remote, _ = self._stream_and_export(
            traced_service, tmp_path
        )
        histogram = telemetry.registry.get("serve_ingest_seconds")
        exemplars = [
            exemplar
            for data in histogram.samples().values()
            for exemplar in data["exemplars"].values()
        ]
        assert exemplars
        assert {e["trace_id"] for e in exemplars} == {remote.trace_id}

    def test_repro_trace_renders_the_export(
        self, traced_service, tmp_path, capsys
    ):
        _, _, remote, destination = self._stream_and_export(
            traced_service, tmp_path
        )
        status = main(["trace", "HT-1", "--from", str(destination)])
        out = capsys.readouterr().out
        assert status == EXIT_OK
        assert remote.trace_id in out
        assert "serve.ingest" in out
        assert "serve.replay" in out
        assert "store.flush" in out

    def test_render_case_shows_the_remote_parent(
        self, traced_service, tmp_path
    ):
        _, _, remote, destination = self._stream_and_export(
            traced_service, tmp_path
        )
        spans = load_otlp_spans(str(destination))
        text = render_case(spans, "HT-1")
        assert "case HT-1" in text
        assert "remote parent" in text  # the client half is not exported


class TestMultiCaseTraces:
    def test_interleaved_cases_get_distinct_traces(
        self, traced_service, tmp_path
    ):
        handle, telemetry = traced_service
        with AuditStreamClient(handle.host, handle.port) as client:
            # Interleave two cases; only HT-1 carries a client context —
            # CT-1 must still get its own server-minted trace.
            remote = TraceContext.new()
            ht, ct = _case_entries("HT-1"), _case_entries("CT-1")
            for index in range(max(len(ht), len(ct))):
                if index < len(ht):
                    client.send_entry(
                        ht[index], traceparent=remote.to_traceparent()
                    )
                if index < len(ct):
                    client.send_entry(ct[index])
            client.sync()
        handle.drain()
        destination = tmp_path / "multi.jsonl"
        OtlpExporter(str(destination)).export(tracer=telemetry.tracer)
        spans = load_otlp_spans(str(destination))
        assert case_trace_ids(spans, "HT-1") == [remote.trace_id]
        ct_traces = case_trace_ids(spans, "CT-1")
        assert len(ct_traces) == 1
        assert ct_traces[0] != remote.trace_id

    def test_mixed_batch_flush_links_every_case(
        self, traced_service, tmp_path
    ):
        handle, telemetry = traced_service
        with AuditStreamClient(handle.host, handle.port) as client:
            client.send_trail(_case_entries("HT-1"))
            client.send_trail(_case_entries("CT-1"))
            client.sync()
        handle.drain()
        ht = handle.router.case_trace("HT-1")
        ct = handle.router.case_trace("CT-1")
        flushes = [
            span
            for root in telemetry.tracer.roots
            for span in root.walk()
            if span.name == "store.flush"
        ]
        linked = {
            link.trace_id for span in flushes for link in span.links
        }
        # The drain flush carried both cases: it cannot parent a single
        # trace, so it links each case's context instead.
        multi = [s for s in flushes if s.links]
        assert multi
        assert {ht.trace_id, ct.trace_id} <= linked

    def test_malformed_traceparent_still_audits(
        self, traced_service, tmp_path
    ):
        handle, telemetry = traced_service
        with AuditStreamClient(handle.host, handle.port) as client:
            client.send_trail(
                _case_entries("HT-1"), traceparent="zz-not-a-header"
            )
            client.sync()
        report = handle.drain()
        assert report.entries_received == len(_case_entries("HT-1"))
        # The header was ignored; the server minted a fresh root.
        context = handle.router.case_trace("HT-1")
        assert context is not None
        assert len(context.trace_id) == 32
        int(context.trace_id, 16)  # plain hex, not the malformed header
