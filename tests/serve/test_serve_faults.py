"""Fault harness for the streaming audit service.

The trio the service must survive without losing unrelated cases:

* a client that disconnects mid-stream (the TCP session dies, the
  per-case monitor state must not);
* a checker crash inside a shard (:class:`FaultPlan.raise_on_case` —
  contained to the case, classified ``error``, counted under
  ``audit_errors_total``);
* a slow/stuck case (``FaultPlan.slow_s`` + the service's per-case
  processing budget — quarantined as ``timeout``, the rest of the
  stream keeps its exact batch-replay verdicts).
"""

import time

import pytest

from repro.core.auditor import PurposeControlAuditor
from repro.core.resilience import OutcomeKind
from repro.obs import MemoryEventLog, MetricsRegistry, Telemetry
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)
from repro.serve import AuditStreamClient, ServeConfig
from repro.testing import (
    FaultInjector,
    FaultPlan,
    canonical_digest,
    reset_fault_counters,
)


@pytest.fixture(autouse=True)
def _fresh_fault_counters():
    reset_fault_counters()
    yield
    reset_fault_counters()


def _telemetry() -> "tuple[Telemetry, MemoryEventLog]":
    log = MemoryEventLog()
    telemetry = Telemetry.create(
        registry=MetricsRegistry(), events=log.events
    )
    return telemetry, log


def _batch_digests(exclude=()):
    registry, hierarchy = process_registry(), role_hierarchy()
    report = PurposeControlAuditor(registry, hierarchy=hierarchy).audit(
        paper_audit_trail()
    )
    return {
        case: canonical_digest(result.replay)
        for case, result in report.cases.items()
        if result.replay is not None and case not in exclude
    }


class TestClientDisconnect:
    def test_case_state_survives_an_aborted_connection(self, serve_factory):
        trail = list(paper_audit_trail())
        half = len(trail) // 2
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(shards=3),
        )

        first = AuditStreamClient(handle.host, handle.port)
        first.recv_until("hello")
        first.send_trail(trail[:half])
        first.sync()
        first.abort()  # RST, no goodbye — a crashed log shipper

        # The service must still be accepting; a second shipper resumes
        # the same stream and every case converges on the batch verdict.
        with AuditStreamClient(handle.host, handle.port) as second:
            second.recv_until("hello")
            second.send_trail(trail[half:])
            second.sync()
            served = second.results()

        for case, digest in _batch_digests().items():
            assert served[case]["digest"] == digest, (
                f"case {case} lost state across the disconnect"
            )

    def test_junk_line_costs_one_line_not_the_stream(self, serve_factory):
        telemetry, log = _telemetry()
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(shards=2),
            telemetry=telemetry,
        )
        trail = list(paper_audit_trail())
        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            client.send_trail(trail[:3])
            client.send_raw(b"this is not json")
            error = client.recv_until("error")
            assert "JSON" in error["detail"]
            client.send_trail(trail[3:])
            client.sync()
            served = client.results()
        assert set(_batch_digests()) <= set(served)
        assert len(handle.router.dead_letters) == 1
        assert (
            telemetry.registry.counter("serve_protocol_errors_total").total
            == 1
        )


class TestCheckerCrashInShard:
    def test_injected_crash_quarantines_only_its_case(self, serve_factory):
        telemetry, log = _telemetry()
        # The first treatment case to start a session anywhere raises;
        # streaming HT-1's opening entry first (then syncing) makes that
        # deterministically HT-1.
        injector = FaultInjector(
            FaultPlan(raise_on_case=1, only_in_workers=False),
            purposes=("treatment",),
        )
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(shards=3),
            telemetry=telemetry,
            checker_wrapper=injector,
        )
        trail = list(paper_audit_trail())
        victim = trail[0].case

        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            client.send_entry(trail[0])
            client.sync()
            client.send_trail(trail[1:])
            client.sync()
            served = client.results()

        assert served[victim]["state"] == "failed"
        assert served[victim]["failure_kind"] == "error"
        quarantined = handle.router.quarantined_cases()
        assert quarantined.get(victim) is OutcomeKind.ERROR
        assert (
            telemetry.registry.counter("audit_errors_total").value(
                kind="error"
            )
            >= 1
        )
        # Every *other* case still matches batch replay byte for byte.
        for case, digest in _batch_digests(exclude={victim}).items():
            assert served[case]["digest"] == digest, (
                f"case {case} was disturbed by {victim}'s crash"
            )
        # And the stream is still live for new work.
        status = handle.router.statistics()
        assert status["draining"] is False


class TestSlowStuckCase:
    def test_slow_case_is_quarantined_not_the_stream(self, serve_factory):
        telemetry, log = _telemetry()
        # Every clinical-trial entry sleeps; the per-case budget trips
        # after the first one.  Treatment cases share shards with the
        # stuck case and must be untouched.
        # One injected sleep dwarfs the budget, while the budget stays
        # well above what an honest case costs even on a cold engine
        # (the first case pays the closure warm-up) and even when the
        # whole suite's worth of GIL pressure inflates wall-clock
        # billing — the budget meter is wall time around each entry.
        injector = FaultInjector(
            FaultPlan(slow_s=2.0, only_in_workers=False),
            purposes=("clinicaltrial",),
        )
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(shards=2, case_timeout_s=1.2),
            telemetry=telemetry,
            checker_wrapper=injector,
        )
        trail = list(paper_audit_trail())
        started = time.perf_counter()
        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            client.send_trail(trail)
            client.sync()
            served = client.results()
        elapsed = time.perf_counter() - started

        assert served["CT-1"]["state"] == "failed"
        assert served["CT-1"]["failure_kind"] == "timeout"
        assert (
            handle.router.quarantined_cases().get("CT-1")
            is OutcomeKind.TIMEOUT
        )
        assert (
            telemetry.registry.counter("audit_errors_total").value(
                kind="timeout"
            )
            >= 1
        )
        # Quarantine means the sleeps stop: a couple of naps at most,
        # not one per CT entry.
        assert elapsed < 15.0
        for case, digest in _batch_digests(exclude={"CT-1"}).items():
            assert served[case]["digest"] == digest, (
                f"case {case} was disturbed by the stuck case"
            )

    def test_quarantine_event_is_emitted(self, serve_factory):
        telemetry, log = _telemetry()
        injector = FaultInjector(
            FaultPlan(slow_s=2.0, only_in_workers=False),
            purposes=("clinicaltrial",),
        )
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(shards=1, case_timeout_s=1.2),
            telemetry=telemetry,
            checker_wrapper=injector,
        )
        with AuditStreamClient(handle.host, handle.port) as client:
            client.recv_until("hello")
            client.send_trail(paper_audit_trail())
            client.sync()
        events = [
            event
            for event in log.records()
            if event["event"] == "case.quarantined"
        ]
        assert events and events[0]["case"] == "CT-1"
        assert events[0]["kind"] == "timeout"
        assert (
            telemetry.registry.counter(
                "serve_quarantined_cases_total"
            ).value(kind="timeout")
            == 1
        )
