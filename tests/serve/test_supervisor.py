"""Shard supervision: crash detection, bounded restart, reassignment.

The supervisor's contract: a shard that dies (or hangs) loses no case
except the poison suspect it was processing — every other case replays
from the store + WAL into the replacement shard and finishes with a
verdict byte-identical to an undisturbed run.  Past the restart budget
the shard is excised from the consistent-hash ring instead of
crash-looping.

Interpreted replay throughout: the kill/stall seams live in the checker
session layer, which the compiled path does not route through.
"""

import threading
import time

from repro.core.auditor import PurposeControlAuditor
from repro.obs import (
    SERVE_SHARD_REASSIGNED,
    SERVE_SHARD_RESTARTED,
    MemoryEventLog,
    MetricsRegistry,
    Telemetry,
)
from repro.scenarios import (
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)
from repro.serve import ServeConfig, ShardRouter
from repro.testing import ShardKillInjector, canonical_digest


def _telemetry():
    log = MemoryEventLog()
    telemetry = Telemetry.create(registry=MetricsRegistry(), events=log.events)
    return telemetry, log


def _batch_digests(exclude=()):
    report = PurposeControlAuditor(
        process_registry(), hierarchy=role_hierarchy()
    ).audit(paper_audit_trail())
    return {
        case: canonical_digest(result.replay)
        for case, result in report.cases.items()
        if result.replay is not None and case not in exclude
    }


def _digests(router, exclude=()) -> dict:
    return {
        case: info["digest"]
        for case, info in router.results().items()
        if info["digest"] is not None and case not in exclude
    }


def _victim_case(min_entries: int = 2) -> str:
    counts: dict[str, int] = {}
    for entry in paper_audit_trail():
        counts[entry.case] = counts.get(entry.case, 0) + 1
    for case, count in counts.items():
        if count >= min_entries:
            return case
    raise AssertionError("scenario has no case with enough entries")


def _router(tmp_path, checker_wrapper, telemetry=None, **overrides):
    config = dict(
        shards=2,
        store_path=str(tmp_path / "audit.db"),
        wal_dir=str(tmp_path / "wal"),
        supervise=True,
        heartbeat_interval_s=0.05,
    )
    config.update(overrides)
    router = ShardRouter(
        process_registry(),
        hierarchy=role_hierarchy(),
        config=ServeConfig(**config),
        telemetry=telemetry,
        checker_wrapper=checker_wrapper,
    )
    router.start()
    return router


def _await_supervision(router, timeout: float = 15.0) -> None:
    """Wait until the supervisor has restarted or excised some shard."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = router.statistics()["supervisor"]
        if stats["restarts"] or stats["reassigned_shards"]:
            return
        time.sleep(0.02)
    raise AssertionError("supervisor never intervened")


class _StallOnce:
    """Checker wrapper that stalls the first entry of one case, once."""

    def __init__(self, case: str, stall_s: float):
        self.case = case
        self.stall_s = stall_s
        self._fired = threading.Event()

    def __call__(self, checker, purpose: str):
        outer = self

        class _Session:
            def __init__(self, inner):
                self._inner = inner

            def feed(self, entry):
                if (
                    entry.case == outer.case
                    and not outer._fired.is_set()
                ):
                    outer._fired.set()
                    time.sleep(outer.stall_s)
                return self._inner.feed(entry)

            def result(self):
                return self._inner.result()

            def __getattr__(self, name):
                return getattr(self._inner, name)

        class _Checker:
            def session(self):
                return _Session(checker.session())

            def check(self, trail):
                return checker.check(trail)

            def __getattr__(self, name):
                return getattr(checker, name)

        return _Checker()


class TestCrashRestart:
    def test_killed_shard_restarts_and_other_cases_are_unharmed(
        self, tmp_path
    ):
        victim = _victim_case()
        telemetry, log = _telemetry()
        router = _router(
            tmp_path,
            ShardKillInjector(victim, after_entries=1),
            telemetry=telemetry,
        )
        for entry in paper_audit_trail():
            router.submit(entry)
        _await_supervision(router)
        assert router.wait_idle(timeout=30)

        stats = router.statistics()
        assert sum(stats["supervisor"]["restarts"].values()) == 1
        assert stats["supervisor"]["reassigned_shards"] == []
        # The in-flight case is the poison suspect: quarantined, never
        # replayed into the replacement.
        assert stats["quarantined_cases"] == 1
        results = router.results()
        assert results[victim]["digest"] is None
        # Every *other* case is byte-identical to an undisturbed audit.
        assert _digests(router, exclude={victim}) == _batch_digests(
            exclude={victim}
        )
        restarted = log.named(SERVE_SHARD_RESTARTED)
        assert len(restarted) == 1
        assert restarted[0]["victim"] == victim
        assert restarted[0]["reason"] == "crashed"
        drained = router.drain()
        assert drained.store_intact is True

    def test_exhausted_budget_reassigns_through_the_ring(self, tmp_path):
        victim = _victim_case()
        telemetry, log = _telemetry()
        router = _router(
            tmp_path,
            ShardKillInjector(victim, after_entries=1),
            telemetry=telemetry,
            max_shard_restarts=0,
        )
        for entry in paper_audit_trail():
            router.submit(entry)
        _await_supervision(router)
        assert router.wait_idle(timeout=30)

        stats = router.statistics()
        assert len(stats["supervisor"]["reassigned_shards"]) == 1
        assert stats["shards"] == 1  # the survivor owns the whole ring
        assert _digests(router, exclude={victim}) == _batch_digests(
            exclude={victim}
        )
        assert log.named(SERVE_SHARD_REASSIGNED)
        # New work for re-homed cases flows to the survivor.
        assert router.submit(next(iter(paper_audit_trail()))).accepted
        router.drain()


class TestHangDetection:
    def test_hung_shard_is_detected_and_replaced(self, tmp_path):
        victim = _victim_case()
        telemetry, log = _telemetry()
        router = _router(
            tmp_path,
            _StallOnce(victim, stall_s=3.0),
            telemetry=telemetry,
            hang_timeout_s=0.3,
        )
        for entry in paper_audit_trail():
            router.submit(entry)
        _await_supervision(router)
        assert router.wait_idle(timeout=30)

        stats = router.statistics()
        assert sum(stats["supervisor"]["restarts"].values()) == 1
        restarted = log.named(SERVE_SHARD_RESTARTED)
        assert restarted and restarted[0]["reason"] == "hung"
        assert restarted[0]["victim"] == victim
        assert _digests(router, exclude={victim}) == _batch_digests(
            exclude={victim}
        )
        # The stalled thread eventually wakes, sees it was abandoned,
        # and exits without corrupting the replacement's state.
        router.drain()
