"""The daemon's HTTP surface: health, metrics, and method hygiene.

Operators point probes, scrapers, and the ``repro top`` console at this
endpoint, so it must answer HEAD without a body, reject unknown methods
with a clean 405 + ``Allow``, survive a malformed request line, and
publish per-shard detail (queue depth, in-flight cases) in ``/healthz``
plus machine-readable quantiles in ``/metrics.json``.
"""

import json
import socket
import urllib.request

import pytest

from repro.obs import MetricsRegistry, Telemetry
from repro.scenarios import paper_audit_trail, process_registry, role_hierarchy
from repro.serve import AuditStreamClient, ServeConfig


@pytest.fixture
def http_service(serve_factory):
    handle = serve_factory(
        process_registry(),
        hierarchy=role_hierarchy(),
        config=ServeConfig(shards=2),
        telemetry=Telemetry.create(registry=MetricsRegistry()),
        http=True,
    )
    with AuditStreamClient(handle.host, handle.port) as client:
        client.send_trail(paper_audit_trail())
        client.sync()
    return handle


def _raw_request(handle, payload: bytes) -> bytes:
    with socket.create_connection(
        (handle.host, handle.http_port), timeout=10
    ) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestHealthz:
    def test_reports_per_shard_detail(self, http_service):
        url = f"http://{http_service.host}:{http_service.http_port}/healthz"
        with urllib.request.urlopen(url, timeout=10) as response:
            payload = json.loads(response.read())
        detail = payload["shard_detail"]
        assert set(detail) == {"shard-0", "shard-1"}
        for stats in detail.values():
            assert set(stats) >= {
                "queue_depth",
                "inflight_cases",
                "entries_observed",
            }
            assert stats["queue_depth"] >= 0
            assert stats["inflight_cases"] >= 0
        observed = sum(s["entries_observed"] for s in detail.values())
        assert observed == len(paper_audit_trail())


class TestMetricsJson:
    def test_serves_quantiles_for_the_console(self, http_service):
        base = f"http://{http_service.host}:{http_service.http_port}"
        with urllib.request.urlopen(f"{base}/metrics.json", timeout=10) as r:
            assert r.headers["Content-Type"].startswith("application/json")
            payload = json.loads(r.read())
        ingest = payload["serve_ingest_seconds"]
        assert ingest["type"] == "histogram"
        series = ingest["series"][0]
        assert series["p50"] >= 0.0
        assert series["p99"] >= series["p50"]
        # the gauges registered for shard detail are exported too
        assert "serve_shard_queue_depth" in payload
        assert "serve_shard_inflight_cases" in payload


class TestMethodHygiene:
    def test_head_answers_headers_without_a_body(self, http_service):
        base = f"http://{http_service.host}:{http_service.http_port}"
        request = urllib.request.Request(f"{base}/healthz", method="HEAD")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            length = int(response.headers["Content-Length"])
            assert length > 2  # the GET body's length, advertised
            assert response.read() == b""
        # and the advertised length matches an actual GET
        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as r:
            assert len(r.read()) == length

    def test_unknown_method_is_405_with_allow(self, http_service):
        response = _raw_request(
            http_service,
            b"POST /healthz HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 0\r\nConnection: close\r\n\r\n",
        )
        head = response.split(b"\r\n\r\n", 1)[0]
        assert b"405 Method Not Allowed" in head
        assert b"Allow: GET, HEAD" in head

    def test_malformed_request_line_is_400(self, http_service):
        response = _raw_request(http_service, b"garbage\r\n\r\n")
        assert b"400 Bad Request" in response.split(b"\r\n", 1)[0]

    def test_unknown_path_is_404_for_get_and_head(self, http_service):
        base = f"http://{http_service.host}:{http_service.http_port}"
        for method in ("GET", "HEAD"):
            request = urllib.request.Request(f"{base}/nope", method=method)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 404


class TestHttpHygiene:
    def test_json_endpoints_declare_charset_and_no_store(self, http_service):
        base = f"http://{http_service.host}:{http_service.http_port}"
        for path in ("/healthz", "/metrics.json"):
            with urllib.request.urlopen(base + path, timeout=10) as r:
                assert (
                    r.headers["Content-Type"]
                    == "application/json; charset=utf-8"
                )
                assert r.headers["Cache-Control"] == "no-store"
        # Prometheus text keeps its exposition content type, but is
        # still marked uncacheable.
        with urllib.request.urlopen(base + "/metrics", timeout=10) as r:
            assert r.headers["Content-Type"].startswith("text/plain")
            assert r.headers["Cache-Control"] == "no-store"

    def test_404_body_is_json(self, http_service):
        base = f"http://{http_service.host}:{http_service.http_port}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/nope", timeout=10)
        error = excinfo.value
        assert error.headers["Content-Type"] == "application/json; charset=utf-8"
        assert json.loads(error.read()) == {"error": "not found"}


class TestApiMount:
    def test_api_404s_when_no_control_plane_is_mounted(self, http_service):
        base = f"http://{http_service.host}:{http_service.http_port}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/api/v1/tenants", timeout=10)
        assert excinfo.value.code == 404

    def test_mounted_control_plane_serves_the_api(self, serve_factory):
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            config=ServeConfig(shards=2),
            http=True,
            control="mount",
        )
        with AuditStreamClient(handle.host, handle.port) as client:
            client.send_trail(paper_audit_trail())
            client.sync()
        base = f"http://{handle.host}:{handle.http_port}"
        with urllib.request.urlopen(base + "/api/v1/tenants", timeout=10) as r:
            assert r.headers["Content-Type"] == "application/json; charset=utf-8"
            assert r.headers["Cache-Control"] == "no-store"
            payload = json.loads(r.read())
        assert {t["purpose"] for t in payload["tenants"]} == {
            "treatment",
            "clinicaltrial",
        }
        with urllib.request.urlopen(
            base + "/api/v1/verdicts?outcome=infringing", timeout=10
        ) as r:
            verdicts = json.loads(r.read())
        assert verdicts["count"] == 5

    def test_api_errors_carry_json_payloads(self, serve_factory):
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            http=True,
            control="mount",
        )
        base = f"http://{handle.host}:{handle.http_port}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/api/v1/cases/HT-404", timeout=10)
        error = excinfo.value
        assert error.code == 404
        assert "HT-404" in json.loads(error.read())["error"]

    def test_api_post_requires_known_route(self, serve_factory):
        handle = serve_factory(
            process_registry(),
            hierarchy=role_hierarchy(),
            http=True,
            control="mount",
        )
        request = urllib.request.Request(
            f"http://{handle.host}:{handle.http_port}/api/v1/tenants",
            data=b"{}",
            method="PUT",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405
        assert "POST" in excinfo.value.headers["Allow"]
