"""End-to-end drain test: the real ``repro serve`` process under SIGTERM.

Boots the daemon exactly as an operator would (``python -m repro.cli
serve``), streams the paper's trail over its TCP endpoint, then sends
SIGTERM and asserts the graceful-drain contract from ``docs/serving.md``:
the process reports what it drained, every entry reached the store in
one unbroken hash chain, and the exit code is 0.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.audit.store import AuditStore
from repro.scenarios import paper_audit_trail
from repro.serve import AuditStreamClient


@pytest.fixture
def daemon(tmp_path):
    """A live ``repro serve`` subprocess; yields (process, ports, store)."""
    store_path = str(tmp_path / "drain.db")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--scenario", "paper",
            "--shards", "3",
            "--store", store_path,
            "--flush-interval", "0.1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        line = process.stdout.readline()
        assert line, process.stderr.read()
        listening = json.loads(line)["listening"]
        yield process, listening, store_path
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10)


class TestSigtermDrain:
    def test_sigterm_flushes_store_and_reports(self, daemon):
        process, listening, store_path = daemon
        trail = list(paper_audit_trail())

        with AuditStreamClient(listening["host"], listening["port"]) as client:
            client.recv_until("hello")
            client.send_trail(trail)
            synced = client.sync()
            assert synced["received"] == len(trail)

        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr

        drained = json.loads(stdout.splitlines()[-1])["drained"]
        assert drained["entries_received"] == len(trail)
        assert drained["entries_written"] == len(trail)
        assert drained["quarantined_cases"] == 0
        assert drained["store_intact"] is True

        # The on-disk record agrees: all rows present, hash chain whole.
        with AuditStore(store_path) as store:
            assert len(store) == len(trail)
            store.verify_integrity()

    def test_healthz_and_metrics_respond_while_serving(self, daemon):
        import urllib.request

        process, listening, _ = daemon
        base = f"http://{listening['host']}:{listening['http_port']}"
        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        assert health["shards"] == 3
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
            metrics = response.read().decode()
        assert "serve_entries_total" in metrics
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)
        assert process.returncode == 0
