"""Unit tests for the serve layer's ring and wire protocol."""

from collections import Counter
from datetime import datetime

import pytest

from repro.audit.model import LogEntry, Status
from repro.policy.model import ObjectRef
from repro.serve import (
    ConsistentHashRing,
    ProtocolError,
    decode_message,
    encode_message,
    entry_from_message,
    entry_to_message,
)


class TestConsistentHashRing:
    def test_deterministic_across_instances(self):
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s0", "s1", "s2"])
        for i in range(200):
            key = f"HT-{i}"
            assert a.shard_for(key) == b.shard_for(key)

    def test_shard_order_is_irrelevant(self):
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s2", "s0", "s1"])
        assert all(
            a.shard_for(f"case-{i}") == b.shard_for(f"case-{i}")
            for i in range(100)
        )

    def test_every_shard_gets_work(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        owners = Counter(ring.shard_for(f"HT-{i}") for i in range(1000))
        assert set(owners) == {"s0", "s1", "s2", "s3"}
        # 64 virtual nodes keep the imbalance moderate.
        assert max(owners.values()) < 3 * min(owners.values())

    def test_removal_moves_only_the_lost_shards_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        before = {f"c{i}": ring.shard_for(f"c{i}") for i in range(500)}
        ring.remove_shard("s3")
        for key, owner in before.items():
            if owner != "s3":
                assert ring.shard_for(key) == owner, key

    def test_single_shard_owns_everything(self):
        ring = ConsistentHashRing(["only"])
        assert ring.shard_for("anything") == "only"
        assert len(ring) == 1

    def test_rejects_bad_configurations(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], replicas=0)
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_shard("a")
        with pytest.raises(ValueError):
            ring.remove_shard("ghost")


def _entry(**overrides) -> LogEntry:
    values = dict(
        user="Mary",
        role="GP",
        action="execute",
        obj=ObjectRef.parse("/hospital/patients/Pietro"),
        task="T01",
        case="HT-1",
        timestamp=datetime(2010, 3, 1, 10, 5),
        status=Status.SUCCESS,
    )
    values.update(overrides)
    return LogEntry(**values)


class TestWireProtocol:
    def test_entry_round_trips(self):
        entry = _entry()
        message = decode_message(encode_message(entry_to_message(entry)))
        assert entry_from_message(message) == entry

    def test_entry_without_object_round_trips(self):
        entry = _entry(obj=None)
        assert entry_from_message(entry_to_message(entry)) == entry

    def test_paper_timestamp_format_is_accepted(self):
        message = entry_to_message(_entry())
        message["ts"] = "201003011005"
        assert entry_from_message(message).timestamp == datetime(
            2010, 3, 1, 10, 5
        )

    def test_failure_status(self):
        message = entry_to_message(_entry(status=Status.FAILURE))
        assert entry_from_message(message).status is Status.FAILURE

    def test_missing_fields_are_named(self):
        message = entry_to_message(_entry())
        del message["task"]
        message["case"] = ""
        with pytest.raises(ProtocolError, match="task, case"):
            entry_from_message(message)

    @pytest.mark.parametrize(
        "line",
        [b"\xff\xfe garbage", b"not json", b"[1, 2, 3]", b'"just a string"'],
    )
    def test_junk_lines_raise_protocol_error(self, line):
        with pytest.raises(ProtocolError):
            decode_message(line)

    def test_bad_timestamp_raises(self):
        message = entry_to_message(_entry())
        message["ts"] = "yesterday-ish"
        with pytest.raises(ProtocolError, match="yesterday-ish"):
            entry_from_message(message)

    def test_bad_status_raises(self):
        message = entry_to_message(_entry())
        message["status"] = "maybe"
        with pytest.raises(ProtocolError, match="maybe"):
            entry_from_message(message)
