"""Unit tests for the per-shard write-ahead ingest log.

The WAL's contract (docs/robustness.md): every accepted entry is
CRC-framed before it is acknowledged, segments rotate and retire whole,
and after any crash the readable prefix is exactly the accepted stream
minus (at most) an un-fsynced suffix — never a hole, never a phantom.
"""

import pytest

from repro.audit.model import LogEntry, Status
from repro.scenarios import paper_audit_trail
from repro.scenarios.workloads import hospital_day
from repro.serve.protocol import entry_to_message
from repro.serve.wal import (
    WalCorruptionError,
    WalWriter,
    _ENCODE,
    _entry_json,
    read_segment,
    read_wal,
    segment_paths,
    shard_names_on_disk,
    wal_records_by_case,
)
from repro.testing import corrupt_wal_tail, disk_full_hook


@pytest.fixture
def entries():
    return list(paper_audit_trail())


def _fill(writer: WalWriter, entries, start_case_seq: int = 1) -> list[int]:
    seqs = []
    counts: dict[str, int] = {}
    for entry in entries:
        counts[entry.case] = counts.get(entry.case, 0) + 1
        seqs.append(writer.append(entry, counts[entry.case]))
    return seqs


class TestRoundTrip:
    def test_append_commit_read_roundtrip(self, tmp_path, entries):
        writer = WalWriter(tmp_path, "shard-0")
        seqs = _fill(writer, entries)
        assert seqs == list(range(1, len(entries) + 1))
        writer.commit()
        writer.close()

        result = read_wal(tmp_path, "shard-0")
        assert not result.torn_tail
        assert len(result.records) == len(entries)
        for record, entry, seq in zip(result.records, entries, seqs):
            assert record.wal_seq == seq
            assert record.entry == entry
            assert record.case == entry.case
            assert record.shard == "shard-0"

    def test_per_case_grouping_preserves_order(self, tmp_path, entries):
        writer = WalWriter(tmp_path, "shard-0")
        _fill(writer, entries)
        writer.close()
        grouped = wal_records_by_case(read_wal(tmp_path).records)
        for case, records in grouped.items():
            assert [r.case_seq for r in records] == list(
                range(1, len(records) + 1)
            )

    def test_stats_track_unflushed_lag(self, tmp_path, entries):
        writer = WalWriter(tmp_path, "shard-0", fsync_batch=10_000)
        _fill(writer, entries[:5])
        stats = writer.stats()
        assert stats["unflushed_records"] == 5
        assert stats["unflushed_bytes"] > 0
        assert stats["fsyncs"] == 0
        writer.commit()
        stats = writer.stats()
        assert stats["unflushed_records"] == 0
        assert stats["unflushed_bytes"] == 0
        assert stats["fsyncs"] == 1
        writer.close()

    def test_fsync_batch_flushes_to_os_without_fsync(self, tmp_path, entries):
        writer = WalWriter(tmp_path, "shard-0", fsync_batch=3)
        _fill(writer, entries[:7])
        # The batch threshold pushes to the OS (process-crash bound) but
        # never fsyncs in the append path — durability is the sync
        # barrier's job.
        assert writer.flushes == 2  # at records 3 and 6
        assert writer.fsyncs == 0
        assert writer.unflushed_records == 7
        # The flushed records are readable even though never fsynced:
        # they sit in the OS page cache, which survives a process crash.
        assert len(read_wal(tmp_path, "shard-0").records) == 6
        writer.close()


class TestRotationAndRetirement:
    def test_segments_rotate_at_size_cap(self, tmp_path, entries):
        writer = WalWriter(tmp_path, "shard-0", segment_max_bytes=512)
        _fill(writer, entries)
        assert writer.segment_count > 1
        assert len(segment_paths(tmp_path, "shard-0")) == writer.segment_count
        # Rotation must not lose or reorder anything (commit first: the
        # open segment's tail is buffered until an fsync).
        writer.commit()
        result = read_wal(tmp_path, "shard-0")
        assert [r.wal_seq for r in result.records] == list(
            range(1, len(entries) + 1)
        )
        writer.close()

    def test_retire_removes_only_wholly_covered_sealed_segments(
        self, tmp_path, entries
    ):
        writer = WalWriter(tmp_path, "shard-0", segment_max_bytes=512)
        _fill(writer, entries)
        before = writer.segment_count
        assert writer.retire(0) == 0  # nothing covered
        # Retiring up to the last seq removes every *sealed* segment but
        # never the open one.
        removed = writer.retire(writer.last_seq)
        assert removed == before - 1
        assert writer.segment_count == 1
        survivors = read_wal(tmp_path, "shard-0")
        # Whole-file deletion only: records in the open segment survive.
        assert all(r.wal_seq > 0 for r in survivors.records)
        writer.close()

    def test_reset_drops_everything(self, tmp_path, entries):
        writer = WalWriter(tmp_path, "shard-0", segment_max_bytes=512)
        _fill(writer, entries)
        writer.reset()
        assert read_wal(tmp_path, "shard-0").records == ()
        assert writer.segment_count == 1
        writer.close()


class TestTornTails:
    @pytest.mark.parametrize("mode", ["truncate", "garbage", "flip"])
    def test_torn_final_segment_is_tolerated(self, tmp_path, entries, mode):
        writer = WalWriter(tmp_path, "shard-0")
        _fill(writer, entries)
        writer.close()
        path = segment_paths(tmp_path, "shard-0")[-1]
        corrupt_wal_tail(path, mode=mode)

        result = read_wal(tmp_path, "shard-0")
        assert result.torn_tail
        # Everything before the tear is salvaged, in order, no gaps.
        assert [r.wal_seq for r in result.records] == list(
            range(1, len(result.records) + 1)
        )
        assert len(result.records) >= len(entries) - 1

    def test_torn_tail_raises_when_read_strictly(self, tmp_path, entries):
        writer = WalWriter(tmp_path, "shard-0")
        _fill(writer, entries)
        writer.close()
        path = segment_paths(tmp_path, "shard-0")[-1]
        corrupt_wal_tail(path, mode="truncate")
        with pytest.raises(WalCorruptionError):
            read_segment(path, "shard-0", tolerant=False)

    def test_corruption_in_a_sealed_segment_raises(self, tmp_path, entries):
        writer = WalWriter(tmp_path, "shard-0", segment_max_bytes=512)
        _fill(writer, entries)
        writer.close()
        paths = segment_paths(tmp_path, "shard-0")
        assert len(paths) > 2
        corrupt_wal_tail(paths[0], mode="flip")  # sealed, fsynced region
        with pytest.raises(WalCorruptionError):
            read_wal(tmp_path, "shard-0")

    def test_non_segment_file_raises_on_bad_magic(self, tmp_path):
        bogus = tmp_path / "shard-0-00000001.wal"
        bogus.write_bytes(b"not a wal segment at all")
        with pytest.raises(WalCorruptionError):
            read_segment(bogus, "shard-0")


class TestRestartAdoption:
    def test_new_writer_continues_sequence_past_old_segments(
        self, tmp_path, entries
    ):
        first = WalWriter(tmp_path, "shard-0")
        _fill(first, entries[:10])
        first.close()

        second = WalWriter(tmp_path, "shard-0")
        assert second.last_seq == 10
        seq = second.append(entries[10], 1)
        assert seq == 11
        second.close()
        result = read_wal(tmp_path, "shard-0")
        assert [r.wal_seq for r in result.records] == list(range(1, 12))

    def test_adopted_segments_are_sealed_and_retirable(
        self, tmp_path, entries
    ):
        first = WalWriter(tmp_path, "shard-0")
        _fill(first, entries[:10])
        first.close()
        second = WalWriter(tmp_path, "shard-0")
        # The adopted file is sealed history: retiring past its last seq
        # deletes it even though this writer never wrote to it.
        assert second.retire(10) == 1
        second.close()

    def test_shards_are_isolated_per_directory(self, tmp_path, entries):
        a = WalWriter(tmp_path, "shard-0")
        b = WalWriter(tmp_path, "shard-1")
        _fill(a, entries[:4])
        _fill(b, entries[4:7])
        a.close()
        b.close()
        assert shard_names_on_disk(tmp_path) == ["shard-0", "shard-1"]
        assert len(read_wal(tmp_path, "shard-0").records) == 4
        assert len(read_wal(tmp_path, "shard-1").records) == 3


class TestEntryEncoder:
    """``_entry_json`` must stay byte-identical to the generic encoder.

    The hand-composed fast path exists only for append-latency reasons;
    this is the lock-step promised in its docstring.  Any drift — a new
    ``LogEntry`` field, a reordered key in ``entry_to_message``, an
    escaping case the ASCII fast path mishandles — must fail here, not
    in a recovery.
    """

    @staticmethod
    def _reference(entry: LogEntry) -> bytes:
        return _ENCODE(entry_to_message(entry)).encode("utf-8")

    def test_lockstep_on_paper_trail(self, entries):
        for entry in entries:
            assert _entry_json(entry) == self._reference(entry)

    def test_lockstep_on_hospital_day(self):
        workload = hospital_day(20, violation_rate=0.3, seed=7)
        assert len(list(workload.trail)) > 0
        for entry in workload.trail:
            assert _entry_json(entry) == self._reference(entry)

    @pytest.mark.parametrize(
        "user, obj",
        [
            ('quote"quote', "MR(x)"),               # escaped quote
            ("back\\slash", None),                  # escaped backslash, null obj
            ("tab\there", "MR(é)"),            # control char + non-ASCII
            ("émile", None),                        # non-ASCII falls to _ENCODE
            ("line\nbreak\x1f", "MR(y)"),           # control chars
            ("", "MR(z)"),                          # empty string
        ],
    )
    def test_lockstep_on_escaping_edge_cases(self, user, obj):
        entry = LogEntry.at(
            user, "GP", "read", obj, "T01", "HT-1",
            "201103010900", Status.FAILURE,
        )
        assert _entry_json(entry) == self._reference(entry)


class TestFaultHook:
    def test_disk_full_rejects_the_append(self, tmp_path, entries):
        writer = WalWriter(
            tmp_path, "shard-0", fault_hook=disk_full_hook(after_ops=2)
        )
        _fill(writer, entries[:2])
        with pytest.raises(OSError):
            writer.append(entries[2], 1)
        # The failed append must leave no trace: nothing was framed.
        assert writer.last_seq == 2
        writer.commit()
        writer.close()
        assert len(read_wal(tmp_path, "shard-0").records) == 2
