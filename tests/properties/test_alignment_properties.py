"""Property-based correctness of trail alignments.

* cost 0 if and only if Algorithm 1 accepts the trail;
* the repair implied by an alignment *works*: applying the log-move
  deletions and weaving the model-move events into the trail yields a
  compliant trail;
* cost is monotone under corruption: mutating a compliant trail never
  decreases its alignment cost.
"""

from datetime import datetime, timedelta

from hypothesis import given, settings, strategies as st

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.core import ComplianceChecker, MoveKind, align

from tests.properties.test_algorithm_correctness import (
    build_random_process,
    compliant_tasks_for,
    entries_for,
)

block_spec_lists = st.lists(
    st.integers(min_value=1, max_value=3), min_size=1, max_size=4
)


class TestAlignmentEquivalence:
    @given(block_spec_lists, st.randoms(use_true_random=False), st.data())
    @settings(max_examples=30, deadline=None)
    def test_cost_zero_iff_compliant(self, specs, rng, data):
        process = build_random_process(specs)
        encoded = encode(process)
        checker = ComplianceChecker(encoded)
        tasks = compliant_tasks_for(specs, rng)
        mutation = data.draw(st.sampled_from(["none", "drop", "garbage"]))
        if mutation == "drop" and len(tasks) > 1:
            del tasks[data.draw(st.integers(0, len(tasks) - 1))]
        elif mutation == "garbage":
            tasks.insert(data.draw(st.integers(0, len(tasks))), "T_JUNK")
        trail = entries_for(tasks)
        compliant = checker.check(trail).compliant
        alignment = align(checker, trail)
        assert alignment.complete
        assert (alignment.cost == 0) == compliant

    @given(block_spec_lists, st.randoms(use_true_random=False), st.data())
    @settings(max_examples=25, deadline=None)
    def test_repair_plan_works(self, specs, rng, data):
        """Replaying the alignment's move sequence (sync entries kept,
        log-only entries dropped, model-only events inserted) must be
        compliant."""
        process = build_random_process(specs)
        encoded = encode(process)
        checker = ComplianceChecker(encoded)
        tasks = compliant_tasks_for(specs, rng)
        if tasks:
            del tasks[data.draw(st.integers(0, len(tasks) - 1))]
        tasks.insert(data.draw(st.integers(0, len(tasks))), "T_JUNK")
        trail = entries_for(tasks)
        alignment = align(checker, trail)
        assert alignment.complete

        repaired_tasks = []
        position = 0
        for move in alignment.moves:
            if move.kind is MoveKind.SYNC:
                repaired_tasks.append(trail[position].task)
                position += 1
            elif move.kind is MoveKind.LOG:
                position += 1  # dropped
            else:  # MODEL: label is "Role.Task"
                repaired_tasks.append(move.label.split(".", 1)[1])
        assert position == len(trail)
        assert checker.check(entries_for(repaired_tasks)).compliant

    @given(block_spec_lists, st.randoms(use_true_random=False), st.data())
    @settings(max_examples=25, deadline=None)
    def test_corruption_never_decreases_cost(self, specs, rng, data):
        process = build_random_process(specs)
        checker = ComplianceChecker(encode(process))
        tasks = compliant_tasks_for(specs, rng)
        base_cost = align(checker, entries_for(tasks)).cost
        assert base_cost == 0
        tasks.insert(data.draw(st.integers(0, len(tasks))), "T_JUNK")
        corrupted_cost = align(checker, entries_for(tasks)).cost
        assert corrupted_cost >= base_cost
