"""Property-based tests for the COWS substrate: normalization laws,
semantics invariants and parser round-trips."""

from hypothesis import given, settings, strategies as st

from repro.cows import (
    Choice,
    CommLabel,
    Invoke,
    Kill,
    Nil,
    Parallel,
    Protect,
    Replicate,
    Request,
    Scope,
    enabled,
    endpoint,
    free_identifiers,
    killer,
    name,
    normalize,
    parse,
    substitute,
    var,
)

names = st.sampled_from([name(x) for x in ("P", "Q", "sys", "a", "b", "msg")])
operations = st.sampled_from([name(x) for x in ("T1", "T2", "go", "ok", "Err")])
killers = st.sampled_from([killer(x) for x in ("k", "j")])
variables = st.sampled_from([var(x) for x in ("x", "z")])
endpoints = st.builds(lambda p, o: endpoint(p, o), names, operations)
params = st.lists(st.one_of(names, variables), max_size=2).map(tuple)
ground_params = st.lists(names, max_size=2).map(tuple)


def terms(max_depth=4):
    base = st.one_of(
        st.just(Nil()),
        st.builds(Invoke, endpoints, params),
        st.builds(Kill, killers),
    )

    def extend(children):
        requests = st.builds(Request, endpoints, params, children)
        return st.one_of(
            requests,
            st.builds(lambda rs: Choice(tuple(rs)), st.lists(requests, min_size=1, max_size=3)),
            st.builds(lambda cs: Parallel(tuple(cs)), st.lists(children, min_size=1, max_size=3)),
            st.builds(Scope, st.one_of(names, variables, killers), children),
            st.builds(Protect, children),
            st.builds(Replicate, children),
        )

    return st.recursive(base, extend, max_leaves=12)


class TestNormalizationLaws:
    @given(terms())
    @settings(max_examples=200)
    def test_idempotent(self, term):
        once = normalize(term)
        assert normalize(once) == once

    @given(terms())
    @settings(max_examples=200)
    def test_preserves_free_identifiers(self, term):
        # GC only removes *unused* binders; free identifiers never change.
        assert free_identifiers(normalize(term)) == free_identifiers(term)

    @given(terms(), terms())
    @settings(max_examples=100)
    def test_parallel_commutative(self, left, right):
        assert normalize(Parallel((left, right))) == normalize(
            Parallel((right, left))
        )

    @given(terms(), terms(), terms())
    @settings(max_examples=100)
    def test_parallel_associative(self, a, b, c):
        left = Parallel((Parallel((a, b)), c))
        right = Parallel((a, Parallel((b, c))))
        assert normalize(left) == normalize(right)

    @given(terms())
    @settings(max_examples=100)
    def test_nil_is_parallel_identity(self, term):
        assert normalize(Parallel((term, Nil()))) == normalize(term)


class TestSemanticsInvariants:
    @given(terms())
    @settings(max_examples=150, deadline=None)
    def test_normalization_preserves_enabled_comm_labels(self, term):
        raw = {l for l, _ in enabled(term) if isinstance(l, CommLabel)}
        normal = {
            l for l, _ in enabled(normalize(term)) if isinstance(l, CommLabel)
        }
        assert raw == normal

    @given(terms())
    @settings(max_examples=150, deadline=None)
    def test_transition_targets_remain_terms(self, term):
        for _, target in enabled(term):
            normalize(target)  # must not raise

    @given(terms())
    @settings(max_examples=100, deadline=None)
    def test_kill_priority(self, term):
        from repro.cows import is_kill_label

        labels = [l for l, _ in enabled(term)]
        if any(is_kill_label(l) for l in labels):
            assert all(is_kill_label(l) for l in labels)


class TestSubstitutionLaws:
    @given(terms())
    @settings(max_examples=100)
    def test_substituting_absent_variable_is_identity(self, term):
        fresh = var("nowhere")
        assert substitute(term, {fresh: name("v")}) == term

    @given(terms())
    @settings(max_examples=100)
    def test_substitution_removes_free_variable(self, term):
        from repro.errors import SubstitutionError

        target = var("x")
        try:
            result = substitute(term, {target: name("a")})
        except SubstitutionError:
            # A private-name scope would capture the substituted value;
            # refusing (instead of silently mis-scoping) is the contract.
            return
        assert target not in free_identifiers(result) or _shadowed(term)


def _shadowed(term):
    """Whether term contains a Scope binding ?x (shadowing stops substitution)."""
    if isinstance(term, Scope):
        if term.binder == var("x"):
            return True
        return _shadowed(term.body)
    if isinstance(term, (Protect, Replicate)):
        return _shadowed(term.body)
    if isinstance(term, Parallel):
        return any(_shadowed(c) for c in term.components)
    if isinstance(term, Choice):
        return any(_shadowed(b) for b in term.branches)
    if isinstance(term, Request):
        return _shadowed(term.continuation)
    return False


class TestParserRoundTrip:
    @given(terms())
    @settings(max_examples=200)
    def test_str_parse_round_trip(self, term):
        # The textual syntax covers every construct the strategies build;
        # degenerate shapes (a one-component parallel) print like their
        # canonical form, so compare after normalization.
        canonical = normalize(term)
        assert parse(str(canonical)) == canonical
