"""Property-based correctness of Algorithm 1 (experiment E14).

Theorem 2 of the paper: Algorithm 1 returns true iff some trace of the
process's transition system accepts the trail.  We test this on randomly
generated well-founded processes:

* **agreement with the naive baseline** — on loop-free processes the
  trace-enumeration checker is a complete decision procedure, so the two
  must agree on arbitrary trails (compliant, mutated and garbage);
* **soundness on generated runs** — trails produced by walking the
  process's own semantics always replay compliantly (also with loops);
* **prefix closure** — every prefix of a compliant trail is compliant
  (Algorithm 1 accepts ongoing cases);
* **absorption invariance** — duplicating any successful entry in place
  keeps a compliant trail compliant (the 1-to-n task/entry mapping);
* **garbage rejection** — appending an unknown-task entry breaks
  compliance.
"""

import random
from datetime import datetime, timedelta

from hypothesis import given, settings, strategies as st

from repro.audit import AuditTrail, LogEntry, Status, TrailGenerator
from repro.bpmn import ProcessBuilder, encode
from repro.core import ComplianceChecker, NaiveChecker, Verdict
from repro.scenarios import loop_process


def build_random_process(block_specs):
    """A random loop-free process: a chain of blocks, each either a single
    task or an XOR choice among tasks."""
    builder = ProcessBuilder("random")
    pool = builder.pool("Staff")
    pool.start_event("S")
    previous = "S"
    for index, spec in enumerate(block_specs):
        if spec == 1:
            task = f"T{index}"
            pool.task(task)
            builder.flow(previous, task)
            previous = task
        else:
            split, join = f"G{index}", f"J{index}"
            pool.exclusive_gateway(split)
            pool.exclusive_gateway(join)
            builder.flow(previous, split)
            for branch in range(spec):
                task = f"T{index}_{branch}"
                pool.task(task)
                builder.flow(split, task).flow(task, join)
            previous = join
    pool.end_event("E")
    builder.flow(previous, "E")
    return builder.build()


def compliant_tasks_for(block_specs, rng):
    """One valid task sequence through the random process."""
    tasks = []
    for index, spec in enumerate(block_specs):
        if spec == 1:
            tasks.append(f"T{index}")
        else:
            tasks.append(f"T{index}_{rng.randrange(spec)}")
    return tasks


def entries_for(tasks):
    clock = datetime(2010, 1, 1)
    entries = []
    for task in tasks:
        clock += timedelta(minutes=1)
        entries.append(
            LogEntry(
                user="Sam", role="Staff", action="work", obj=None,
                task=task, case="C-1", timestamp=clock, status=Status.SUCCESS,
            )
        )
    return entries


block_spec_lists = st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4)


class TestAgreementWithNaive:
    @given(block_spec_lists, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_compliant_run_accepted_by_both(self, specs, rng):
        process = build_random_process(specs)
        encoded = encode(process)
        trail = entries_for(compliant_tasks_for(specs, rng))
        assert ComplianceChecker(encoded).check(trail).compliant
        assert NaiveChecker(encoded).check(trail).verdict is Verdict.COMPLIANT

    @given(
        block_spec_lists,
        st.randoms(use_true_random=False),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_mutated_runs_agree(self, specs, rng, data):
        process = build_random_process(specs)
        encoded = encode(process)
        tasks = compliant_tasks_for(specs, rng)
        mutation = data.draw(
            st.sampled_from(["drop", "swap", "dup", "garbage", "none"])
        )
        if mutation == "drop" and tasks:
            del tasks[data.draw(st.integers(0, len(tasks) - 1))]
        elif mutation == "swap" and len(tasks) >= 2:
            i = data.draw(st.integers(0, len(tasks) - 2))
            tasks[i], tasks[i + 1] = tasks[i + 1], tasks[i]
        elif mutation == "dup" and tasks:
            i = data.draw(st.integers(0, len(tasks) - 1))
            tasks.insert(i, tasks[i])
        elif mutation == "garbage":
            tasks.insert(data.draw(st.integers(0, len(tasks))), "T_GARBAGE")
        trail = entries_for(tasks)
        fast = ComplianceChecker(encoded).check(trail).compliant
        slow = NaiveChecker(encoded).check(trail)
        assert slow.verdict is not Verdict.UNDETERMINED  # loop-free: decidable
        assert fast == slow.compliant


class TestSoundnessOnGeneratedRuns:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_generator_walks_replay_compliantly_on_loops(self, seed):
        encoded = encode(loop_process(2))
        generator = TrailGenerator(
            encoded,
            users_by_role={"Staff": [("Sam", "Staff")]},
            seed=seed,
            max_steps=12,
        )
        trail = generator.generate_case("C-1", "Subj", min_steps=1).trail
        assert ComplianceChecker(encoded).check(trail).compliant


class TestClosureProperties:
    @given(block_spec_lists, st.randoms(use_true_random=False), st.data())
    @settings(max_examples=30, deadline=None)
    def test_prefix_closure(self, specs, rng, data):
        process = build_random_process(specs)
        encoded = encode(process)
        tasks = compliant_tasks_for(specs, rng)
        cut = data.draw(st.integers(0, len(tasks)))
        checker = ComplianceChecker(encoded)
        assert checker.check(entries_for(tasks[:cut])).compliant

    @given(block_spec_lists, st.randoms(use_true_random=False), st.data())
    @settings(max_examples=30, deadline=None)
    def test_absorption_invariance(self, specs, rng, data):
        process = build_random_process(specs)
        encoded = encode(process)
        tasks = compliant_tasks_for(specs, rng)
        i = data.draw(st.integers(0, len(tasks) - 1))
        tasks.insert(i, tasks[i])  # duplicate one entry in place
        assert ComplianceChecker(encoded).check(entries_for(tasks)).compliant

    @given(block_spec_lists, st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_garbage_suffix_rejected(self, specs, rng):
        process = build_random_process(specs)
        encoded = encode(process)
        tasks = compliant_tasks_for(specs, rng) + ["T_NOWHERE"]
        result = ComplianceChecker(encoded).check(entries_for(tasks))
        assert not result.compliant
        assert result.failed_index == len(tasks) - 1


class TestDeterminism:
    @given(block_spec_lists, st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_verdicts_stable_across_checker_instances(self, specs, rng):
        process = build_random_process(specs)
        trail = entries_for(compliant_tasks_for(specs, rng))
        verdicts = {
            ComplianceChecker(encode(process)).check(trail).compliant
            for _ in range(2)
        }
        assert verdicts == {True}
