"""Property-based tests for the policy and audit substrates: the >=O
partial order, role-hierarchy laws, trail ordering, and hash-chain
integrity under arbitrary tampering."""

import string
from datetime import datetime, timedelta

from hypothesis import given, settings, strategies as st

from repro.audit import AuditStore, AuditTrail, LogEntry, Status
from repro.policy import ObjectRef, RoleHierarchy

identifiers = st.text(alphabet=string.ascii_letters, min_size=1, max_size=6)
subjects = st.one_of(st.none(), st.just("*"), identifiers)
paths = st.lists(identifiers, min_size=1, max_size=4).map(tuple)
object_refs = st.builds(ObjectRef, subjects, paths)


class TestObjectOrderLaws:
    """>=O must be a partial order (Section 3.1)."""

    @given(object_refs)
    def test_reflexive(self, ref):
        assert ref.covers(ref)

    @given(object_refs, object_refs)
    def test_antisymmetric_on_named_subjects(self, a, b):
        if a.covers(b) and b.covers(a) and "*" not in (a.subject, b.subject):
            assert a == b

    @given(object_refs, object_refs, object_refs)
    @settings(max_examples=300)
    def test_transitive(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    @given(object_refs)
    def test_parse_str_round_trip(self, ref):
        assert ObjectRef.parse(str(ref)) == ref

    @given(object_refs, identifiers)
    def test_descendant_always_covered(self, ref, extra):
        descendant = ObjectRef(ref.subject, ref.path + (extra,))
        assert ref.covers(descendant)
        assert not descendant.covers(ref)


class TestRoleHierarchyLaws:
    @given(st.lists(st.tuples(identifiers, identifiers), max_size=10))
    @settings(max_examples=100)
    def test_transitivity(self, edges):
        hierarchy = RoleHierarchy()
        for child, parent in edges:
            try:
                hierarchy.add_role(child, parent)
            except Exception:
                pass  # cycles rejected; keep building with the rest
        roles = list(hierarchy.roles())[:8]
        for a in roles:
            for b in roles:
                for c in roles:
                    if hierarchy.is_specialization_of(
                        a, b
                    ) and hierarchy.is_specialization_of(b, c):
                        assert hierarchy.is_specialization_of(a, c)

    @given(st.lists(st.tuples(identifiers, identifiers), max_size=10))
    @settings(max_examples=100)
    def test_no_cycles_ever(self, edges):
        hierarchy = RoleHierarchy()
        for child, parent in edges:
            try:
                hierarchy.add_role(child, parent)
            except Exception:
                continue
        for role in hierarchy.roles():
            assert role not in hierarchy.ancestors(role)


entry_strategy = st.builds(
    LogEntry,
    user=identifiers,
    role=identifiers,
    action=st.sampled_from(["read", "write", "execute", "cancel"]),
    obj=st.one_of(st.none(), object_refs),
    task=identifiers,
    case=identifiers.map(lambda s: f"HT-{len(s)}"),
    timestamp=st.integers(0, 10_000_000).map(
        lambda m: datetime(2010, 1, 1) + timedelta(minutes=m)
    ),
    status=st.sampled_from([Status.SUCCESS, Status.FAILURE]),
)


class TestTrailLaws:
    @given(st.lists(entry_strategy, max_size=20))
    @settings(max_examples=100)
    def test_constructor_output_is_sorted(self, entries):
        trail = AuditTrail(entries)
        times = [e.timestamp for e in trail]
        assert times == sorted(times)

    @given(st.lists(entry_strategy, max_size=20))
    @settings(max_examples=100)
    def test_case_projections_partition_the_trail(self, entries):
        trail = AuditTrail(entries)
        total = sum(len(trail.for_case(c)) for c in trail.cases())
        assert total == len(trail)

    @given(st.lists(entry_strategy, max_size=15), st.lists(entry_strategy, max_size=15))
    @settings(max_examples=50)
    def test_merge_is_commutative_up_to_order(self, left, right):
        a = AuditTrail(left).merged_with(AuditTrail(right))
        b = AuditTrail(right).merged_with(AuditTrail(left))
        assert sorted(map(str, a)) == sorted(map(str, b))


class TestStoreIntegrityLaws:
    @given(st.lists(entry_strategy, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_and_integrity(self, entries):
        with AuditStore(":memory:") as store:
            store.append_many(entries)
            assert len(store) == len(entries)
            assert store.is_intact()
            fetched = store.query()
            assert sorted(map(str, fetched)) == sorted(map(str, entries))

    @given(
        st.lists(entry_strategy, min_size=2, max_size=10),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_tamper_is_detected(self, entries, data):
        with AuditStore(":memory:") as store:
            store.append_many(entries)
            seq = data.draw(st.integers(1, len(entries)))
            column = data.draw(
                st.sampled_from(["user", "role", "action", "task", "case_id"])
            )
            store.tamper(seq, **{column: "TAMPERED-VALUE"})
            assert not store.is_intact()
