"""Property: compiled replay is observationally identical to interpreted.

The purpose automaton (:mod:`repro.compile`) memoizes Algorithm 1's
deduplicated step function; these tests pin the contract that doing so
is invisible — same verdict, same failure point, same per-step records,
same resumability — across the paper's appendix examples, both worked
scenarios (healthcare and insurance), and randomized generator trails,
in every automaton tier (fresh in-memory, document round-trip, and
explosion-induced interpreted fallback).
"""

from datetime import datetime, timedelta

import pytest
from hypothesis import given, settings, strategies as st

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.compile import (
    CompiledChecker,
    PurposeAutomaton,
    compile_automaton,
    fingerprint_encoded,
)
from repro.core import ComplianceChecker
from repro.core.compliance import FrontierExplosionError
from repro.scenarios import (
    fig7_process,
    fig8_process,
    fig9_process,
    fig10_process,
    hospital_day,
    insurance_audit_trail,
    insurance_registry,
    insurance_role_hierarchy,
    paper_audit_trail,
    parallel_process,
    process_registry,
    role_hierarchy,
)
from repro.testing import assert_equivalent_verdicts


def entry(task, minute, role, status=Status.SUCCESS, case="X-1"):
    return LogEntry(
        user="U",
        role=role,
        action="work",
        obj=None,
        task=task,
        case=case,
        timestamp=datetime(2010, 1, 1, 9, 0) + timedelta(minutes=minute),
        status=status,
    )


def compiled_twin(process, hierarchy=None):
    """(interpreted, compiled) checkers over the same process."""
    interpreted = ComplianceChecker(encode(process), hierarchy=hierarchy)
    compiled = ComplianceChecker(encode(process), hierarchy=hierarchy)
    automaton = PurposeAutomaton(
        fingerprint=fingerprint_encoded(compiled.encoded),
        purpose=compiled.purpose,
        roles=compiled.encoded.roles,
        hierarchy=hierarchy,
    )
    compiled.attach_automaton(automaton)
    return interpreted, compiled


class TestAppendixScenarios:
    """Figs 7-10 of the paper, driven over hand-picked trails that hit
    every outcome class: compliant completion, open prefix, wrong task,
    error-path recovery, and loop re-entry."""

    def check_all(self, process, trails):
        interpreted, compiled = compiled_twin(process)
        for trail in trails:
            assert_equivalent_verdicts(
                interpreted.check(trail),
                compiled.check(trail),
                context=process.purpose,
            )

    def test_fig7(self):
        self.check_all(
            fig7_process(),
            [
                [entry("T", 0, "P")],
                [],
                [entry("T", 0, "P"), entry("T", 1, "P")],
                [entry("Nope", 0, "P")],
                [entry("T", 0, "Q")],  # wrong pool role
                [entry("T", 0, "P", status=Status.FAILURE)],
            ],
        )

    def test_fig8(self):
        self.check_all(
            fig8_process(),
            [
                [entry("T", 0, "P"), entry("T1", 1, "P")],
                [entry("T", 0, "P"), entry("T2", 1, "P")],
                [entry("T1", 0, "P")],  # gateway not reached yet
                [entry("T", 0, "P"), entry("T1", 1, "P"), entry("T2", 2, "P")],
            ],
        )

    def test_fig9_error_path(self):
        self.check_all(
            fig9_process(),
            [
                [entry("T", 0, "P"), entry("T2", 1, "P")],
                [
                    entry("T", 0, "P", status=Status.FAILURE),
                    entry("T1", 1, "P"),
                ],
                [entry("T", 0, "P"), entry("T1", 1, "P")],  # no error raised
                [entry("T", 0, "P", status=Status.FAILURE), entry("T2", 1, "P")],
            ],
        )

    def test_fig10_message_loop(self):
        self.check_all(
            fig10_process(),
            [
                [entry("T1", 0, "P1"), entry("T2", 1, "P2")],
                [
                    entry("T1", 0, "P1"),
                    entry("T2", 1, "P2"),
                    entry("T1", 2, "P1"),
                    entry("T2", 3, "P2"),
                ],
                [entry("T2", 0, "P2")],  # P2 cannot start the conversation
            ],
        )


class TestWorkedScenarios:
    def assert_scenario(self, registry, hierarchy, trail):
        by_prefix = {
            registry.case_prefix_of(p): p for p in registry.purposes()
        }
        twins = {}
        for case in trail.cases():
            purpose = by_prefix[case.partition("-")[0]]
            if purpose not in twins:
                twins[purpose] = compiled_twin(
                    registry.process_for(purpose), hierarchy
                )
            interpreted, compiled = twins[purpose]
            assert_equivalent_verdicts(
                interpreted.check(trail.for_case(case)),
                compiled.check(trail.for_case(case)),
                context=case,
            )

    def test_healthcare_paper_trail(self):
        self.assert_scenario(
            process_registry(), role_hierarchy(), paper_audit_trail()
        )

    def test_insurance_trail(self):
        self.assert_scenario(
            insurance_registry(),
            insurance_role_hierarchy(),
            insurance_audit_trail(),
        )


class TestDiskTier:
    def test_document_round_trip_replays_identically(self):
        """Artifact-loaded automata (no retained COWS terms) must replay
        exactly like the freshly compiled ones they were saved from."""
        registry = process_registry()
        hierarchy = role_hierarchy()
        trail = paper_audit_trail()
        by_prefix = {
            registry.case_prefix_of(p): p for p in registry.purposes()
        }
        for purpose in registry.purposes():
            donor = ComplianceChecker(
                registry.encoded_for(purpose), hierarchy=hierarchy
            )
            document = compile_automaton(donor).to_document()
            loaded = PurposeAutomaton.from_document(document)

            def factory(purpose=purpose):
                return ComplianceChecker(
                    registry.encoded_for(purpose), hierarchy=hierarchy
                )

            compiled = CompiledChecker(loaded, checker_factory=factory)
            interpreted = factory()
            for case in trail.cases():
                if by_prefix[case.partition("-")[0]] != purpose:
                    continue
                assert_equivalent_verdicts(
                    interpreted.check(trail.for_case(case)),
                    compiled.check(trail.for_case(case)),
                    context=f"{purpose}/{case}",
                )


class TestGeneratedTrails:
    @given(
        n_cases=st.integers(min_value=1, max_value=6),
        rate=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_hospital_day_verdicts_identical(self, n_cases, rate, seed):
        workload = hospital_day(
            n_cases=n_cases, violation_rate=rate, seed=seed
        )
        hierarchy = role_hierarchy()
        interpreted = ComplianceChecker(workload.encoded, hierarchy=hierarchy)
        compiled = ComplianceChecker(workload.encoded, hierarchy=hierarchy)
        automaton = PurposeAutomaton(
            fingerprint=fingerprint_encoded(
                workload.encoded, hierarchy=hierarchy
            ),
            purpose=compiled.purpose,
            roles=workload.encoded.roles,
            hierarchy=hierarchy,
        )
        compiled.attach_automaton(automaton)
        for case in workload.trail.cases():
            case_trail = workload.trail.for_case(case)
            left = interpreted.check(case_trail)
            right = compiled.check(case_trail)
            assert_equivalent_verdicts(left, right, context=case)
            assert right.compliant == workload.ground_truth[case]


class TestGuardParity:
    def test_frontier_explosion_raises_identically(self):
        """Both engines must refuse oversized frontiers the same way —
        the compiled path checks the memoized size *before* recording."""
        process = parallel_process(3)
        interpreted = ComplianceChecker(encode(process), max_frontier=2)
        compiled = ComplianceChecker(encode(process), max_frontier=2)
        automaton = PurposeAutomaton(
            fingerprint=fingerprint_encoded(compiled.encoded),
            purpose=compiled.purpose,
            roles=compiled.encoded.roles,
        )
        compiled.attach_automaton(automaton)
        # B-tasks of the parallel block grow the frontier: 1, 2, 3...
        trail = [
            entry("T0", 0, "Staff"),
            entry("B1", 1, "Staff"),
            entry("B2", 2, "Staff"),
            entry("B3", 3, "Staff"),
        ]
        with pytest.raises(FrontierExplosionError) as left:
            interpreted.check(trail)
        with pytest.raises(FrontierExplosionError) as right:
            compiled.check(trail)
        assert str(left.value) == str(right.value)


class TestTableTier:
    """The dense-table tier against both tiers beneath it.

    Property: for arbitrary generated trails — including mid-case
    truncation and entries whose ``(task, role)`` pair is outside the
    compiled alphabet — the table tier, the lazy-DFA tier, and
    interpreted replay produce byte-identical canonical verdict digests.
    """

    @staticmethod
    def three_tiers(workload, hierarchy):
        from repro.compile import compile_table

        def factory():
            return ComplianceChecker(workload.encoded, hierarchy=hierarchy)

        eager = compile_automaton(factory())
        eager.attach_table(compile_table(eager))
        table_checker = CompiledChecker(eager, checker_factory=factory)
        lazy = ComplianceChecker(workload.encoded, hierarchy=hierarchy)
        lazy.attach_automaton(
            PurposeAutomaton(
                fingerprint=fingerprint_encoded(
                    workload.encoded, hierarchy=hierarchy
                ),
                purpose=lazy.purpose,
                roles=workload.encoded.roles,
                hierarchy=hierarchy,
            )
        )
        return factory(), lazy, table_checker

    @given(
        n_cases=st.integers(min_value=1, max_value=4),
        rate=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=10_000),
        cut=st.floats(min_value=0.0, max_value=1.0),
        alien=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_three_tiers_byte_identical(
        self, n_cases, rate, seed, cut, alien
    ):
        from dataclasses import replace

        from repro.scenarios import hospital_day
        from repro.testing import canonical_digest

        workload = hospital_day(
            n_cases=n_cases, violation_rate=rate, seed=seed
        )
        hierarchy = role_hierarchy()
        interpreted, lazy, tabled = self.three_tiers(workload, hierarchy)
        for case in workload.trail.cases():
            entries = list(workload.trail.for_case(case))
            if cut < 1.0:
                # Mid-case truncation: verdicts over the open prefix.
                entries = entries[: max(0, round(len(entries) * cut))]
            if alien and entries:
                # An entry outside the compiled alphabet: unknown task
                # AND unknown role, so neither the symbol interner nor
                # the keyer caches have ever seen the pair.
                middle = len(entries) // 2
                entries.insert(
                    middle,
                    replace(
                        entries[middle],
                        task="NotInAnyProcess",
                        role="NoSuchRole",
                    ),
                )
            digests = {
                tier: canonical_digest(checker.check(entries))
                for tier, checker in (
                    ("interpreted", interpreted),
                    ("lazy", lazy),
                    ("table", tabled),
                )
            }
            assert len(set(digests.values())) == 1, (case, digests)

    def test_mmap_loaded_table_is_the_same_tier(self, tmp_path):
        """The property holds with the table mmap-loaded from disk, not
        just freshly compiled — the artifact round-trip changes nothing."""
        from repro.compile import compile_table, load_table, save_table, table_path
        from repro.scenarios import hospital_day
        from repro.testing import canonical_digest

        workload = hospital_day(n_cases=5, violation_rate=0.5, seed=99)
        hierarchy = role_hierarchy()

        def factory():
            return ComplianceChecker(workload.encoded, hierarchy=hierarchy)

        eager = compile_automaton(factory())
        path = save_table(
            compile_table(eager),
            table_path(tmp_path, eager.purpose, eager.fingerprint),
        )
        loaded = load_table(path, expected_fingerprint=eager.fingerprint)
        eager.attach_table(loaded)
        tabled = CompiledChecker(eager, checker_factory=factory)
        interpreted = factory()
        try:
            for case in workload.trail.cases():
                case_trail = workload.trail.for_case(case)
                assert canonical_digest(tabled.check(case_trail)) == (
                    canonical_digest(interpreted.check(case_trail))
                ), case
        finally:
            loaded.close()
