"""Property: crash/recover cycles never fork the record or the verdicts.

Hypothesis draws arbitrary interleavings of multi-case streams, splits
them at arbitrary crash points, and randomizes whether the store flush
committed before each "power loss".  However the stream is cut up:

* the **verdicts** after the final recovery are byte-identical (per-case
  canonical digest) to a sequential per-case replay of the same
  entries — the WAL + store union misses nothing and replays nothing
  twice;
* the **hash chain never forks** — the final store holds each accepted
  entry exactly once and passes its integrity check;
* **repeated partial recovery is idempotent** — recovering, crashing
  without ever resetting the WAL, and recovering again converges on the
  same state.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.audit.store import AuditStore
from repro.core.monitor import OnlineMonitor
from repro.scenarios import hospital_day, process_registry, role_hierarchy
from repro.serve import ServeConfig, ShardRouter, recover
from repro.testing import canonical_digest

_WORKLOAD = hospital_day(
    n_cases=6,
    violation_rate=0.5,
    seed=4321,
    violation_mix={
        "mimicry": 1.0, "wrong-role": 1.0, "skip": 1.0, "reorder": 1.0,
    },
)
_CASES = sorted(_WORKLOAD.ground_truth)
_PER_CASE = {case: list(_WORKLOAD.trail.for_case(case)) for case in _CASES}


@st.composite
def crashy_runs(draw):
    """An interleaved stream, crash positions, and per-leg flush choices."""
    chosen = draw(
        st.lists(
            st.sampled_from(_CASES), min_size=1, max_size=4, unique=True
        )
    )
    remaining = {case: list(_PER_CASE[case]) for case in chosen}
    order = []
    for case in chosen:
        order.extend([case] * len(remaining[case]))
    order = draw(st.permutations(order))
    stream = [remaining[case].pop(0) for case in order]
    crashes = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(stream)),
            min_size=1,
            max_size=3,
        ).map(sorted)
    )
    flushed = draw(
        st.lists(
            st.booleans(),
            min_size=len(crashes) + 1,
            max_size=len(crashes) + 1,
        )
    )
    shards = draw(st.integers(min_value=1, max_value=4))
    return stream, crashes, flushed, shards


def _sequential_digests(stream):
    registry, hierarchy = process_registry(), role_hierarchy()
    cases = {entry.case for entry in stream}
    out = {}
    for case in cases:
        reference = OnlineMonitor(registry, hierarchy=hierarchy)
        for entry in stream:
            if entry.case == case:
                reference.observe(entry)
        result = reference.case_result(case)
        out[case] = canonical_digest(result) if result is not None else None
    return out


def _router(root: Path, shards: int) -> ShardRouter:
    router = ShardRouter(
        process_registry(),
        hierarchy=role_hierarchy(),
        config=ServeConfig(
            shards=shards,
            store_path=str(root / "audit.db"),
            wal_dir=str(root / "wal"),
            flush_max_batch=10_000,
        ),
    )
    router.start()
    return router


def _crash(router: ShardRouter) -> None:
    """Abandon without drain: what the process leaves after kill -9."""
    for wal in router._wals.values():
        wal.commit()
        wal.close()
    router._accepting = False


class TestCrashRecoveryProperties:
    @given(crashy_runs())
    @settings(max_examples=15, deadline=None)
    def test_verdicts_and_chain_survive_any_crash_schedule(self, example):
        stream, crashes, flushed, shards = example
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            position = 0
            legs = [*crashes, len(stream)]
            for leg, cut in enumerate(legs):
                router = _router(root, shards)
                if leg > 0:
                    recover(router)
                for entry in stream[position:cut]:
                    assert router.submit(entry).accepted
                assert router.wait_idle(timeout=60)
                if flushed[leg]:
                    router.flush()
                    assert router._writer_sync(timeout=60)
                position = cut
                if leg < len(legs) - 1:
                    _crash(router)

            # The final leg survives; its state must match a sequential
            # per-case replay exactly.
            final = router
            got = {
                case: info["digest"]
                for case, info in final.results().items()
            }
            assert got == _sequential_digests(stream), (
                f"verdicts diverged after crashes at {crashes} "
                f"(flushes {flushed}, {shards} shard(s))"
            )
            drained = final.drain()
            assert drained.store_intact is True
            # The chain never forked: every entry exactly once, one
            # unbroken hash chain.
            with AuditStore(str(root / "audit.db")) as store:
                assert len(store) == len(stream), (
                    f"store holds {len(store)} entries for a "
                    f"{len(stream)}-entry stream: the crash schedule "
                    f"{crashes} lost or double-counted"
                )
                store.verify_integrity()

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=10, deadline=None)
    def test_repeated_recovery_without_progress_is_idempotent(
        self, shards, rounds
    ):
        """Recover → crash → recover, k times, with no new traffic:
        every round reconstructs the same state and the same chain."""
        stream = [
            entry
            for case in _CASES[:3]
            for entry in _PER_CASE[case]
        ]
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            router = _router(root, shards)
            for entry in stream:
                router.submit(entry)
            assert router.wait_idle(timeout=60)
            _crash(router)

            seen = []
            for _ in range(rounds):
                router = _router(root, shards)
                recover(router)
                assert router.wait_idle(timeout=60)
                seen.append(
                    {
                        case: info["digest"]
                        for case, info in router.results().items()
                    }
                )
                _crash(router)
            assert all(snapshot == seen[0] for snapshot in seen)

            final = _router(root, shards)
            recover(final)
            assert final.wait_idle(timeout=60)
            final.drain()
            with AuditStore(str(root / "audit.db")) as store:
                assert len(store) == len(stream)
                store.verify_integrity()
