"""Property-based tests of the BPMN -> COWS encoder.

On randomly generated well-founded processes:

* encoding never fails and always yields a canonical term;
* the observable-trace language contains every task (loop-free case:
  each task lies on some complete path through its block);
* the closed LTS of a loop-free process is finite and deadlocks only
  after an end event was reachable;
* every complete observable trace of a loop-free process replays
  compliantly when turned into a trail (the encoder and Algorithm 1
  agree about what the process allows).
"""

from datetime import datetime, timedelta

from hypothesis import given, settings, strategies as st

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.core import ComplianceChecker, NaiveChecker
from repro.cows import LTS
from repro.cows.congruence import normalize

from tests.properties.test_algorithm_correctness import build_random_process

block_spec_lists = st.lists(
    st.integers(min_value=1, max_value=3), min_size=1, max_size=4
)


class TestEncoderTotality:
    @given(block_spec_lists)
    @settings(max_examples=50, deadline=None)
    def test_encoding_succeeds_and_is_canonical(self, specs):
        encoded = encode(build_random_process(specs))
        assert normalize(encoded.term) == encoded.term
        assert encoded.roles == {"Staff"}

    @given(block_spec_lists)
    @settings(max_examples=30, deadline=None)
    def test_loop_free_lts_is_finite(self, specs):
        encoded = encode(build_random_process(specs))
        result = LTS(encoded.term).explore(max_states=5000)
        assert result.complete


class TestTraceLanguage:
    @given(block_spec_lists)
    @settings(max_examples=25, deadline=None)
    def test_every_task_occurs_in_some_trace(self, specs):
        encoded = encode(build_random_process(specs))
        naive = NaiveChecker(encoded)
        seen: set[str] = set()
        for trace in naive.enumerate_traces(max_depth=len(specs) + 2):
            for event, _ in trace:
                seen.add(getattr(event, "task", ""))
        assert encoded.tasks <= seen

    @given(block_spec_lists)
    @settings(max_examples=25, deadline=None)
    def test_every_complete_trace_replays_compliantly(self, specs):
        encoded = encode(build_random_process(specs))
        naive = NaiveChecker(encoded)
        checker = ComplianceChecker(encoded)
        clock = datetime(2010, 1, 1)
        for trace in naive.enumerate_traces(max_depth=len(specs) + 2):
            entries = []
            for position, (event, _) in enumerate(trace):
                entries.append(
                    LogEntry(
                        user="Sam",
                        role=event.role,
                        action="work",
                        obj=None,
                        task=event.task,
                        case="C-1",
                        timestamp=clock + timedelta(minutes=position),
                        status=Status.SUCCESS,
                    )
                )
            assert checker.check(entries).compliant

    @given(block_spec_lists)
    @settings(max_examples=25, deadline=None)
    def test_trace_count_is_the_product_of_choices(self, specs):
        encoded = encode(build_random_process(specs))
        naive = NaiveChecker(encoded)
        expected = 1
        for spec in specs:
            expected *= spec
        count, truncated = naive.count_traces(max_depth=len(specs) + 2)
        assert not truncated
        assert count == expected
