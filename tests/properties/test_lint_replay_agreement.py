"""Agreement between the static lint and the replay semantics.

A task the soundness analyzer flags as dead (PC203) is a *claim about
the process's trace language*: no execution ever enables it.  The
NaiveChecker enumerates that trace language directly from the COWS
encoding, so the two must agree on randomly generated processes:

* a PC203-flagged task never occurs in any enumerated trace;
* on processes whose analysis completed, the flagged set is *exactly*
  the set of never-occurring tasks — the lint is neither unsound nor
  needlessly conservative.

Processes are random loop-free chains (the same generator as the
Algorithm 1 correctness suite), optionally ending in a grafted trap: an
XOR split feeding an AND join, which starves the join and kills every
task behind it.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_soundness, soundness_diagnostics
from repro.bpmn import ProcessBuilder, encode
from repro.core import NaiveChecker


def build_chain(specs, trapped):
    """A random chain of single-task or XOR blocks; with ``trapped`` the
    chain ends in an XOR-split-into-AND-join trap followed by a task
    ``TRAPPED`` that can never run."""
    builder = ProcessBuilder("random", purpose="random")
    pool = builder.pool("Staff")
    pool.start_event("S")
    previous = "S"
    for index, spec in enumerate(specs):
        if spec == 1:
            task = f"T{index}"
            pool.task(task)
            builder.flow(previous, task)
            previous = task
        else:
            split, join = f"G{index}", f"J{index}"
            pool.exclusive_gateway(split)
            pool.exclusive_gateway(join)
            builder.flow(previous, split)
            for branch in range(spec):
                task = f"T{index}_{branch}"
                pool.task(task)
                builder.flow(split, task).flow(task, join)
            previous = join
    if trapped:
        pool.exclusive_gateway("GX")
        pool.task("TA")
        pool.task("TB")
        pool.parallel_gateway("JX")
        pool.task("TRAPPED")
        builder.flow(previous, "GX")
        builder.flow("GX", "TA").flow("GX", "TB")
        builder.flow("TA", "JX").flow("TB", "JX")
        builder.flow("JX", "TRAPPED")
        previous = "TRAPPED"
    pool.end_event("E")
    builder.flow(previous, "E")
    return builder.build()


def executed_tasks(process, max_depth):
    """Every task occurring in some enumerated observable trace."""
    naive = NaiveChecker(encode(process))
    seen = set()
    for trace in naive.enumerate_traces(max_depth=max_depth):
        for event, _ in trace:
            task = getattr(event, "task", "")
            if task:
                seen.add(task)
    return seen


block_spec_lists = st.lists(
    st.integers(min_value=1, max_value=3), min_size=1, max_size=3
)


class TestDeadTasksNeverReplay:
    @given(block_spec_lists)
    @settings(max_examples=20, deadline=None)
    def test_flagged_tasks_are_outside_the_trace_language(self, specs):
        process = build_chain(specs, trapped=True)
        dead = {
            element
            for diagnostic in soundness_diagnostics(process)
            if diagnostic.code == "PC203"
            for element in diagnostic.elements
        }
        assert "TRAPPED" in dead
        seen = executed_tasks(process, max_depth=len(specs) + 8)
        assert not dead & seen

    @given(block_spec_lists)
    @settings(max_examples=20, deadline=None)
    def test_flagged_set_is_exact_on_complete_analyses(self, specs):
        process = build_chain(specs, trapped=True)
        result = analyze_soundness(process)
        assert result.complete
        all_tasks = encode(process).tasks
        seen = executed_tasks(process, max_depth=len(specs) + 8)
        assert set(result.dead_tasks) == all_tasks - seen


class TestSoundChainsStayClean:
    @given(block_spec_lists)
    @settings(max_examples=20, deadline=None)
    def test_no_findings_and_every_task_executes(self, specs):
        process = build_chain(specs, trapped=False)
        assert soundness_diagnostics(process) == []
        seen = executed_tasks(process, max_depth=len(specs) + 8)
        assert encode(process).tasks == seen
