"""Property: sharded streaming is equivalent to per-case sequential replay.

Hypothesis generates arbitrary interleavings of multi-case entry
streams and arbitrary shard counts (1–8) and drives them through the
service's :class:`~repro.serve.core.ShardRouter` — the real shard
threads, ring and quarantine plumbing, minus the socket.  Whatever the
interleaving and whoever owns each case, every case must end in exactly
the state (and with exactly the canonical digest) that a sequential
per-case replay of its own entries produces.

Assertion messages name the offending case id, so a shrunk
counterexample points straight at the diverging case.
"""

from hypothesis import given, settings, strategies as st

from repro.core.monitor import OnlineMonitor
from repro.scenarios import hospital_day, process_registry, role_hierarchy
from repro.serve import ServeConfig, ShardRouter
from repro.testing import canonical_digest

# One fixed pool of per-case streams; examples draw subsets and
# interleavings from it (regenerating workloads per example would
# drown the property in setup time).
_WORKLOAD = hospital_day(
    n_cases=8,
    violation_rate=0.5,
    seed=1234,
    violation_mix={
        "mimicry": 1.0, "wrong-role": 1.0, "skip": 1.0, "reorder": 1.0,
    },
)
_CASES = sorted(_WORKLOAD.ground_truth)
_PER_CASE = {
    case: list(_WORKLOAD.trail.for_case(case)) for case in _CASES
}


@st.composite
def interleaved_streams(draw):
    """A subset of cases, an interleaving of their entries, a shard count."""
    chosen = draw(
        st.lists(
            st.sampled_from(_CASES), min_size=1, max_size=6, unique=True
        )
    )
    remaining = {case: list(_PER_CASE[case]) for case in chosen}
    order = []
    for case in chosen:
        order.extend([case] * len(remaining[case]))
    order = draw(st.permutations(order))
    stream = [remaining[case].pop(0) for case in order]
    shards = draw(st.integers(min_value=1, max_value=8))
    return chosen, stream, shards


class TestStreamEquivalence:
    @given(interleaved_streams())
    @settings(max_examples=30, deadline=None)
    def test_sharded_stream_matches_sequential_replay(self, example):
        chosen, stream, shards = example
        registry = process_registry()
        hierarchy = role_hierarchy()

        router = ShardRouter(
            registry,
            hierarchy=hierarchy,
            config=ServeConfig(shards=shards),
        )
        router.start()
        try:
            for entry in stream:
                router.submit(entry)
            assert router.wait_idle(timeout=60)
            streamed = router.results()
        finally:
            router.drain()

        for case in chosen:
            reference = OnlineMonitor(registry, hierarchy=hierarchy)
            for entry in _PER_CASE[case]:
                reference.observe(entry)
            want_state = str(reference.case_state(case))
            got = streamed[case]
            assert got["state"] == want_state, (
                f"case {case} diverged: sharded stream ended {got['state']},"
                f" sequential replay ended {want_state}"
                f" ({shards} shards, {len(stream)} entries interleaved)"
            )
            want_result = reference.case_result(case)
            want_digest = (
                canonical_digest(want_result)
                if want_result is not None
                else None
            )
            assert got["digest"] == want_digest, (
                f"case {case} diverged: sharded digest != sequential digest"
                f" ({shards} shards)"
            )

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=15, deadline=None)
    def test_shard_count_never_changes_case_ownership_semantics(
        self, shards_a, shards_b
    ):
        """The same stream through different shard counts agrees case by
        case (final states are a pure function of per-case entries)."""
        registry = process_registry()
        hierarchy = role_hierarchy()
        stream = list(_WORKLOAD.trail)

        outcomes = []
        for shards in (shards_a, shards_b):
            router = ShardRouter(
                registry,
                hierarchy=hierarchy,
                config=ServeConfig(shards=shards),
            )
            router.start()
            try:
                for entry in stream:
                    router.submit(entry)
                assert router.wait_idle(timeout=60)
                outcomes.append(
                    {
                        case: (info["state"], info["digest"])
                        for case, info in router.results().items()
                    }
                )
            finally:
                router.drain()
        first, second = outcomes
        for case in first:
            assert first[case] == second[case], (
                f"case {case} diverged between {shards_a} and "
                f"{shards_b} shards"
            )
