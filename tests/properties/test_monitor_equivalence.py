"""Property: the streaming monitor and the batch auditor agree.

Feeding a trail entry-by-entry through :class:`OnlineMonitor` must flag
exactly the cases the batch :class:`PurposeControlAuditor` flags — the
incremental replay is the same Algorithm 1 (Section 4's resumable mode).
"""

from hypothesis import given, settings, strategies as st

from repro.core import OnlineMonitor, PurposeControlAuditor
from repro.scenarios import hospital_day, process_registry, role_hierarchy


@st.composite
def day_parameters(draw):
    return (
        draw(st.integers(min_value=1, max_value=10)),  # cases
        draw(st.floats(min_value=0.0, max_value=0.9)),  # violation rate
        draw(st.integers(min_value=0, max_value=10_000)),  # seed
    )


class TestMonitorBatchEquivalence:
    @given(day_parameters())
    @settings(max_examples=12, deadline=None)
    def test_flagged_cases_agree(self, params):
        n_cases, rate, seed = params
        workload = hospital_day(n_cases=n_cases, violation_rate=rate, seed=seed)
        registry = process_registry()
        hierarchy = role_hierarchy()

        auditor = PurposeControlAuditor(registry, hierarchy=hierarchy)
        batch_flagged = set(auditor.audit(workload.trail).infringing_cases)

        monitor = OnlineMonitor(registry, hierarchy=hierarchy)
        for entry in workload.trail:
            monitor.observe(entry)
        stream_flagged = set(monitor.infringing_cases())

        assert batch_flagged == stream_flagged
        assert stream_flagged == {
            case for case, ok in workload.ground_truth.items() if not ok
        }

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_interleaved_delivery_order_is_irrelevant(self, seed):
        """Entries arrive globally time-ordered but case-interleaved; the
        per-case sessions must not be confused by interleaving."""
        workload = hospital_day(n_cases=4, violation_rate=0.3, seed=seed)
        registry = process_registry()
        hierarchy = role_hierarchy()

        interleaved = OnlineMonitor(registry, hierarchy=hierarchy)
        for entry in workload.trail:
            interleaved.observe(entry)

        grouped = OnlineMonitor(registry, hierarchy=hierarchy)
        for case in workload.trail.cases():
            for entry in workload.trail.for_case(case):
                grouped.observe(entry)

        assert set(interleaved.infringing_cases()) == set(
            grouped.infringing_cases()
        )
