"""Integration tests reproducing the paper's worked scenario:

* E4 — the verdicts on every case of the Fig. 4 audit trail;
* E6 — the structure of the transition system Algorithm 1 visits while
  replaying HT-1 (Fig. 6): the observable steps taken and the active-task
  sets along the way.
"""

import pytest

from repro.bpmn import encode
from repro.core import (
    ABSORBED,
    ERROR_TRANSITION,
    TASK_TRANSITION,
    ComplianceChecker,
)
from repro.scenarios import (
    clinical_trial_process,
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
)


@pytest.fixture(scope="module")
def ht_checker():
    return ComplianceChecker(
        encode(healthcare_treatment_process()), role_hierarchy()
    )


@pytest.fixture(scope="module")
def ct_checker():
    return ComplianceChecker(encode(clinical_trial_process()), role_hierarchy())


@pytest.fixture(scope="module")
def trail():
    return paper_audit_trail()


class TestE4Verdicts:
    """Every case of Fig. 4, with the verdict the paper derives."""

    def test_ht1_is_a_valid_execution(self, ht_checker, trail):
        result = ht_checker.check(trail.for_case("HT-1"))
        assert result.compliant
        assert result.accepted_prefix_length == 16

    def test_ht1_finishes_the_process(self, ht_checker, trail):
        result = ht_checker.check(trail.for_case("HT-1"))
        # After T04 and the end event nothing more can happen in HT-1's
        # GP thread; residual configurations may only await dead branches.
        assert result.compliant

    def test_ht2_is_a_valid_open_prefix(self, ht_checker, trail):
        result = ht_checker.check(trail.for_case("HT-2"))
        assert result.compliant
        assert result.may_continue  # "analysis should be resumed" (Section 4)

    @pytest.mark.parametrize(
        "case", ["HT-10", "HT-11", "HT-20", "HT-21", "HT-30"]
    )
    def test_harvested_cases_detected(self, ht_checker, trail, case):
        """The cardiologist's EPR harvesting: every fake treatment case is
        rejected at its very first entry."""
        result = ht_checker.check(trail.for_case(case))
        assert not result.compliant
        assert result.failed_index == 0
        assert result.failed_entry.task == "T06"

    def test_ct1_is_a_valid_clinical_trial(self, ct_checker, trail):
        result = ct_checker.check(trail.for_case("CT-1"))
        assert result.compliant

    def test_ct1_repeated_measurements_absorbed_or_looped(self, ct_checker, trail):
        result = ct_checker.check(trail.for_case("CT-1"))
        t94_steps = [s for s in result.steps if s.entry.task == "T94"]
        assert len(t94_steps) == 2
        assert t94_steps[0].outcome == TASK_TRANSITION

    def test_ht1_trail_against_ct_process_fails(self, ct_checker, trail):
        """Cross-check: a treatment trail is not a clinical-trial run."""
        assert not ct_checker.check(trail.for_case("HT-1")).compliant


class TestE6ReplayStructure:
    """The Fig. 6 walk: outcomes and active-task sets along HT-1."""

    @pytest.fixture(scope="class")
    def steps(self, ht_checker, trail):
        return ht_checker.check(trail.for_case("HT-1")).steps

    def test_step_outcomes_match_fig6(self, steps):
        expected = [
            ("T01", TASK_TRANSITION),   # St1 -GP.T01-> St2
            ("T02", TASK_TRANSITION),   # St2 -GP.T02-> St3
            ("T02", ERROR_TRANSITION),  # St3 -sys.Err-> St4
            ("T01", TASK_TRANSITION),   # St4 -GP.T01-> St2'
            ("T05", TASK_TRANSITION),
            ("T06", TASK_TRANSITION),
            ("T09", TASK_TRANSITION),
            ("T10", TASK_TRANSITION),
            ("T11", TASK_TRANSITION),
            ("T12", TASK_TRANSITION),
            ("T06", TASK_TRANSITION),
            ("T07", TASK_TRANSITION),
            ("T01", TASK_TRANSITION),
            ("T02", TASK_TRANSITION),
            ("T03", TASK_TRANSITION),
            ("T04", TASK_TRANSITION),
        ]
        observed = [(s.entry.task, s.outcome) for s in steps]
        assert observed == expected

    def test_frontier_never_empty_and_bounded(self, steps):
        for step in steps:
            assert 1 <= step.frontier_size <= 16

    def test_branching_after_t09(self, steps):
        """Fig. 6: after C.T09 both St10 (scans only) and St11 (both
        ordered) remain possible — the frontier holds >1 configuration."""
        t09_step = steps[6]
        assert t09_step.entry.task == "T09"
        assert t09_step.frontier_size >= 2

    def test_session_active_tasks_track_fig6(self, ht_checker, trail):
        session = ht_checker.session()
        entries = list(trail.for_case("HT-1"))
        session.feed(entries[0])  # GP.T01 -> St2
        assert any(
            ("GP", "T01") in conf.active for conf in session.frontier
        )
        session.feed(entries[1])  # GP.T02 -> St3
        assert any(
            ("GP", "T02") in conf.active for conf in session.frontier
        )
        session.feed(entries[2])  # failure -> St4 (empty)
        assert any(conf.active == frozenset() for conf in session.frontier)

    def test_absorption_in_ht1_variant(self, ht_checker, trail):
        """Multiple actions within one task absorb without state change:
        duplicate the first T01 read and replay."""
        entries = list(trail.for_case("HT-1"))
        duplicated = [entries[0], entries[0].shifted(__import__("datetime").timedelta(seconds=30)), *entries[1:]]
        result = ht_checker.check(duplicated)
        assert result.compliant
        assert result.steps[1].outcome == ABSORBED


class TestMimicryResistance:
    """Section 4's closing discussion: mimicry attacks."""

    def test_single_user_cannot_simulate_the_whole_process(self, ht_checker, trail):
        """Replaying HT-1 but with Bob performing every entry fails at the
        first task outside his role's pools."""
        from dataclasses import replace

        entries = [
            replace(e, user="Bob", role="Cardiologist")
            for e in trail.for_case("HT-1")
        ]
        result = ht_checker.check(entries)
        assert not result.compliant
        assert result.failed_entry.task == "T01"  # a GP task

    def test_colluding_users_with_valid_roles_succeed(self, ht_checker, trail):
        """The paper: a mimicry attack requires collusion across roles —
        with the right roles the replay does pass (and that is exactly the
        residual risk the paper acknowledges)."""
        assert ht_checker.check(trail.for_case("HT-1")).compliant

    def test_reusing_a_closed_case_fails(self, ht_checker, trail):
        """Appending a fresh T06 access to the *completed* HT-1 trail is
        rejected: the process instance offers no further T06."""
        entries = list(trail.for_case("HT-1"))
        extra = entries[6].shifted(__import__("datetime").timedelta(days=30))
        result = ht_checker.check([*entries, extra])
        assert not result.compliant
        assert result.failed_index == 16
