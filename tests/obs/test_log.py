"""Tests for structured JSON-lines event logging."""

import json

from repro.obs.log import (
    ARTIFACT_INVALID,
    AUTOMATON_CHECKPOINT,
    AUTOMATON_COMPILED,
    AUTOMATON_TABLE_COMPILED,
    CASE_AUDITED,
    CASE_FAILED,
    CASE_QUARANTINED,
    CONTROL_CONFIG_LOADED,
    CONTROL_DISMISS,
    CONTROL_REAUDIT,
    CONTROL_REQUEUE,
    ENTRY_QUARANTINED,
    ENTRY_REPLAYED,
    EVENT_VOCABULARY,
    FRONTIER_GROWN,
    INFRINGEMENT_RAISED,
    LINT_RUN,
    MONITOR_SWEEP,
    NULL_EVENTS,
    PREFLIGHT_UNSOUND,
    SERVE_CLIENT,
    SERVE_DRAINED,
    SERVE_FLUSH,
    SERVE_OVERLOAD,
    SERVE_RECOVERED,
    SERVE_SHARD_REASSIGNED,
    SERVE_SHARD_RESTARTED,
    SERVE_STARTED,
    SERVE_WAL_COMMIT,
    SERVE_WAL_RETIRED,
    WEAKNEXT_COMPUTED,
    WORKER_INIT,
    WORKER_LOST,
    MemoryEventLog,
    json_lines_logger,
)


class TestVocabulary:
    def test_all_documented_events_present(self):
        assert EVENT_VOCABULARY == {
            ARTIFACT_INVALID,
            AUTOMATON_CHECKPOINT,
            AUTOMATON_COMPILED,
            AUTOMATON_TABLE_COMPILED,
            CASE_AUDITED,
            CASE_FAILED,
            CASE_QUARANTINED,
            CONTROL_CONFIG_LOADED,
            CONTROL_DISMISS,
            CONTROL_REAUDIT,
            CONTROL_REQUEUE,
            ENTRY_QUARANTINED,
            ENTRY_REPLAYED,
            WEAKNEXT_COMPUTED,
            FRONTIER_GROWN,
            INFRINGEMENT_RAISED,
            LINT_RUN,
            MONITOR_SWEEP,
            PREFLIGHT_UNSOUND,
            SERVE_CLIENT,
            SERVE_DRAINED,
            SERVE_FLUSH,
            SERVE_OVERLOAD,
            SERVE_RECOVERED,
            SERVE_SHARD_REASSIGNED,
            SERVE_SHARD_RESTARTED,
            SERVE_STARTED,
            SERVE_WAL_COMMIT,
            SERVE_WAL_RETIRED,
            WORKER_INIT,
            WORKER_LOST,
        }


class TestJsonLines:
    def test_one_json_object_per_line(self):
        log = MemoryEventLog()
        log.events.emit(CASE_AUDITED, case="HT-1", outcome="compliant")
        log.events.emit(
            INFRINGEMENT_RAISED, case="HT-11", kind="invalid-execution"
        )
        records = log.records()
        assert len(records) == 2
        assert records[0]["event"] == CASE_AUDITED
        assert records[0]["case"] == "HT-1"
        assert records[1]["kind"] == "invalid-execution"
        assert all("ts" in r for r in records)

    def test_non_json_field_values_are_stringified(self):
        log = MemoryEventLog()
        log.events.emit(CASE_AUDITED, value={1, 2})  # sets are not JSON
        assert isinstance(log.records()[0]["value"], str)

    def test_named_filter(self):
        log = MemoryEventLog()
        log.events.emit(CASE_AUDITED, case="a")
        log.events.emit(MONITOR_SWEEP, checked=0)
        assert len(log.named(CASE_AUDITED)) == 1

    def test_file_destination(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = json_lines_logger(path, name="repro.obs.test_file")
        events.emit(WORKER_INIT, pid=1234, purposes=["treatment"])
        lines = path.read_text().strip().splitlines()
        record = json.loads(lines[0])
        assert record["event"] == WORKER_INIT
        assert record["purposes"] == ["treatment"]

    def test_reconfiguring_replaces_handler(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        name = "repro.obs.test_replace"
        json_lines_logger(first, name=name)
        events = json_lines_logger(second, name=name)
        events.emit(CASE_AUDITED, case="x")
        assert first.read_text() == ""  # no duplicate delivery
        assert json.loads(second.read_text())["case"] == "x"


class TestNullEvents:
    def test_emit_is_noop(self):
        NULL_EVENTS.emit(CASE_AUDITED, case="HT-1")
        assert not NULL_EVENTS.enabled
