"""Unit tests for the metrics instruments and registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    set_default_registry,
    timed,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests_total")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = Counter("infringements_total")
        counter.inc(kind="invalid-execution")
        counter.inc(3, kind="unknown-purpose")
        assert counter.value(kind="invalid-execution") == 1
        assert counter.value(kind="unknown-purpose") == 3
        assert counter.value(kind="other") == 0
        assert counter.total == 4

    def test_label_order_is_canonical(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2

    def test_counters_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("open_cases")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_labels(self):
        gauge = Gauge("monitor_cases")
        gauge.set(3, state="open")
        gauge.set(1, state="infringing")
        gauge.dec(state="open")
        assert gauge.value(state="open") == 2
        assert gauge.value(state="infringing") == 1


class TestHistogram:
    def test_count_sum_max(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == 555.5
        assert histogram.summary()["max"] == 500.0

    def test_bucket_assignment_is_cumulative_at_export(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(2.0)
        histogram.observe(99.0)  # +Inf bucket
        data = histogram.samples()[()]
        assert data["buckets"] == [1, 1, 1]

    def test_quantiles_are_bucket_interpolated(self):
        histogram = Histogram("h", buckets=(10.0, 20.0, 30.0))
        for _ in range(10):
            histogram.observe(5.0)   # all in the first bucket
        # p50 = rank 5 of 10 inside (0, 10] -> 5.0 by linear interpolation
        assert histogram.quantile(0.5) == pytest.approx(5.0)
        assert histogram.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram("h").quantile(0.95) == 0.0

    def test_summary_shape(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        summary = histogram.summary()
        assert set(summary) == {"count", "sum", "p50", "p95", "p99", "max"}
        assert summary["count"] == 1

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_timed_context_manager_observes_duration(self):
        histogram = Histogram("h")
        with timed(histogram):
            pass
        assert histogram.count() == 1
        assert histogram.sum() >= 0.0

    def test_histogram_time_method(self):
        histogram = Histogram("h")
        with histogram.time(op="x"):
            pass
        assert histogram.count(op="x") == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_clash_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_collect_preserves_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert [i.name for i in registry.collect()] == ["b", "a"]

    def test_merge_adds_counters_and_histograms(self):
        source = MetricsRegistry()
        source.counter("c").inc(2, kind="x")
        h = source.histogram("h", buckets=DEFAULT_SIZE_BUCKETS)
        h.observe(3)
        h.observe(700)
        target = MetricsRegistry()
        target.counter("c").inc(kind="x")
        target.merge(source.snapshot())
        target.merge(source.snapshot())
        assert target.counter("c").value(kind="x") == 5
        merged = target.histogram("h", buckets=DEFAULT_SIZE_BUCKETS)
        assert merged.count() == 4
        assert merged.summary()["max"] == 700

    def test_merge_gauges_take_last_value(self):
        source = MetricsRegistry()
        source.gauge("g").set(7)
        target = MetricsRegistry()
        target.gauge("g").set(3)
        target.merge(source.snapshot())
        assert target.gauge("g").value() == 7

    def test_labeled_histogram_snapshot_merge_round_trip(self):
        """Worker hand-back on a multi-series histogram: every labeled
        series must survive snapshot → pickle → merge with its bucket
        counts, sum, max, and exemplars intact."""
        import pickle

        worker = MetricsRegistry()
        latency = worker.histogram(
            "lat_seconds", "per-shard latency", buckets=(0.001, 0.01, 0.1)
        )
        for value in (0.0005, 0.005, 0.05):
            latency.observe(value, shard="shard-0")
        latency.observe(0.02, shard="shard-1")
        latency.observe_with_exemplar(
            0.09, "ab" * 16, "cd" * 8, shard="shard-1"
        )

        parent = MetricsRegistry()
        parent.histogram(
            "lat_seconds", "per-shard latency", buckets=(0.001, 0.01, 0.1)
        ).observe(0.002, shard="shard-0")
        parent.merge(pickle.loads(pickle.dumps(worker.snapshot())))

        merged = parent.get("lat_seconds")
        samples = merged.samples()
        zero = samples[(("shard", "shard-0"),)]
        one = samples[(("shard", "shard-1"),)]
        assert zero["count"] == 4  # 3 from the worker + 1 local
        assert zero["sum"] == pytest.approx(0.0005 + 0.005 + 0.05 + 0.002)
        # buckets are per-bin (cumulated at export): [<=1ms, <=10ms, <=100ms, +Inf]
        assert zero["buckets"] == [1, 2, 1, 0]
        assert one["count"] == 2
        assert one["max"] == pytest.approx(0.09)
        exemplar = one["exemplars"][2]  # 0.09 lands in the <=0.1 bin
        assert exemplar["trace_id"] == "ab" * 16
        assert exemplar["span_id"] == "cd" * 8

    def test_merging_into_an_empty_registry_recreates_the_layout(self):
        worker = MetricsRegistry()
        worker.histogram(
            "h", "custom bins", buckets=(1.0, 2.0)
        ).observe(1.5, kind="a")
        parent = MetricsRegistry()
        parent.merge(worker.snapshot())
        rebuilt = parent.get("h")
        assert rebuilt.buckets == (1.0, 2.0)
        assert rebuilt.help == "custom bins"
        assert rebuilt.summary(kind="a")["count"] == 1

    def test_merge_rejects_mismatched_bucket_layouts(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 2.0, 3.0)).observe(1.5)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket layout mismatch"):
            parent.merge(worker.snapshot())

    def test_repeated_merges_keep_the_latest_exemplar(self):
        def snapshot_with_exemplar(trace_id, ts_offset):
            registry = MetricsRegistry()
            histogram = registry.histogram("h", buckets=(1.0,))
            histogram.observe_with_exemplar(0.5, trace_id, "cd" * 8)
            dump = registry.snapshot()
            for data in dump["h"]["samples"].values():
                for exemplar in data["exemplars"].values():
                    exemplar["ts"] += ts_offset
            return dump

        parent = MetricsRegistry()
        parent.merge(snapshot_with_exemplar("aa" * 16, ts_offset=100.0))
        parent.merge(snapshot_with_exemplar("bb" * 16, ts_offset=0.0))
        samples = parent.get("h").samples()
        exemplar = samples[()]["exemplars"][0]
        assert exemplar["trace_id"] == "aa" * 16  # newer ts wins
        assert samples[()]["count"] == 2  # counts still add

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert default_registry() is fresh
        finally:
            set_default_registry(previous)


class TestNullRegistry:
    def test_shared_noop_instruments(self):
        registry = NullRegistry()
        counter = registry.counter("anything")
        assert counter is registry.counter("other")  # shared singleton
        counter.inc()
        counter.inc(5, kind="x")
        assert counter.value() == 0.0
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.inc()
        assert gauge.value() == 0.0
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        with histogram.time():
            pass
        assert histogram.count() == 0
        assert registry.collect() == []
        assert registry.snapshot() == {}
        assert not registry.enabled

    def test_timed_on_null_histogram_never_reads_clock(self, monkeypatch):
        import repro.obs.metrics as metrics_module

        def boom():  # pragma: no cover - should never run
            raise AssertionError("perf_counter read on the disabled path")

        monkeypatch.setattr(metrics_module.time, "perf_counter", boom)
        with timed(NULL_REGISTRY.histogram("h")):
            pass
