"""Tests for the Prometheus and JSON exporters and the stats summary."""

import json

from repro.obs import (
    MetricsRegistry,
    dumps_json,
    format_summary,
    to_json,
    to_prometheus,
)


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("cases_audited_total", "cases").inc(8)
    infringements = registry.counter("infringements_total", "by kind")
    infringements.inc(5, kind="invalid-execution")
    infringements.inc(kind="unknown-purpose")
    registry.gauge("monitor_cases", "by state").set(3, state="open")
    histogram = registry.histogram(
        "replay_seconds", "latency", buckets=(0.001, 0.1, 1.0)
    )
    for value in (0.0005, 0.05, 0.5):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_headers_and_samples(self):
        text = to_prometheus(sample_registry())
        assert "# HELP cases_audited_total cases" in text
        assert "# TYPE cases_audited_total counter" in text
        assert "cases_audited_total 8" in text
        assert 'infringements_total{kind="invalid-execution"} 5' in text
        assert 'monitor_cases{state="open"} 3' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_prometheus(sample_registry())
        assert 'replay_seconds_bucket{le="0.001"} 1' in text
        assert 'replay_seconds_bucket{le="0.1"} 2' in text
        assert 'replay_seconds_bucket{le="1"} 3' in text
        assert 'replay_seconds_bucket{le="+Inf"} 3' in text
        assert "replay_seconds_count 3" in text
        assert "replay_seconds_sum" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(detail='say "hi"\nthere')
        text = to_prometheus(registry)
        assert '\\"hi\\"' in text and "\\n" in text


class TestJsonSnapshot:
    def test_counter_and_gauge_values(self):
        snapshot = to_json(sample_registry())
        assert snapshot["cases_audited_total"]["type"] == "counter"
        assert snapshot["cases_audited_total"]["values"] == [
            {"labels": {}, "value": 8.0}
        ]
        kinds = {
            entry["labels"]["kind"]: entry["value"]
            for entry in snapshot["infringements_total"]["values"]
        }
        assert kinds == {"invalid-execution": 5.0, "unknown-purpose": 1.0}

    def test_histogram_series(self):
        snapshot = to_json(sample_registry())
        series = snapshot["replay_seconds"]["series"][0]
        assert series["count"] == 3
        assert series["max"] == 0.5
        assert series["buckets"]["0.001"] == 1
        assert series["buckets"]["+Inf"] == 0
        assert 0 < series["p50"] <= 0.1

    def test_dumps_is_valid_json(self):
        parsed = json.loads(dumps_json(sample_registry()))
        assert "replay_seconds" in parsed


class TestSummary:
    def test_human_readable_digest(self):
        text = format_summary(sample_registry())
        assert "cases_audited_total" in text
        assert "kind=invalid-execution" in text
        assert "p95=" in text

    def test_empty_registry(self):
        assert "no metrics" in format_summary(MetricsRegistry())
