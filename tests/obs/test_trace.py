"""Tests for span tracing."""

import json

from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


class TestTracer:
    def test_spans_nest_into_trees(self):
        tracer = Tracer()
        with tracer.span("audit", trail="day.xes"):
            with tracer.span("replay", case="HT-1"):
                with tracer.span("weaknext"):
                    pass
            with tracer.span("replay", case="HT-2"):
                pass
        roots = tracer.roots
        assert len(roots) == 1
        audit = roots[0]
        assert audit.name == "audit"
        assert [c.name for c in audit.children] == ["replay", "replay"]
        assert audit.children[0].children[0].name == "weaknext"
        assert audit.children[0].attrs == {"case": "HT-1"}

    def test_durations_are_non_negative_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0
        assert inner.start >= outer.start

    def test_to_json_shape(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            pass
        tree = tracer.to_json()[0]
        assert tree["name"] == "a"
        assert tree["attrs"] == {"k": "v"}
        assert "duration_s" in tree and "start_s" in tree

    def test_chrome_trace_is_flat_and_loadable(self):
        tracer = Tracer()
        with tracer.span("audit"):
            with tracer.span("replay", case="HT-1"):
                pass
        events = json.loads(tracer.dumps("chrome"))
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid"}
        assert events[1]["args"] == {"case": "HT-1"}

    def test_sequential_roots_accumulate(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert [r.name for r in tracer.roots] == ["one", "two"]


class TestNullTracer:
    def test_noop_span_and_exports(self):
        tracer = NullTracer()
        with tracer.span("anything", case="HT-1") as span:
            assert span is None
        assert tracer.roots == []
        assert tracer.to_json() == []
        assert tracer.to_chrome_trace() == []
        assert tracer.dumps() == "[]"
        assert not tracer.enabled

    def test_shared_context_manager(self):
        # the null span context is reusable (no allocation per span)
        first = NULL_TRACER.span("a")
        second = NULL_TRACER.span("b")
        assert first is second
