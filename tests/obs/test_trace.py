"""Tests for span tracing."""

import json
import re
import time

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceContext,
    Tracer,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)


class TestTracer:
    def test_spans_nest_into_trees(self):
        tracer = Tracer()
        with tracer.span("audit", trail="day.xes"):
            with tracer.span("replay", case="HT-1"):
                with tracer.span("weaknext"):
                    pass
            with tracer.span("replay", case="HT-2"):
                pass
        roots = tracer.roots
        assert len(roots) == 1
        audit = roots[0]
        assert audit.name == "audit"
        assert [c.name for c in audit.children] == ["replay", "replay"]
        assert audit.children[0].children[0].name == "weaknext"
        assert audit.children[0].attrs == {"case": "HT-1"}

    def test_durations_are_non_negative_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0
        assert inner.start >= outer.start

    def test_to_json_shape(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            pass
        tree = tracer.to_json()[0]
        assert tree["name"] == "a"
        assert tree["attrs"] == {"k": "v"}
        assert "duration_s" in tree and "start_s" in tree

    def test_chrome_trace_is_flat_and_loadable(self):
        tracer = Tracer()
        with tracer.span("audit"):
            with tracer.span("replay", case="HT-1"):
                pass
        events = json.loads(tracer.dumps("chrome"))
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid"}
        assert events[1]["args"] == {"case": "HT-1"}

    def test_sequential_roots_accumulate(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert [r.name for r in tracer.roots] == ["one", "two"]


class TestTraceContext:
    def test_minted_ids_are_hex_of_the_right_width(self):
        assert re.fullmatch(r"[0-9a-f]{32}", new_trace_id())
        assert re.fullmatch(r"[0-9a-f]{16}", new_span_id())
        assert new_trace_id() != new_trace_id()

    def test_traceparent_round_trip(self):
        context = TraceContext.new()
        header = context.to_traceparent()
        assert re.fullmatch(
            r"00-[0-9a-f]{32}-[0-9a-f]{16}-01", header
        )
        assert parse_traceparent(header) == context

    def test_malformed_traceparents_are_none(self):
        good = TraceContext.new().to_traceparent()
        assert parse_traceparent(good.upper()) is not None  # tolerant case
        for bad in (
            None,
            123,
            "",
            "not-a-header",
            "00-xyz-abc-01",
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            good + "-extra",
        ):
            assert parse_traceparent(bad) is None

    def test_spans_carry_ids_and_inherit_the_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert re.fullmatch(r"[0-9a-f]{32}", outer.trace_id)
            assert tracer.current_context() == outer.context
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert tracer.current_context() is None

    def test_remote_parent_is_adopted(self):
        tracer = Tracer()
        remote = TraceContext.new()
        with tracer.span("serve.ingest", parent=remote) as span:
            assert span.trace_id == remote.trace_id
            assert span.parent_id == remote.span_id
        payload = tracer.roots[0].to_dict()
        assert payload["trace_id"] == remote.trace_id
        assert payload["parent_span_id"] == remote.span_id

    def test_links_survive_to_dict(self):
        tracer = Tracer()
        other = TraceContext.new()
        with tracer.span("store.flush", links=(other,)):
            pass
        payload = tracer.roots[0].to_dict()
        assert payload["links"] == [
            {"trace_id": other.trace_id, "span_id": other.span_id}
        ]

    def test_record_span_adopts_external_timing(self):
        tracer = Tracer()
        root = TraceContext.new()
        start = tracer.epoch_unix_s + 1.5
        span = tracer.record_span(
            "audit.case", start, 0.25, parent=root, case="HT-1"
        )
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id
        assert span.start == 1.5
        assert span.duration == 0.25
        assert span in tracer.roots

    def test_record_span_can_pin_its_own_context(self):
        tracer = Tracer()
        pinned = TraceContext.new()
        span = tracer.record_span("audit.parallel", 0.0, 1.0, context=pinned)
        assert span.context == pinned

    def test_wall_clock_anchor_tracks_time_time(self):
        tracer = Tracer()
        assert abs(tracer.epoch_unix_s - time.time()) < 60.0


class TestNullTracer:
    def test_noop_span_and_exports(self):
        tracer = NullTracer()
        with tracer.span("anything", case="HT-1") as span:
            assert span is None
        assert tracer.roots == []
        assert tracer.to_json() == []
        assert tracer.to_chrome_trace() == []
        assert tracer.dumps() == "[]"
        assert not tracer.enabled

    def test_shared_context_manager(self):
        # the null span context is reusable (no allocation per span)
        first = NULL_TRACER.span("a")
        second = NULL_TRACER.span("b")
        assert first is second

    def test_trace_context_paths_never_read_clock_or_entropy(
        self, monkeypatch
    ):
        import repro.obs.trace as trace_module

        def boom(*args):  # pragma: no cover - should never run
            raise AssertionError("clock/entropy read on the disabled path")

        monkeypatch.setattr(trace_module.time, "perf_counter", boom)
        monkeypatch.setattr(trace_module.time, "time", boom)
        monkeypatch.setattr(trace_module.os, "urandom", boom)
        parent = TraceContext("ab" * 16, "cd" * 8)
        with NULL_TRACER.span("x", parent=parent, links=(parent,)):
            pass
        assert NULL_TRACER.current_context() is None
        assert NULL_TRACER.record_span("y", 0.0, 0.0, parent=parent) is None
        assert NULL_TRACER.epoch_unix_s == 0.0
