"""Integration: auditing the paper's healthcare scenario emits telemetry.

Asserts the acceptance criteria of the observability issue: the full
pipeline populates the canonical counters/histograms, the WeakNext cache
shows a miss-then-hit profile across replayed cases, and the default
(disabled) path is zero-cost by construction — every instrument bound by
the pipeline is the shared no-op singleton.
"""

import pytest

from repro.core import OnlineMonitor, PurposeControlAuditor
from repro.core.compliance import ComplianceChecker
from repro.obs import (
    CASE_AUDITED,
    ENTRY_REPLAYED,
    INFRINGEMENT_RAISED,
    MONITOR_SWEEP,
    NULL_TELEMETRY,
    WEAKNEXT_COMPUTED,
    MemoryEventLog,
    Telemetry,
    Tracer,
)
from repro.obs.metrics import NullCounter, NullHistogram
from repro.scenarios import (
    healthcare_treatment_process,
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)


@pytest.fixture
def telemetry():
    return Telemetry.create(events=MemoryEventLog().events, tracer=Tracer())


class TestAuditTelemetry:
    def test_healthcare_audit_populates_canonical_metrics(self, telemetry):
        auditor = PurposeControlAuditor(
            process_registry(),
            hierarchy=role_hierarchy(),
            telemetry=telemetry,
        )
        trail = paper_audit_trail()
        report = auditor.audit(trail)
        registry = telemetry.registry

        assert registry.counter("cases_audited_total").total == len(report.cases)
        assert registry.counter("infringements_total").value(
            kind="invalid-execution"
        ) == len(report.infringements)

        entries = registry.counter("replay_entries_total")
        assert entries.total == len(trail)
        assert entries.value(outcome="task") > 0
        assert entries.value(outcome="rejected") > 0

        # the lazily-explored LTS: fresh computations AND memo hits,
        # because cases of the same purpose share the WeakNext cache
        misses = registry.counter("weaknext_cache_misses_total").total
        hits = registry.counter("weaknext_cache_hits_total").total
        assert misses >= 1
        assert hits >= 1

        replay_seconds = registry.histogram("replay_seconds")
        assert replay_seconds.count() == len(trail)
        assert replay_seconds.sum() > 0.0
        assert registry.histogram("audit_case_seconds").count() == len(
            report.cases
        )

    def test_events_carry_the_documented_vocabulary(self, telemetry):
        log_records = telemetry.events  # MemoryEventLog's EventLogger
        auditor = PurposeControlAuditor(
            process_registry(), hierarchy=role_hierarchy(), telemetry=telemetry
        )
        auditor.audit(paper_audit_trail())
        # reach back into the memory sink through the logger's handler
        import json

        handler = log_records.logger.handlers[0]
        lines = handler.stream.getvalue().splitlines()
        events = [json.loads(line)["event"] for line in lines]
        assert events.count(CASE_AUDITED) == 8
        assert ENTRY_REPLAYED in events
        assert WEAKNEXT_COMPUTED in events
        assert INFRINGEMENT_RAISED in events
        audited = [
            json.loads(line)
            for line in lines
            if json.loads(line)["event"] == CASE_AUDITED
        ]
        assert {"case", "purpose", "outcome", "entries", "duration_s"} <= set(
            audited[0]
        )

    def test_trace_tree_nests_audit_over_replay(self, telemetry):
        auditor = PurposeControlAuditor(
            process_registry(), hierarchy=role_hierarchy(), telemetry=telemetry
        )
        auditor.audit(paper_audit_trail())
        roots = telemetry.tracer.roots
        assert [r.name for r in roots] == ["audit"]
        case_spans = roots[0].children
        assert {span.name for span in case_spans} == {"audit_case"}
        assert any(
            child.name == "replay"
            for span in case_spans
            for child in span.children
        )

    def test_shared_checker_cache_hits_across_cases(self):
        telemetry = Telemetry.create()
        checker = ComplianceChecker(
            process_registry().encoded_for("treatment"),
            hierarchy=role_hierarchy(),
            telemetry=telemetry,
        )
        trail = paper_audit_trail()
        checker.check(trail.for_case("HT-1"))
        misses_first = telemetry.registry.counter(
            "weaknext_cache_misses_total"
        ).total
        checker.check(trail.for_case("HT-2"))
        hits = telemetry.registry.counter("weaknext_cache_hits_total").total
        assert misses_first >= 1
        assert hits >= 1  # the second case rides the first case's cache


class TestMonitorTelemetry:
    def test_gauges_track_case_states(self, telemetry):
        monitor = OnlineMonitor(
            process_registry(), hierarchy=role_hierarchy(), telemetry=telemetry
        )
        for entry in paper_audit_trail():
            monitor.observe(entry)
        gauge = telemetry.registry.gauge("monitor_cases")
        statistics = monitor.statistics()
        for state in ("open", "completed", "infringing"):
            assert gauge.value(state=state) == statistics[state]
        assert (
            telemetry.registry.counter("monitor_entries_total").total
            == statistics["entries"]
        )

    def test_sweep_is_timed_and_evented(self, telemetry):
        from datetime import datetime, timedelta
        from repro.core import TemporalConstraints

        monitor = OnlineMonitor(
            process_registry(),
            hierarchy=role_hierarchy(),
            temporal={
                "treatment": TemporalConstraints(
                    max_case_duration=timedelta(days=1)
                )
            },
            telemetry=telemetry,
        )
        for entry in paper_audit_trail():
            monitor.observe(entry)
        monitor.sweep(datetime(2031, 1, 1))
        assert telemetry.registry.histogram("monitor_sweep_seconds").count() == 1
        import json

        handler = telemetry.events.logger.handlers[0]
        sweeps = [
            json.loads(line)
            for line in handler.stream.getvalue().splitlines()
            if json.loads(line)["event"] == MONITOR_SWEEP
        ]
        assert len(sweeps) == 1
        assert {"checked", "violations", "duration_s"} <= set(sweeps[0])


class TestDisabledPathIsZeroCost:
    """The library default must not observe, lock, or read clocks.

    Rather than a flaky timing assertion, we verify the structural
    guarantee: with no telemetry argument every pre-bound instrument IS
    the shared no-op singleton (empty method bodies), and the session's
    telemetry bundle is the shared disabled bundle.  The measured
    overhead is tracked by ``benchmarks/bench_telemetry.py``.
    """

    def test_default_auditor_binds_null_instruments(self):
        auditor = PurposeControlAuditor(
            process_registry(), hierarchy=role_hierarchy()
        )
        assert auditor._tel is NULL_TELEMETRY
        assert isinstance(auditor._m_cases, NullCounter)
        assert isinstance(auditor._m_case_seconds, NullHistogram)

    def test_default_checker_and_session_bind_null_instruments(self):
        checker = ComplianceChecker(
            process_registry().encoded_for("treatment")
        )
        session = checker.session()
        assert session._tel is NULL_TELEMETRY
        assert isinstance(session._m_entries, NullCounter)
        assert isinstance(session._m_seconds, NullHistogram)
        engine = checker.engine
        assert isinstance(engine._m_hits, NullCounter)
        assert isinstance(engine._m_silent, NullHistogram)

    def test_disabled_audit_still_produces_identical_verdicts(self):
        trail = paper_audit_trail()
        plain = PurposeControlAuditor(
            process_registry(), hierarchy=role_hierarchy()
        ).audit(trail)
        instrumented = PurposeControlAuditor(
            process_registry(),
            hierarchy=role_hierarchy(),
            telemetry=Telemetry.create(),
        ).audit(trail)
        assert {
            case: result.compliant for case, result in plain.cases.items()
        } == {
            case: result.compliant
            for case, result in instrumented.cases.items()
        }

    def test_checker_telemetry_default_uses_healthcare_process(self):
        from repro.bpmn.encode import encode

        checker = ComplianceChecker(encode(healthcare_treatment_process()))
        result = checker.check(paper_audit_trail().for_case("HT-1"))
        assert result.compliant
