"""OTLP/JSON export schema checks and operator-console rendering.

The exporter is stdlib-only, so these tests pin the protocol shape by
hand: hex ids, stringified uint64 nanos, attribute encoding, histogram
dataPoints with exemplars — the parts a real collector would reject if
they drifted.
"""

import json
import re

import pytest

from repro.obs import (
    MetricsRegistry,
    OtlpExporter,
    TraceContext,
    Tracer,
    metrics_to_otlp,
    spans_to_otlp,
)
from repro.obs.console import (
    TopSampler,
    case_trace_ids,
    load_otlp_spans,
    render_case,
    render_trace,
    spans_from_otlp,
)

HEX_TRACE = re.compile(r"^[0-9a-f]{32}$")
HEX_SPAN = re.compile(r"^[0-9a-f]{16}$")
NANOS = re.compile(r"^\d+$")


@pytest.fixture
def traced():
    tracer = Tracer()
    remote = TraceContext.new()
    with tracer.span("serve.ingest", parent=remote, case="HT-1") as root:
        with tracer.span("serve.replay", shard="shard-0", steps=3):
            pass
    tracer.record_span(
        "serve.verdict",
        tracer.epoch_unix_s + 0.5,
        0.0,
        parent=root.context,
        case="HT-1",
        ok=True,
    )
    return tracer, remote, root


class TestSpansToOtlp:
    def test_document_shape(self, traced):
        tracer, remote, root = traced
        document = spans_to_otlp(tracer, service_name="repro-test")
        resource = document["resourceSpans"][0]
        attrs = {
            a["key"]: a["value"] for a in resource["resource"]["attributes"]
        }
        assert attrs["service.name"] == {"stringValue": "repro-test"}
        spans = resource["scopeSpans"][0]["spans"]
        assert len(spans) == 3
        for record in spans:
            assert HEX_TRACE.match(record["traceId"])
            assert HEX_SPAN.match(record["spanId"])
            assert NANOS.match(record["startTimeUnixNano"])
            assert NANOS.match(record["endTimeUnixNano"])
            assert int(record["endTimeUnixNano"]) >= int(
                record["startTimeUnixNano"]
            )
        assert {r["name"] for r in spans} == {
            "serve.ingest",
            "serve.replay",
            "serve.verdict",
        }

    def test_parenthood_and_attribute_encoding(self, traced):
        tracer, remote, root = traced
        spans = spans_to_otlp(tracer)["resourceSpans"][0]["scopeSpans"][0][
            "spans"
        ]
        by_name = {r["name"]: r for r in spans}
        ingest = by_name["serve.ingest"]
        replay = by_name["serve.replay"]
        verdict = by_name["serve.verdict"]
        # One trace end to end, rooted at the remote (client) context.
        assert ingest["traceId"] == remote.trace_id
        assert ingest["parentSpanId"] == remote.span_id
        assert replay["traceId"] == ingest["traceId"]
        assert replay["parentSpanId"] == ingest["spanId"]
        assert verdict["parentSpanId"] == ingest["spanId"]
        replay_attrs = {a["key"]: a["value"] for a in replay["attributes"]}
        assert replay_attrs["shard"] == {"stringValue": "shard-0"}
        assert replay_attrs["steps"] == {"intValue": "3"}
        verdict_attrs = {a["key"]: a["value"] for a in verdict["attributes"]}
        assert verdict_attrs["ok"] == {"boolValue": True}

    def test_absolute_timestamps_are_epoch_anchored(self, traced):
        tracer, _, _ = traced
        spans = spans_to_otlp(tracer)["resourceSpans"][0]["scopeSpans"][0][
            "spans"
        ]
        anchor_nanos = tracer.epoch_unix_s * 1e9
        for record in spans:
            assert int(record["startTimeUnixNano"]) >= anchor_nanos - 1e6

    def test_is_json_serializable(self, traced):
        tracer, _, _ = traced
        json.dumps(spans_to_otlp(tracer))


class TestMetricsToOtlp:
    def test_counter_gauge_histogram_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(3, kind="x")
        registry.gauge("g", "a gauge").set(7, shard="shard-0")
        histogram = registry.histogram("h_seconds", "a histogram")
        histogram.observe(0.002)
        document = metrics_to_otlp(registry, now_unix_s=1000.0)
        metrics = {
            m["name"]: m
            for m in document["resourceMetrics"][0]["scopeMetrics"][0][
                "metrics"
            ]
        }
        counter = metrics["c_total"]["sum"]
        assert counter["isMonotonic"] is True
        assert counter["aggregationTemporality"] == 2
        point = counter["dataPoints"][0]
        assert point["asDouble"] == 3.0
        assert point["timeUnixNano"] == str(int(1000.0 * 1e9))
        assert {a["key"]: a["value"] for a in point["attributes"]} == {
            "kind": {"stringValue": "x"}
        }
        gauge = metrics["g"]["gauge"]["dataPoints"][0]
        assert gauge["asDouble"] == 7.0
        hist = metrics["h_seconds"]["histogram"]
        assert hist["aggregationTemporality"] == 2
        series = hist["dataPoints"][0]
        assert series["count"] == "1"
        assert all(isinstance(n, str) for n in series["bucketCounts"])
        # +Inf is implicit: one more bucket count than explicit bounds.
        assert len(series["bucketCounts"]) == len(series["explicitBounds"]) + 1
        json.dumps(document)

    def test_exemplars_attach_trace_ids_to_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "ingest latency")
        context = TraceContext.new()
        histogram.observe_with_exemplar(
            0.004, context.trace_id, context.span_id
        )
        document = metrics_to_otlp(registry, now_unix_s=1.0)
        point = document["resourceMetrics"][0]["scopeMetrics"][0]["metrics"][
            0
        ]["histogram"]["dataPoints"][0]
        exemplar = point["exemplars"][0]
        assert exemplar["traceId"] == context.trace_id
        assert exemplar["spanId"] == context.span_id
        assert exemplar["asDouble"] == 0.004
        assert NANOS.match(exemplar["timeUnixNano"])


class TestOtlpExporter:
    def test_file_sink_appends_json_lines(self, tmp_path, traced):
        tracer, _, _ = traced
        registry = MetricsRegistry()
        registry.counter("c").inc()
        destination = tmp_path / "export.jsonl"
        exporter = OtlpExporter(str(destination))
        assert exporter.export(tracer=tracer, registry=registry) == 2
        lines = destination.read_text().strip().splitlines()
        assert len(lines) == 2
        documents = [json.loads(line) for line in lines]
        assert "resourceSpans" in documents[0]
        assert "resourceMetrics" in documents[1]

    def test_disabled_components_write_nothing(self, tmp_path):
        from repro.obs import NULL_REGISTRY, NULL_TRACER

        destination = tmp_path / "export.jsonl"
        exporter = OtlpExporter(str(destination))
        assert exporter.export(NULL_TRACER, NULL_REGISTRY) == 0
        assert not destination.exists()


class TestConsoleRendering:
    def test_load_and_render_round_trip(self, tmp_path, traced):
        tracer, remote, root = traced
        registry = MetricsRegistry()
        registry.counter("noise").inc()  # metrics lines must be skipped
        destination = tmp_path / "export.jsonl"
        OtlpExporter(str(destination)).export(tracer=tracer, registry=registry)
        spans = load_otlp_spans(str(destination))
        assert len(spans) == 3
        assert case_trace_ids(spans, "HT-1") == [remote.trace_id]
        text = render_case(spans, "HT-1")
        assert "serve.ingest" in text
        assert "serve.replay" in text
        assert "serve.verdict" in text
        assert "remote parent" in text  # the client context is absent
        assert remote.trace_id in text
        # the tree indents children under the ingest root
        ingest_line = next(
            l for l in text.splitlines() if "serve.ingest" in l
        )
        replay_line = next(
            l for l in text.splitlines() if "serve.replay" in l
        )
        assert replay_line.index("serve.replay") > ingest_line.index(
            "serve.ingest"
        )

    def test_unknown_case_renders_a_miss(self, traced, tmp_path):
        tracer, _, _ = traced
        destination = tmp_path / "export.jsonl"
        OtlpExporter(str(destination)).export(tracer=tracer)
        spans = load_otlp_spans(str(destination))
        assert "no trace found" in render_case(spans, "XX-404")

    def test_render_trace_on_normalized_spans(self, traced):
        tracer, remote, _ = traced
        spans = spans_from_otlp(spans_to_otlp(tracer))
        text = render_trace(spans, remote.trace_id)
        assert text.startswith(f"trace {remote.trace_id}")
        assert "3 spans" in text


class TestTopSampler:
    def _payloads(self, entries, observed):
        return {
            "/healthz": {
                "status": "ok",
                "entries_received": entries,
                "quarantined_cases": 1,
                "draining": False,
                "shard_detail": {
                    "shard-0": {
                        "queue_depth": 2,
                        "inflight_cases": 3,
                        "entries_observed": observed,
                    }
                },
            },
            "/metrics.json": {
                "serve_ingest_seconds": {
                    "type": "histogram",
                    "series": [
                        {"labels": {}, "p50": 0.001, "p99": 0.005}
                    ],
                }
            },
        }

    def test_rates_come_from_consecutive_samples(self):
        payloads = self._payloads(100, 40)
        sampler = TopSampler(lambda path: payloads[path])
        first = sampler.render(now=10.0)
        assert "entries 100" in first
        assert "(-)" in first  # no rate on the first sample
        payloads.update(self._payloads(150, 60))
        second = sampler.render(now=20.0)
        assert "entries 150" in second
        assert "(5.0/s)" in second  # (150-100)/10s
        assert "2.0/s" in second  # per-shard (60-40)/10s
        assert "p50 1.00ms" in second
        assert "p99 5.00ms" in second

    def test_sample_shape(self):
        payloads = self._payloads(5, 5)
        sample = TopSampler(lambda path: payloads[path]).sample(now=1.0)
        assert sample["entries_received"] == 5
        assert sample["shards"]["shard-0"]["queue_depth"] == 2
        assert sample["p99_s"] == 0.005


class TestTopTenantRows:
    def _payloads(self, with_api: bool):
        payloads = {
            "/healthz": {
                "status": "ok",
                "entries_received": 10,
                "quarantined_cases": 1,
                "draining": False,
                "shard_detail": {
                    "shard-0": {
                        "queue_depth": 0,
                        "inflight_cases": 1,
                        "entries_observed": 10,
                    }
                },
            },
            "/metrics.json": {"serve_ingest_seconds": {"series": []}},
        }
        if with_api:
            payloads["/api/v1/tenants"] = {
                "tenants": [
                    {
                        "purpose": "treatment",
                        "prefix": "HT",
                        "cases": 7,
                        "states": {"infringing": 5, "completed": 1},
                        "quarantined": 1,
                    },
                    {
                        "purpose": "clinicaltrial",
                        "prefix": "CT",
                        "cases": 1,
                        "states": {"completed": 1},
                        "quarantined": 0,
                    },
                ]
            }
        return payloads

    def test_renders_per_tenant_rows_from_the_control_api(self):
        payloads = self._payloads(with_api=True)
        text = TopSampler(lambda path: payloads[path]).render(now=1.0)
        assert "tenant" in text
        treatment_row = next(
            line for line in text.splitlines() if "treatment" in line
        )
        assert "HT" in treatment_row
        assert "7" in treatment_row  # cases
        assert "5" in treatment_row  # infringing

    def test_falls_back_cleanly_without_the_api(self):
        # A daemon predating the control plane: fetching /api/* raises.
        payloads = self._payloads(with_api=False)
        sampler = TopSampler(lambda path: payloads[path])
        sample = sampler.sample(now=1.0)
        assert sample["tenants"] is None
        text = sampler.render(now=2.0)
        assert "tenant" not in text
        assert "shard-0" in text  # the per-shard view is untouched
