"""Tests for the Petri-net substrate."""

import pytest

from repro.conformance import Marking, PetriNet
from repro.errors import PetriNetError


@pytest.fixture
def simple_net():
    """p1 -> [a] -> p2 -> [tau] -> p3 -> [b] -> p4"""
    net = PetriNet("simple")
    for place in ("p1", "p2", "p3", "p4"):
        net.add_place(place)
    net.add_transition("a", label="A")
    net.add_transition("tau")
    net.add_transition("b", label="B")
    net.add_arc("p1", "a")
    net.add_arc("a", "p2")
    net.add_arc("p2", "tau")
    net.add_arc("tau", "p3")
    net.add_arc("p3", "b")
    net.add_arc("b", "p4")
    return net


class TestMarking:
    def test_zero_counts_dropped(self):
        marking = Marking({"p1": 1, "p2": 0})
        assert marking.places() == {"p1"}

    def test_negative_counts_rejected(self):
        with pytest.raises(PetriNetError):
            Marking({"p1": -1})

    def test_equality_and_hash(self):
        assert Marking({"a": 1, "b": 2}) == Marking({"b": 2, "a": 1})
        assert hash(Marking({"a": 1})) == hash(Marking({"a": 1}))

    def test_add_remove(self):
        marking = Marking({"a": 1}).add([("b", 2)])
        assert marking["b"] == 2
        reduced = marking.remove([("b", 1)])
        assert reduced["b"] == 1

    def test_remove_below_zero_rejected(self):
        with pytest.raises(PetriNetError):
            Marking({"a": 1}).remove([("a", 2)])

    def test_covers(self):
        marking = Marking({"a": 2, "b": 1})
        assert marking.covers([("a", 2)])
        assert not marking.covers([("a", 3)])

    def test_len_counts_tokens(self):
        assert len(Marking({"a": 2, "b": 1})) == 3


class TestFiring:
    def test_enabled_and_fire(self, simple_net):
        marking = Marking({"p1": 1})
        assert simple_net.is_enabled(marking, "a")
        after = simple_net.fire(marking, "a")
        assert after == Marking({"p2": 1})

    def test_disabled_fire_rejected(self, simple_net):
        with pytest.raises(PetriNetError):
            simple_net.fire(Marking({}), "a")

    def test_force_fire_counts_missing(self, simple_net):
        after, missing = simple_net.force_fire(Marking({}), "a")
        assert missing == 1
        assert after == Marking({"p2": 1})

    def test_enabled_transitions(self, simple_net):
        enabled = simple_net.enabled_transitions(Marking({"p1": 1, "p3": 1}))
        assert {t.name for t in enabled} == {"a", "b"}

    def test_labeled_lookup(self, simple_net):
        assert [t.name for t in simple_net.labeled("A")] == ["a"]
        assert simple_net.labeled("missing") == []

    def test_silent_transitions(self, simple_net):
        assert [t.name for t in simple_net.silent_transitions()] == ["tau"]


class TestSilentClosure:
    def test_path_found_through_silent_step(self, simple_net):
        path = simple_net.silent_path_to_enable(Marking({"p2": 1}), "b")
        assert path == ["tau"]

    def test_already_enabled_gives_empty_path(self, simple_net):
        assert simple_net.silent_path_to_enable(Marking({"p3": 1}), "b") == []

    def test_unreachable_gives_none(self, simple_net):
        assert simple_net.silent_path_to_enable(Marking({}), "b") is None

    def test_depth_bound_respected(self, simple_net):
        assert (
            simple_net.silent_path_to_enable(Marking({"p2": 1}), "b", max_depth=0)
            is None
        )


class TestConstructionErrors:
    def test_duplicate_transition_rejected(self):
        net = PetriNet()
        net.add_transition("t")
        with pytest.raises(PetriNetError):
            net.add_transition("t")

    def test_arc_requires_place_transition_pair(self):
        net = PetriNet()
        net.add_place("p")
        net.add_transition("t")
        with pytest.raises(PetriNetError):
            net.add_arc("p", "p")
        with pytest.raises(PetriNetError):
            net.add_arc("t", "t")

    def test_arc_weight_positive(self):
        net = PetriNet()
        net.add_place("p")
        net.add_transition("t")
        with pytest.raises(PetriNetError):
            net.add_arc("p", "t", weight=0)
