"""Tests for BPMN->Petri translation and token-replay fitness, including
the comparison points against Algorithm 1 (experiment E12)."""

import pytest

from repro.conformance import (
    bpmn_to_petri,
    replay_events,
    replay_trail,
    trail_to_events,
)
from repro.scenarios import (
    fig8_process,
    fig9_process,
    healthcare_treatment_process,
    paper_audit_trail,
    sequential_process,
    xor_process,
)


@pytest.fixture(scope="module")
def ht_net():
    return bpmn_to_petri(healthcare_treatment_process())


class TestTranslation:
    def test_sequential_net_structure(self):
        translated = bpmn_to_petri(sequential_process(2))
        labels = {
            t.label for t in translated.net.transitions.values() if t.label
        }
        assert labels == {"Staff.T1", "Staff.T2"}
        assert len(translated.initial) == 1

    def test_error_task_has_err_transition(self):
        translated = bpmn_to_petri(fig9_process())
        assert translated.net.labeled("Err")

    def test_task_label_helper(self, ht_net):
        assert ht_net.task_label("T01") == "GP.T01"

    def test_message_places_created(self, ht_net):
        assert "msg_referral" in ht_net.net.places


class TestEventProjection:
    def test_consecutive_same_task_collapse(self):
        trail = paper_audit_trail().for_case("CT-1")
        events = trail_to_events(trail)
        assert events == [
            "Cardiologist.T91",
            "Cardiologist.T92",
            "Cardiologist.T93",
            "Cardiologist.T94",  # the two T94 entries collapse
            "Cardiologist.T95",
        ]

    def test_failures_become_err(self):
        trail = paper_audit_trail().for_case("HT-1")
        events = trail_to_events(trail)
        assert "Err" in events


class TestReplayFitness:
    def test_perfect_sequential_replay(self):
        translated = bpmn_to_petri(sequential_process(2))
        outcome = replay_events(translated, ["Staff.T1", "Staff.T2"])
        assert outcome.fits
        assert outcome.fitness == 1.0

    def test_skipped_task_penalized(self):
        translated = bpmn_to_petri(sequential_process(3))
        outcome = replay_events(translated, ["Staff.T1", "Staff.T3"])
        assert not outcome.fits
        assert outcome.missing > 0
        assert outcome.fitness < 1.0

    def test_unknown_event_penalized(self):
        translated = bpmn_to_petri(sequential_process(2))
        outcome = replay_events(translated, ["Staff.T1", "Ghost.T9", "Staff.T2"])
        assert not outcome.fits

    def test_xor_replay_through_silent_routing(self):
        translated = bpmn_to_petri(xor_process(2))
        for branch in ("B1", "B2"):
            outcome = replay_events(translated, ["Staff.T0", f"Staff.{branch}"])
            assert outcome.fits, branch

    def test_fig8_single_branch_fits(self):
        translated = bpmn_to_petri(fig8_process())
        outcome = replay_events(translated, ["P.T", "P.T1"])
        assert outcome.fits

    def test_error_path_replay(self):
        translated = bpmn_to_petri(fig9_process())
        outcome = replay_events(translated, ["P.T", "Err", "P.T1"])
        assert outcome.fits

    def test_fitness_bounds(self):
        translated = bpmn_to_petri(sequential_process(2))
        outcome = replay_events(translated, ["Ghost.1", "Ghost.2"])
        assert 0.0 <= outcome.fitness <= 1.0


class TestPaperTrailComparison:
    """E12: where the baseline agrees with Algorithm 1 and where it differs."""

    def test_ht1_fits_perfectly(self, ht_net):
        outcome = replay_trail(ht_net, paper_audit_trail().for_case("HT-1"))
        assert outcome.fits

    def test_mimicry_case_has_low_fitness(self, ht_net):
        outcome = replay_trail(ht_net, paper_audit_trail().for_case("HT-11"))
        assert not outcome.fits
        assert outcome.fitness < 0.7

    def test_open_prefix_penalized_unlike_algorithm1(self, ht_net):
        # HT-2 is a perfectly valid *open* case; Algorithm 1 accepts it,
        # token replay's remaining-token term penalizes it. This is a
        # genuine difference between the approaches (Section 6).
        outcome = replay_trail(ht_net, paper_audit_trail().for_case("HT-2"))
        assert not outcome.fits
        assert outcome.missing == 0  # nothing wrong happened...
        assert outcome.remaining > 0  # ...the case simply is not finished
