"""Tests for Definition 3: access-request evaluation, including the
paper's consent scenario (footnote 3) and role-hierarchy matching."""

import pytest

from repro.policy import (
    AccessRequest,
    ConsentRegistry,
    ObjectRef,
    PolicyDecisionPoint,
)
from repro.scenarios import (
    consent_registry,
    paper_policy,
    process_registry,
    role_hierarchy,
    user_directory,
)


@pytest.fixture(scope="module")
def pdp():
    return PolicyDecisionPoint(
        paper_policy(),
        user_directory(),
        role_hierarchy(),
        process_registry(),
        consent_registry(),
    )


def request(user, action, obj, task, case):
    return AccessRequest(user, action, ObjectRef.parse(obj), task, case)


class TestDefinition3:
    def test_gp_reads_clinical_for_treatment(self, pdp):
        decision = pdp.evaluate(
            request("John", "read", "[Jane]EPR/Clinical", "T01", "HT-1")
        )
        assert decision.permit
        assert decision.matched is not None

    def test_role_hierarchy_gp_is_physician(self, pdp):
        # The statement names Physician; John is a GP (a specialization).
        decision = pdp.evaluate(
            request("John", "write", "[Jane]EPR/Clinical", "T02", "HT-1")
        )
        assert decision.permit

    def test_lab_tech_writes_tests_section(self, pdp):
        assert pdp.is_authorized(
            request("Dana", "write", "[Jane]EPR/Clinical/Tests", "T15", "HT-1")
        )

    def test_lab_tech_cannot_write_whole_clinical(self, pdp):
        assert not pdp.is_authorized(
            request("Dana", "write", "[Jane]EPR/Clinical", "T15", "HT-1")
        )

    def test_action_must_match(self, pdp):
        # no statement grants Dana "delete" anywhere
        assert not pdp.is_authorized(
            request("Dana", "delete", "[Jane]EPR/Clinical/Tests", "T13", "HT-1")
        )
        # but read of Clinical is granted to MedicalTech
        assert pdp.is_authorized(
            request("Dana", "read", "[Jane]EPR/Clinical", "T13", "HT-1")
        )

    def test_object_hierarchy_covers_descendants(self, pdp):
        # [.]EPR/Clinical covers [Jane]EPR/Clinical/Scan
        assert pdp.is_authorized(
            request("Charlie", "write", "[Jane]EPR/Clinical/Scan", "T12", "HT-1")
        )

    def test_unknown_user_denied(self, pdp):
        assert not pdp.is_authorized(
            request("Mallory", "read", "[Jane]EPR/Clinical", "T01", "HT-1")
        )

    def test_task_must_belong_to_purpose_process(self, pdp):
        # T91 is a clinical-trial task; the treatment statements don't apply.
        assert not pdp.is_authorized(
            request("John", "read", "[Jane]EPR/Clinical", "T91", "HT-1")
        )

    def test_case_must_instantiate_purpose(self, pdp):
        # A treatment statement cannot authorize access within a CT case.
        assert not pdp.is_authorized(
            request("John", "read", "[Jane]EPR/Clinical", "T01", "CT-1")
        )

    def test_unknown_case_prefix_denied(self, pdp):
        assert not pdp.is_authorized(
            request("John", "read", "[Jane]EPR/Clinical", "T01", "XX-1")
        )

    def test_decision_reason_populated(self, pdp):
        decision = pdp.evaluate(
            request("Mallory", "read", "[Jane]EPR/Clinical", "T01", "HT-1")
        )
        assert "no statement matches" in decision.reason
        assert not bool(decision)


class TestConsent:
    """Footnote 3: for clinical trial, only consenting patients' EPRs."""

    def test_consenting_subject_granted(self, pdp):
        assert pdp.is_authorized(
            request("Bob", "read", "[Alice]EPR/Clinical", "T92", "CT-1")
        )

    def test_non_consenting_subject_denied(self, pdp):
        # Jane did not consent to research purposes (Section 2).
        assert not pdp.is_authorized(
            request("Bob", "read", "[Jane]EPR/Clinical", "T92", "CT-1")
        )

    def test_consent_withdrawal_takes_effect(self):
        consents = ConsentRegistry()
        consents.grant("Alice", "clinicaltrial")
        pdp = PolicyDecisionPoint(
            paper_policy(),
            user_directory(),
            role_hierarchy(),
            process_registry(),
            consents,
        )
        req = request("Bob", "read", "[Alice]EPR/Clinical", "T92", "CT-1")
        assert pdp.is_authorized(req)
        consents.withdraw("Alice", "clinicaltrial")
        assert not pdp.is_authorized(req)


class TestRepurposingIsInvisibleToTheDecisionPoint:
    """The paper's central motivation: preventive checks cannot catch
    re-purposing — Bob's HT-11 request is indistinguishable from HT-1."""

    def test_harvesting_request_looks_legitimate(self, pdp):
        legitimate = request("Bob", "read", "[Jane]EPR/Clinical", "T06", "HT-1")
        harvesting = request("Bob", "read", "[Jane]EPR/Clinical", "T06", "HT-11")
        assert pdp.is_authorized(legitimate)
        assert pdp.is_authorized(harvesting)  # this is the gap Algorithm 1 closes
