"""Tests for the role hierarchy >=R."""

import pytest

from repro.errors import PolicyError
from repro.policy import RoleHierarchy


@pytest.fixture
def hospital():
    hierarchy = RoleHierarchy()
    hierarchy.add_role("Physician")
    hierarchy.add_role("GP", "Physician")
    hierarchy.add_role("Cardiologist", "Physician")
    hierarchy.add_role("MedicalTech")
    hierarchy.add_role("MedicalLabTech", "MedicalTech")
    return hierarchy


class TestSpecialization:
    def test_reflexive(self, hospital):
        assert hospital.is_specialization_of("GP", "GP")

    def test_reflexive_for_unknown_roles(self):
        assert RoleHierarchy().is_specialization_of("Anything", "Anything")

    def test_direct_parent(self, hospital):
        assert hospital.is_specialization_of("GP", "Physician")

    def test_not_symmetric(self, hospital):
        assert not hospital.is_specialization_of("Physician", "GP")

    def test_siblings_unrelated(self, hospital):
        assert not hospital.is_specialization_of("GP", "Cardiologist")

    def test_cross_branch_unrelated(self, hospital):
        assert not hospital.is_specialization_of("GP", "MedicalTech")

    def test_transitive(self):
        hierarchy = RoleHierarchy()
        hierarchy.add_role("Staff")
        hierarchy.add_role("Physician", "Staff")
        hierarchy.add_role("GP", "Physician")
        assert hierarchy.is_specialization_of("GP", "Staff")

    def test_multiple_parents(self):
        hierarchy = RoleHierarchy()
        hierarchy.add_role("Clinician")
        hierarchy.add_role("Researcher")
        hierarchy.add_role("TrialPhysician", "Clinician", "Researcher")
        assert hierarchy.is_specialization_of("TrialPhysician", "Clinician")
        assert hierarchy.is_specialization_of("TrialPhysician", "Researcher")


class TestStructure:
    def test_ancestors(self, hospital):
        assert hospital.ancestors("GP") == {"Physician"}
        assert hospital.ancestors("Physician") == frozenset()

    def test_generalizations_include_self(self, hospital):
        assert hospital.generalizations("GP") == {"GP", "Physician"}

    def test_roles_listing(self, hospital):
        assert "GP" in hospital.roles()
        assert "Physician" in hospital.roles()

    def test_contains(self, hospital):
        assert "GP" in hospital
        assert "Nurse" not in hospital

    def test_incremental_parent_accumulation(self):
        hierarchy = RoleHierarchy()
        hierarchy.add_role("A")
        hierarchy.add_role("B")
        hierarchy.add_role("C", "A")
        hierarchy.add_role("C", "B")
        assert hierarchy.ancestors("C") == {"A", "B"}


class TestErrors:
    def test_self_cycle_rejected(self):
        hierarchy = RoleHierarchy()
        with pytest.raises(PolicyError):
            hierarchy.add_role("A", "A")

    def test_two_step_cycle_rejected(self):
        hierarchy = RoleHierarchy()
        hierarchy.add_role("B", "A")
        with pytest.raises(PolicyError):
            hierarchy.add_role("A", "B")

    def test_long_cycle_rejected(self):
        hierarchy = RoleHierarchy()
        hierarchy.add_role("B", "A")
        hierarchy.add_role("C", "B")
        with pytest.raises(PolicyError):
            hierarchy.add_role("A", "C")

    def test_empty_role_rejected(self):
        with pytest.raises(PolicyError):
            RoleHierarchy().add_role("")
        with pytest.raises(PolicyError):
            RoleHierarchy().add_role("A", "")
