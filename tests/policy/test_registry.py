"""Tests for the purpose -> process registry and case resolution."""

import pytest

from repro.errors import UnknownPurposeError
from repro.policy import ProcessRegistry
from repro.scenarios import (
    clinical_trial_process,
    healthcare_treatment_process,
    process_registry,
)


class TestRegistration:
    def test_purposes_listed(self):
        registry = process_registry()
        assert registry.purposes() == {"treatment", "clinicaltrial"}

    def test_duplicate_purpose_rejected(self):
        registry = ProcessRegistry()
        registry.register(healthcare_treatment_process(), "HT")
        with pytest.raises(UnknownPurposeError):
            registry.register(healthcare_treatment_process(), "HT2")

    def test_duplicate_prefix_rejected(self):
        registry = ProcessRegistry()
        registry.register(healthcare_treatment_process(), "HT")
        with pytest.raises(UnknownPurposeError):
            registry.register(clinical_trial_process(), "HT")

    def test_len_and_iter(self):
        registry = process_registry()
        assert len(registry) == 2
        assert {p.purpose for p in registry} == {"treatment", "clinicaltrial"}


class TestCaseResolution:
    def test_case_prefix_resolution(self):
        registry = process_registry()
        assert registry.purpose_of_case("HT-17") == "treatment"
        assert registry.purpose_of_case("CT-1") == "clinicaltrial"

    def test_malformed_case_rejected(self):
        registry = process_registry()
        with pytest.raises(UnknownPurposeError):
            registry.purpose_of_case("HT17")

    def test_unknown_prefix_rejected(self):
        registry = process_registry()
        with pytest.raises(UnknownPurposeError):
            registry.purpose_of_case("XX-1")

    def test_is_instance_of(self):
        registry = process_registry()
        assert registry.is_instance_of("HT-1", "treatment")
        assert not registry.is_instance_of("HT-1", "clinicaltrial")
        assert not registry.is_instance_of("garbage", "treatment")

    def test_task_in_purpose(self):
        registry = process_registry()
        assert registry.task_in_purpose("T01", "treatment")
        assert registry.task_in_purpose("T91", "clinicaltrial")
        assert not registry.task_in_purpose("T91", "treatment")
        assert not registry.task_in_purpose("T01", "nonexistent")

    def test_process_of_case(self):
        registry = process_registry()
        assert registry.process_of_case("HT-3").purpose == "treatment"

    def test_case_prefix_of(self):
        registry = process_registry()
        assert registry.case_prefix_of("treatment") == "HT"
        assert registry.case_prefix_of("nope") is None


class TestEncodingCache:
    def test_encoded_for_is_cached(self):
        registry = process_registry()
        first = registry.encoded_for("treatment")
        second = registry.encoded_for("treatment")
        assert first is second

    def test_encoded_for_unknown_purpose(self):
        with pytest.raises(UnknownPurposeError):
            process_registry().encoded_for("nope")
