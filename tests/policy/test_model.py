"""Tests for object references (>=O), statements, directories and consents."""

import pytest

from repro.errors import PolicyError
from repro.policy import (
    ANY_SUBJECT,
    ConsentRegistry,
    ObjectRef,
    Policy,
    Statement,
    UserDirectory,
)


class TestObjectRefParsing:
    def test_named_subject(self):
        ref = ObjectRef.parse("[Jane]EPR/Clinical")
        assert ref.subject == "Jane"
        assert ref.path == ("EPR", "Clinical")

    def test_wildcard_subject_dot(self):
        assert ObjectRef.parse("[.]EPR").subject == ANY_SUBJECT

    def test_wildcard_subject_star(self):
        assert ObjectRef.parse("[*]EPR").subject == ANY_SUBJECT

    def test_no_subject(self):
        ref = ObjectRef.parse("ClinicalTrial/Criteria")
        assert ref.subject is None
        assert ref.path == ("ClinicalTrial", "Criteria")

    def test_round_trip(self):
        for text in ("[Jane]EPR/Clinical", "[.]EPR", "ClinicalTrial/Criteria"):
            assert str(ObjectRef.parse(text)) == text

    def test_unterminated_subject_rejected(self):
        with pytest.raises(PolicyError):
            ObjectRef.parse("[JaneEPR")

    def test_empty_path_rejected(self):
        with pytest.raises(PolicyError):
            ObjectRef.parse("[Jane]")


class TestObjectOrder:
    """The partial order >=O of Section 3.1."""

    def test_prefix_covers_descendant(self):
        epr = ObjectRef.parse("[Jane]EPR")
        clinical = ObjectRef.parse("[Jane]EPR/Clinical")
        assert epr.covers(clinical)
        assert not clinical.covers(epr)

    def test_reflexive(self):
        ref = ObjectRef.parse("[Jane]EPR/Clinical")
        assert ref.covers(ref)

    def test_sibling_paths_unrelated(self):
        a = ObjectRef.parse("[Jane]EPR/Clinical")
        b = ObjectRef.parse("[Jane]EPR/Demographics")
        assert not a.covers(b)
        assert not b.covers(a)

    def test_wildcard_subject_covers_named(self):
        stmt = ObjectRef.parse("[.]EPR/Clinical")
        req = ObjectRef.parse("[Jane]EPR/Clinical/Tests")
        assert stmt.covers(req)

    def test_named_subject_does_not_cover_other_subject(self):
        jane = ObjectRef.parse("[Jane]EPR")
        david = ObjectRef.parse("[David]EPR/Clinical")
        assert not jane.covers(david)

    def test_subjectless_does_not_cover_subjected(self):
        trial = ObjectRef.parse("ClinicalTrial")
        subjected = ObjectRef("Jane", ("ClinicalTrial",))
        assert not trial.covers(subjected)

    def test_wildcard_covers_subjectless(self):
        # [.]X covers plain X (any-subject includes "no subject recorded")
        wildcard = ObjectRef.parse("[.]Software")
        plain = ObjectRef.parse("Software/Scanner")
        assert wildcard.covers(plain)

    def test_with_subject(self):
        template = ObjectRef.parse("[.]EPR/Clinical")
        jane = template.with_subject("Jane")
        assert jane.subject == "Jane"
        assert jane.path == template.path


class TestPolicyAndStatements:
    def test_statement_str_marks_consent(self):
        stmt = Statement(
            "Physician", "read", ObjectRef.parse("[.]EPR"), "clinicaltrial",
            requires_consent=True,
        )
        assert "[consent]" in str(stmt)

    def test_policy_accumulates(self):
        policy = Policy()
        policy.add(
            Statement("A", "read", ObjectRef.parse("[.]EPR"), "treatment")
        )
        policy.extend(
            [Statement("B", "write", ObjectRef.parse("[.]EPR"), "research")]
        )
        assert len(policy) == 2

    def test_for_purpose(self):
        policy = Policy()
        policy.add(Statement("A", "read", ObjectRef.parse("X"), "p1"))
        policy.add(Statement("B", "read", ObjectRef.parse("X"), "p2"))
        assert len(policy.for_purpose("p1")) == 1


class TestUserDirectory:
    def test_assign_and_lookup(self):
        directory = UserDirectory()
        directory.assign("Bob", "Cardiologist")
        assert directory.roles_of("Bob") == {"Cardiologist"}

    def test_multiple_roles(self):
        directory = UserDirectory()
        directory.assign("Eve", "GP", "Researcher")
        assert directory.roles_of("Eve") == {"GP", "Researcher"}

    def test_revoke(self):
        directory = UserDirectory()
        directory.assign("Bob", "Cardiologist", "Researcher")
        directory.revoke("Bob", "Researcher")
        assert directory.roles_of("Bob") == {"Cardiologist"}

    def test_unknown_user_has_no_roles(self):
        assert UserDirectory().roles_of("ghost") == frozenset()

    def test_users_with_role(self):
        directory = UserDirectory()
        directory.assign("Bob", "Cardiologist")
        directory.assign("Carol", "Cardiologist")
        directory.assign("John", "GP")
        assert directory.users_with_role("Cardiologist") == {"Bob", "Carol"}

    def test_empty_user_rejected(self):
        with pytest.raises(PolicyError):
            UserDirectory().assign("", "GP")


class TestConsentRegistry:
    def test_grant_and_check(self):
        registry = ConsentRegistry()
        registry.grant("Alice", "clinicaltrial")
        assert registry.has_consented("Alice", "clinicaltrial")
        assert not registry.has_consented("Jane", "clinicaltrial")

    def test_withdraw(self):
        registry = ConsentRegistry()
        registry.grant("Alice", "clinicaltrial")
        registry.withdraw("Alice", "clinicaltrial")
        assert not registry.has_consented("Alice", "clinicaltrial")

    def test_none_subject_never_consents(self):
        registry = ConsentRegistry()
        assert not registry.has_consented(None, "clinicaltrial")

    def test_consenting_subjects(self):
        registry = ConsentRegistry()
        registry.grant("Alice", "clinicaltrial")
        registry.grant("Bob", "clinicaltrial")
        registry.grant("Alice", "marketing")
        assert registry.consenting_subjects("clinicaltrial") == {"Alice", "Bob"}
