"""Tests for the Chain-method baseline [27] and the paper's criticisms of it."""

from datetime import datetime, timedelta

import pytest

from repro.audit import AuditTrail, LogEntry, Status
from repro.errors import PolicyError
from repro.policy.chains import Act, Chain, ChainPolicy


def entry(action, obj, case="C-1", minute=[0]):
    minute[0] += 1
    return LogEntry(
        user="U", role="R", action=action,
        obj=__import__("repro.policy.model", fromlist=["ObjectRef"]).ObjectRef.parse(obj),
        task="T", case=case,
        timestamp=datetime(2010, 1, 1) + timedelta(minutes=minute[0]),
        status=Status.SUCCESS,
    )


@pytest.fixture
def treatment_chain_policy():
    policy = ChainPolicy()
    policy.add_chain(
        "treatment",
        ["read EPR/Clinical", "write EPR/Diagnosis", "write EPR/Prescription"],
    )
    policy.add_chain("lookup", ["read EPR/Demographics"])
    return policy


class TestActs:
    def test_parse(self):
        act = Act.parse("read EPR/Clinical")
        assert act.action == "read"
        assert act.object_prefix == ("EPR", "Clinical")

    def test_parse_rejects_malformed(self):
        with pytest.raises(PolicyError):
            Act.parse("read")

    def test_matches_prefix(self):
        act = Act.parse("read EPR/Clinical")
        assert act.matches(entry("read", "[Jane]EPR/Clinical/Tests"))
        assert not act.matches(entry("write", "[Jane]EPR/Clinical"))
        assert not act.matches(entry("read", "[Jane]EPR/Demographics"))

    def test_empty_chain_rejected(self):
        with pytest.raises(PolicyError):
            Chain("bad", ())


class TestSequentialChains:
    def test_complete_chain_accepted(self, treatment_chain_policy):
        trail = AuditTrail([
            entry("read", "[Jane]EPR/Clinical"),
            entry("write", "[Jane]EPR/Diagnosis"),
            entry("write", "[Jane]EPR/Prescription"),
        ])
        assert treatment_chain_policy.check_greedy(trail).compliant

    def test_out_of_order_rejected(self, treatment_chain_policy):
        trail = AuditTrail([
            entry("write", "[Jane]EPR/Diagnosis"),
            entry("read", "[Jane]EPR/Clinical"),
        ])
        verdict = treatment_chain_policy.check_greedy(trail)
        assert not verdict.compliant
        assert verdict.accepted == 0

    def test_single_act_chain(self, treatment_chain_policy):
        trail = AuditTrail([entry("read", "[Jane]EPR/Demographics")])
        assert treatment_chain_policy.check_greedy(trail).compliant

    def test_unknown_act_rejected(self, treatment_chain_policy):
        trail = AuditTrail([entry("delete", "[Jane]EPR/Clinical")])
        verdict = treatment_chain_policy.check_greedy(trail)
        assert not verdict.compliant
        assert verdict.failed_entry is not None


class TestConcurrencyWeakness:
    """Section 6: the Chain method 'lacks capability to reconstruct the
    sequence of acts (when chains are executed concurrently)'."""

    def interleaved_trail(self):
        # Two treatment chains for two patients, interleaved — both are
        # individually fine.
        return AuditTrail([
            entry("read", "[Jane]EPR/Clinical", case="C-1"),
            entry("read", "[Bob]EPR/Clinical", case="C-2"),
            entry("write", "[Bob]EPR/Diagnosis", case="C-2"),
            entry("write", "[Jane]EPR/Diagnosis", case="C-1"),
            entry("write", "[Jane]EPR/Prescription", case="C-1"),
            entry("write", "[Bob]EPR/Prescription", case="C-2"),
        ])

    def test_caseless_greedy_matcher_confuses_instances(self):
        # A subject-specific chain exposes the attribution problem: the
        # greedy matcher binds Bob's read to Jane's in-progress chain.
        policy = ChainPolicy()
        policy.add_chain(
            "jane-treatment",
            ["read EPR/Clinical", "write EPR/Diagnosis"],
        )
        trail = AuditTrail([
            entry("read", "[Jane]EPR/Clinical", case="C-1"),
            entry("read", "[Bob]EPR/Clinical", case="C-2"),
            entry("write", "[Jane]EPR/Diagnosis", case="C-1"),
            entry("write", "[Bob]EPR/Diagnosis", case="C-2"),
        ])
        caseless = policy.check_greedy(trail)
        per_case = policy.check_per_case(trail)
        # With case separation every instance is fine...
        assert all(v.compliant for v in per_case.values())
        # ...the caseless view happens to accept too, but it cannot say
        # WHICH instance an act served: the count of open chains differs.
        assert caseless.compliant

    def test_violation_hidden_by_interleaving(self):
        """An act sequence that is NOT a valid single chain is accepted by
        the caseless matcher because it weaves through two instances —
        the false-negative the paper warns about."""
        policy = ChainPolicy()
        policy.add_chain(
            "treatment", ["read EPR/Clinical", "write EPR/Diagnosis"]
        )
        # Case C-1 alone: read, read — its second read starts ANOTHER
        # chain instance; its write then completes the first. Fine for
        # the caseless matcher. But per case, C-2 writes a diagnosis
        # without ever reading — a violation the caseless view misses.
        trail = AuditTrail([
            entry("read", "[Jane]EPR/Clinical", case="C-1"),
            entry("read", "[Jane]EPR/Clinical", case="C-1"),
            entry("write", "[Jane]EPR/Diagnosis", case="C-1"),
            entry("write", "[Jane]EPR/Diagnosis", case="C-2"),
        ])
        caseless = policy.check_greedy(trail)
        per_case = policy.check_per_case(trail)
        assert caseless.compliant  # the interleaving masks it
        assert not per_case["C-2"].compliant  # case info reveals it

    def test_per_case_agrees_with_individual_runs(self, treatment_chain_policy):
        trail = self.interleaved_trail()
        per_case = treatment_chain_policy.check_per_case(trail)
        assert set(per_case) == {"C-1", "C-2"}
        assert all(v.compliant for v in per_case.values())
