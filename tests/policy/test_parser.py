"""Tests for the textual policy syntax (Fig. 3)."""

import pytest

from repro.errors import PolicySyntaxError
from repro.policy import format_policy, parse_policy, parse_statement
from repro.scenarios.healthcare import PAPER_POLICY_TEXT


class TestParseStatement:
    def test_simple_statement(self):
        stmt = parse_statement("(Physician, read, [.]EPR/Clinical, treatment)")
        assert stmt.subject == "Physician"
        assert stmt.action == "read"
        assert str(stmt.obj) == "[.]EPR/Clinical"
        assert stmt.purpose == "treatment"
        assert not stmt.requires_consent

    def test_consent_tag(self):
        stmt = parse_statement("(Physician, read, [X]EPR, clinicaltrial)")
        assert stmt.requires_consent
        assert str(stmt.obj) == "[.]EPR"

    def test_named_subject_object(self):
        stmt = parse_statement("(Bob, read, [Jane]EPR, treatment)")
        assert stmt.obj.subject == "Jane"

    def test_subjectless_object(self):
        stmt = parse_statement("(Physician, write, ClinicalTrial/Criteria, clinicaltrial)")
        assert stmt.obj.subject is None

    def test_missing_parentheses_rejected(self):
        with pytest.raises(PolicySyntaxError):
            parse_statement("Physician, read, [.]EPR, treatment")

    def test_wrong_field_count_rejected(self):
        with pytest.raises(PolicySyntaxError):
            parse_statement("(Physician, read, [.]EPR)")

    def test_empty_field_rejected(self):
        with pytest.raises(PolicySyntaxError):
            parse_statement("(Physician, , [.]EPR, treatment)")


class TestParsePolicy:
    def test_paper_policy_has_seven_statements(self):
        policy = parse_policy(PAPER_POLICY_TEXT)
        assert len(policy) == 7

    def test_comments_and_blanks_ignored(self):
        policy = parse_policy(
            """
            # the treatment block
            (Physician, read, [.]EPR/Clinical, treatment)

            (Physician, write, [.]EPR/Clinical, treatment)
            """
        )
        assert len(policy) == 2

    def test_error_reports_line_number(self):
        with pytest.raises(PolicySyntaxError) as excinfo:
            parse_policy("(A, read, X, p)\nbroken line\n")
        assert "line 2" in str(excinfo.value)

    def test_round_trip(self):
        policy = parse_policy(PAPER_POLICY_TEXT)
        reparsed = parse_policy(format_policy(policy))
        assert reparsed.statements == policy.statements
