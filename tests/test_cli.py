"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.bpmn import dumps
from repro.audit.xes import export_xes
from repro.cli import EXIT_BAD_INPUT, EXIT_INFRINGEMENT, EXIT_OK, main
from repro.scenarios import (
    clinical_trial_process,
    healthcare_treatment_process,
    paper_audit_trail,
)


@pytest.fixture
def ht_json(tmp_path):
    path = tmp_path / "treatment.json"
    path.write_text(dumps(healthcare_treatment_process()))
    return str(path)


@pytest.fixture
def ct_json(tmp_path):
    path = tmp_path / "trial.json"
    path.write_text(dumps(clinical_trial_process()))
    return str(path)


@pytest.fixture
def trail_xes(tmp_path):
    path = tmp_path / "trail.xes"
    path.write_text(export_xes(paper_audit_trail()))
    return str(path)


class TestValidate:
    def test_valid_process(self, ht_json, capsys):
        assert main(["validate", ht_json]) == EXIT_OK
        out = capsys.readouterr().out
        assert "well-founded" in out
        assert "GP" in out

    def test_invalid_process(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"process_id": "x", "elements": [{"id": "T", "type": "task",'
            ' "pool": "P"}], "flows": []}'
        )
        assert main(["validate", str(bad)]) == EXIT_BAD_INPUT
        assert "problem" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["validate", "/does/not/exist.json"]) == EXIT_BAD_INPUT


class TestEncode:
    def test_summary(self, ht_json, capsys):
        assert main(["encode", ht_json]) == EXIT_OK
        out = capsys.readouterr().out
        assert "purpose : treatment" in out
        assert "T01" in out

    def test_cows_output(self, ht_json, capsys):
        assert main(["encode", ht_json, "--format", "cows"]) == EXIT_OK
        assert "GP.T01" in capsys.readouterr().out

    def test_dot_output(self, ht_json, capsys):
        assert main(["encode", ht_json, "--format", "dot"]) == EXIT_OK
        assert capsys.readouterr().out.startswith("digraph")


class TestCheck:
    def test_compliant_case(self, ht_json, trail_xes, capsys):
        code = main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-1",
        ])
        assert code == EXIT_OK
        assert "compliant" in capsys.readouterr().out

    def test_infringing_case(self, ht_json, trail_xes, capsys):
        code = main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-11",
        ])
        assert code == EXIT_INFRINGEMENT
        assert "INFRINGEMENT" in capsys.readouterr().out

    def test_verbose_prints_steps(self, ht_json, trail_xes, capsys):
        main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-11", "--verbose",
        ])
        assert "step 0" in capsys.readouterr().out

    def test_unknown_case(self, ht_json, trail_xes, capsys):
        code = main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-404",
        ])
        assert code == EXIT_BAD_INPUT

    def test_bad_process_spec(self, trail_xes):
        code = main([
            "check", "--process", "no-colon.json",
            "--trail", trail_xes, "--case", "HT-1",
        ])
        assert code == EXIT_BAD_INPUT


class TestAudit:
    def test_full_audit_finds_infringements(self, ht_json, ct_json, trail_xes, capsys):
        code = main([
            "audit",
            "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}",
            "--trail", trail_xes,
            "--role", "Cardiologist:Physician",
        ])
        assert code == EXIT_INFRINGEMENT
        out = capsys.readouterr().out
        assert "HT-11" in out
        assert "5 with infringements" in out

    def test_without_role_hierarchy_ct_case_fails_too(
        self, ht_json, ct_json, trail_xes, capsys
    ):
        # Without Cardiologist:Physician, Bob's trial entries cannot match
        # the Physician pool: the audit reports one more infringing case.
        main([
            "audit",
            "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}",
            "--trail", trail_xes,
        ])
        assert "6 with infringements" in capsys.readouterr().out

    def test_sqlite_trail_input(self, ht_json, ct_json, tmp_path, capsys):
        from repro.audit import AuditStore

        db = tmp_path / "log.db"
        with AuditStore(str(db)) as store:
            store.append_many(paper_audit_trail().for_case("HT-1"))
        code = main([
            "audit", "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}", "--trail", str(db),
        ])
        assert code == EXIT_OK
        assert "HT-1" in capsys.readouterr().out


class TestGenerate:
    def test_generate_to_stdout(self, ht_json, capsys):
        code = main([
            "generate", "--process", f"HT:{ht_json}", "--cases", "2",
        ])
        assert code == EXIT_OK
        assert "<log" in capsys.readouterr().out

    def test_generated_trail_is_compliant(self, ht_json, ct_json, tmp_path, capsys):
        out = tmp_path / "generated.xes"
        assert main([
            "generate", "--process", f"HT:{ht_json}", "--cases", "3",
            "--out", str(out), "--seed", "4",
        ]) == EXIT_OK
        code = main([
            "audit", "--process", f"HT:{ht_json}", "--trail", str(out),
        ])
        assert code == EXIT_OK


class TestBpmnXmlInput:
    def test_validate_bpmn_file(self, tmp_path, capsys):
        from repro.bpmn import process_to_bpmn_xml

        path = tmp_path / "treatment.bpmn"
        path.write_text(process_to_bpmn_xml(healthcare_treatment_process()))
        assert main(["validate", str(path)]) == EXIT_OK
        assert "well-founded" in capsys.readouterr().out

    def test_check_with_bpmn_process(self, tmp_path, trail_xes, capsys):
        from repro.bpmn import process_to_bpmn_xml

        path = tmp_path / "treatment.bpmn"
        path.write_text(process_to_bpmn_xml(healthcare_treatment_process()))
        code = main([
            "check", "--process", f"HT:{path}",
            "--trail", trail_xes, "--case", "HT-11",
        ])
        assert code == EXIT_INFRINGEMENT
        out = capsys.readouterr().out
        assert "diagnosis" in out


class TestDemo:
    def test_demo_runs_paper_scenario(self, capsys):
        code = main(["demo"])
        assert code == EXIT_INFRINGEMENT  # the paper's trail has 5
        out = capsys.readouterr().out
        assert "HT-1" in out and "CT-1" in out
