"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.bpmn import dumps
from repro.audit.xes import export_xes
from repro.cli import EXIT_BAD_INPUT, EXIT_INFRINGEMENT, EXIT_OK, main
from repro.scenarios import (
    clinical_trial_process,
    healthcare_treatment_process,
    paper_audit_trail,
)


@pytest.fixture
def ht_json(tmp_path):
    path = tmp_path / "treatment.json"
    path.write_text(dumps(healthcare_treatment_process()))
    return str(path)


@pytest.fixture
def ct_json(tmp_path):
    path = tmp_path / "trial.json"
    path.write_text(dumps(clinical_trial_process()))
    return str(path)


@pytest.fixture
def trail_xes(tmp_path):
    path = tmp_path / "trail.xes"
    path.write_text(export_xes(paper_audit_trail()))
    return str(path)


class TestValidate:
    def test_valid_process(self, ht_json, capsys):
        assert main(["validate", ht_json]) == EXIT_OK
        out = capsys.readouterr().out
        assert "well-founded" in out
        assert "GP" in out

    def test_invalid_process(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"process_id": "x", "elements": [{"id": "T", "type": "task",'
            ' "pool": "P"}], "flows": []}'
        )
        assert main(["validate", str(bad)]) == EXIT_BAD_INPUT
        assert "problem" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["validate", "/does/not/exist.json"]) == EXIT_BAD_INPUT


class TestEncode:
    def test_summary(self, ht_json, capsys):
        assert main(["encode", ht_json]) == EXIT_OK
        out = capsys.readouterr().out
        assert "purpose : treatment" in out
        assert "T01" in out

    def test_cows_output(self, ht_json, capsys):
        assert main(["encode", ht_json, "--format", "cows"]) == EXIT_OK
        assert "GP.T01" in capsys.readouterr().out

    def test_dot_output(self, ht_json, capsys):
        assert main(["encode", ht_json, "--format", "dot"]) == EXIT_OK
        assert capsys.readouterr().out.startswith("digraph")


class TestCheck:
    def test_compliant_case(self, ht_json, trail_xes, capsys):
        code = main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-1",
        ])
        assert code == EXIT_OK
        assert "compliant" in capsys.readouterr().out

    def test_infringing_case(self, ht_json, trail_xes, capsys):
        code = main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-11",
        ])
        assert code == EXIT_INFRINGEMENT
        assert "INFRINGEMENT" in capsys.readouterr().out

    def test_verbose_prints_steps(self, ht_json, trail_xes, capsys):
        main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-11", "--verbose",
        ])
        assert "step 0" in capsys.readouterr().out

    def test_unknown_case(self, ht_json, trail_xes, capsys):
        code = main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-404",
        ])
        assert code == EXIT_BAD_INPUT

    def test_bad_process_spec(self, trail_xes):
        code = main([
            "check", "--process", "no-colon.json",
            "--trail", trail_xes, "--case", "HT-1",
        ])
        assert code == EXIT_BAD_INPUT


class TestAudit:
    def test_full_audit_finds_infringements(self, ht_json, ct_json, trail_xes, capsys):
        code = main([
            "audit",
            "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}",
            "--trail", trail_xes,
            "--role", "Cardiologist:Physician",
        ])
        assert code == EXIT_INFRINGEMENT
        out = capsys.readouterr().out
        assert "HT-11" in out
        assert "5 with infringements" in out

    def test_without_role_hierarchy_ct_case_fails_too(
        self, ht_json, ct_json, trail_xes, capsys
    ):
        # Without Cardiologist:Physician, Bob's trial entries cannot match
        # the Physician pool: the audit reports one more infringing case.
        main([
            "audit",
            "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}",
            "--trail", trail_xes,
        ])
        assert "6 with infringements" in capsys.readouterr().out

    def test_sqlite_trail_input(self, ht_json, ct_json, tmp_path, capsys):
        from repro.audit import AuditStore

        db = tmp_path / "log.db"
        with AuditStore(str(db)) as store:
            store.append_many(paper_audit_trail().for_case("HT-1"))
        code = main([
            "audit", "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}", "--trail", str(db),
        ])
        assert code == EXIT_OK
        assert "HT-1" in capsys.readouterr().out


class TestGenerate:
    def test_generate_to_stdout(self, ht_json, capsys):
        code = main([
            "generate", "--process", f"HT:{ht_json}", "--cases", "2",
        ])
        assert code == EXIT_OK
        assert "<log" in capsys.readouterr().out

    def test_generated_trail_is_compliant(self, ht_json, ct_json, tmp_path, capsys):
        out = tmp_path / "generated.xes"
        assert main([
            "generate", "--process", f"HT:{ht_json}", "--cases", "3",
            "--out", str(out), "--seed", "4",
        ]) == EXIT_OK
        code = main([
            "audit", "--process", f"HT:{ht_json}", "--trail", str(out),
        ])
        assert code == EXIT_OK


class TestBpmnXmlInput:
    def test_validate_bpmn_file(self, tmp_path, capsys):
        from repro.bpmn import process_to_bpmn_xml

        path = tmp_path / "treatment.bpmn"
        path.write_text(process_to_bpmn_xml(healthcare_treatment_process()))
        assert main(["validate", str(path)]) == EXIT_OK
        assert "well-founded" in capsys.readouterr().out

    def test_check_with_bpmn_process(self, tmp_path, trail_xes, capsys):
        from repro.bpmn import process_to_bpmn_xml

        path = tmp_path / "treatment.bpmn"
        path.write_text(process_to_bpmn_xml(healthcare_treatment_process()))
        code = main([
            "check", "--process", f"HT:{path}",
            "--trail", trail_xes, "--case", "HT-11",
        ])
        assert code == EXIT_INFRINGEMENT
        out = capsys.readouterr().out
        assert "diagnosis" in out


class TestTelemetryFlags:
    def _split_report_and_json(self, out: str):
        """The report precedes the snapshot; the JSON starts at the first
        line that is exactly '{'."""
        lines = out.splitlines()
        start = lines.index("{")
        return "\n".join(lines[:start]), "\n".join(lines[start:])

    def test_audit_metrics_stdout_keeps_infringement_exit_code(
        self, ht_json, ct_json, trail_xes, capsys
    ):
        import json

        code = main([
            "audit",
            "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}",
            "--trail", trail_xes,
            "--role", "Cardiologist:Physician",
            "--metrics", "-",
        ])
        assert code == EXIT_INFRINGEMENT
        out = capsys.readouterr().out
        report, snapshot_text = self._split_report_and_json(out)
        # the report is intact, not interleaved with the snapshot
        assert "5 with infringements" in report
        assert "HT-11" in report
        snapshot = json.loads(snapshot_text)
        assert snapshot["cases_audited_total"]["values"][0]["value"] == 8
        assert any(
            entry["labels"].get("kind") == "invalid-execution"
            for entry in snapshot["infringements_total"]["values"]
        )
        outcomes = {
            entry["labels"]["outcome"]
            for entry in snapshot["replay_entries_total"]["values"]
        }
        assert "rejected" in outcomes and "task" in outcomes
        assert snapshot["weaknext_cache_hits_total"]["values"][0]["value"] > 0
        assert snapshot["weaknext_cache_misses_total"]["values"][0]["value"] > 0
        assert snapshot["replay_seconds"]["series"][0]["count"] > 0
        assert snapshot["replay_seconds"]["series"][0]["sum"] > 0

    def test_audit_metrics_file_and_compliant_exit_code(
        self, ht_json, tmp_path, capsys
    ):
        import json

        out_xes = tmp_path / "ok.xes"
        assert main([
            "generate", "--process", f"HT:{ht_json}", "--cases", "2",
            "--out", str(out_xes), "--seed", "1",
        ]) == EXIT_OK
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "audit", "--process", f"HT:{ht_json}", "--trail", str(out_xes),
            "--metrics", str(metrics_path),
        ])
        assert code == EXIT_OK
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["cases_audited_total"]["values"][0]["value"] == 2
        # the report stream was not polluted by the file-bound snapshot
        assert "{" not in capsys.readouterr().out.splitlines()

    def test_audit_metrics_prometheus_format(
        self, ht_json, ct_json, trail_xes, tmp_path
    ):
        metrics_path = tmp_path / "metrics.prom"
        code = main([
            "audit",
            "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}",
            "--trail", trail_xes,
            "--metrics", str(metrics_path),
            "--metrics-format", "prometheus",
        ])
        assert code == EXIT_INFRINGEMENT
        text = metrics_path.read_text()
        assert "# TYPE cases_audited_total counter" in text
        assert 'infringements_total{kind="invalid-execution"}' in text
        assert "replay_seconds_bucket" in text

    def test_check_metrics_keeps_exit_codes(self, ht_json, trail_xes, tmp_path):
        metrics_path = tmp_path / "m.json"
        assert main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-1",
            "--metrics", str(metrics_path),
        ]) == EXIT_OK
        assert main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-11",
            "--metrics", str(metrics_path),
        ]) == EXIT_INFRINGEMENT

    def test_events_jsonl_written(self, ht_json, trail_xes, tmp_path):
        import json

        events_path = tmp_path / "events.jsonl"
        main([
            "check", "--process", f"HT:{ht_json}",
            "--trail", trail_xes, "--case", "HT-1",
            "--events", str(events_path),
        ])
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        assert any(e["event"] == "entry.replayed" for e in events)
        assert any(e["event"] == "weaknext.computed" for e in events)

    def test_trace_chrome_written(self, ht_json, ct_json, trail_xes, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        main([
            "audit",
            "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}",
            "--trail", trail_xes,
            "--trace", str(trace_path), "--trace-format", "chrome",
        ])
        events = json.loads(trace_path.read_text())
        assert any(e["name"] == "audit" for e in events)
        assert all(e["ph"] == "X" for e in events)


class TestStats:
    def test_stats_prints_report_and_telemetry_summary(
        self, ht_json, ct_json, trail_xes, capsys
    ):
        code = main([
            "stats",
            "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}",
            "--trail", trail_xes,
            "--role", "Cardiologist:Physician",
        ])
        assert code == EXIT_INFRINGEMENT  # mirrors audit's exit code
        out = capsys.readouterr().out
        assert "5 with infringements" in out
        assert "telemetry summary:" in out
        assert "cases_audited_total" in out
        assert "weaknext_cache_hits_total" in out
        assert "replay_seconds" in out

    def test_stats_compliant_trail_exits_ok(self, ht_json, tmp_path, capsys):
        out_xes = tmp_path / "ok.xes"
        main([
            "generate", "--process", f"HT:{ht_json}", "--cases", "2",
            "--out", str(out_xes), "--seed", "7",
        ])
        assert main([
            "stats", "--process", f"HT:{ht_json}", "--trail", str(out_xes),
        ]) == EXIT_OK


class TestGenerateTelemetry:
    def test_generate_metrics_counts_cases_and_entries(
        self, ht_json, tmp_path, capsys
    ):
        import json

        metrics_path = tmp_path / "gen.json"
        out_xes = tmp_path / "gen.xes"
        assert main([
            "generate", "--process", f"HT:{ht_json}", "--cases", "3",
            "--out", str(out_xes), "--metrics", str(metrics_path),
        ]) == EXIT_OK
        snapshot = json.loads(metrics_path.read_text())
        cases = snapshot["cases_generated_total"]["values"]
        assert cases == [{"labels": {"purpose": "treatment"}, "value": 3.0}]
        entries = snapshot["entries_generated_total"]["values"][0]["value"]
        assert entries >= 6  # min_steps=2 per case


class TestDemo:
    def test_demo_runs_paper_scenario(self, capsys):
        code = main(["demo"])
        assert code == EXIT_INFRINGEMENT  # the paper's trail has 5
        out = capsys.readouterr().out
        assert "HT-1" in out and "CT-1" in out


class TestAuditResilienceFlags:
    def sick_json(self, tmp_path):
        from repro.bpmn import ProcessBuilder
        from repro.bpmn.serialize import dumps as dump_process

        builder = ProcessBuilder("sick", purpose="sick")
        pool = builder.pool("Staff")
        pool.start_event("S").task("T")
        pool.exclusive_gateway("G1").exclusive_gateway("G2")
        pool.end_event("E")
        builder.chain("S", "T", "G1", "G2")
        builder.flow("G2", "G1")
        builder.flow("G2", "E")
        path = tmp_path / "sick.json"
        path.write_text(dump_process(builder.build(validate=False)))
        return str(path)

    def test_non_well_founded_case_reported_not_fatal(
        self, ht_json, tmp_path, capsys
    ):
        from datetime import datetime
        from repro.audit import AuditTrail, LogEntry, Status

        sick = self.sick_json(tmp_path)
        trail = AuditTrail(
            list(paper_audit_trail().for_case("HT-1"))
            + [LogEntry(
                user="Sam", role="Staff", action="work", obj=None,
                task="T", case="NW-1",
                timestamp=datetime(2010, 5, 1), status=Status.SUCCESS,
            )]
        )
        trail_path = tmp_path / "mixed.xes"
        trail_path.write_text(export_xes(trail))
        code = main([
            "audit", "--process", f"HT:{ht_json}",
            "--process", f"NW:{sick}", "--trail", str(trail_path),
            "--role", "Cardiologist:Physician",
        ])
        out = capsys.readouterr().out
        assert code == EXIT_INFRINGEMENT
        assert "UNDECIDABLE" in out
        assert "not auditable" in out

    def test_case_timeout_flag_parses_and_audits(
        self, ht_json, ct_json, trail_xes, capsys
    ):
        # a generous budget: behavior identical to the unbudgeted audit
        code = main([
            "audit", "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}", "--trail", trail_xes,
            "--role", "Cardiologist:Physician",
            "--case-timeout", "60", "--on-error", "skip",
        ])
        assert code == EXIT_INFRINGEMENT
        assert "HT-11" in capsys.readouterr().out

    def test_parallel_audit_via_workers_flag(
        self, ht_json, ct_json, trail_xes, capsys
    ):
        code = main([
            "audit", "--process", f"HT:{ht_json}",
            "--process", f"CT:{ct_json}", "--trail", trail_xes,
            "--role", "Cardiologist:Physician",
            "--workers", "2", "--retries", "1",
        ])
        out = capsys.readouterr().out
        assert code == EXIT_INFRINGEMENT
        assert "Parallel audit" in out
        assert "invalid-execution" in out

    def test_quarantine_mode_surfaces_dead_letters(
        self, ht_json, tmp_path, capsys
    ):
        from repro.audit import AuditStore
        from repro.testing import corrupt_store_row

        db = tmp_path / "log.db"
        with AuditStore(str(db)) as store:
            store.append_many(paper_audit_trail().for_case("HT-1"))
            corrupt_store_row(store, 3)
        code = main([
            "audit", "--process", f"HT:{ht_json}", "--trail", str(db),
            "--role", "Cardiologist:Physician",
            "--on-error", "quarantine",
        ])
        out = capsys.readouterr().out
        assert code == EXIT_INFRINGEMENT  # quarantined records taint the run
        assert "quarantined" in out

    def test_corrupt_store_without_quarantine_still_fails(
        self, ht_json, tmp_path, capsys
    ):
        from repro.audit import AuditStore
        from repro.testing import corrupt_store_row

        db = tmp_path / "log.db"
        with AuditStore(str(db)) as store:
            store.append_many(paper_audit_trail().for_case("HT-1"))
            corrupt_store_row(store, 3)
        code = main([
            "audit", "--process", f"HT:{ht_json}", "--trail", str(db),
        ])
        assert code == EXIT_BAD_INPUT
        assert "error" in capsys.readouterr().err


@pytest.fixture
def defective_json(tmp_path):
    from repro.bpmn import ProcessBuilder

    builder = ProcessBuilder("defective-review", purpose="review")
    reviewer = builder.pool("Reviewer")
    ghost = builder.pool("Ghost")
    reviewer.start_event("S")
    reviewer.task("T0")
    reviewer.exclusive_gateway("G")
    reviewer.task("B1")
    ghost.task("B2")
    reviewer.parallel_gateway("J")
    reviewer.task("TZ")
    reviewer.end_event("E")
    builder.chain("S", "T0", "G")
    builder.flow("G", "B1").flow("G", "B2")
    builder.flow("B1", "J").flow("B2", "J")
    builder.chain("J", "TZ", "E")
    path = tmp_path / "defective.json"
    path.write_text(dumps(builder.build(validate=False)))
    return str(path)


class TestLint:
    def test_clean_process_exits_ok(self, ht_json, capsys):
        assert main(["lint", ht_json]) == EXIT_OK
        assert "clean" in capsys.readouterr().out

    def test_defective_process_exits_one(self, defective_json, capsys):
        assert main(["lint", defective_json]) == EXIT_INFRINGEMENT
        out = capsys.readouterr().out
        assert "PC201" in out
        assert "PC203" in out

    def test_json_format(self, defective_json, capsys):
        import json

        assert main(["lint", defective_json, "--format", "json"]) == EXIT_INFRINGEMENT
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] > 0
        assert {d["code"] for d in payload["diagnostics"]} >= {"PC201", "PC203"}

    def test_sarif_format(self, defective_json, capsys):
        import json

        assert main(["lint", defective_json, "--format", "sarif"]) == EXIT_INFRINGEMENT
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        rule_ids = {
            r["id"] for r in document["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"PC201", "PC203"} <= rule_ids

    def test_policy_crosschecks(self, defective_json, tmp_path, capsys):
        policy = tmp_path / "review.policy"
        policy.write_text(
            "(Reviewer, read, [.]Dossier, review)\n"
            "(Reviewer, write, [.]Dossier/Notes, review)\n"
        )
        code = main(["lint", defective_json, "--policy", str(policy)])
        assert code == EXIT_INFRINGEMENT
        assert "PC301" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, ct_json, capsys):
        # clinical-trial carries a PC403 fragility warning but no errors
        assert main(["lint", ct_json]) == EXIT_OK
        assert main(["lint", ct_json, "--strict"]) == EXIT_INFRINGEMENT
        assert "PC403" in capsys.readouterr().out

    def test_multiple_processes_one_report(self, ht_json, defective_json, capsys):
        assert main(["lint", ht_json, defective_json]) == EXIT_INFRINGEMENT
        out = capsys.readouterr().out
        assert "defective-review" in out
        assert "2 process(es)" in out

    def test_out_file_written_with_summary(self, defective_json, tmp_path, capsys):
        out_path = tmp_path / "report.sarif"
        code = main([
            "lint", defective_json, "--format", "sarif", "--out", str(out_path),
        ])
        assert code == EXIT_INFRINGEMENT
        assert out_path.exists()
        assert "error(s)" in capsys.readouterr().out

    def test_bad_budget_rejected(self, ht_json, capsys):
        assert main(["lint", ht_json, "--budget", "0"]) == EXIT_BAD_INPUT
        assert "positive" in capsys.readouterr().err

    def test_missing_policy_file(self, ht_json, capsys):
        assert main(["lint", ht_json, "--policy", "/no/such.policy"]) == EXIT_BAD_INPUT

    def test_exhausted_budget_is_inconclusive_not_failing(self, ht_json, capsys):
        assert main(["lint", ht_json, "--budget", "3"]) == EXIT_OK
        assert "PC205" in capsys.readouterr().out


class TestValidateSilentCycles:
    def test_each_cycle_is_printed(self, tmp_path, capsys):
        from repro.bpmn import ProcessBuilder

        builder = ProcessBuilder("spin")
        pool = builder.pool("P")
        pool.start_event("S").task("T")
        pool.exclusive_gateway("G1").exclusive_gateway("G2")
        pool.end_event("E")
        builder.chain("S", "T", "G1", "G2")
        builder.flow("G2", "G1")
        builder.flow("G2", "E")
        path = tmp_path / "spin.json"
        path.write_text(dumps(builder.build(validate=False)))

        assert main(["validate", str(path)]) == EXIT_BAD_INPUT
        out = capsys.readouterr().out
        assert "silent cycle: " in out
        assert "NOT WELL-FOUNDED" in out
        assert "Algorithm 1 inapplicable" in out
