"""Tests for the insurance scenario — the framework outside healthcare."""

import pytest

from repro.bpmn import encode, is_well_founded, validate
from repro.core import (
    ComplianceChecker,
    DeviationKind,
    InfringementKind,
    PurposeControlAuditor,
    explain,
)
from repro.policy import AccessRequest, ObjectRef, PolicyDecisionPoint
from repro.scenarios.insurance import (
    INSURANCE_COMPLIANT_CASES,
    INSURANCE_REPURPOSED_CASES,
    claim_handling_process,
    insurance_audit_trail,
    insurance_consent_registry,
    insurance_policy,
    insurance_registry,
    insurance_role_hierarchy,
    insurance_user_directory,
    marketing_process,
)


class TestProcesses:
    def test_claim_process_valid(self):
        process = claim_handling_process()
        validate(process)
        assert is_well_founded(process)
        assert process.pools == [
            "Agent", "Adjuster", "Expert", "PaymentsOfficer",
        ]

    def test_marketing_process_valid(self):
        process = marketing_process()
        validate(process)
        assert is_well_founded(process)

    def test_registry(self):
        registry = insurance_registry()
        assert registry.purpose_of_case("CL-7") == "claimhandling"
        assert registry.purpose_of_case("MK-2") == "marketing"


class TestReplayVerdicts:
    @pytest.fixture(scope="class")
    def auditor(self):
        return PurposeControlAuditor(
            insurance_registry(), hierarchy=insurance_role_hierarchy()
        )

    @pytest.fixture(scope="class")
    def report(self, auditor):
        return auditor.audit(insurance_audit_trail())

    def test_compliant_cases(self, report):
        for case in INSURANCE_COMPLIANT_CASES:
            assert report.cases[case].compliant, case

    def test_harvesting_cases_detected(self, report):
        for case in INSURANCE_REPURPOSED_CASES:
            result = report.cases[case]
            assert not result.compliant, case
            assert result.infringements[0].kind is (
                InfringementKind.INVALID_EXECUTION
            )

    def test_cl2_is_open(self, report):
        # CL-2 was decided but neither settled nor explicitly closed yet.
        assert report.cases["CL-2"].compliant

    def test_harvest_diagnosed_as_wrong_start(self):
        registry = insurance_registry()
        checker = ComplianceChecker(
            registry.encoded_for("claimhandling"),
            insurance_role_hierarchy(),
        )
        entries = list(insurance_audit_trail().for_case("CL-10"))
        result = checker.check(entries)
        explanation = explain(checker, entries, result)
        assert explanation.kind is DeviationKind.WRONG_START
        assert "Agent.C01" in explanation.skipped


class TestPreventiveGap:
    """The Fig. 4 gap transplanted: the adjuster's profile reads are
    policy-legal under the claimed claim-handling purpose."""

    @pytest.fixture(scope="class")
    def pdp(self):
        return PolicyDecisionPoint(
            insurance_policy(),
            insurance_user_directory(),
            insurance_role_hierarchy(),
            insurance_registry(),
            insurance_consent_registry(),
        )

    def test_harvesting_read_is_permitted_preventively(self, pdp):
        request = AccessRequest(
            "Ade", "read",
            ObjectRef.parse("[Ravi]CustomerFile/Profile"), "C02", "CL-11",
        )
        assert pdp.evaluate(request).permit  # the gap Algorithm 1 closes

    def test_marketing_needs_consent(self, pdp):
        consented = AccessRequest(
            "Mika", "read",
            ObjectRef.parse("[Noor]CustomerFile/Profile"), "M02", "MK-1",
        )
        unconsented = AccessRequest(
            "Mika", "read",
            ObjectRef.parse("[Ravi]CustomerFile/Profile"), "M02", "MK-1",
        )
        assert pdp.evaluate(consented).permit
        assert not pdp.evaluate(unconsented).permit

    def test_clerk_generalization(self, pdp):
        # Amira is an Agent, which specializes Clerk.
        request = AccessRequest(
            "Amira", "read",
            ObjectRef.parse("[Noor]CustomerFile/Claims"), "C01", "CL-1",
        )
        assert pdp.evaluate(request).permit


class TestFullPipeline:
    def test_pdp_raises_no_false_positives(self):
        pdp = PolicyDecisionPoint(
            insurance_policy(),
            insurance_user_directory(),
            insurance_role_hierarchy(),
            insurance_registry(),
            insurance_consent_registry(),
        )
        auditor = PurposeControlAuditor(
            insurance_registry(),
            hierarchy=insurance_role_hierarchy(),
            pdp=pdp,
        )
        report = auditor.audit(insurance_audit_trail())
        # Only the harvesting cases are flagged, and only by the replay.
        assert set(report.infringing_cases) == INSURANCE_REPURPOSED_CASES
        kinds = {i.kind for i in report.infringements}
        assert kinds == {InfringementKind.INVALID_EXECUTION}


class TestTrailShape:
    def test_case_inventory(self):
        trail = insurance_audit_trail()
        assert set(trail.cases()) == (
            INSURANCE_COMPLIANT_CASES | INSURANCE_REPURPOSED_CASES
        )

    def test_expert_round_trip_in_cl1(self):
        trail = insurance_audit_trail().for_case("CL-1")
        tasks = [e.task for e in trail]
        assert "C10" in tasks  # the expert assessment happened
        assert tasks.index("C10") < tasks.index("C04")

    def test_failure_entry_present(self):
        failures = [e for e in insurance_audit_trail() if e.failed]
        assert len(failures) == 1
        assert failures[0].task == "C02"
