"""Tests for the synthetic process families and the hospital workload."""

import pytest

from repro.bpmn import encode, is_well_founded, validate
from repro.core import ComplianceChecker, PurposeControlAuditor
from repro.scenarios import (
    hospital_day,
    loop_process,
    parallel_process,
    process_registry,
    role_hierarchy,
    sequential_process,
    staged_xor_process,
    xor_process,
)


class TestProcessFamilies:
    @pytest.mark.parametrize("n", [1, 3, 8])
    def test_sequential_valid(self, n):
        process = sequential_process(n)
        validate(process)
        assert len(process.task_ids) == n

    @pytest.mark.parametrize("n", [2, 4])
    def test_xor_valid(self, n):
        process = xor_process(n)
        validate(process)
        assert len(process.task_ids) == n + 1

    @pytest.mark.parametrize("n", [1, 3])
    def test_loop_valid_and_well_founded(self, n):
        process = loop_process(n)
        validate(process)
        assert is_well_founded(process)

    @pytest.mark.parametrize("n", [2, 3])
    def test_parallel_valid(self, n):
        validate(parallel_process(n))

    def test_staged_xor_valid(self):
        validate(staged_xor_process(3, width=2))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            sequential_process(0)
        with pytest.raises(ValueError):
            xor_process(1)
        with pytest.raises(ValueError):
            loop_process(0)
        with pytest.raises(ValueError):
            parallel_process(1)
        with pytest.raises(ValueError):
            staged_xor_process(0)

    def test_families_encode(self):
        for process in (
            sequential_process(3),
            xor_process(2),
            loop_process(2),
            parallel_process(2),
            staged_xor_process(2),
        ):
            encoded = encode(process)
            assert encoded.tasks


class TestHospitalDay:
    @pytest.fixture(scope="class")
    def workload(self):
        return hospital_day(n_cases=20, violation_rate=0.25, seed=11)

    def test_case_count(self, workload):
        assert workload.case_count == 20
        assert set(workload.ground_truth) == set(workload.trail.cases())

    def test_violations_present(self, workload):
        assert 0 < workload.violation_count < 20

    def test_ground_truth_matches_algorithm(self, workload):
        checker = ComplianceChecker(workload.encoded, role_hierarchy())
        for case, expected in workload.ground_truth.items():
            verdict = checker.check(workload.trail.for_case(case)).compliant
            assert verdict == expected, case

    def test_auditor_precision_and_recall_are_perfect(self, workload):
        auditor = PurposeControlAuditor(
            process_registry(), hierarchy=role_hierarchy()
        )
        report = auditor.audit(workload.trail)
        flagged = set(report.infringing_cases)
        actual = {c for c, ok in workload.ground_truth.items() if not ok}
        assert flagged == actual

    def test_determinism(self):
        one = hospital_day(n_cases=5, violation_rate=0.2, seed=3)
        two = hospital_day(n_cases=5, violation_rate=0.2, seed=3)
        assert one.trail == two.trail
        assert one.ground_truth == two.ground_truth

    def test_zero_violation_rate(self):
        workload = hospital_day(n_cases=5, violation_rate=0.0, seed=1)
        assert workload.violation_count == 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            hospital_day(n_cases=5, violation_rate=1.5)
