"""Tests for the violation taxonomy of the hospital workload."""

import pytest

from repro.core import ComplianceChecker, DeviationKind, explain
from repro.scenarios import hospital_day, role_hierarchy
from repro.scenarios.workloads import VIOLATION_KINDS

FULL_MIX = {kind: 1.0 for kind in VIOLATION_KINDS}


@pytest.fixture(scope="module")
def workload():
    return hospital_day(
        n_cases=40, violation_rate=0.5, seed=17, violation_mix=FULL_MIX
    )


@pytest.fixture(scope="module")
def checker(workload):
    return ComplianceChecker(workload.encoded, role_hierarchy())


class TestTaxonomy:
    def test_kinds_recorded_for_every_violation(self, workload):
        flagged = {c for c, ok in workload.ground_truth.items() if not ok}
        assert set(workload.violation_kinds) == flagged

    def test_multiple_kinds_present(self, workload):
        assert len(set(workload.violation_kinds.values())) >= 3

    def test_every_violation_is_detected(self, workload, checker):
        for case, kind in workload.violation_kinds.items():
            result = checker.check(workload.trail.for_case(case))
            assert not result.compliant, (case, kind)

    def test_compliant_cases_still_compliant(self, workload, checker):
        for case, ok in workload.ground_truth.items():
            if ok:
                assert checker.check(workload.trail.for_case(case)).compliant

    def test_cases_of_kind(self, workload):
        total = sum(len(workload.cases_of_kind(k)) for k in VIOLATION_KINDS)
        assert total == workload.violation_count

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            hospital_day(3, violation_mix={"alien": 1.0})


class TestDiagnosisMatchesInjectedClass:
    """The explain() classifier should recover the injected class."""

    def expected_deviations(self, kind):
        return {
            "mimicry": {DeviationKind.WRONG_START},
            "wrong-role": {DeviationKind.WRONG_ROLE},
            "skip": {DeviationKind.WRONG_START},
            "reorder": {DeviationKind.WRONG_START, DeviationKind.WRONG_ROLE,
                        DeviationKind.SKIPPED_TASKS,
                        DeviationKind.NOT_REACHABLE},
        }[kind]

    def test_diagnoses(self, workload, checker):
        for case, kind in workload.violation_kinds.items():
            entries = workload.trail.for_case(case).entries
            result = checker.check(entries)
            diagnosis = explain(checker, entries, result)
            assert diagnosis is not None, case
            assert diagnosis.kind in self.expected_deviations(kind), (
                case, kind, diagnosis.kind,
            )
