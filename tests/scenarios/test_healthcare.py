"""Tests for the paper's scenario objects (Figs 1-4): structure checks and
the exact transcription of the figures."""

import pytest

from repro.bpmn import is_well_founded, validate
from repro.scenarios import (
    CLINICAL_TRIAL,
    TREATMENT,
    clinical_trial_process,
    consent_registry,
    healthcare_treatment_process,
    paper_audit_trail,
    paper_policy,
    role_hierarchy,
    user_directory,
)


class TestFig1TreatmentProcess:
    @pytest.fixture(scope="class")
    def process(self):
        return healthcare_treatment_process()

    def test_valid_and_well_founded(self, process):
        validate(process)
        assert is_well_founded(process)

    def test_pools_are_the_four_roles(self, process):
        assert process.pools == [
            "GP",
            "Cardiologist",
            "MedicalLabTech",
            "Radiologist",
        ]

    def test_all_paper_tasks_present(self, process):
        expected = {f"T{i:02d}" for i in range(1, 16)}
        assert process.task_ids == expected

    def test_t02_has_error_boundary_to_t01(self, process):
        assert process.error_target("T02") == "T01"

    def test_referral_message_links_pools(self, process):
        links = {
            (t.element_id, c.element_id) for t, c in process.message_links()
        }
        assert ("E1", "S3") in links  # referral GP -> Cardiologist
        assert ("E4", "S2") in links  # diagnosis Cardiologist -> GP

    def test_purpose_is_treatment(self, process):
        assert process.purpose == TREATMENT


class TestFig2ClinicalTrialProcess:
    @pytest.fixture(scope="class")
    def process(self):
        return clinical_trial_process()

    def test_valid_and_well_founded(self, process):
        validate(process)
        assert is_well_founded(process)

    def test_tasks_t91_to_t95(self, process):
        assert process.task_ids == {"T91", "T92", "T93", "T94", "T95"}

    def test_single_physician_pool(self, process):
        assert process.pools == ["Physician"]

    def test_t94_can_repeat(self, process):
        # the XOR gateway loops back to T94
        assert "T94" in process.outgoing("G90")

    def test_purpose_is_clinicaltrial(self, process):
        assert process.purpose == CLINICAL_TRIAL


class TestHierarchyAndDirectory:
    def test_specializations_of_physician(self):
        hierarchy = role_hierarchy()
        for role in ("GP", "Cardiologist", "Radiologist"):
            assert hierarchy.is_specialization_of(role, "Physician")

    def test_lab_tech_under_medical_tech(self):
        hierarchy = role_hierarchy()
        assert hierarchy.is_specialization_of("MedicalLabTech", "MedicalTech")
        assert not hierarchy.is_specialization_of("MedicalLabTech", "Physician")

    def test_staff_roles(self):
        directory = user_directory()
        assert directory.roles_of("John") == {"GP"}
        assert directory.roles_of("Bob") == {"Cardiologist"}

    def test_consents_match_section2(self):
        consents = consent_registry()
        assert consents.has_consented("Alice", CLINICAL_TRIAL)
        assert not consents.has_consented("Jane", CLINICAL_TRIAL)


class TestFig3Policy:
    def test_seven_statements(self):
        assert len(paper_policy()) == 7

    def test_consent_statement_present(self):
        consentful = [s for s in paper_policy() if s.requires_consent]
        assert len(consentful) == 1
        assert consentful[0].purpose == CLINICAL_TRIAL

    def test_purposes_used(self):
        purposes = {s.purpose for s in paper_policy()}
        assert purposes == {TREATMENT, CLINICAL_TRIAL}


class TestFig4Trail:
    @pytest.fixture(scope="class")
    def trail(self):
        return paper_audit_trail()

    def test_total_entries(self, trail):
        assert len(trail) == 28

    def test_cases_present(self, trail):
        assert set(trail.cases()) == {
            "HT-1", "HT-2", "CT-1",
            "HT-10", "HT-11", "HT-20", "HT-21", "HT-30",
        }

    def test_ht1_has_16_entries(self, trail):
        assert len(trail.for_case("HT-1")) == 16

    def test_failure_entry_is_the_cancel(self, trail):
        failures = [e for e in trail if e.failed]
        assert len(failures) == 1
        assert failures[0].action == "cancel"
        assert failures[0].task == "T02"
        assert failures[0].obj is None

    def test_first_entry_matches_figure(self, trail):
        first = trail[0]
        assert (first.user, first.role, first.action) == ("John", "GP", "read")
        assert str(first.obj) == "[Jane]EPR/Clinical"
        assert (first.task, first.case) == ("T01", "HT-1")

    def test_chronological(self, trail):
        times = [e.timestamp for e in trail]
        assert times == sorted(times)
