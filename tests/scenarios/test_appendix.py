"""Tests cross-checking the appendix figures: the hand-written COWS terms
against the BPMN builder + encoder versions (experiment E7)."""

import pytest

from repro.bpmn import encode, is_well_founded, validate
from repro.cows import LTS, CommLabel, format_label, parse
from repro.scenarios import (
    FIG7_COWS,
    FIG8_COWS,
    FIG9_COWS,
    FIG10_COWS,
    fig7_process,
    fig8_process,
    fig9_process,
    fig10_process,
)


def observable_traces_of_term(term, roles, tasks, max_length=25):
    lts = LTS(term)

    def keep(label):
        if not isinstance(label, CommLabel):
            return False
        partner = str(label.endpoint.partner)
        operation = str(label.endpoint.operation)
        return (partner in roles and operation in tasks) or operation == "Err"

    return {
        tuple(format_label(l) for l in t)
        for t in lts.traces(max_length, label_filter=keep)
    }


class TestHandWrittenTerms:
    """The paper's COWS terms produce exactly the paper's LTSs."""

    def test_fig7_lts(self):
        result = LTS(parse(FIG7_COWS)).explore()
        assert result.state_count == 3  # St1 -P.T-> St2 -P.E-> St3

    def test_fig8_no_double_execution(self):
        lts = LTS(parse(FIG8_COWS))
        for trace in lts.traces(max_length=20):
            labels = [format_label(l) for l in trace]
            assert not ("P.T1" in labels and "P.T2" in labels)

    def test_fig9_two_outcomes(self):
        traces = {
            tuple(format_label(l) for l in t)
            for t in LTS(parse(FIG9_COWS)).traces(max_length=20)
        }
        outcomes = {("sys.Err" in t, "sys.T2" in t) for t in traces}
        assert (True, False) in outcomes
        assert (False, True) in outcomes

    def test_fig10_six_state_cycle(self):
        result = LTS(parse(FIG10_COWS)).explore(max_states=100)
        assert result.complete
        assert result.state_count == 6
        labels = {format_label(l) for l in result.labels()}
        assert labels == {
            "P1.T1",
            "P1.E1",
            "P2.S3 (msg1)",
            "P2.T2",
            "P2.E2",
            "P1.S2 (msg2)",
        }


class TestEncoderAgreesWithHandWrittenTerms:
    """The library's encoder must produce observably equivalent behaviour."""

    @pytest.mark.parametrize(
        "factory, cows, roles, tasks",
        [
            (fig7_process, FIG7_COWS, {"P"}, {"T"}),
            (fig8_process, FIG8_COWS, {"P"}, {"T", "T1", "T2"}),
            (fig9_process, FIG9_COWS, {"P"}, {"T", "T1", "T2"}),
        ],
    )
    def test_observable_traces_match(self, factory, cows, roles, tasks):
        encoded = encode(factory())
        ours = observable_traces_of_term(encoded.term, roles, tasks)
        paper = observable_traces_of_term(parse(cows), roles, tasks)
        # Fig. 9's hand-written term abstracts the task trigger of T (the
        # paper's [[T]] omits marking semantics); compare maximal traces.
        assert ours == paper

    def test_fig10_observable_cycle_matches(self):
        encoded = encode(fig10_process())
        roles, tasks = {"P1", "P2"}, {"T1", "T2"}
        # Both systems loop forever; compare bounded projected prefixes.
        ours = observable_traces_of_term(encoded.term, roles, tasks, max_length=14)
        paper = observable_traces_of_term(parse(FIG10_COWS), roles, tasks, max_length=14)
        shortest_ours = min(len(t) for t in ours)
        shortest_paper = min(len(t) for t in paper)
        # Each observable window alternates T1, T2, T1, ...
        def alternates(trace):
            expected = ["P1.T1", "P2.T2"]
            return all(
                label == expected[i % 2] for i, label in enumerate(trace)
            )

        assert all(alternates(t) for t in ours)
        assert all(alternates(t) for t in paper)
        assert shortest_ours >= 2 and shortest_paper >= 2


class TestBpmnVersionsAreValid:
    @pytest.mark.parametrize(
        "factory", [fig7_process, fig8_process, fig9_process, fig10_process]
    )
    def test_valid_and_well_founded(self, factory):
        process = factory()
        validate(process)
        assert is_well_founded(process)
