"""The blocking serve perf gate must actually block.

``benchmarks/perf_gate.py`` is the script CI runs against the committed
baseline; these tests load it straight from its file (benchmarks/ is
not a package) and prove the two behaviours the gate exists for: an
unchanged report passes, and a synthetic >15% regression fails with a
non-zero exit code.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_module(name: str):
    path = REPO_ROOT / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gate():
    return _load_module("perf_gate")


@pytest.fixture
def report():
    return {
        "calibration_ops_per_s": 10_000_000.0,
        "entries_per_s": 12_000.0,
        "p99_latency_s": 0.0002,
        "shards": {"4": {"entries_per_s": 12_000.0}},
    }


class TestEvaluate:
    def test_identical_reports_pass(self, gate, report):
        ok, messages = gate.evaluate(report, report)
        assert ok
        assert all("REGRESSION" not in m for m in messages)

    def test_throughput_regression_beyond_threshold_fails(
        self, gate, report
    ):
        slower = dict(report, entries_per_s=report["entries_per_s"] * 0.7)
        ok, messages = gate.evaluate(slower, report, threshold=0.15)
        assert not ok
        assert any("throughput" in m and "REGRESSION" in m for m in messages)

    def test_latency_regression_beyond_threshold_fails(self, gate, report):
        slower = dict(report, p99_latency_s=report["p99_latency_s"] * 1.5)
        ok, _ = gate.evaluate(slower, report, threshold=0.15)
        assert not ok

    def test_regression_within_threshold_passes(self, gate, report):
        slightly = dict(
            report,
            entries_per_s=report["entries_per_s"] * 0.9,
            p99_latency_s=report["p99_latency_s"] * 1.1,
        )
        ok, _ = gate.evaluate(slightly, report, threshold=0.15)
        assert ok

    def test_calibration_normalization_absorbs_machine_speed(
        self, gate, report
    ):
        # The same engine on a machine half as fast: throughput halves
        # and latency doubles, but so does the calibration loop — the
        # normalized comparison must still pass.
        half_speed = {
            "calibration_ops_per_s": report["calibration_ops_per_s"] / 2,
            "entries_per_s": report["entries_per_s"] / 2,
            "p99_latency_s": report["p99_latency_s"] * 2,
        }
        ok, _ = gate.evaluate(half_speed, report, threshold=0.15)
        assert ok

    def test_nonpositive_calibration_is_rejected(self, gate, report):
        broken = dict(report, calibration_ops_per_s=0.0)
        with pytest.raises(ValueError):
            gate.evaluate(broken, report)

    def test_table_tier_slower_than_lazy_fails(self, gate, report):
        # The dense table exists to be the fast tier; dropping >15%
        # below lazy-DFA replay means the tier itself regressed.
        current = dict(
            report,
            compiled_table={
                "table_entries_per_s": 8_000.0,
                "lazy_entries_per_s": 10_000.0,
                "speedup_vs_lazy": 0.8,
            },
        )
        ok, messages = gate.evaluate(current, report, threshold=0.15)
        assert not ok
        assert any("table tier" in m and "REGRESSION" in m for m in messages)

    def test_table_tier_faster_than_lazy_passes(self, gate, report):
        current = dict(
            report,
            compiled_table={
                "table_entries_per_s": 12_000.0,
                "lazy_entries_per_s": 10_000.0,
                "speedup_vs_lazy": 1.2,
            },
        )
        ok, _ = gate.evaluate(current, report, threshold=0.15)
        assert ok

    def test_wal_tax_is_anchored_on_the_baseline(self, gate, report):
        # A fixed append cost looks relatively worse every time the
        # plain path speeds up; the gate must compare against the
        # baseline's tax, not an absolute 1.0.
        baseline = dict(report, wal={"relative_to_plain": 0.70})
        steady = dict(report, wal={"relative_to_plain": 0.68})
        ok, _ = gate.evaluate(steady, baseline, threshold=0.15)
        assert ok
        worse = dict(report, wal={"relative_to_plain": 0.50})
        ok, messages = gate.evaluate(worse, baseline, threshold=0.15)
        assert not ok
        assert any("wal" in m and "REGRESSION" in m for m in messages)

    def test_wal_tax_without_baseline_section_anchors_at_one(
        self, gate, report
    ):
        # First run after adding the wal section: the baseline has no
        # entry yet, so the anchor falls back to 1.0 (plain parity).
        current = dict(report, wal={"relative_to_plain": 0.90})
        ok, _ = gate.evaluate(current, report, threshold=0.15)
        assert ok
        tanked = dict(report, wal={"relative_to_plain": 0.60})
        ok, _ = gate.evaluate(tanked, report, threshold=0.15)
        assert not ok


class TestMainExitCodes:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_exits_zero(self, gate, report, tmp_path, capsys):
        current = self._write(tmp_path / "current.json", report)
        baseline = self._write(tmp_path / "baseline.json", report)
        status = gate.main(["--current", current, "--baseline", baseline])
        assert status == 0
        assert "PASS" in capsys.readouterr().out

    def test_synthetic_regression_exits_nonzero(
        self, gate, report, tmp_path, capsys
    ):
        # The CI acceptance scenario: a >15% throughput drop must fail
        # the job.
        regressed = dict(report, entries_per_s=report["entries_per_s"] * 0.8)
        current = self._write(tmp_path / "current.json", regressed)
        baseline = self._write(tmp_path / "baseline.json", report)
        status = gate.main(
            ["--current", current, "--baseline", baseline, "--threshold", "0.15"]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "REGRESSION" in out

    def test_missing_baseline_passes_with_warning(
        self, gate, report, tmp_path, capsys
    ):
        current = self._write(tmp_path / "current.json", report)
        status = gate.main(
            ["--current", current, "--baseline", str(tmp_path / "nope.json")]
        )
        assert status == 0
        assert "no baseline" in capsys.readouterr().out

    def test_missing_current_fails(self, gate, tmp_path, capsys):
        baseline = self._write(tmp_path / "baseline.json", {"x": 1})
        status = gate.main(
            ["--current", str(tmp_path / "nope.json"), "--baseline", baseline]
        )
        assert status == 1


class TestCommittedBaseline:
    def test_the_committed_baseline_is_gateable(self, gate):
        """The file CI compares against must parse and normalize."""
        baseline_path = (
            REPO_ROOT / "benchmarks" / "baselines" / "BENCH_serve.json"
        )
        baseline = json.loads(baseline_path.read_text())
        normalized = gate.normalized(baseline)
        assert normalized["throughput"] > 0
        assert normalized["p99"] > 0
        ok, _ = gate.evaluate(baseline, baseline)
        assert ok
