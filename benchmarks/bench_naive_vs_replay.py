"""E8 — the naive trace-enumeration baseline vs Algorithm 1 (Section 1).

The paper dismisses "generate the transition system, then check the
trail against its traces" because the trace set explodes (and is
infinite under loops).  This bench regenerates that claim as numbers:

* on staged-XOR processes the trace count grows as ``width**stages``
  while Algorithm 1's replay work stays linear in the trail;
* on a loop the naive checker must truncate (UNDETERMINED verdicts)
  whereas replay decides instantly.
"""

from datetime import datetime, timedelta

import pytest

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.core import ComplianceChecker, NaiveChecker, Verdict
from repro.scenarios import loop_process, staged_xor_process


def entries_for(tasks, role="Staff"):
    clock = datetime(2010, 1, 1)
    out = []
    for task in tasks:
        clock += timedelta(minutes=1)
        out.append(
            LogEntry(
                user="Sam", role=role, action="work", obj=None,
                task=task, case="C-1", timestamp=clock,
                status=Status.SUCCESS,
            )
        )
    return out


def first_branch_trail(stages):
    return entries_for([f"T{s}_1" for s in range(1, stages + 1)])


class TestTraceBlowUp:
    @pytest.mark.parametrize("stages", [2, 4, 6, 8])
    def test_trace_count_is_exponential(self, benchmark, table, stages):
        def run():
            encoded = encode(staged_xor_process(stages, width=2))
            naive = NaiveChecker(encoded, max_traces=100_000)
            count, truncated = naive.count_traces(max_depth=stages + 2)
            table.comment("E8: observable trace count of staged-XOR processes")
            table.row("stages", stages, "traces", count, "truncated", truncated)
            assert count == 2**stages or truncated

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestCrossover:
    @pytest.mark.parametrize("stages", [4, 7])
    def test_naive_check(self, benchmark, stages):
        encoded = encode(staged_xor_process(stages, width=2))
        naive = NaiveChecker(encoded)
        trail = first_branch_trail(stages)
        result = benchmark(naive.check, trail)
        assert result.compliant

    @pytest.mark.parametrize("stages", [4, 7])
    def test_replay_check(self, benchmark, stages):
        encoded = encode(staged_xor_process(stages, width=2))
        checker = ComplianceChecker(encoded)
        checker.check(first_branch_trail(stages))  # warm
        trail = first_branch_trail(stages)
        result = benchmark(checker.check, trail)
        assert result.compliant

    def test_crossover_table(self, benchmark, table):
        """The who-wins-by-how-much series of E8."""
        def run():
            import time

            table.comment(
                "E8: naive (enumerate + match) vs Algorithm 1 (replay), "
                "compliant trail of one entry per stage"
            )
            table.row("stages", "traces", "naive_s", "replay_warm_s", "speedup")
            for stages in (2, 4, 6, 8):
                encoded = encode(staged_xor_process(stages, width=2))
                trail = first_branch_trail(stages)
                naive = NaiveChecker(encoded, max_traces=100_000)
                started = time.perf_counter()
                naive_result = naive.check(trail)
                naive_elapsed = time.perf_counter() - started

                checker = ComplianceChecker(encoded)
                checker.check(trail)  # warm the WeakNext cache
                started = time.perf_counter()
                replay_result = checker.check(trail)
                replay_elapsed = time.perf_counter() - started

                assert naive_result.compliant and replay_result.compliant
                table.row(
                    stages,
                    naive_result.traces_enumerated,
                    f"{naive_elapsed:.4f}",
                    f"{replay_elapsed:.4f}",
                    f"{naive_elapsed / max(replay_elapsed, 1e-9):.0f}x",
                )

        benchmark.pedantic(run, rounds=1, iterations=1)


def choice_loop_process():
    """A loop whose body branches: infinitely many observable traces."""
    from repro.bpmn import ProcessBuilder

    builder = ProcessBuilder("choiceloop")
    pool = builder.pool("Staff")
    pool.start_event("S").task("T1").exclusive_gateway("G1")
    pool.task("T2").task("T3").exclusive_gateway("M")
    pool.exclusive_gateway("G").end_event("E")
    builder.chain("S", "T1", "G1")
    builder.flow("G1", "T2").flow("G1", "T3")
    builder.flow("T2", "M").flow("T3", "M")
    builder.chain("M", "G")
    builder.flow("G", "T1")
    builder.flow("G", "E")
    return builder.build()


class TestLoopsBreakTheBaseline:
    def test_naive_undetermined_on_loop(self, benchmark, table):
        def run():
            encoded = encode(choice_loop_process())
            naive = NaiveChecker(encoded, max_traces=3)
            # A non-compliant trail: the tiny budget cannot refute it
            # because the loop keeps generating more traces to check.
            bad = entries_for(["T2", "T1"])
            result = naive.check(bad)
            table.comment("E8: loops — the naive baseline cannot decide")
            table.row("verdict", result.verdict, "traces", result.traces_enumerated)
            assert result.verdict is Verdict.UNDETERMINED

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_replay_decides_loop_instantly(self, benchmark):
        encoded = encode(loop_process(2))
        checker = ComplianceChecker(encoded)
        bad = entries_for(["T2", "T1"])
        result = benchmark(checker.check, bad)
        assert not result.compliant

    def test_replay_accepts_many_iterations(self, benchmark):
        encoded = encode(loop_process(1))
        checker = ComplianceChecker(encoded)
        many = entries_for(["T1"] * 40)
        result = benchmark(checker.check, many)
        assert result.compliant
