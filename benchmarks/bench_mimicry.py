"""E13 — mimicry-attack resistance (Section 4, closing discussion).

Regenerates the paper's attack analysis as a detection table: naive
re-purposing and single-user mimicry are caught; colluding multi-role
mimicry and in-window case reuse are the acknowledged residual risks;
out-of-window case reuse is caught.
"""

from dataclasses import replace
from datetime import timedelta

import pytest

from repro.bpmn import encode
from repro.core import ComplianceChecker
from repro.scenarios import (
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
)


@pytest.fixture(scope="module")
def checker():
    c = ComplianceChecker(encode(healthcare_treatment_process()), role_hierarchy())
    c.check(paper_audit_trail().for_case("HT-1"))  # warm
    return c


@pytest.fixture(scope="module")
def legitimate():
    return list(paper_audit_trail().for_case("HT-1"))


def attacks(legitimate):
    solo = [replace(e, user="Bob", role="Cardiologist") for e in legitimate]
    closed_reuse = [*legitimate, legitimate[5].shifted(timedelta(days=30))]
    open_reuse = list(legitimate)
    open_reuse.insert(6, legitimate[5].shifted(timedelta(minutes=1)))
    return [
        ("naive re-purposing", list(paper_audit_trail().for_case("HT-11")), True),
        ("single-user mimicry", solo, True),
        ("colluding mimicry", list(legitimate), False),
        ("case reuse, closed case", closed_reuse, True),
        ("case reuse, open window", open_reuse, False),
    ]


class TestAttackTable:
    def test_detection_table(self, benchmark, checker, legitimate, table):
        def run():
            table.comment("E13: attack detection (Section 4)")
            table.row("attack", "detected", "rejected entry")
            for name, trail, should_detect in attacks(legitimate):
                result = checker.check(trail)
                detected = not result.compliant
                table.row(
                    name,
                    detected,
                    result.failed_index if detected else "-",
                )
                assert detected == should_detect, name

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_single_user_rejected_at_first_foreign_role(self, benchmark, checker, legitimate):
        def run():
            solo = [replace(e, user="Bob", role="Cardiologist") for e in legitimate]
            result = checker.check(solo)
            assert result.failed_index == 0  # T01 belongs to the GP pool

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestAttackRuntime:
    def test_mimicry_detection_cost(self, benchmark, checker):
        trail = paper_audit_trail().for_case("HT-11")
        result = benchmark(checker.check, trail)
        assert not result.compliant

    def test_solo_mimicry_detection_cost(self, benchmark, checker, legitimate):
        solo = [replace(e, user="Bob", role="Cardiologist") for e in legitimate]
        result = benchmark(checker.check, solo)
        assert not result.compliant
