"""Telemetry overhead: the zero-cost-when-disabled guarantee.

The observability layer must not tax the replay hot path when nobody
asked for it: the default (disabled) bundle binds shared no-op
instruments, so per-entry cost is a couple of empty method calls.  This
benchmark documents the measurement backing that claim:

* ``test_replay_disabled_telemetry`` / ``test_replay_enabled_telemetry``
  — pytest-benchmark timings of the same audit with and without a live
  registry;
* ``test_disabled_overhead_is_bounded`` — a min-of-repeats comparison
  asserting the disabled path is not measurably slower than the enabled
  path (it should be strictly faster; the generous bound only absorbs
  scheduler noise).
"""

import time

from repro.core import PurposeControlAuditor
from repro.obs import Telemetry
from repro.scenarios import paper_audit_trail, process_registry, role_hierarchy


def run_audit(telemetry=None):
    auditor = PurposeControlAuditor(
        process_registry(), hierarchy=role_hierarchy(), telemetry=telemetry
    )
    return auditor.audit(paper_audit_trail())


class TestReplayOverhead:
    def test_replay_disabled_telemetry(self, benchmark):
        report = benchmark(run_audit)
        assert len(report.cases) == 8

    def test_replay_enabled_telemetry(self, benchmark):
        def run():
            return run_audit(Telemetry.create())

        report = benchmark(run)
        assert len(report.cases) == 8

    def test_disabled_overhead_is_bounded(self, table):
        def best_of(runs, fn):
            times = []
            for _ in range(runs):
                fn()  # warm caches outside the measured call
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        disabled = best_of(5, lambda: run_audit())
        enabled = best_of(5, lambda: run_audit(Telemetry.create()))
        entries = len(paper_audit_trail())
        table.comment("telemetry overhead on the paper trail (best of 5)")
        table.row("entries", entries)
        table.row("disabled_s", f"{disabled:.6f}")
        table.row("enabled_s", f"{enabled:.6f}")
        table.row("disabled_per_entry_us", f"{disabled / entries * 1e6:.1f}")
        table.row("enabled_per_entry_us", f"{enabled / entries * 1e6:.1f}")
        # The disabled path binds no-op instruments and reads no clocks;
        # it must not be measurably slower than the instrumented path.
        assert disabled <= enabled * 1.25
