"""Telemetry overhead: the zero-cost-when-disabled guarantee.

The observability layer must not tax the replay hot path when nobody
asked for it: the default (disabled) bundle binds shared no-op
instruments, so per-entry cost is a couple of empty method calls.  This
benchmark documents the measurement backing that claim:

* ``test_replay_disabled_telemetry`` / ``test_replay_enabled_telemetry``
  — pytest-benchmark timings of the same audit with and without a live
  registry;
* ``test_disabled_overhead_is_bounded`` — a min-of-repeats comparison
  asserting the disabled path is not measurably slower than the enabled
  path (it should be strictly faster; the generous bound only absorbs
  scheduler noise);
* ``TestDisabledTracePaths`` — the structural half of the guarantee for
  the distributed-tracing additions: with telemetry disabled, the trace
  context, span, and OTLP-export code paths never read a clock and
  never mint ids.
"""

import time

from repro.core import PurposeControlAuditor
from repro.obs import NULL_REGISTRY, NULL_TRACER, OtlpExporter, Telemetry
from repro.scenarios import paper_audit_trail, process_registry, role_hierarchy


def run_audit(telemetry=None):
    auditor = PurposeControlAuditor(
        process_registry(), hierarchy=role_hierarchy(), telemetry=telemetry
    )
    return auditor.audit(paper_audit_trail())


class TestReplayOverhead:
    def test_replay_disabled_telemetry(self, benchmark):
        report = benchmark(run_audit)
        assert len(report.cases) == 8

    def test_replay_enabled_telemetry(self, benchmark):
        def run():
            return run_audit(Telemetry.create())

        report = benchmark(run)
        assert len(report.cases) == 8

    def test_disabled_overhead_is_bounded(self, table):
        def best_of(runs, fn):
            times = []
            for _ in range(runs):
                fn()  # warm caches outside the measured call
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        disabled = best_of(5, lambda: run_audit())
        enabled = best_of(5, lambda: run_audit(Telemetry.create()))
        entries = len(paper_audit_trail())
        table.comment("telemetry overhead on the paper trail (best of 5)")
        table.row("entries", entries)
        table.row("disabled_s", f"{disabled:.6f}")
        table.row("enabled_s", f"{enabled:.6f}")
        table.row("disabled_per_entry_us", f"{disabled / entries * 1e6:.1f}")
        table.row("enabled_per_entry_us", f"{enabled / entries * 1e6:.1f}")
        # The disabled path binds no-op instruments and reads no clocks;
        # it must not be measurably slower than the instrumented path.
        assert disabled <= enabled * 1.25


class TestDisabledTracePaths:
    """The NULL tracer must stay free of clock reads and id minting
    through every code path the distributed-tracing layer added."""

    def _arm(self, monkeypatch):
        import repro.obs.trace as trace_module

        def boom(*args):  # pragma: no cover - must never run
            raise AssertionError("clock/entropy read on the disabled path")

        monkeypatch.setattr(trace_module.time, "perf_counter", boom)
        monkeypatch.setattr(trace_module.time, "time", boom)
        monkeypatch.setattr(trace_module.os, "urandom", boom)

    def test_null_tracer_span_paths_read_nothing(self, monkeypatch):
        from repro.obs import TraceContext

        self._arm(monkeypatch)
        parent = TraceContext("ab" * 16, "cd" * 8)
        with NULL_TRACER.span("serve.ingest", parent=parent, case="HT-1"):
            with NULL_TRACER.span("serve.replay", links=(parent,)):
                pass
        assert NULL_TRACER.current_context() is None
        assert (
            NULL_TRACER.record_span("audit.case", 0.0, 0.0, parent=parent)
            is None
        )
        assert NULL_TRACER.epoch_unix_s == 0.0

    def test_otlp_export_of_disabled_bundle_is_inert(
        self, monkeypatch, tmp_path
    ):
        self._arm(monkeypatch)
        destination = tmp_path / "otlp.jsonl"
        exporter = OtlpExporter(str(destination))
        written = exporter.export(tracer=NULL_TRACER, registry=NULL_REGISTRY)
        assert written == 0
        assert not destination.exists()
