"""E7 — the appendix encodings (Figs 7-10): LTS regeneration cost and the
state/label counts the figures print."""

import pytest

from repro.cows import LTS, parse
from repro.scenarios import FIG7_COWS, FIG8_COWS, FIG9_COWS, FIG10_COWS

FIGURES = {
    "fig7": (FIG7_COWS, 3),
    "fig8": (FIG8_COWS, 11),
    "fig9": (FIG9_COWS, 10),
    "fig10": (FIG10_COWS, 6),
}


class TestAppendixLts:
    @pytest.mark.parametrize("figure", sorted(FIGURES))
    def test_explore(self, benchmark, table, figure):
        source, expected_states = FIGURES[figure]
        term = parse(source)

        def explore():
            return LTS(term).explore(max_states=500)

        result = benchmark(explore)
        table.comment(f"E7: LTS of {figure}")
        table.row("states", result.state_count)
        table.row("edges", result.edge_count)
        table.row("complete", result.complete)
        assert result.complete
        assert result.state_count == expected_states

    def test_parse_cost(self, benchmark):
        term = benchmark(parse, FIG8_COWS)
        assert term is not None
