"""E15 — infringement-severity metrics (Section 7 future work).

Shows that the severity model separates violation classes the way an
auditor would triage them (clinical-data harvesting above demographics
probing above object-less anomalies) and measures assessment cost.
"""

import statistics

import pytest

from repro.core import PurposeControlAuditor, SeverityModel
from repro.scenarios import (
    REPURPOSED_CASES,
    paper_audit_trail,
    process_registry,
    role_hierarchy,
)


@pytest.fixture(scope="module")
def audited():
    registry = process_registry()
    auditor = PurposeControlAuditor(
        registry,
        hierarchy=role_hierarchy(),
        severity_model=SeverityModel(registry),
    )
    return auditor.audit(paper_audit_trail())


class TestSeparation:
    def test_severity_table(self, benchmark, audited, table):
        def run():
            table.comment("E15: severity per infringing case of Fig. 4")
            table.row("case", "score", "progress", "sensitivity", "cross_purpose")
            for case in sorted(REPURPOSED_CASES):
                severity = audited.cases[case].severity
                table.row(
                    case,
                    f"{severity.score:.1f}",
                    f"{severity.progress:.0%}",
                    severity.sensitivity,
                    severity.cross_purpose,
                )
            clinical = [audited.cases[c].severity.score for c in ("HT-10", "HT-11", "HT-20")]
            demographic = [audited.cases[c].severity.score for c in ("HT-21", "HT-30")]
            assert min(clinical) > max(demographic)

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_scores_discriminate(self, benchmark, audited):
        def run():
            scores = [
                audited.cases[c].severity.score for c in REPURPOSED_CASES
            ]
            assert statistics.pstdev(scores) > 0  # not a constant score

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestAssessmentCost:
    def test_assess_cost(self, benchmark, audited):
        registry = process_registry()
        model = SeverityModel(registry)
        case_result = audited.cases["HT-11"]
        assessment = benchmark(model.assess, case_result)
        assert assessment.score > 0
