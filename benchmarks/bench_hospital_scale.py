"""E11 — hospital-scale auditing (the Geneva workload of Section 1).

Generates a synthetic day of treatment cases (the stand-in for the
20,000 records/day figure the paper cites), audits every case and
reports throughput plus detection quality against ground truth.
"""

import time

import pytest

from repro.core import ComplianceChecker, PurposeControlAuditor
from repro.scenarios import hospital_day, process_registry, role_hierarchy


@pytest.fixture(scope="module")
def day():
    return hospital_day(n_cases=120, violation_rate=0.1, seed=77)


@pytest.fixture(scope="module")
def warm_checker(day):
    checker = ComplianceChecker(day.encoded, role_hierarchy())
    for case in day.trail.cases():
        checker.check(day.trail.for_case(case))
    return checker


class TestDetectionQuality:
    def test_precision_recall_table(self, benchmark, day, warm_checker, table):
        def run():
            flagged = {
                case
                for case in day.trail.cases()
                if not warm_checker.check(day.trail.for_case(case)).compliant
            }
            actual = {c for c, ok in day.ground_truth.items() if not ok}
            tp = len(flagged & actual)
            precision = tp / len(flagged) if flagged else 1.0
            recall = tp / len(actual) if actual else 1.0
            table.comment("E11: detection quality on a synthetic hospital day")
            table.row("cases", day.case_count)
            table.row("entries", len(day.trail))
            table.row("injected violations", day.violation_count)
            table.row("flagged", len(flagged))
            table.row("precision", f"{precision:.3f}")
            table.row("recall", f"{recall:.3f}")
            assert precision == 1.0
            assert recall == 1.0

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestThroughput:
    def test_warm_day_audit(self, benchmark, day, warm_checker):
        cases = day.trail.cases()

        def audit_day():
            return [
                warm_checker.check(day.trail.for_case(case)).compliant
                for case in cases
            ]

        verdicts = benchmark(audit_day)
        assert len(verdicts) == day.case_count

    def test_extrapolation_table(self, benchmark, day, warm_checker, table):
        def run():
            cases = day.trail.cases()
            started = time.perf_counter()
            for case in cases:
                warm_checker.check(day.trail.for_case(case))
            elapsed = time.perf_counter() - started
            rate = len(cases) / elapsed
            table.comment("E11: throughput and the 20k/day extrapolation")
            table.row("cases_per_second", f"{rate:.0f}")
            table.row("entries_per_second", f"{len(day.trail) / elapsed:.0f}")
            table.row("minutes_for_20k_cases_single_core", f"{20_000 / rate / 60:.1f}")
            assert rate > 5  # sanity: tractable, as Section 7 expects

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_full_auditor_on_day(self, benchmark, day):
        auditor = PurposeControlAuditor(process_registry(), hierarchy=role_hierarchy())
        auditor.audit(day.trail)  # warm

        def audit():
            return auditor.audit(day.trail)

        report = benchmark(audit)
        actual = {c for c, ok in day.ground_truth.items() if not ok}
        assert set(report.infringing_cases) == actual
