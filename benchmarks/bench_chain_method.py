"""E12b — the Chain method baseline [27] vs Algorithm 1 (Section 6).

The paper criticizes the only other operational purpose model on two
counts: it forces action-level policy specification, and being
preventive it "lacks capability to reconstruct the sequence of acts
(when chains are executed concurrently)".  This bench reproduces the
attribution failure as a detection table and compares runtimes.
"""

from datetime import datetime, timedelta

import pytest

from repro.audit import AuditTrail, LogEntry, Status
from repro.bpmn import ProcessBuilder, encode
from repro.core import ComplianceChecker
from repro.policy import ChainPolicy, ObjectRef


def entry(action, obj, case, minute):
    return LogEntry(
        user="Eve", role="Physician", action=action,
        obj=ObjectRef.parse(obj), task=_task_of(action), case=case,
        timestamp=datetime(2010, 1, 1) + timedelta(minutes=minute),
        status=Status.SUCCESS,
    )


def _task_of(action):
    return {"read": "Examine", "write": "Diagnose"}[action]


@pytest.fixture(scope="module")
def chain_policy():
    policy = ChainPolicy()
    policy.add_chain("treatment", ["read EPR/Clinical", "write EPR/Diagnosis"])
    return policy


@pytest.fixture(scope="module")
def bpmn_checker():
    builder = ProcessBuilder("mini-treatment")
    pool = builder.pool("Physician")
    pool.start_event("S").task("Examine").task("Diagnose").end_event("E")
    builder.chain("S", "Examine", "Diagnose", "E")
    return ComplianceChecker(encode(builder.build()))


def masked_violation_trail():
    """C-2 writes a diagnosis without ever examining; interleaved with a
    legitimate C-1 double-read, the caseless chain matcher accepts it."""
    return AuditTrail([
        entry("read", "[Jane]EPR/Clinical", "C-1", 1),
        entry("read", "[Jane]EPR/Clinical", "C-1", 2),
        entry("write", "[Jane]EPR/Diagnosis", "C-1", 3),
        entry("write", "[Jane]EPR/Diagnosis", "C-2", 4),
    ])


class TestConcurrencyFailure:
    def test_detection_table(self, benchmark, chain_policy, bpmn_checker, table):
        def run():
            trail = masked_violation_trail()
            caseless = chain_policy.check_greedy(trail)
            per_case = chain_policy.check_per_case(trail)
            algorithm1 = {
                case: bpmn_checker.check(trail.for_case(case)).compliant
                for case in trail.cases()
            }
            table.comment(
                "E12b: a violation masked by concurrent chains "
                "(C-2 diagnoses without examining)"
            )
            table.row("technique", "verdict on the trail")
            table.row("chain method, caseless (deployable)",
                      "ACCEPTS (violation missed)" if caseless.compliant else "rejects")
            table.row("chain method, with case separation",
                      "rejects C-2" if not per_case["C-2"].compliant else "accepts")
            table.row("Algorithm 1 (cases from Def. 4 logs)",
                      "rejects C-2" if not algorithm1["C-2"] else "accepts")
            assert caseless.compliant           # the paper's criticism
            assert not per_case["C-2"].compliant
            assert algorithm1["C-1"] and not algorithm1["C-2"]

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestRuntime:
    def test_chain_matcher_runtime(self, benchmark, chain_policy):
        trail = masked_violation_trail()
        verdict = benchmark(chain_policy.check_greedy, trail)
        assert verdict.compliant

    def test_algorithm1_runtime_on_same_trail(self, benchmark, bpmn_checker):
        trail = masked_violation_trail().for_case("C-1")
        bpmn_checker.check(trail)  # warm
        result = benchmark(bpmn_checker.check, trail)
        assert result.compliant
