"""Serve-throughput observatory: the numbers behind ``BENCH_serve.json``.

Drives the :class:`~repro.serve.core.ShardRouter` directly (no sockets —
this measures the audit engine, not loopback TCP) with a synthetic
hospital day, at 1/2/4 shards, and writes ``BENCH_serve.json`` at the
repo root: entries/s, p99 ingest latency, and the per-shard scaling
curve.  CI runs this on every push and the blocking perf gate
(``benchmarks/perf_gate.py``) compares the result against the committed
baseline in ``benchmarks/baselines/``.

Machine variance is normalized away with a **calibration loop**: a
deterministic pure-Python workload whose ops/s stands in for the host's
single-thread speed.  The gate compares calibration-*relative* numbers,
so a baseline recorded on one machine remains meaningful on another.

Runs as plain pytest (no pytest-benchmark required) and as a script::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.obs import Telemetry
from repro.scenarios import hospital_day, process_registry, role_hierarchy
from repro.serve import ServeConfig, ShardRouter

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_serve.json"

SHARD_COUNTS = (1, 2, 4)
N_CASES = 80
ROUNDS = 5  # best-of, to shed scheduler noise


def calibration_ops_per_s(ops: int = 300_000) -> float:
    """Ops/s of a fixed pure-Python loop — the host-speed yardstick."""
    accumulator = 0
    started = time.perf_counter()
    for i in range(ops):
        accumulator = (accumulator * 31 + i) % 1_000_003
    elapsed = time.perf_counter() - started
    assert accumulator >= 0  # keep the loop un-eliminable
    return ops / elapsed


def _workload():
    return hospital_day(n_cases=N_CASES, violation_rate=0.1, seed=42)


def _measure_round(
    entries,
    shards: int,
    wal_dir: str | None = None,
    table: bool | None = None,
) -> dict:
    """One timed pass: submit every entry, wait for quiescence.

    ``table=None`` follows the service default (the dense-table tier is
    on whenever ``compiled`` is); ``False`` pins replay to the lazy-DFA
    tier, which is what the ``compiled_table`` A/B section compares
    against.
    """
    telemetry = Telemetry.create()
    router = ShardRouter(
        process_registry(),
        hierarchy=role_hierarchy(),
        config=ServeConfig(
            shards=shards, compiled=True, wal_dir=wal_dir, table=table
        ),
        telemetry=telemetry,
    )
    router.start()  # warm-up (encode + compile) is not measured
    started = time.perf_counter()
    for entry in entries:
        router.submit(entry)
    assert router.wait_idle(timeout=120)
    elapsed = time.perf_counter() - started
    router.drain()
    ingest = telemetry.registry.histogram("serve_ingest_seconds")
    return {
        "entries_per_s": len(entries) / elapsed,
        "p99_latency_s": ingest.quantile(0.99),
        "p50_latency_s": ingest.quantile(0.5),
    }


def measure(entries) -> dict:
    """Best-of-``ROUNDS`` serve throughput at every shard count."""
    per_shards: dict[str, dict] = {}
    for shards in SHARD_COUNTS:
        best: dict | None = None
        for _ in range(ROUNDS):
            sample = _measure_round(entries, shards)
            if best is None or sample["entries_per_s"] > best["entries_per_s"]:
                best = sample
        per_shards[str(shards)] = {
            key: round(value, 9) for key, value in best.items()
        }
    top = per_shards[str(SHARD_COUNTS[-1])]
    # The crash-safety tax.  A direct wall-clock A/B (plain round vs
    # WAL round) cannot resolve a ~10% effect here: measured round-to-
    # round noise on a shared box is ±30%, so any ratio of two noisy
    # end-to-end times flaps.  Instead the tax is measured where it
    # actually lives — the amortized per-entry cost of
    # ``WalWriter.append`` in a single-threaded microbench (stable to a
    # few percent) — and held against the plain path's per-entry budget
    # from this same report.  ``relative_to_plain`` is the throughput
    # ratio that tax implies if every appended microsecond lands on the
    # critical path (the worst case: append runs under the ingest
    # lock), so the gate errs toward catching regressions.
    append_us = _wal_append_us(entries)
    plain_us = 1e6 / top["entries_per_s"]
    wal_round: dict | None = None
    for _ in range(ROUNDS):
        with tempfile.TemporaryDirectory(prefix="bench-serve-wal-") as wal_dir:
            sample = _measure_round(entries, SHARD_COUNTS[-1], wal_dir=wal_dir)
        if wal_round is None or sample["entries_per_s"] > wal_round["entries_per_s"]:
            wal_round = sample
    # The replay-tier A/B at the top shard count: the per-shards rounds
    # above already run with the dense table on (the compiled default);
    # this pins the tier off so the gate can hold the table's edge over
    # lazy-DFA replay, measured in the same run on the same host.
    lazy_round: dict | None = None
    for _ in range(ROUNDS):
        sample = _measure_round(entries, SHARD_COUNTS[-1], table=False)
        if lazy_round is None or sample["entries_per_s"] > lazy_round["entries_per_s"]:
            lazy_round = sample
    return {
        "benchmark": "serve_throughput",
        "workload": {"cases": N_CASES, "entries": len(entries)},
        "calibration_ops_per_s": round(calibration_ops_per_s(), 3),
        "entries_per_s": top["entries_per_s"],
        "p99_latency_s": top["p99_latency_s"],
        "shards": per_shards,
        "compiled_table": {
            "table_entries_per_s": round(top["entries_per_s"], 9),
            "lazy_entries_per_s": round(lazy_round["entries_per_s"], 9),
            "speedup_vs_lazy": round(
                top["entries_per_s"] / lazy_round["entries_per_s"], 6
            ),
        },
        "wal": {
            "entries_per_s": round(wal_round["entries_per_s"], 9),
            "p99_latency_s": round(wal_round["p99_latency_s"], 9),
            "append_us": round(append_us, 4),
            "plain_us_per_entry": round(plain_us, 4),
            "relative_to_plain": round(plain_us / (plain_us + append_us), 6),
        },
    }


def _wal_append_us(entries, rounds: int = 3, per_round: int = 4000) -> float:
    """Amortized microseconds per ``WalWriter.append`` (best of rounds).

    Cycles the workload through a lone writer — framing, CRC, buffering,
    batch drains to the OS, and one closing fsync all land in the timed
    region, exactly the work one accepted entry adds to the ingest path.
    """
    from repro.serve.wal import WalWriter

    best = float("inf")
    with tempfile.TemporaryDirectory(prefix="bench-serve-walus-") as wal_dir:
        for round_index in range(rounds):
            writer = WalWriter(Path(wal_dir), f"bench-{round_index}")
            counts: dict[str, int] = {}
            started = time.perf_counter()
            for i in range(per_round):
                entry = entries[i % len(entries)]
                counts[entry.case] = counts.get(entry.case, 0) + 1
                writer.append(entry, counts[entry.case])
            writer.commit()
            elapsed = time.perf_counter() - started
            writer.close()
            best = min(best, elapsed * 1e6 / per_round)
    return best


def write_report(result: dict, path: Path = OUTPUT) -> Path:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return path


def test_serve_throughput_report():
    """The observatory entry point CI runs (also a correctness check)."""
    day = _workload()
    result = measure(list(day.trail))
    assert result["entries_per_s"] > 0
    assert result["p99_latency_s"] >= 0
    # More shards must not collapse throughput: the scaling curve is
    # the whole point of publishing per-shard numbers.
    assert set(result["shards"]) == {str(n) for n in SHARD_COUNTS}
    assert result["wal"]["entries_per_s"] > 0
    assert result["compiled_table"]["speedup_vs_lazy"] > 0
    write_report(result)


if __name__ == "__main__":
    day = _workload()
    report = measure(list(day.trail))
    destination = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {destination}")
