"""Alignment cost as a graded conformance signal (extension of E12).

Alignments measure *how far* a trail is from legitimate behaviour;
Algorithm 1's verdict is the cost==0 special case.  The table shows the
graded signal on the paper's cases and the bench measures alignment
search cost against plain replay.
"""

import pytest

from repro.bpmn import encode
from repro.core import ComplianceChecker, align
from repro.scenarios import (
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
)


@pytest.fixture(scope="module")
def checker():
    c = ComplianceChecker(encode(healthcare_treatment_process()), role_hierarchy())
    c.check(paper_audit_trail().for_case("HT-1"))  # warm
    return c


class TestGradedSignal:
    def test_alignment_table(self, benchmark, checker, table):
        def run():
            from repro.scenarios import clinical_trial_process

            ct_checker = ComplianceChecker(
                encode(clinical_trial_process()), role_hierarchy()
            )
            trail = paper_audit_trail()
            table.comment(
                "alignment cost per case of the Fig. 4 trail "
                "(0 == valid execution of the claimed purpose)"
            )
            table.row("case", "entries", "cost", "log moves", "model moves", "fitness")
            for case in trail.cases():
                entries = trail.for_case(case).entries
                case_checker = ct_checker if case.startswith("CT") else checker
                alignment = align(case_checker, entries)
                table.row(
                    case,
                    len(entries),
                    alignment.cost,
                    len(alignment.log_moves),
                    len(alignment.model_moves),
                    f"{alignment.fitness(len(entries)):.2f}",
                )
                if case in ("HT-1", "HT-2", "CT-1"):
                    assert alignment.is_perfect
                if case.startswith("HT-1") and case != "HT-1":
                    assert alignment.cost >= 1

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestSearchCost:
    def test_perfect_alignment_cost(self, benchmark, checker):
        entries = paper_audit_trail().for_case("HT-1").entries
        alignment = benchmark(align, checker, entries)
        assert alignment.is_perfect

    def test_replay_baseline(self, benchmark, checker):
        entries = paper_audit_trail().for_case("HT-1").entries
        result = benchmark(checker.check, entries)
        assert result.compliant

    def test_repair_search_cost(self, benchmark, checker):
        # A skipped radiology step: the alignment must discover the
        # model-move repair inside the message-flow machinery.
        entries = [
            e for e in paper_audit_trail().for_case("HT-1") if e.task != "T10"
        ]
        alignment = benchmark(align, checker, entries)
        assert alignment.complete
        assert alignment.cost >= 1
