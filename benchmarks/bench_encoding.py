"""E1/E2 — the paper's processes: structure, encoding cost, LTS footprint.

Figs 1 and 2 are diagrams; what can be *measured* about them is the size
of their formal artifacts: BPMN elements, the COWS encoding, and the
number of canonical states Algorithm 1's machinery touches.  The bench
also sweeps the synthetic families to show encoding cost grows linearly
with process size.
"""

import pytest

from repro.bpmn import encode, validate
from repro.core import Configuration, Observables, WeakNextEngine
from repro.cows.terms import Term
from repro.scenarios import (
    clinical_trial_process,
    healthcare_treatment_process,
    sequential_process,
    xor_process,
)


def term_size(term: Term) -> int:
    """Node count of a COWS term."""
    from repro.cows.terms import Choice, Parallel, Protect, Replicate, Request, Scope, TaskMarker

    if isinstance(term, Parallel):
        return 1 + sum(term_size(c) for c in term.components)
    if isinstance(term, Choice):
        return 1 + sum(term_size(b) for b in term.branches)
    if isinstance(term, Request):
        return 1 + term_size(term.continuation)
    if isinstance(term, (Scope, Protect, Replicate, TaskMarker)):
        return 1 + term_size(term.body)
    return 1


class TestPaperProcesses:
    @pytest.mark.parametrize(
        "factory", [healthcare_treatment_process, clinical_trial_process]
    )
    def test_encode_paper_process(self, benchmark, table, factory):
        process = factory()
        encoded = benchmark(encode, process)
        table.comment(f"E1/E2 encoding footprint of {process.process_id}")
        table.row("bpmn elements", len(process))
        table.row("pools (roles)", len(process.pools))
        table.row("tasks", len(process.task_ids))
        table.row("sequence flows", len(process.flows))
        table.row("cows term nodes", term_size(encoded.term))
        assert encoded.tasks


class TestValidationCost:
    def test_validate_treatment_process(self, benchmark):
        process = healthcare_treatment_process()
        benchmark(validate, process)


class TestEncodingScales:
    @pytest.mark.parametrize("n_tasks", [5, 20, 60])
    def test_sequential_encoding_scales_linearly(self, benchmark, table, n_tasks):
        process = sequential_process(n_tasks)
        encoded = benchmark(encode, process)
        nodes = term_size(encoded.term)
        table.comment("E1 scaling: term nodes per task stay constant")
        table.row("tasks", n_tasks, "term nodes", nodes, "nodes/task", round(nodes / n_tasks, 1))
        assert nodes < 40 * n_tasks

    @pytest.mark.parametrize("branches", [2, 4])
    def test_xor_encoding(self, benchmark, branches):
        process = xor_process(branches)
        encoded = benchmark(encode, process)
        assert encoded.tasks


class TestWeakNextFootprint:
    @pytest.mark.parametrize("n_tasks", [5, 15])
    def test_full_walk_weaknext_cost(self, benchmark, table, n_tasks):
        """Walking a whole sequential run: cost per observable step."""
        encoded = encode(sequential_process(n_tasks))

        def walk():
            engine = WeakNextEngine(Observables.from_encoded(encoded))
            conf = Configuration.initial(engine, encoded.term)
            steps = 0
            while conf.next:
                conf = Configuration.reached(engine, conf.next[0])
                steps += 1
            return steps, engine.silent_states_explored

        steps, silent = benchmark(walk)
        table.comment("E1: WeakNext cost over a full run")
        table.row("tasks", n_tasks, "observable steps", steps, "silent states", silent)
        assert steps == n_tasks
