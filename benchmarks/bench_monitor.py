"""Online-monitor throughput: the streaming mode of Section 4.

Measures per-entry observation cost on a hospital-day stream and the
cost of a temporal sweep over many open cases.
"""

from datetime import datetime, timedelta

import pytest

from repro.core import OnlineMonitor, TemporalConstraints
from repro.scenarios import hospital_day, process_registry, role_hierarchy


@pytest.fixture(scope="module")
def day():
    return hospital_day(n_cases=40, violation_rate=0.15, seed=31)


class TestStreamingThroughput:
    def test_stream_whole_day(self, benchmark, day, table):
        registry = process_registry()
        hierarchy = role_hierarchy()
        entries = day.trail.entries

        def stream():
            monitor = OnlineMonitor(registry, hierarchy=hierarchy)
            for entry in entries:
                monitor.observe(entry)
            return monitor

        monitor = benchmark(stream)
        flagged = set(monitor.infringing_cases())
        actual = {c for c, ok in day.ground_truth.items() if not ok}
        table.comment("streaming monitor on a generated day")
        table.row("entries", len(entries))
        table.row("cases", day.case_count)
        table.row("flagged", len(flagged))
        assert flagged == actual

    def test_sweep_cost(self, benchmark, day):
        monitor = OnlineMonitor(
            process_registry(),
            hierarchy=role_hierarchy(),
            temporal={
                "treatment": TemporalConstraints(
                    max_case_duration=timedelta(days=30)
                )
            },
        )
        for entry in day.trail:
            monitor.observe(entry)

        def sweep():
            return monitor.sweep(datetime(2010, 3, 2))

        violations = benchmark(sweep)
        assert isinstance(violations, list)
