"""E16 — compiled replay: cold vs. warm, compiled vs. interpreted.

The purpose-automaton compiler (:mod:`repro.compile`, PR: compiled
replay) claims that once the automaton is warm, replaying a case is one
dict lookup per entry — and that this beats the interpreted Algorithm 1
by a wide margin on the hospital-scale workload of Section 1/E11.  This
experiment measures both claims and records the tables CI and
EXPERIMENTS.md quote:

* **cold vs. warm** — the first pass pays lazy subset construction
  (and, on the disk tier, artifact deserialization); later passes are
  pure lookups;
* **compiled vs. interpreted** — same trails, same verdicts, wall-clock
  ratio.  The CI job ``compiled-replay`` runs this file and **fails**
  if the warm compiled path is not faster than the interpreted one.
"""

import time

import pytest

from repro.compile import (
    AutomatonCache,
    PurposeAutomaton,
    compile_automaton,
    fingerprint_encoded,
)
from repro.core import ComplianceChecker
from repro.scenarios import hospital_day, role_hierarchy

#: The warm compiled path must beat interpreted replay at least this
#: much on the hospital workload (the PR's acceptance floor; measured
#: ratios are far higher, see benchmarks/results/).
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def day():
    return hospital_day(n_cases=300, violation_rate=0.1, seed=77)


@pytest.fixture(scope="module")
def per_case(day):
    return {case: day.trail.for_case(case) for case in day.trail.cases()}


def interpreted_checker(day):
    return ComplianceChecker(day.encoded, role_hierarchy())


def compiled_checker(day, max_states=50_000):
    hierarchy = role_hierarchy()
    checker = ComplianceChecker(day.encoded, hierarchy)
    automaton = PurposeAutomaton(
        fingerprint=fingerprint_encoded(day.encoded, hierarchy=hierarchy),
        purpose=checker.purpose,
        roles=day.encoded.roles,
        hierarchy=hierarchy,
        max_states=max_states,
    )
    checker.attach_automaton(automaton)
    return checker, automaton


def audit_all(checker, per_case):
    return {
        case: checker.check(trail).compliant
        for case, trail in per_case.items()
    }


def timed(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


class TestColdVsWarm:
    def test_cold_vs_warm_table(self, benchmark, day, per_case, table):
        def run():
            # cold: fresh automaton, the pass pays subset construction
            checker, automaton = compiled_checker(day)
            cold_started = time.perf_counter()
            cold_verdicts = audit_all(checker, per_case)
            cold_s = time.perf_counter() - cold_started

            # warm: same automaton, pure transition lookups
            warm_s, warm_verdicts = timed(lambda: audit_all(checker, per_case))
            assert warm_verdicts == cold_verdicts

            # disk tier: artifact round trip, then replay without any
            # engine work (the automaton already covers the workload)
            load_started = time.perf_counter()
            clone = PurposeAutomaton.from_document(automaton.to_document())
            load_s = time.perf_counter() - load_started
            disk_checker = ComplianceChecker(day.encoded, role_hierarchy())
            disk_checker.attach_automaton(clone)
            disk_s, disk_verdicts = timed(
                lambda: audit_all(disk_checker, per_case)
            )
            assert disk_verdicts == cold_verdicts

            table.comment(
                "E16: cold vs warm compiled replay "
                f"({day.case_count} cases, {len(day.trail)} entries)"
            )
            table.row("automaton_states", automaton.state_count)
            table.row("automaton_transitions", automaton.transition_count)
            table.row("cold_pass_s", f"{cold_s:.4f}")
            table.row("warm_pass_s", f"{warm_s:.4f}")
            table.row("cold_over_warm", f"{cold_s / warm_s:.1f}x")
            table.row("artifact_rebuild_s", f"{load_s:.4f}")
            table.row("disk_tier_warm_pass_s", f"{disk_s:.4f}")
            assert warm_s < cold_s

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestCompiledVsInterpreted:
    def test_speedup_table(self, benchmark, day, per_case, table):
        def run():
            interpreted = interpreted_checker(day)
            compiled, automaton = compiled_checker(day)
            # warm both paths: WeakNext cache for the interpreted
            # engine, transition table for the compiled one
            base_verdicts = audit_all(interpreted, per_case)
            compiled_verdicts = audit_all(compiled, per_case)
            assert compiled_verdicts == base_verdicts
            assert compiled_verdicts == day.ground_truth

            interpreted_s, _ = timed(lambda: audit_all(interpreted, per_case))
            compiled_s, _ = timed(lambda: audit_all(compiled, per_case))
            speedup = interpreted_s / compiled_s

            entries = len(day.trail)
            table.comment(
                "E16: warm compiled vs warm interpreted replay "
                f"({day.case_count} cases, {entries} entries)"
            )
            table.row("interpreted_pass_s", f"{interpreted_s:.4f}")
            table.row("compiled_pass_s", f"{compiled_s:.4f}")
            table.row("speedup", f"{speedup:.1f}x")
            table.row(
                "interpreted_entries_per_s", f"{entries / interpreted_s:.0f}"
            )
            table.row("compiled_entries_per_s", f"{entries / compiled_s:.0f}")
            table.row("automaton_states", automaton.state_count)
            # the CI gate: compiled replay must never be slower, and on
            # this workload it must clear the acceptance floor
            assert speedup > 1.0, "compiled replay slower than interpreted"
            assert speedup >= MIN_SPEEDUP

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_warm_compiled_throughput(self, benchmark, day, per_case):
        compiled, _ = compiled_checker(day)
        audit_all(compiled, per_case)  # warm

        verdicts = benchmark(lambda: audit_all(compiled, per_case))
        assert verdicts == day.ground_truth


class TestArtifactReuse:
    def test_artifact_cache_round_trip_table(
        self, benchmark, day, per_case, table, tmp_path
    ):
        """Persisting and reloading the automaton is far cheaper than
        recompiling it — the reason parallel audits ship artifacts."""

        def run():
            checker, automaton = compiled_checker(day)
            compile_started = time.perf_counter()
            audit_all(checker, per_case)  # lazy compile while auditing
            compile_s = time.perf_counter() - compile_started

            cache = AutomatonCache(tmp_path)
            save_started = time.perf_counter()
            cache.save(automaton)
            save_s = time.perf_counter() - save_started
            load_started = time.perf_counter()
            loaded = cache.load(automaton.purpose, automaton.fingerprint)
            load_s = time.perf_counter() - load_started
            assert loaded is not None

            table.comment("E16: artifact persistence vs recompilation")
            table.row("first_audit_with_lazy_compile_s", f"{compile_s:.4f}")
            table.row("artifact_save_s", f"{save_s:.4f}")
            table.row("artifact_load_s", f"{load_s:.4f}")
            assert load_s < compile_s

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestEagerCompile:
    def test_exhaustive_compile_cost(self, benchmark, day, table):
        """`repro compile` cost: eager BFS over the canonical alphabet."""

        def run():
            checker = interpreted_checker(day)
            started = time.perf_counter()
            automaton = compile_automaton(checker)
            elapsed = time.perf_counter() - started
            table.comment("E16: eager `repro compile` of the Fig. 1 process")
            table.row("states", automaton.state_count)
            table.row("transitions", automaton.transition_count)
            table.row("compile_s", f"{elapsed:.3f}")

        benchmark.pedantic(run, rounds=1, iterations=1)
