"""D2 ablation — configuration-frontier deduplication (DESIGN.md).

Algorithm 1 keeps a *set* of configurations deduplicated on
``(state, active)``.  Without deduplication, OR-gateway combinatorics and
interleaved parallel work multiply identical configurations, inflating
both the frontier and the WeakNext workload.  This bench replays the
same interleaved trail with deduplication on and off.
"""

from datetime import datetime, timedelta

import pytest

from repro.audit import LogEntry, Status
from repro.bpmn import encode
from repro.core import ComplianceChecker
from repro.scenarios import parallel_process


def interleaved_trail(branches, repetitions=2):
    """T0 then several interleavings of parallel-branch work."""
    clock = datetime(2010, 1, 1)
    tasks = ["T0"]
    for _ in range(repetitions):
        tasks.extend(f"B{i}" for i in range(1, branches + 1))
    tasks.append("TZ")
    entries = []
    for task in tasks:
        clock += timedelta(minutes=1)
        entries.append(
            LogEntry(
                user="Sam", role="Staff", action="work", obj=None,
                task=task, case="C-1", timestamp=clock,
                status=Status.SUCCESS,
            )
        )
    return entries


@pytest.fixture(scope="module", params=[2, 3])
def encoded(request):
    return request.param, encode(parallel_process(request.param))


class TestDedupAblation:
    def test_with_dedup(self, benchmark, encoded):
        branches, enc = encoded
        checker = ComplianceChecker(enc, dedupe_frontier=True)
        trail = interleaved_trail(branches)
        checker.check(trail)  # warm
        result = benchmark(checker.check, trail)
        assert result.compliant

    def test_without_dedup(self, benchmark, encoded):
        branches, enc = encoded
        checker = ComplianceChecker(enc, dedupe_frontier=False)
        trail = interleaved_trail(branches)
        checker.check(trail)  # warm
        result = benchmark(checker.check, trail)
        assert result.compliant

    def test_frontier_size_table(self, benchmark, encoded, table):
        def run():
            branches, enc = encoded
            trail = interleaved_trail(branches)
            table.comment(
                f"D2 ablation: max frontier size, parallel process with "
                f"{branches} branches"
            )
            table.row("dedupe", "max frontier", "configurations created")
            for dedupe in (True, False):
                checker = ComplianceChecker(enc, dedupe_frontier=dedupe)
                result = checker.check(trail)
                max_frontier = max(s.frontier_size for s in result.steps)
                table.row(dedupe, max_frontier, result.configurations_created)
                assert result.compliant
            deduped = ComplianceChecker(enc, dedupe_frontier=True).check(trail)
            raw = ComplianceChecker(enc, dedupe_frontier=False).check(trail)
            assert max(s.frontier_size for s in deduped.steps) <= max(
                s.frontier_size for s in raw.steps
            )

        benchmark.pedantic(run, rounds=1, iterations=1)
