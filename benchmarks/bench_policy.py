"""E3 — the Fig. 3 policy: decision correctness and evaluation throughput.

Regenerates the access decisions the paper's narrative relies on (the
consent row included) and measures Definition-3 evaluation cost, the
preventive component that gates every data access in deployment.
"""

import pytest

from repro.policy import AccessRequest, ObjectRef, PolicyDecisionPoint
from repro.scenarios import (
    consent_registry,
    paper_policy,
    process_registry,
    role_hierarchy,
    user_directory,
)


@pytest.fixture(scope="module")
def pdp():
    return PolicyDecisionPoint(
        paper_policy(),
        user_directory(),
        role_hierarchy(),
        process_registry(),
        consent_registry(),
    )


def request(user, action, obj, task, case):
    return AccessRequest(user, action, ObjectRef.parse(obj), task, case)


#: The decision table of the running example (Sections 2-3).
PAPER_DECISIONS = [
    ("John", "read", "[Jane]EPR/Clinical", "T01", "HT-1", True),
    ("John", "write", "[Jane]EPR/Clinical", "T02", "HT-1", True),
    ("Bob", "read", "[Jane]EPR/Clinical", "T06", "HT-1", True),
    ("Bob", "read", "[Jane]EPR/Clinical", "T06", "HT-11", True),  # the gap
    ("Charlie", "write", "[Jane]EPR/Clinical/Scan", "T12", "HT-1", True),
    ("Dana", "write", "[Jane]EPR/Clinical/Tests", "T15", "HT-1", True),
    ("Dana", "write", "[Jane]EPR/Clinical", "T15", "HT-1", False),
    ("Bob", "read", "[Alice]EPR/Clinical", "T92", "CT-1", True),   # consented
    ("Bob", "read", "[Jane]EPR/Clinical", "T92", "CT-1", False),   # no consent
    ("Mallory", "read", "[Jane]EPR/Clinical", "T01", "HT-1", False),
]


class TestFig3Decisions:
    def test_paper_decision_table(self, benchmark, pdp, table):
        def run():
            table.comment("E3: Definition-3 decisions on the running example")
            table.row("user", "action", "object", "task", "case", "permit")
            for user, action, obj, task, case, expected in PAPER_DECISIONS:
                decision = pdp.evaluate(request(user, action, obj, task, case))
                table.row(user, action, obj, task, case, decision.permit)
                assert decision.permit == expected, (user, obj, case)

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestEvaluationThroughput:
    def test_permit_path(self, benchmark, pdp):
        req = request("John", "read", "[Jane]EPR/Clinical", "T01", "HT-1")
        decision = benchmark(pdp.evaluate, req)
        assert decision.permit

    def test_deny_path_scans_whole_policy(self, benchmark, pdp):
        req = request("Mallory", "read", "[Jane]EPR/Clinical", "T01", "HT-1")
        decision = benchmark(pdp.evaluate, req)
        assert not decision.permit

    def test_consent_path(self, benchmark, pdp):
        req = request("Bob", "read", "[Alice]EPR/Clinical", "T92", "CT-1")
        decision = benchmark(pdp.evaluate, req)
        assert decision.permit

    def test_batch_of_paper_requests(self, benchmark, pdp, table):
        requests = [
            request(u, a, o, t, c) for u, a, o, t, c, _ in PAPER_DECISIONS
        ]

        def evaluate_all():
            return sum(1 for r in requests if pdp.evaluate(r).permit)

        permits = benchmark(evaluate_all)
        table.comment("E3: batch throughput (10 mixed requests per round)")
        table.row("requests", len(requests), "permits", permits)
        assert permits == 7
