"""E9 — object independence (Section 7).

"Algorithm 1 is independent from the particular object under
investigation so that it is not necessary to repeat the analysis of the
same process instance for different objects."  This bench audits the
Fig. 4 trail for a growing number of objects: because case verdicts are
replayed on shared WeakNext caches, total cost stays essentially flat
instead of multiplying with the object count.
"""

import time

import pytest

from repro.core import PurposeControlAuditor
from repro.policy import ObjectRef
from repro.scenarios import paper_audit_trail, process_registry, role_hierarchy

OBJECTS = [
    "[Jane]EPR",
    "[Jane]EPR/Clinical",
    "[Jane]EPR/Clinical/Scan",
    "[Alice]EPR",
    "[Alice]EPR/Demographics",
    "[David]EPR",
    "[David]EPR/Clinical",
    "[David]EPR/Demographics",
]


@pytest.fixture(scope="module")
def warm_auditor():
    auditor = PurposeControlAuditor(process_registry(), hierarchy=role_hierarchy())
    auditor.audit(paper_audit_trail())  # warm every purpose's caches
    return auditor


class TestObjectIndependence:
    @pytest.mark.parametrize("n_objects", [1, 4, 8])
    def test_multi_object_audit(self, benchmark, warm_auditor, n_objects):
        trail = paper_audit_trail()
        objects = [ObjectRef.parse(o) for o in OBJECTS[:n_objects]]

        def audit_all():
            return [warm_auditor.audit_object(trail, obj) for obj in objects]

        reports = benchmark(audit_all)
        assert len(reports) == n_objects

    def test_flatness_table(self, benchmark, warm_auditor, table):
        def run():
            trail = paper_audit_trail()
            table.comment(
                "E9: cost of auditing k objects (warm auditor) — near flat, "
                "the per-object increment is case lookup only"
            )
            table.row("objects", "seconds", "cases audited")
            for n_objects in (1, 2, 4, 8):
                objects = [ObjectRef.parse(o) for o in OBJECTS[:n_objects]]
                started = time.perf_counter()
                total_cases = 0
                for obj in objects:
                    report = warm_auditor.audit_object(trail, obj)
                    total_cases += len(report.cases)
                elapsed = time.perf_counter() - started
                table.row(n_objects, f"{elapsed:.4f}", total_cases)

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_same_verdicts_from_any_object_view(self, benchmark, warm_auditor):
        """Verdicts for a case are identical no matter which object led
        the auditor to it."""
        def run():
            trail = paper_audit_trail()
            via_jane = warm_auditor.audit_object(trail, ObjectRef.parse("[Jane]EPR"))
            via_clinical = warm_auditor.audit_object(
                trail, ObjectRef.parse("[Jane]EPR/Clinical")
            )
            for case in set(via_jane.cases) & set(via_clinical.cases):
                assert (
                    via_jane.cases[case].compliant
                    == via_clinical.cases[case].compliant
                )

        benchmark.pedantic(run, rounds=1, iterations=1)
