"""Shared infrastructure for the benchmark suite.

Each benchmark regenerates one experiment of DESIGN.md's index (E1-E15 /
D2).  Besides the pytest-benchmark timings, every experiment writes the
paper-style result table to ``benchmarks/results/<name>.txt`` so the
rows survive pytest's output capturing; EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


class TableWriter:
    """Collects rows and persists them as an aligned text table."""

    def __init__(self, name: str):
        self.name = name
        self._lines: list[str] = []

    def comment(self, text: str) -> None:
        self._lines.append(f"# {text}")

    def row(self, *cells: object) -> None:
        self._lines.append(" | ".join(str(c) for c in cells))

    def flush(self) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        body = "\n".join(self._lines) + "\n"
        path.write_text(body)
        return path


@pytest.fixture
def table(request):
    writer = TableWriter(request.node.name.replace("[", "_").replace("]", ""))
    yield writer
    writer.flush()
