"""E4/E6 — replaying the Fig. 4 audit trail (the Fig. 6 walk).

Regenerates the verdict for every case of the paper's trail and measures
Algorithm 1's replay cost on the central HT-1 case, both cold (fresh
WeakNext cache — the cost of the very first audit of a purpose) and warm
(the steady state of a deployed auditor).
"""

import pytest

from repro.bpmn import encode
from repro.core import ComplianceChecker
from repro.scenarios import (
    COMPLIANT_CASES,
    OPEN_CASES,
    REPURPOSED_CASES,
    clinical_trial_process,
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
)


@pytest.fixture(scope="module")
def warm_checker():
    checker = ComplianceChecker(
        encode(healthcare_treatment_process()), role_hierarchy()
    )
    checker.check(paper_audit_trail().for_case("HT-1"))  # warm the caches
    return checker


class TestE4VerdictTable:
    def test_all_case_verdicts(self, benchmark, warm_checker, table):
        def run():
            trail = paper_audit_trail()
            ct_checker = ComplianceChecker(
                encode(clinical_trial_process()), role_hierarchy()
            )
            table.comment("E4: verdict per case of the Fig. 4 trail")
            table.row("case", "entries", "verdict", "failed at")
            for case in trail.cases():
                sub = trail.for_case(case)
                checker = ct_checker if case.startswith("CT") else warm_checker
                result = checker.check(sub)
                table.row(
                    case,
                    len(sub),
                    "compliant" if result.compliant else "INFRINGEMENT",
                    result.failed_index if not result.compliant else "-",
                )
                expected = case in COMPLIANT_CASES | OPEN_CASES
                assert result.compliant == expected, case

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestE6ReplayCost:
    def test_ht1_replay_warm(self, benchmark, warm_checker):
        trail = paper_audit_trail().for_case("HT-1")
        result = benchmark(warm_checker.check, trail)
        assert result.compliant

    def test_ht1_replay_cold(self, benchmark):
        trail = paper_audit_trail().for_case("HT-1")
        encoded = encode(healthcare_treatment_process())
        hierarchy = role_hierarchy()

        def cold():
            return ComplianceChecker(encoded, hierarchy).check(trail)

        result = benchmark(cold)
        assert result.compliant

    def test_mimicry_rejection_is_fast(self, benchmark, warm_checker):
        trail = paper_audit_trail().for_case("HT-11")
        result = benchmark(warm_checker.check, trail)
        assert not result.compliant

    def test_fig6_frontier_profile(self, benchmark, warm_checker, table):
        def run():
            result = warm_checker.check(paper_audit_trail().for_case("HT-1"))
            table.comment("E6: frontier size after each replayed entry (Fig. 6)")
            table.row("step", "task", "status", "outcome", "frontier")
            for step in result.steps:
                table.row(
                    step.index,
                    step.entry.task,
                    step.entry.status,
                    step.outcome,
                    step.frontier_size,
                )
            assert max(s.frontier_size for s in result.steps) <= 16

        benchmark.pedantic(run, rounds=1, iterations=1)
