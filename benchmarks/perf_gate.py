"""The blocking CI perf gate over ``BENCH_serve.json``.

Compares a freshly measured serve benchmark against the committed
baseline (``benchmarks/baselines/BENCH_serve.json``) and exits non-zero
on a regression beyond the threshold (default 15%, per ROADMAP item 2).

Raw entries/s are machine-dependent, so both sides are normalized by
their own ``calibration_ops_per_s`` (see ``bench_serve.py``): the gate
compares *entries per calibration op* — how much audit work the engine
does per unit of host speed — which survives moving the baseline
between machines.  Latency is normalized the same way (p99 × cal ops/s
= p99 in calibration-op units).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    python benchmarks/perf_gate.py \\
        --current BENCH_serve.json \\
        --baseline benchmarks/baselines/BENCH_serve.json \\
        --threshold 0.15

A missing baseline passes with a warning (first run of a new
benchmark); a malformed one fails — a gate that cannot read its
baseline must not silently wave regressions through.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def normalized(report: dict) -> dict:
    """Calibration-relative throughput and latency for one report."""
    calibration = float(report["calibration_ops_per_s"])
    if calibration <= 0:
        raise ValueError("calibration_ops_per_s must be positive")
    return {
        "throughput": float(report["entries_per_s"]) / calibration,
        "p99": float(report["p99_latency_s"]) * calibration,
    }


def evaluate(
    current: dict, baseline: dict, threshold: float = 0.15
) -> tuple[bool, list[str]]:
    """``(ok, messages)`` — ok is False on any >threshold regression."""
    now = normalized(current)
    then = normalized(baseline)
    messages: list[str] = []
    ok = True

    floor = then["throughput"] * (1.0 - threshold)
    verdict = "ok" if now["throughput"] >= floor else "REGRESSION"
    if now["throughput"] < floor:
        ok = False
    messages.append(
        f"throughput: {now['throughput']:.6f} vs baseline "
        f"{then['throughput']:.6f} entries/cal-op "
        f"(floor {floor:.6f}) — {verdict}"
    )

    if then["p99"] > 0:
        ceiling = then["p99"] * (1.0 + threshold)
        verdict = "ok" if now["p99"] <= ceiling else "REGRESSION"
        if now["p99"] > ceiling:
            ok = False
        messages.append(
            f"p99 latency: {now['p99']:.6f} vs baseline {then['p99']:.6f} "
            f"cal-ops (ceiling {ceiling:.6f}) — {verdict}"
        )

    # The crash-safety tax is gated self-relative (measured in the same
    # run on the same host, needing no calibration — see
    # ``bench_serve.measure`` for why this is a microbench-derived ratio
    # rather than a wall-clock A/B).
    # The dense-table tier is gated self-relative: measured
    # against the lazy-DFA tier in the same run on the same host, the
    # table path must never cost throughput — it exists to be the fast
    # tier, so falling beyond the threshold below lazy replay means the
    # tier (or its interning fast path) regressed.
    table = current.get("compiled_table")
    if table is not None:
        speedup = float(table["speedup_vs_lazy"])
        floor = 1.0 - threshold
        verdict = "ok" if speedup >= floor else "REGRESSION"
        if speedup < floor:
            ok = False
        messages.append(
            f"table tier: {speedup:.4f}x of lazy-DFA replay "
            f"({float(table['table_entries_per_s']):.0f} vs "
            f"{float(table['lazy_entries_per_s']):.0f} entries/s, "
            f"floor {floor:.4f}x) — {verdict}"
        )

    # The crash-safety tax is measured self-relative too, but gated
    # against the *baseline's* tax: the plain path's per-entry budget
    # shrinks every time replay gets faster, which mechanically inflates
    # a fixed per-entry append cost as a fraction — that is engine
    # progress, not a WAL regression.  What the gate must catch is the
    # append itself getting pricier relative to where it stood.
    wal = current.get("wal")
    if wal is not None:
        relative = float(wal["relative_to_plain"])
        baseline_wal = baseline.get("wal")
        anchor = (
            float(baseline_wal["relative_to_plain"])
            if baseline_wal is not None
            else 1.0
        )
        floor = anchor * (1.0 - threshold)
        verdict = "ok" if relative >= floor else "REGRESSION"
        if relative < floor:
            ok = False
        detail = ""
        if "append_us" in wal:
            detail = (
                f" (append {float(wal['append_us']):.2f}us on a "
                f"{float(wal['plain_us_per_entry']):.2f}us/entry budget)"
            )
        messages.append(
            f"wal throughput: {relative:.4f}x of plain "
            f"(floor {floor:.4f}x){detail} — {verdict}"
        )
    return ok, messages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, metavar="FILE")
    parser.add_argument("--baseline", required=True, metavar="FILE")
    parser.add_argument("--threshold", type=float, default=0.15)
    args = parser.parse_args(argv)

    current_path = Path(args.current)
    baseline_path = Path(args.baseline)
    if not current_path.exists():
        print(f"perf-gate: current report {current_path} not found")
        return 1
    if not baseline_path.exists():
        print(
            f"perf-gate: no baseline at {baseline_path} — passing "
            "(commit one to arm the gate)"
        )
        return 0
    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    ok, messages = evaluate(current, baseline, threshold=args.threshold)
    for message in messages:
        print(f"perf-gate: {message}")
    print(f"perf-gate: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
