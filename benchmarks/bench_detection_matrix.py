"""E12 at scale — per-violation-class detection: Algorithm 1 vs token replay.

Runs both techniques over a mixed hospital workload (all four injected
violation classes) and reports detection rates per class, plus the
diagnosis classes Algorithm 1's explainer assigns.
"""

from collections import Counter

import pytest

from repro.conformance import bpmn_to_petri, replay_trail
from repro.core import ComplianceChecker, explain
from repro.scenarios import (
    healthcare_treatment_process,
    hospital_day,
    role_hierarchy,
)
from repro.scenarios.workloads import VIOLATION_KINDS

FITNESS_THRESHOLD = 0.99


@pytest.fixture(scope="module")
def workload():
    return hospital_day(
        n_cases=60,
        violation_rate=0.5,
        seed=23,
        violation_mix={kind: 1.0 for kind in VIOLATION_KINDS},
    )


class TestScaleMatrix:
    def test_per_class_detection(self, benchmark, workload, table):
        def run():
            checker = ComplianceChecker(workload.encoded, role_hierarchy())
            net = bpmn_to_petri(healthcare_treatment_process())
            algorithm1_hits: Counter = Counter()
            replay_hits: Counter = Counter()
            totals: Counter = Counter()
            for case, kind in workload.violation_kinds.items():
                trail = workload.trail.for_case(case)
                totals[kind] += 1
                if not checker.check(trail).compliant:
                    algorithm1_hits[kind] += 1
                if replay_trail(net, trail).fitness < FITNESS_THRESHOLD:
                    replay_hits[kind] += 1
            # False positives on compliant cases.
            compliant = [c for c, ok in workload.ground_truth.items() if ok]
            a1_false = sum(
                1
                for c in compliant
                if not checker.check(workload.trail.for_case(c)).compliant
            )
            tr_false = sum(
                1
                for c in compliant
                if replay_trail(net, workload.trail.for_case(c)).fitness
                < FITNESS_THRESHOLD
            )
            table.comment(
                "E12 at scale: detection per injected violation class "
                f"(fitness threshold {FITNESS_THRESHOLD})"
            )
            table.row("class", "cases", "algorithm1", "token_replay")
            for kind in VIOLATION_KINDS:
                if totals[kind]:
                    table.row(
                        kind, totals[kind],
                        f"{algorithm1_hits[kind]}/{totals[kind]}",
                        f"{replay_hits[kind]}/{totals[kind]}",
                    )
            table.row("false positives (compliant)", len(compliant),
                      a1_false, tr_false)
            # Algorithm 1: perfect recall by construction, zero false pos.
            for kind in VIOLATION_KINDS:
                assert algorithm1_hits[kind] == totals[kind]
            assert a1_false == 0
            # Token replay penalizes open-but-valid cases: report only.

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_diagnosis_distribution(self, benchmark, workload, table):
        def run():
            checker = ComplianceChecker(workload.encoded, role_hierarchy())
            distribution: Counter = Counter()
            for case, kind in workload.violation_kinds.items():
                entries = workload.trail.for_case(case).entries
                result = checker.check(entries)
                diagnosis = explain(checker, entries, result)
                distribution[(kind, str(diagnosis.kind))] += 1
            table.comment("diagnosis classes per injected violation class")
            table.row("injected", "diagnosed", "count")
            for (kind, diagnosed), count in sorted(distribution.items()):
                table.row(kind, diagnosed, count)
            assert distribution

        benchmark.pedantic(run, rounds=1, iterations=1)
