"""E10 — per-case independence and parallelization (Section 7).

"The analysis of process instances is independent from each other,
allowing for massive parallelization."  What can be *verified* on any
machine is the independence: verdicts are identical however the cases
are partitioned, and a partition's cost is the sum of its own cases
only.  Wall-clock speedup additionally needs multiple cores; on a
single-core host (like this CI box) the multiprocessing path only adds
overhead, which the table reports honestly.
"""

import os
import time

import pytest

from repro.core import ComplianceChecker
from repro.core.parallel import audit_cases_parallel, verdicts_from_outcomes
from repro.scenarios import hospital_day, process_registry, role_hierarchy


@pytest.fixture(scope="module")
def workload():
    return hospital_day(n_cases=60, violation_rate=0.15, seed=9)


class TestIndependence:
    def test_partitions_agree_with_serial(self, benchmark, workload):
        def run():
            registry = process_registry()
            serial = audit_cases_parallel(registry, workload.trail, workers=1)
            parallel = audit_cases_parallel(registry, workload.trail, workers=2)
            assert (
                verdicts_from_outcomes(serial)
                == verdicts_from_outcomes(parallel)
                == workload.ground_truth
            )

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_case_order_does_not_matter(self, benchmark, workload):
        def run():
            checker = ComplianceChecker(workload.encoded, role_hierarchy())
            cases = workload.trail.cases()
            forward = {
                c: checker.check(workload.trail.for_case(c)).compliant for c in cases
            }
            backward = {
                c: checker.check(workload.trail.for_case(c)).compliant
                for c in reversed(cases)
            }
            assert forward == backward

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestThroughput:
    def test_serial_throughput(self, benchmark, workload, table):
        checker = ComplianceChecker(workload.encoded, role_hierarchy())
        cases = workload.trail.cases()
        for case in cases:  # warm
            checker.check(workload.trail.for_case(case))

        def audit_all():
            return sum(
                1
                for case in cases
                if checker.check(workload.trail.for_case(case)).compliant
            )

        compliant = benchmark(audit_all)
        table.comment("E10: warm serial throughput")
        table.row("cases", len(cases), "compliant", compliant)
        assert compliant == sum(workload.ground_truth.values())

    def test_worker_scaling_table(self, benchmark, workload, table):
        def run():
            registry = process_registry()
            cores = os.cpu_count() or 1
            table.comment(
                f"E10: worker scaling on a {cores}-core host (speedup needs "
                "cores; independence is what the algorithm guarantees)"
            )
            table.row("workers", "seconds", "correct")
            for workers in (1, 2):
                started = time.perf_counter()
                outcomes = audit_cases_parallel(registry, workload.trail, workers=workers)
                verdicts = verdicts_from_outcomes(outcomes)
                elapsed = time.perf_counter() - started
                table.row(workers, f"{elapsed:.2f}", verdicts == workload.ground_truth)
                assert verdicts == workload.ground_truth

        benchmark.pedantic(run, rounds=1, iterations=1)
