"""E12 — Algorithm 1 vs token-replay conformance checking (Section 6).

Related work: conformance checking [13] quantifies the fit between a log
and a process model, but "works with logs in which events only refer to
activities specified in the business process model" and cannot analyze
compliance with fine-grained data protection policies.  This bench runs
both techniques on the same injected violation classes and reports the
detection matrix plus the runtime of each.
"""

from datetime import datetime

import pytest

from repro.audit import (
    inject_mimicry_case,
    inject_task_skip,
    inject_wrong_role,
)
from repro.bpmn import encode
from repro.conformance import bpmn_to_petri, replay_trail
from repro.core import ComplianceChecker
from repro.scenarios import (
    healthcare_treatment_process,
    paper_audit_trail,
    role_hierarchy,
)

FITNESS_THRESHOLD = 0.99  # token replay "detects" when fitness < this


@pytest.fixture(scope="module")
def setup():
    process = healthcare_treatment_process()
    checker = ComplianceChecker(encode(process), role_hierarchy())
    net = bpmn_to_petri(process)
    base = paper_audit_trail().for_case("HT-1")
    return checker, net, base


def violation_trails(base):
    """(name, trail, algorithm1_should_detect, notes) tuples."""
    yield "compliant (HT-1)", base, False
    yield "mimicry case", inject_mimicry_case(
        base, "HT-99", "Bob", "Cardiologist", "T06",
        "[Jane]EPR/Clinical", datetime(2010, 5, 1),
    ).for_case("HT-99"), True
    yield "skipped task (T09)", inject_task_skip(base, "T09"), True
    yield "wrong role", inject_wrong_role(base, 0, "MedicalLabTech"), True


class TestDetectionMatrix:
    def test_matrix(self, benchmark, setup, table):
        def run():
            checker, net, base = setup
            table.comment(
                "E12: detection by Algorithm 1 (verdict) vs token replay "
                f"(fitness < {FITNESS_THRESHOLD})"
            )
            table.row("violation", "algorithm1", "token_replay_fitness", "token_replay_detects")
            for name, trail, should_detect in violation_trails(base):
                a1 = not checker.check(trail).compliant
                outcome = replay_trail(net, trail)
                tr = outcome.fitness < FITNESS_THRESHOLD
                table.row(name, a1, f"{outcome.fitness:.3f}", tr)
                assert a1 == should_detect, name

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_role_violations_invisible_to_task_level_replay(self, benchmark, setup, table):
        """The headline difference: a wrong-role execution is a perfect
        fit at the task level (token replay sees only activity names when
        the model has no role binding per transition); Algorithm 1
        rejects it via the pool/role labels."""
        def run():
            checker, net, base = setup
            violated = inject_wrong_role(base, 0, "MedicalLabTech")
            a1_detects = not checker.check(violated).compliant
            assert a1_detects
            # Token replay *does* notice here only because our translation
            # bakes the pool into the label; strip the role to emulate a
            # task-only log, the common conformance-checking setting:
            from repro.conformance.tokenreplay import trail_to_events

            events = [e.split(".", 1)[-1] for e in trail_to_events(violated)]
            model_events = {
                t.label.split(".", 1)[-1]
                for t in net.net.transitions.values()
                if t.label
            }
            table.comment("E12: with task-only logs every event 'exists' in the model")
            table.row("unknown events under task-only projection",
                      sum(1 for e in events if e not in model_events))
            assert all(e in model_events for e in events)

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestRuntime:
    def test_algorithm1_runtime(self, benchmark, setup):
        checker, _, base = setup
        checker.check(base)  # warm
        result = benchmark(checker.check, base)
        assert result.compliant

    def test_token_replay_runtime(self, benchmark, setup):
        _, net, base = setup
        outcome = benchmark(replay_trail, net, base)
        assert outcome.fits
