"""Statistical triage vs exact replay (the anomaly-detection framing of §6).

The behaviour model is process-model-free and cheap; the replay is exact
but needs the model.  This bench measures the triage ranking's quality
(precision at the oracle cut) and its cost relative to replaying
everything — the operational argument for running triage first and
replay on the suspicious tail.
"""

import pytest

from repro.audit.stats import BehaviourModel, triage_precision_at_k
from repro.core import ComplianceChecker
from repro.scenarios import hospital_day, role_hierarchy
from repro.scenarios.workloads import VIOLATION_KINDS


@pytest.fixture(scope="module")
def history():
    return hospital_day(n_cases=80, violation_rate=0.0, seed=301).trail


@pytest.fixture(scope="module")
def model(history):
    return BehaviourModel().fit(history)


@pytest.fixture(scope="module")
def mixed_day():
    return hospital_day(
        n_cases=50,
        violation_rate=0.3,
        seed=302,
        violation_mix={kind: 1.0 for kind in VIOLATION_KINDS},
    )


class TestTriageQuality:
    def test_quality_table(self, benchmark, model, mixed_day, table):
        def run():
            ranking = model.rank_cases(mixed_day.trail)
            bad = {c for c, ok in mixed_day.ground_truth.items() if not ok}
            table.comment(
                "statistical triage (no process model) on a mixed day"
            )
            table.row("cases", mixed_day.case_count)
            table.row("violations", len(bad))
            for k in (5, 10, len(bad)):
                precision = triage_precision_at_k(ranking, bad, k=k)
                table.row(f"precision@{k}", f"{precision:.2f}")
            base = len(bad) / mixed_day.case_count
            table.row("base rate", f"{base:.2f}")
            assert triage_precision_at_k(ranking, bad) > base

        benchmark.pedantic(run, rounds=1, iterations=1)


class TestCost:
    def test_triage_ranking_cost(self, benchmark, model, mixed_day):
        ranking = benchmark(model.rank_cases, mixed_day.trail)
        assert len(ranking) == mixed_day.case_count

    def test_fit_cost(self, benchmark, history):
        model = benchmark(lambda: BehaviourModel().fit(history))
        assert model.fitted

    def test_replay_everything_cost(self, benchmark, mixed_day):
        checker = ComplianceChecker(mixed_day.encoded, role_hierarchy())
        cases = mixed_day.trail.cases()
        for case in cases:  # warm
            checker.check(mixed_day.trail.for_case(case))

        def replay_all():
            return [
                checker.check(mixed_day.trail.for_case(c)).compliant
                for c in cases
            ]

        verdicts = benchmark(replay_all)
        assert len(verdicts) == mixed_day.case_count
