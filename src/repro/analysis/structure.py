"""Structural and automaton-facing lint (PC1xx and PC4xx).

PC1xx wraps the existing structural validation and well-foundedness
machinery of :mod:`repro.bpmn.validate` into diagnostics; PC4xx flags
shapes that are *legal* but expensive or fragile:

* **PC401** — an inclusive split fanning out to many branches.  Both the
  COWS-style encoding and the Petri translation enumerate every
  non-empty branch subset, so cost is ``2^n - 1`` per split.
* **PC402** — estimated concurrency high enough to risk subset-
  construction blow-up when compiling the purpose automaton to a DFA
  (:mod:`repro.core.compiler`): determinization is exponential in the
  number of simultaneously-live positions.
* **PC403** — *fragile* well-foundedness: a cycle that is well-founded
  only by a single observable.  Deleting or renaming that one task (or
  error edge) during process evolution silently breaks the Section 5
  precondition, so we warn while the model is still legal.
"""

from __future__ import annotations

from itertools import islice

import networkx as nx

from repro.bpmn.model import ElementType, Process
from repro.bpmn.validate import (
    MAX_INCLUSIVE_BRANCHES,
    flow_graph,
    non_well_founded_cycles,
    structural_problems,
)

from repro.analysis.diagnostics import Diagnostic, diag

#: Inclusive fan-out from which PC401 starts warning (2^4 - 1 = 15
#: subset transitions per gateway); the hard structural limit stays
#: :data:`repro.bpmn.validate.MAX_INCLUSIVE_BRANCHES`.
INCLUSIVE_FANOUT_WARN = 4

#: Estimated concurrent token count from which PC402 warns: the subset
#: construction is exponential in live positions, and past this many the
#: compiled DFA can dwarf the NFA.
CONCURRENCY_WARN = 8

#: How many fragile cycles to report before stopping enumeration.
MAX_FRAGILE_CYCLES = 10


def structure_diagnostics(process: Process) -> list[Diagnostic]:
    """All PC1xx/PC4xx findings for *process*.

    When PC101 problems exist the deeper checks are skipped — a broken
    document makes graph analyses meaningless — so callers can rely on:
    PC102/PC4xx only ever appear for structurally valid processes.
    """
    process_id = process.process_id
    purpose = process.purpose
    found: list[Diagnostic] = []

    problems = structural_problems(process)
    if problems:
        for problem in problems:
            found.append(
                diag(
                    "PC101",
                    problem,
                    process_id=process_id,
                    purpose=purpose,
                )
            )
        return found

    for cycle in non_well_founded_cycles(process):
        found.append(
            diag(
                "PC102",
                "cycle without observable activity: "
                + " -> ".join(cycle)
                + " (WeakNext would diverge; the paper's well-foundedness "
                "precondition is violated)",
                process_id=process_id,
                purpose=purpose,
                elements=tuple(cycle),
                hint="put a task on the cycle or route it through an "
                "error edge",
            )
        )

    found.extend(_inclusive_fanout(process))
    found.extend(_state_explosion(process))
    found.extend(_fragile_cycles(process))
    return found


def _inclusive_fanout(process: Process) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    for gateway in process.elements_of_type(ElementType.INCLUSIVE_GATEWAY):
        fanout = len(process.outgoing(gateway.element_id))
        if fanout >= INCLUSIVE_FANOUT_WARN:
            subsets = 2**fanout - 1
            found.append(
                diag(
                    "PC401",
                    f"inclusive split {gateway.element_id!r} fans out to "
                    f"{fanout} branches: its encoding enumerates "
                    f"{subsets} branch subsets (hard limit "
                    f"{MAX_INCLUSIVE_BRANCHES})",
                    process_id=process.process_id,
                    purpose=process.purpose,
                    elements=(gateway.element_id,),
                    hint="split the decision into a cascade of smaller "
                    "inclusive or exclusive gateways",
                )
            )
    return found


def _estimated_concurrency(process: Process) -> int:
    """A cheap upper estimate of simultaneously-live tokens: 1 per start
    event, plus each AND/OR split multiplies by adding (fanout - 1)."""
    tokens = max(1, len(process.start_events))
    for element in process.elements.values():
        if element.element_type in (
            ElementType.PARALLEL_GATEWAY,
            ElementType.INCLUSIVE_GATEWAY,
        ):
            fanout = len(process.outgoing(element.element_id))
            if fanout > 1:
                tokens += fanout - 1
    return tokens


def _state_explosion(process: Process) -> list[Diagnostic]:
    estimate = _estimated_concurrency(process)
    if estimate < CONCURRENCY_WARN:
        return []
    splits = tuple(
        e.element_id
        for e in process.elements.values()
        if e.element_type
        in (ElementType.PARALLEL_GATEWAY, ElementType.INCLUSIVE_GATEWAY)
        and len(process.outgoing(e.element_id)) > 1
    )
    return [
        diag(
            "PC402",
            f"estimated concurrency of {estimate} tokens: determinizing "
            "the purpose automaton may blow up exponentially in the "
            "number of live positions",
            process_id=process.process_id,
            purpose=process.purpose,
            elements=splits,
            hint="reduce parallel fan-out, or rely on the interpreted "
            "replay path instead of the compiled automaton",
        )
    ]


def _fragile_cycles(process: Process) -> list[Diagnostic]:
    """Cycles kept well-founded by exactly one observable (PC403)."""
    graph = flow_graph(process)
    found: list[Diagnostic] = []
    cycles = islice(nx.simple_cycles(graph), 10_000)
    for cycle in cycles:
        if len(found) >= MAX_FRAGILE_CYCLES:
            break
        task_ids = [
            eid
            for eid in cycle
            if process.elements[eid].element_type is ElementType.TASK
        ]
        cycle_edges = list(zip(cycle, cycle[1:] + cycle[:1]))
        error_edges = [
            edge
            for edge in cycle_edges
            if graph.edges[edge].get("kind") == "error"
        ]
        observables = len(task_ids) + len(error_edges)
        if observables != 1:
            continue
        if task_ids:
            anchor = task_ids[0]
            what = f"task {anchor!r}"
        else:
            anchor = error_edges[0][0]
            what = f"the error edge {error_edges[0][0]!r} -> {error_edges[0][1]!r}"
        found.append(
            diag(
                "PC403",
                "cycle "
                + " -> ".join(cycle)
                + f" is well-founded only by {what}: removing it would "
                "make the process non-well-founded",
                process_id=process.process_id,
                purpose=process.purpose,
                elements=tuple(cycle),
                hint="keep a second observable on the cycle, or gate "
                "model edits with `repro lint`",
            )
        )
    return found
