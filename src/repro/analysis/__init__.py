"""Static model verification — lint for purposes, before any audit trail.

The paper observes (Section 5) that non-well-founded processes "can be
detected directly on the diagram"; this package extends that static
viewpoint to the full pre-deployment checklist of an a-posteriori
purpose-control installation:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` record,
  the stable ``PC*`` rule registry, and :class:`LintReport`;
* :mod:`repro.analysis.structure` — structural (PC1xx) and
  automaton-facing (PC4xx) checks;
* :mod:`repro.analysis.soundness` — budgeted coverability over the
  translated Petri net: deadlock, improper completion, dead tasks,
  unboundedness (PC2xx);
* :mod:`repro.analysis.crosscheck` — "static purpose control": the
  policy/process/hierarchy cross-checks (PC3xx);
* :mod:`repro.analysis.engine` — orchestration + telemetry
  (:func:`lint_processes`, :func:`lint_registry`);
* :mod:`repro.analysis.render` — text, JSON, and SARIF 2.1.0 output.

CLI: ``repro lint``.  Auditor integration:
``PurposeControlAuditor(..., preflight=True)``.
"""

from repro.analysis.crosscheck import crosscheck_diagnostics
from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    diag,
    merge_reports,
)
from repro.analysis.engine import (
    LintOptions,
    lint_process,
    lint_processes,
    lint_registry,
)
from repro.analysis.render import (
    RENDERERS,
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.soundness import (
    DEFAULT_STATE_BUDGET,
    OMEGA,
    SoundnessResult,
    analyze_soundness,
    soundness_diagnostics,
)
from repro.analysis.structure import structure_diagnostics

__all__ = [
    "DEFAULT_STATE_BUDGET",
    "Diagnostic",
    "LintOptions",
    "LintReport",
    "OMEGA",
    "RENDERERS",
    "RULES",
    "Rule",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "Severity",
    "SoundnessResult",
    "analyze_soundness",
    "crosscheck_diagnostics",
    "diag",
    "lint_process",
    "lint_processes",
    "lint_registry",
    "merge_reports",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "soundness_diagnostics",
    "structure_diagnostics",
]
