"""Rendering lint reports: human text, machine JSON, and SARIF 2.1.0.

The SARIF output follows the OASIS 2.1.0 schema closely enough for
standard consumers (GitHub code scanning, VS Code SARIF viewers): one
run, the rule registry as ``tool.driver.rules``, one result per
diagnostic with the process/element anchoring expressed as
``logicalLocations`` (BPMN elements have no file/line to point at).
"""

from __future__ import annotations

import json

from repro import __version__
from repro.analysis.diagnostics import RULES, Diagnostic, LintReport

#: The canonical 2.1.0 schema URI (json.schemastore.org mirror).
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro-lint"
TOOL_URI = "https://example.invalid/repro"


def render_text(report: LintReport) -> str:
    """The human-facing rendering: grouped by process, worst first."""
    report = report.sorted()
    lines: list[str] = []
    current = object()
    for diagnostic in report.diagnostics:
        if diagnostic.process_id != current:
            current = diagnostic.process_id
            header = diagnostic.process_id or "<no process>"
            if lines:
                lines.append("")
            lines.append(f"{header}:")
        location = (
            f" [{', '.join(diagnostic.elements)}]" if diagnostic.elements else ""
        )
        lines.append(
            f"  {diagnostic.severity} {diagnostic.code}"
            f" ({diagnostic.rule.name}){location}: {diagnostic.message}"
        )
        if diagnostic.hint:
            lines.append(f"    hint: {diagnostic.hint}")
    if lines:
        lines.append("")
    lines.append(report.summary())
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    """A stable machine-facing JSON document."""
    report = report.sorted()
    payload = {
        "tool": TOOL_NAME,
        "version": __version__,
        "processes": list(report.processes),
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "infos": len(report.infos),
            "clean": report.clean,
        },
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def _sarif_rule(code: str) -> dict:
    rule = RULES[code]
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": rule.severity.sarif_level},
    }


def _sarif_result(diagnostic: Diagnostic) -> dict:
    result: dict = {
        "ruleId": diagnostic.code,
        "level": diagnostic.severity.sarif_level,
        "message": {"text": diagnostic.message},
    }
    logical: list[dict] = []
    if diagnostic.process_id and not diagnostic.elements:
        logical.append(
            {
                "name": diagnostic.process_id,
                "kind": "module",
                "fullyQualifiedName": diagnostic.process_id,
            }
        )
    for element in diagnostic.elements:
        entry = {"name": element, "kind": "member"}
        if diagnostic.process_id:
            entry["fullyQualifiedName"] = f"{diagnostic.process_id}::{element}"
        logical.append(entry)
    if logical:
        result["locations"] = [{"logicalLocations": logical}]
    properties: dict = {}
    if diagnostic.purpose:
        properties["purpose"] = diagnostic.purpose
    if diagnostic.hint:
        properties["hint"] = diagnostic.hint
    if properties:
        result["properties"] = properties
    return result


def render_sarif(report: LintReport) -> str:
    """A SARIF 2.1.0 document with one run per lint invocation."""
    report = report.sorted()
    used = sorted(report.codes())
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": __version__,
                        "informationUri": TOOL_URI,
                        "rules": [_sarif_rule(code) for code in used],
                    }
                },
                "results": [
                    _sarif_result(d) for d in report.diagnostics
                ],
                "columnKind": "unicodeCodePoints",
                "properties": {
                    "processes": list(report.processes),
                },
            }
        ],
    }
    return json.dumps(document, indent=2) + "\n"


#: The CLI's ``--format`` vocabulary.
RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def render(report: LintReport, fmt: str) -> str:
    try:
        renderer = RENDERERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown lint format {fmt!r}; choose from {sorted(RENDERERS)}"
        ) from None
    return renderer(report)


__all__ = [
    "RENDERERS",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
]
