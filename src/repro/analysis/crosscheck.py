"""Static purpose control: policy / process cross-checks (PC3xx).

The replay engine decides *did this trail follow the process*; Definition
3 decides *was this access authorized*.  Both can be doomed before any
log entry exists, and that is what this module detects:

* **PC301** — a task no statement can ever authorize.  An entry claiming
  the task is an infringement in every execution: replay requires the
  performer's role to specialize the task's pool role, Definition 3
  requires it to specialize some statement's subject — if no role in the
  organization satisfies both, every audit of this purpose is a
  foregone conclusion and the model (or the policy) is wrong.
* **PC302** — a registered purpose with no authorizing statements at
  all: the process is auditable, but every access within it is denied.
* **PC303** — a policy purpose with no registered process: accesses for
  it can satisfy Definition 3 yet can never be purpose-audited, because
  Algorithm 1 has no process to replay against.
* **PC304** — a task pool role unknown to both the role hierarchy and
  the policy: the name is probably a typo, and hierarchy matching will
  degrade to bare string equality for it.

The authorizability test is deliberately conservative about statement
subjects that are not known roles: ``Statement.subject`` "names either a
role or a concrete user" (Definition 1), and a concrete user may hold
*any* role, so such statements are assumed able to authorize anything —
PC301 only fires when it is a certainty, never a guess.
"""

from __future__ import annotations

from repro.bpmn.model import Process
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import Policy
from repro.policy.registry import ProcessRegistry

from repro.analysis.diagnostics import Diagnostic, diag


def _role_universe(
    hierarchy: RoleHierarchy, processes: list[Process]
) -> frozenset[str]:
    """Every name known to be a role: the hierarchy plus all pool roles."""
    universe = set(hierarchy.roles())
    for process in processes:
        universe.update(process.pools)
    return frozenset(universe)


def _statement_can_authorize(
    subject: str,
    pool_role: str,
    universe: frozenset[str],
    hierarchy: RoleHierarchy,
) -> bool:
    """Whether some organizational role could satisfy both the replay's
    pool check and Definition 3's subject check against *subject*."""
    if subject not in universe:
        return True  # possibly a concrete user — could hold any role
    return any(
        hierarchy.is_specialization_of(role, pool_role)
        and hierarchy.is_specialization_of(role, subject)
        for role in universe
    )


def crosscheck_diagnostics(
    policy: Policy,
    registry: ProcessRegistry,
    hierarchy: RoleHierarchy | None = None,
) -> list[Diagnostic]:
    """All PC3xx findings for *policy* against *registry*."""
    hierarchy = hierarchy or RoleHierarchy()
    processes = list(registry)
    universe = _role_universe(hierarchy, processes)
    found: list[Diagnostic] = []

    registered = registry.purposes()
    policy_purposes = {statement.purpose for statement in policy}

    for purpose in sorted(registered):
        process = registry.process_for(purpose)
        statements = policy.for_purpose(purpose)
        if not statements:
            found.append(
                diag(
                    "PC302",
                    f"purpose {purpose!r} is registered (process "
                    f"{process.process_id!r}) but no policy statement "
                    "authorizes it: every access in its cases is denied",
                    process_id=process.process_id,
                    purpose=purpose,
                    hint="add statements for the purpose, or unregister "
                    "the process",
                )
            )
            continue
        for task_id in sorted(process.task_ids):
            pool_role = process.role_of_task(task_id)
            if not any(
                _statement_can_authorize(
                    statement.subject, pool_role, universe, hierarchy
                )
                for statement in statements
            ):
                found.append(
                    diag(
                        "PC301",
                        f"task {task_id!r} (pool {pool_role!r}) can never "
                        f"be authorized: no role both specializes "
                        f"{pool_role!r} and specializes the subject of any "
                        f"{purpose!r} statement — every log entry claiming "
                        "this task is a guaranteed infringement",
                        process_id=process.process_id,
                        purpose=purpose,
                        elements=(task_id,),
                        hint="grant a statement to the pool role (or an "
                        "ancestor a pool member specializes), or fix the "
                        "role hierarchy",
                    )
                )

    for purpose in sorted(policy_purposes - registered):
        count = len(policy.for_purpose(purpose))
        found.append(
            diag(
                "PC303",
                f"policy purpose {purpose!r} ({count} statement(s)) has no "
                "registered process: its accesses can be permitted but "
                "never purpose-audited",
                purpose=purpose,
                hint="register the organizational process implementing "
                "the purpose",
            )
        )

    for process in processes:
        for pool_role in sorted(process.pools):
            resolvable = pool_role in hierarchy.roles() or any(
                statement.subject == pool_role for statement in policy
            )
            # A pool role nobody specializes and no statement names is
            # suspicious only when the hierarchy is actually in use.
            if hierarchy.roles() and not resolvable:
                tasks = tuple(
                    sorted(
                        task_id
                        for task_id in process.task_ids
                        if process.role_of_task(task_id) == pool_role
                    )
                )
                found.append(
                    diag(
                        "PC304",
                        f"pool role {pool_role!r} of process "
                        f"{process.process_id!r} is unknown to both the "
                        "role hierarchy and the policy: hierarchy matching "
                        "degrades to bare string equality for it",
                        process_id=process.process_id,
                        purpose=process.purpose,
                        elements=tasks,
                        hint="declare the role in the hierarchy or check "
                        "the pool name for typos",
                    )
                )
    return found
