"""Workflow-net soundness by budgeted coverability analysis.

Classical soundness (van der Aalst; [13] in PAPERS.md) asks three
questions of a workflow net: can every execution complete (no
deadlocks), does completion leave no tokens behind (proper completion),
and is every transition — here: every *task* — enabled in some execution
(no dead tasks)?  We answer them on the Petri translation of the BPMN
process (:func:`repro.conformance.bpmn_to_petri.bpmn_to_petri`), using
the **counted** inclusive-join mode so the analysis sees the exact
OR-join synchronization of the COWS semantics rather than the baseline's
early-firing over-approximation (which would report token leaks that the
replay engine can never produce).

The state space is explored Karp–Miller style: when a marking strictly
covers an ancestor on its path, the strictly-grown places are pumped to
the ω token count (``float("inf")``), which both finitizes unbounded
nets and detects them (PC204).  Exploration is budgeted: past
``state_budget`` distinct markings the analysis stops and degrades to an
"inconclusive" info diagnostic (PC205) instead of hanging — findings
made *before* the budget ran out are still definite and still reported.

End events are made observable by an artificial ``done`` place per end
event (capped at two tokens — "completed more than once" is all we need
to know). A dead marking then classifies as:

* all real places empty → **proper completion**;
* leftover real tokens, some end completed → **improper completion**
  (PC202); a ``done`` place holding two tokens is also improper, but
  only for processes without message events and error flows — with
  them, pool re-instantiation (a service pool completing once per
  request) and retry loops legitimately re-reach end events;
* leftover real tokens, no end completed → **deadlock** (PC201).

A marking with an ω place is never dead (the ω place feeds its
consumers forever), so unboundedness is reported separately.  Livelocks
— cycles spinning without progress — are the well-foundedness check's
department (PC102/PC403 in :mod:`repro.analysis.structure`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpmn.model import Process
from repro.conformance.bpmn_to_petri import (
    TranslatedNet,
    _flow_place,
    _message_place,
    bpmn_to_petri,
)
from repro.conformance.petri import Marking, PetriNet

from repro.analysis.diagnostics import Diagnostic, diag

#: The ω token count of the coverability analysis.  ``Marking`` treats it
#: transparently: ``inf >= k``, ``inf - k == inf``, ``inf + k == inf``.
OMEGA = float("inf")

#: Default bound on distinct explored markings.
DEFAULT_STATE_BUDGET = 20_000

#: ``done`` places only ever need to distinguish 0 / 1 / "2 or more".
_DONE_CAP = 2


@dataclass(frozen=True)
class DeadMarking:
    """One reachable marking with no enabled transition."""

    marking: Marking
    leftover: tuple[str, ...]  # real (non-done) places still holding tokens
    completed: tuple[str, ...]  # end events whose done place has a token
    double_completed: tuple[str, ...]  # end events completed twice

    @property
    def is_deadlock(self) -> bool:
        return bool(self.leftover) and not self.completed

    def is_improper(self, strict_completion: bool) -> bool:
        """Leftover tokens alongside a completion are always improper;
        double completion only under *strict_completion* (see
        :func:`_strict_completion`)."""
        if self.leftover and self.completed:
            return True
        return strict_completion and bool(self.double_completed)


@dataclass
class SoundnessResult:
    """What the coverability exploration established about one process."""

    process_id: str
    complete: bool  # the whole state space fit in the budget
    states: int  # distinct markings explored
    deadlocks: list[DeadMarking] = field(default_factory=list)
    improper: list[DeadMarking] = field(default_factory=list)
    unbounded_places: frozenset[str] = frozenset()
    dead_tasks: tuple[str, ...] = ()  # only trustworthy when complete

    @property
    def sound(self) -> bool:
        return (
            self.complete
            and not self.deadlocks
            and not self.improper
            and not self.unbounded_places
            and not self.dead_tasks
        )


def _analysis_net(process: Process) -> tuple[TranslatedNet, dict[str, str]]:
    """The counted-OR translation plus one ``done`` place per end event."""
    translated = bpmn_to_petri(process, inclusive_join="counted")
    net = translated.net
    done_places: dict[str, str] = {}
    for end in process.end_events:
        place = net.add_place(f"done_{end.element_id}")
        net.outputs[f"t_{end.element_id}"][place] += 1
        done_places[place] = end.element_id
    return translated, done_places


def _tokens(marking: Marking) -> dict[str, float]:
    return dict(marking)


def _cap_done(tokens: dict[str, float], done_places: dict[str, str]) -> None:
    for place in done_places:
        if tokens.get(place, 0) > _DONE_CAP:
            tokens[place] = _DONE_CAP


def _accelerate(
    tokens: dict[str, float],
    parent: Marking,
    parents: dict[Marking, "Marking | None"],
    done_places: dict[str, str],
) -> bool:
    """Karp–Miller pumping: ω-out places that strictly grow over an
    ancestor of the child's path.  Returns whether anything was pumped."""
    pumped = False
    ancestor: "Marking | None" = parent
    while ancestor is not None:
        grown: list[str] = []
        covers = True
        for place, count in ancestor:
            if place in done_places:
                continue
            if tokens.get(place, 0) < count:
                covers = False
                break
        if covers:
            for place, count in tokens.items():
                if place in done_places or count == OMEGA:
                    continue
                if count > ancestor[place]:
                    grown.append(place)
        if covers and grown:
            for place in grown:
                tokens[place] = OMEGA
            pumped = True
        ancestor = parents.get(ancestor)
    return pumped


def _classify_dead(
    marking: Marking, done_places: dict[str, str]
) -> DeadMarking:
    leftover = tuple(
        sorted(place for place, count in marking if place not in done_places)
    )
    completed = tuple(
        sorted(
            done_places[place]
            for place, count in marking
            if place in done_places
        )
    )
    double = tuple(
        sorted(
            done_places[place]
            for place, count in marking
            if place in done_places and count >= _DONE_CAP
        )
    )
    return DeadMarking(
        marking=marking,
        leftover=leftover,
        completed=completed,
        double_completed=double,
    )


def _strict_completion(process: Process) -> bool:
    """Whether double completion of an end event is definitely improper.

    In a process with message events, a pool can legitimately be
    re-instantiated (a service pool completes once per request); with
    error flows, a retry loop can legitimately re-reach an end event.
    Only when neither exists does an end event firing twice prove two
    tokens leaked through the same exit — the classic AND-split /
    XOR-join defect."""
    if process.error_flows:
        return False
    return all(e.message is None for e in process.elements.values())


def analyze_soundness(
    process: Process, state_budget: int = DEFAULT_STATE_BUDGET
) -> SoundnessResult:
    """Explore the translated net's coverability graph within *state_budget*."""
    translated, done_places = _analysis_net(process)
    net = translated.net
    strict = _strict_completion(process)
    result = SoundnessResult(process_id=process.process_id, complete=True, states=0)

    ever_enabled: set[str] = set()
    omega_places: set[str] = set()
    visited: set[Marking] = {translated.initial}
    parents: dict[Marking, "Marking | None"] = {translated.initial: None}
    stack: list[Marking] = [translated.initial]
    seen_deadlocks: set[tuple[str, ...]] = set()
    seen_improper: set[tuple[str, ...]] = set()

    while stack:
        marking = stack.pop()
        enabled = [
            name
            for name in net.transitions
            if net.is_enabled(marking, name)
        ]
        if not enabled:
            dead = _classify_dead(marking, done_places)
            if dead.is_deadlock and dead.leftover not in seen_deadlocks:
                seen_deadlocks.add(dead.leftover)
                result.deadlocks.append(dead)
            elif dead.is_improper(strict):
                key = dead.leftover + dead.double_completed
                if key not in seen_improper:
                    seen_improper.add(key)
                    result.improper.append(dead)
            continue
        ever_enabled.update(enabled)
        for name in enabled:
            tokens = _tokens(net.fire(marking, name))
            _cap_done(tokens, done_places)
            if _accelerate(tokens, marking, parents, done_places):
                omega_places.update(
                    place for place, count in tokens.items() if count == OMEGA
                )
            child = Marking(tokens)
            if child in visited:
                continue
            if len(visited) >= state_budget:
                result.complete = False
                stack.clear()
                break
            visited.add(child)
            parents[child] = marking
            stack.append(child)

    result.states = len(visited)
    result.unbounded_places = frozenset(omega_places)
    if result.complete:
        dead_tasks = []
        for task_id in sorted(process.task_ids):
            label = translated.task_label(task_id)
            if not any(
                net.transitions[name].label == label for name in ever_enabled
            ):
                dead_tasks.append(task_id)
        result.dead_tasks = tuple(dead_tasks)
    return result


# ---------------------------------------------------------------------------
# place -> element mapping, for diagnostics locations


def _place_elements(process: Process, place: str) -> tuple[str, ...]:
    """The BPMN element ids a Petri place of the translation refers to."""
    for flow in process.flows:
        if place == _flow_place(flow.source, flow.target):
            return (flow.source, flow.target)
    for error_flow in process.error_flows:
        if place == _flow_place(error_flow.source, error_flow.target):
            return (error_flow.source, error_flow.target)
    for element in process.elements.values():
        if place == f"p_{element.element_id}_running":
            return (element.element_id,)
        if element.message is not None and place == _message_place(
            str(element.message)
        ):
            return (element.element_id,)
        if place.startswith(f"orcnt_{element.element_id}_"):
            return (element.element_id,)
    return ()


def _marking_elements(process: Process, places: tuple[str, ...]) -> tuple[str, ...]:
    elements: dict[str, None] = {}
    for place in places:
        for element_id in _place_elements(process, place):
            elements.setdefault(element_id, None)
    return tuple(elements)


#: How many deadlock / improper-completion findings to report per process
#: before summarizing (distinct stuck shapes are usually one root cause).
MAX_MARKING_FINDINGS = 3


def soundness_diagnostics(
    process: Process, state_budget: int = DEFAULT_STATE_BUDGET
) -> list[Diagnostic]:
    """Run :func:`analyze_soundness` and turn the result into diagnostics."""
    result = analyze_soundness(process, state_budget=state_budget)
    found: list[Diagnostic] = []
    process_id = process.process_id
    purpose = process.purpose

    for dead in result.deadlocks[:MAX_MARKING_FINDINGS]:
        elements = _marking_elements(process, dead.leftover)
        found.append(
            diag(
                "PC201",
                "execution can deadlock: a reachable marking holds tokens "
                f"at {', '.join(dead.leftover)} but enables no transition "
                "and no end event has completed",
                process_id=process_id,
                purpose=purpose,
                elements=elements,
                hint="check that every join waits for exactly the branches "
                "its split can activate (an AND-join fed by an XOR-split "
                "is the classic cause)",
            )
        )
    if len(result.deadlocks) > MAX_MARKING_FINDINGS:
        extra = len(result.deadlocks) - MAX_MARKING_FINDINGS
        found.append(
            diag(
                "PC201",
                f"{extra} further distinct deadlock marking(s) suppressed",
                process_id=process_id,
                purpose=purpose,
            )
        )

    for dead in result.improper[:MAX_MARKING_FINDINGS]:
        if dead.double_completed:
            message = (
                "end event(s) "
                + ", ".join(dead.double_completed)
                + " can complete more than once in a single execution"
            )
            elements = dead.double_completed
        else:
            message = (
                "improper completion: end event(s) "
                + ", ".join(dead.completed)
                + " complete while tokens remain at "
                + ", ".join(dead.leftover)
            )
            elements = _marking_elements(process, dead.leftover)
        found.append(
            diag(
                "PC202",
                message,
                process_id=process_id,
                purpose=purpose,
                elements=elements,
                hint="synchronize concurrent branches before the end event "
                "(an XOR-join merging AND-split branches leaks tokens)",
            )
        )
    if len(result.improper) > MAX_MARKING_FINDINGS:
        extra = len(result.improper) - MAX_MARKING_FINDINGS
        found.append(
            diag(
                "PC202",
                f"{extra} further distinct improper-completion marking(s) "
                "suppressed",
                process_id=process_id,
                purpose=purpose,
            )
        )

    if result.unbounded_places:
        places = tuple(sorted(result.unbounded_places))
        found.append(
            diag(
                "PC204",
                "the net is unbounded: tokens can accumulate without limit "
                f"at {', '.join(places)}",
                process_id=process_id,
                purpose=purpose,
                elements=_marking_elements(process, places),
                hint="a loop is producing tokens (often messages) faster "
                "than any consumer must take them; bound the loop or "
                "consume the message on every iteration",
            )
        )

    for task_id in result.dead_tasks:
        found.append(
            diag(
                "PC203",
                f"task {task_id!r} is dead: no execution ever enables it",
                process_id=process_id,
                purpose=purpose,
                elements=(task_id,),
                hint="the task sits behind a join or message that can "
                "never be satisfied; audit entries claiming it will "
                "always be infringements",
            )
        )

    if not result.complete:
        found.append(
            diag(
                "PC205",
                "soundness analysis inconclusive: the state budget "
                f"({state_budget} markings) was exhausted after exploring "
                f"{result.states}; deadlock/unboundedness findings above "
                "(if any) are definite, but completeness claims — "
                "including dead-task detection — were skipped",
                process_id=process_id,
                purpose=purpose,
                hint="re-run with a larger budget (repro lint --budget N)",
            )
        )
    return found
