"""The lint engine: orchestrates the analyzers into one report.

This is the programmatic face of ``repro lint`` and of the auditor's
``preflight=True``: hand it processes (optionally a policy, a role
hierarchy and a process registry) and get back a
:class:`~repro.analysis.diagnostics.LintReport`.

The analyzers are layered deliberately:

1. structural lint (PC1xx) always runs; when the document is broken
   everything else is skipped for that process — a malformed model
   produces one clear class of findings, not a cascade;
2. soundness (PC2xx) runs on structurally valid processes, within the
   configured state budget;
3. shape warnings (PC4xx) ride along with the structural pass;
4. policy cross-checks (PC3xx) run once per lint, when a policy is
   supplied.

Telemetry: each engine invocation bumps ``lint_runs_total``, counts
every diagnostic in ``lint_diagnostics_total`` (labeled by severity)
and emits one ``lint.run`` event.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.bpmn.model import Process
from repro.errors import ConformanceError
from repro.obs import LINT_RUN, NULL_TELEMETRY, Telemetry
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import Policy
from repro.policy.registry import ProcessRegistry

from repro.analysis.crosscheck import crosscheck_diagnostics
from repro.analysis.diagnostics import LintReport, diag
from repro.analysis.soundness import (
    DEFAULT_STATE_BUDGET,
    soundness_diagnostics,
)
from repro.analysis.structure import structure_diagnostics


@dataclass(frozen=True)
class LintOptions:
    """Tuning knobs of one lint run."""

    state_budget: int = DEFAULT_STATE_BUDGET
    soundness: bool = True  # run the PC2xx coverability analysis
    crosscheck: bool = True  # run PC3xx when a policy is available

    def __post_init__(self) -> None:
        if self.state_budget < 1:
            raise ValueError("state_budget must be positive")


def lint_process(
    process: Process, options: Optional[LintOptions] = None
) -> LintReport:
    """Lint a single process (PC1xx/PC2xx/PC4xx; no policy checks)."""
    options = options or LintOptions()
    report = LintReport(processes=(process.process_id,))
    structural = structure_diagnostics(process)
    report.add(*structural)
    if any(d.code == "PC101" for d in structural):
        return report  # broken document: deeper analyses are meaningless
    if options.soundness:
        try:
            report.add(
                *soundness_diagnostics(
                    process, state_budget=options.state_budget
                )
            )
        except ConformanceError as error:
            report.add(
                diag(
                    "PC101",
                    f"process cannot be translated to a Petri net: {error}",
                    process_id=process.process_id,
                    purpose=process.purpose,
                )
            )
    return report


def lint_processes(
    processes: Iterable[Process],
    policy: Optional[Policy] = None,
    hierarchy: Optional[RoleHierarchy] = None,
    registry: Optional[ProcessRegistry] = None,
    options: Optional[LintOptions] = None,
    telemetry: Optional[Telemetry] = None,
) -> LintReport:
    """Lint *processes*; with a *policy*, cross-check it as well.

    When a policy is given but no *registry*, a synthetic registry is
    built from the processes' own ``purpose`` attributes so PC3xx can
    still run (processes without a purpose are skipped there).
    """
    options = options or LintOptions()
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    started = time.perf_counter() if tel.enabled else 0.0

    process_list = list(processes)
    report = LintReport(
        processes=tuple(p.process_id for p in process_list)
    )
    for process in process_list:
        partial = lint_process(process, options)
        report.add(*partial.diagnostics)

    if policy is not None and options.crosscheck:
        if registry is None:
            registry = ProcessRegistry()
            for index, process in enumerate(process_list):
                if process.purpose and process.purpose not in registry.purposes():
                    registry.register(process, case_prefix=f"LINT{index}")
        report.add(
            *crosscheck_diagnostics(policy, registry, hierarchy)
        )

    report = report.sorted()
    tel.registry.counter("lint_runs_total", "lint engine invocations").inc()
    diag_counter = tel.registry.counter(
        "lint_diagnostics_total", "diagnostics raised, by severity"
    )
    for diagnostic in report.diagnostics:
        diag_counter.inc(severity=str(diagnostic.severity))
    if tel.enabled:
        tel.events.emit(
            LINT_RUN,
            processes=len(process_list),
            errors=len(report.errors),
            warnings=len(report.warnings),
            infos=len(report.infos),
            duration_s=round(time.perf_counter() - started, 6),
        )
    return report


def lint_registry(
    registry: ProcessRegistry,
    policy: Optional[Policy] = None,
    hierarchy: Optional[RoleHierarchy] = None,
    options: Optional[LintOptions] = None,
    telemetry: Optional[Telemetry] = None,
) -> LintReport:
    """Lint every process registered in *registry* (the preflight entry)."""
    return lint_processes(
        list(registry),
        policy=policy,
        hierarchy=hierarchy,
        registry=registry,
        options=options,
        telemetry=telemetry,
    )
