"""The diagnostics engine of the static model verifier.

Every finding of :mod:`repro.analysis` is a :class:`Diagnostic`: a stable
code (the ``PC`` rules below), a severity, the process and elements it
anchors to, and a fix hint.  The code space is partitioned by layer:

* ``PC1xx`` — structural: the process document itself is broken;
* ``PC2xx`` — soundness: the translated Petri net misbehaves (classical
  workflow-net soundness: option to complete, proper completion, no dead
  transitions, boundedness);
* ``PC3xx`` — policy: the process and the data-protection policy can
  never agree ("static purpose control");
* ``PC4xx`` — performance/compilation: shapes that make the COWS
  encoding or the purpose automaton expensive.

:class:`LintReport` aggregates diagnostics across processes and decides
the CLI exit code; rendering (text / JSON / SARIF 2.1.0) lives in
:mod:`repro.analysis.render`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterable, Optional


class Severity(Enum):
    """How bad a diagnostic is; orders ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` value (INFO maps to ``note``)."""
        return {"error": "error", "warning": "warning", "info": "note"}[
            self.value
        ]


@dataclass(frozen=True)
class Rule:
    """The registry entry behind one diagnostic code."""

    code: str
    name: str  # stable kebab-case slug, e.g. "deadlock"
    severity: Severity
    summary: str  # one-line description for rule listings / SARIF rules


#: The stable rule registry.  Codes are API: tests, CI gates and SARIF
#: consumers key on them, so existing codes must never change meaning.
RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        # -- PC1xx: structural ------------------------------------------
        Rule(
            "PC101",
            "structural-problem",
            Severity.ERROR,
            "the process document violates a structural constraint",
        ),
        Rule(
            "PC102",
            "silent-cycle",
            Severity.ERROR,
            "a cycle contains no task or error edge (not well-founded, "
            "Section 5: WeakNext would diverge)",
        ),
        # -- PC2xx: workflow-net soundness ------------------------------
        Rule(
            "PC201",
            "deadlock",
            Severity.ERROR,
            "a reachable marking has tokens but no enabled transition and "
            "no completed end event (no option to complete)",
        ),
        Rule(
            "PC202",
            "improper-completion",
            Severity.ERROR,
            "an end event completes while tokens remain elsewhere (or "
            "completes more than once)",
        ),
        Rule(
            "PC203",
            "dead-task",
            Severity.ERROR,
            "a task can never become enabled in any execution",
        ),
        Rule(
            "PC204",
            "unbounded",
            Severity.ERROR,
            "a place can accumulate unboundedly many tokens "
            "(omega-marking in the coverability analysis)",
        ),
        Rule(
            "PC205",
            "analysis-inconclusive",
            Severity.INFO,
            "the state budget was exhausted before the reachability "
            "analysis completed; soundness findings may be incomplete",
        ),
        # -- PC3xx: static purpose control ------------------------------
        Rule(
            "PC301",
            "unauthorizable-task",
            Severity.ERROR,
            "no policy statement can ever authorize the task's role under "
            "the role hierarchy — every execution is a guaranteed "
            "infringement",
        ),
        Rule(
            "PC302",
            "purpose-without-statements",
            Severity.WARNING,
            "a registered purpose has no authorizing policy statements",
        ),
        Rule(
            "PC303",
            "purpose-without-process",
            Severity.WARNING,
            "a policy purpose has no registered organizational process, "
            "so its accesses can never be purpose-audited",
        ),
        Rule(
            "PC304",
            "unresolvable-role",
            Severity.WARNING,
            "a task's pool role is unknown to both the role hierarchy and "
            "the policy",
        ),
        # -- PC4xx: performance / compilation ---------------------------
        Rule(
            "PC401",
            "inclusive-fanout",
            Severity.WARNING,
            "an inclusive split fans out to many branches; its encoding "
            "enumerates every non-empty branch subset",
        ),
        Rule(
            "PC402",
            "state-explosion",
            Severity.WARNING,
            "the estimated concurrency of the process risks subset-"
            "construction blow-up when compiling the purpose automaton",
        ),
        Rule(
            "PC403",
            "fragile-well-foundedness",
            Severity.WARNING,
            "a cycle carries exactly one observable: removing or renaming "
            "that single task would make the process non-well-founded",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verifier.

    ``elements`` anchors the finding to BPMN element ids (possibly
    empty for process- or policy-level findings); ``hint`` is the fix
    suggestion shown to humans.
    """

    code: str
    message: str
    process_id: str = ""
    purpose: str = ""
    elements: tuple[str, ...] = ()
    hint: str = ""
    severity: Optional[Severity] = None

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", RULES[self.code].severity)

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    def __str__(self) -> str:
        location = f" [{', '.join(self.elements)}]" if self.elements else ""
        prefix = f"{self.process_id}: " if self.process_id else ""
        return f"{prefix}{self.severity} {self.code}{location}: {self.message}"

    def to_dict(self) -> dict:
        """A JSON-friendly representation (used by the JSON renderer)."""
        payload: dict = {
            "code": self.code,
            "rule": self.rule.name,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.process_id:
            payload["process"] = self.process_id
        if self.purpose:
            payload["purpose"] = self.purpose
        if self.elements:
            payload["elements"] = list(self.elements)
        if self.hint:
            payload["hint"] = self.hint
        return payload


def diag(
    code: str,
    message: str,
    *,
    process_id: str = "",
    purpose: str = "",
    elements: Iterable[str] = (),
    hint: str = "",
) -> Diagnostic:
    """Build a :class:`Diagnostic` with the rule's default severity."""
    return Diagnostic(
        code=code,
        message=message,
        process_id=process_id,
        purpose=purpose,
        elements=tuple(elements),
        hint=hint,
    )


def _sort_key(diagnostic: Diagnostic) -> tuple:
    return (
        diagnostic.process_id,
        diagnostic.severity.rank,
        diagnostic.code,
        diagnostic.elements,
        diagnostic.message,
    )


@dataclass
class LintReport:
    """All diagnostics of one lint run, plus what was analyzed."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    processes: tuple[str, ...] = ()

    def add(self, *diagnostics: Diagnostic) -> "LintReport":
        self.diagnostics.extend(diagnostics)
        return self

    def sorted(self) -> "LintReport":
        """A copy ordered by (process, severity, code) — the render order."""
        return replace(
            self, diagnostics=sorted(self.diagnostics, key=_sort_key)
        )

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def clean(self) -> bool:
        """No errors (warnings and infos do not make a model dirty)."""
        return not self.errors

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def for_process(self, process_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.process_id == process_id]

    def exit_code(self, strict: bool = False) -> int:
        """The CLI contract: 0 clean, 1 errors (or warnings when strict)."""
        if self.errors or (strict and self.warnings):
            return 1
        return 0

    def summary(self) -> str:
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        scope = f"{len(self.processes)} process(es)"
        if not self.diagnostics:
            return f"clean: no diagnostics across {scope}"
        return f"{counts} across {scope}"


def merge_reports(reports: Iterable[LintReport]) -> LintReport:
    """Concatenate reports (process lists deduplicated, order kept)."""
    merged = LintReport()
    seen: dict[str, None] = {}
    for report in reports:
        merged.diagnostics.extend(report.diagnostics)
        for process_id in report.processes:
            seen.setdefault(process_id, None)
    merged.processes = tuple(seen)
    return merged
