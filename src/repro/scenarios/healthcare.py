"""The paper's running example (Section 2), ready-made.

* :func:`healthcare_treatment_process` — the BPMN process of **Fig. 1**:
  a GP examines the patient and either diagnoses directly or refers to a
  cardiologist, who may order lab tests and/or radiology scans from the
  lab and radiology departments before diagnosing; the GP then
  prescribes and discharges.
* :func:`clinical_trial_process` — the physician's part of the clinical
  trial of **Fig. 2**: define criteria, select candidates, enroll,
  perform the trial (repeatedly), analyze results.
* :func:`role_hierarchy` — GP/Cardiologist/Radiologist specialize
  Physician; MedicalLabTech specializes MedicalTech (Section 3.2).
* :func:`paper_policy` — the data protection policy of **Fig. 3**,
  verbatim; :func:`extended_policy` adds the clinical-trial workspace
  statements an operational deployment needs.
* :func:`paper_audit_trail` — the audit trail of **Fig. 4**, verbatim:
  the compliant treatment of Jane (case HT-1), plus the cardiologist's
  re-purposing attack — EPRs of many patients opened under fresh
  treatment cases HT-10 ... HT-30 while actually selecting clinical-trial
  candidates (case CT-1).

Identifiers follow the paper where it names them (T01..T15, T91..T95,
S1..S6, G1..G3, HT-n, CT-n); connective elements the figures leave
implicit (message events, the inclusive join) get descriptive ids.
"""

from __future__ import annotations

from repro.audit.model import AuditTrail, LogEntry, Status
from repro.bpmn.builder import ProcessBuilder
from repro.bpmn.model import Process
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import ConsentRegistry, Policy, UserDirectory
from repro.policy.parser import parse_policy
from repro.policy.registry import ProcessRegistry

#: Purposes, as named in Fig. 3.
TREATMENT = "treatment"
CLINICAL_TRIAL = "clinicaltrial"

#: Case prefixes, as used in Fig. 4.
HT_PREFIX = "HT"
CT_PREFIX = "CT"

#: Roles.
GP = "GP"
CARDIOLOGIST = "Cardiologist"
RADIOLOGIST = "Radiologist"
MEDICAL_LAB_TECH = "MedicalLabTech"
PHYSICIAN = "Physician"
MEDICAL_TECH = "MedicalTech"


def healthcare_treatment_process() -> Process:
    """The healthcare-treatment process of Fig. 1."""
    builder = ProcessBuilder("healthcare-treatment", purpose=TREATMENT)

    gp = builder.pool(GP)
    gp.start_event("S1", name="Patient visits GP")
    gp.message_start_event("S2", message="diagnosis_ready", name="Diagnosis received")
    gp.task("T01", name="Retrieve EPR and collect symptoms")
    gp.exclusive_gateway("G1", name="Diagnosis possible?")
    gp.task("T02", name="Make diagnosis")
    gp.task("T03", name="Prescribe medical treatment")
    gp.task("T04", name="Discharge patient")
    gp.task("T05", name="Refer to specialist")
    gp.end_event("E0", name="Treatment completed")
    gp.message_end_event("E1", message="referral", name="Referral sent")
    builder.chain("S1", "T01")
    builder.chain("S2", "T01")
    builder.chain("T01", "G1")
    builder.flow("G1", "T02").flow("G1", "T05")
    builder.chain("T02", "T03", "T04", "E0")
    builder.chain("T05", "E1")
    builder.error_flow("T02", "T01")  # diagnosis failed: examine again

    cardio = builder.pool(CARDIOLOGIST)
    cardio.message_start_event("S3", message="referral", name="Referral received")
    cardio.task("T06", name="Access medical history / retrieve results")
    cardio.exclusive_gateway("G2", name="Diagnosis possible?")
    cardio.task("T07", name="Make diagnosis")
    cardio.message_end_event("E4", message="diagnosis_ready", name="Notify GP")
    cardio.inclusive_gateway("G3", name="Order tests and/or scans")
    cardio.task("T08", name="Order lab tests")
    cardio.task("T09", name="Order radiology scans")
    cardio.message_throw_event("V1", message="lab_order", name="Send lab order")
    cardio.message_throw_event("V2", message="scan_order", name="Send scan order")
    cardio.message_catch_event("V3", message="lab_done", name="Await lab results")
    cardio.message_catch_event("V4", message="scan_done", name="Await scans")
    cardio.inclusive_gateway("J3", join_of="G3", name="All ordered results in")
    builder.chain("S3", "T06", "G2")
    builder.flow("G2", "T07").flow("G2", "G3")
    builder.chain("T07", "E4")
    builder.flow("G3", "T08").flow("G3", "T09")
    builder.chain("T08", "V1", "V3", "J3")
    builder.chain("T09", "V2", "V4", "J3")
    builder.flow("J3", "T06")  # S4 of Fig. 1: retrieve results, try to diagnose

    lab = builder.pool(MEDICAL_LAB_TECH)
    lab.message_start_event("S5", message="lab_order", name="Lab order received")
    lab.task("T13", name="Check EPR for counter-indications")
    lab.task("T14", name="Perform lab tests")
    lab.task("T15", name="Export results to HIS")
    lab.message_end_event("E6", message="lab_done", name="Notify cardiologist")
    builder.chain("S5", "T13", "T14", "T15", "E6")

    radiology = builder.pool(RADIOLOGIST)
    radiology.message_start_event("S6", message="scan_order", name="Scan order received")
    radiology.task("T10", name="Check EPR for counter-indications")
    radiology.task("T11", name="Perform radiology scan")
    radiology.task("T12", name="Export scans to HIS")
    radiology.message_end_event("E7", message="scan_done", name="Notify cardiologist")
    builder.chain("S6", "T10", "T11", "T12", "E7")

    return builder.build()


def clinical_trial_process() -> Process:
    """The physician's part of the clinical-trial process of Fig. 2."""
    builder = ProcessBuilder("clinical-trial", purpose=CLINICAL_TRIAL)
    physician = builder.pool(PHYSICIAN)
    physician.start_event("S90", name="Trial starts")
    physician.task("T91", name="Define eligibility criteria")
    physician.task("T92", name="Select candidates from EPRs")
    physician.task("T93", name="Ask candidates to participate")
    physician.task("T94", name="Perform trial")
    physician.exclusive_gateway("G90", name="Trial complete?")
    physician.task("T95", name="Analyze results")
    physician.end_event("E90", name="Trial finished")
    builder.chain("S90", "T91", "T92", "T93", "T94", "G90")
    builder.flow("G90", "T94")  # further measurement rounds
    builder.flow("G90", "T95")
    builder.chain("T95", "E90")
    return builder.build()


def role_hierarchy() -> RoleHierarchy:
    """GP, Cardiologist, Radiologist <- Physician; MedicalLabTech <- MedicalTech."""
    hierarchy = RoleHierarchy()
    hierarchy.add_role(PHYSICIAN)
    hierarchy.add_role(MEDICAL_TECH)
    hierarchy.add_role(GP, PHYSICIAN)
    hierarchy.add_role(CARDIOLOGIST, PHYSICIAN)
    hierarchy.add_role(RADIOLOGIST, PHYSICIAN)
    hierarchy.add_role(MEDICAL_LAB_TECH, MEDICAL_TECH)
    return hierarchy


#: Fig. 3, verbatim (the [X] row is the consent-conditional statement).
PAPER_POLICY_TEXT = """
(Physician, read, [.]EPR/Clinical, treatment)
(Physician, write, [.]EPR/Clinical, treatment)
(Physician, read, [.]EPR/Demographics, treatment)
(MedicalTech, read, [.]EPR/Clinical, treatment)
(MedicalTech, read, [.]EPR/Demographics, treatment)
(MedicalLabTech, write, [.]EPR/Clinical/Tests, treatment)
(Physician, read, [X]EPR, clinicaltrial)
"""

#: Operational additions: the trial workspace and scan software are not
#: personal data, but a deployed PDP still needs statements for them.
EXTENDED_POLICY_TEXT = PAPER_POLICY_TEXT + """
(Physician, write, ClinicalTrial, clinicaltrial)
(Physician, read, ClinicalTrial, clinicaltrial)
(Physician, execute, ScanSoftware, treatment)
(MedicalTech, execute, ScanSoftware, treatment)
"""


def paper_policy() -> Policy:
    """The data protection policy of Fig. 3, verbatim."""
    return parse_policy(PAPER_POLICY_TEXT)


def extended_policy() -> Policy:
    """Fig. 3 plus the operational statements the full trail exercises."""
    return parse_policy(EXTENDED_POLICY_TEXT)


def user_directory() -> UserDirectory:
    """The staff of the running example."""
    directory = UserDirectory()
    directory.assign("John", GP)
    directory.assign("Bob", CARDIOLOGIST)
    directory.assign("Charlie", RADIOLOGIST)
    directory.assign("Dana", MEDICAL_LAB_TECH)
    return directory


def consent_registry() -> ConsentRegistry:
    """Consents: Jane gave **no** research consent (Section 2); Alice did."""
    registry = ConsentRegistry()
    registry.grant("Alice", CLINICAL_TRIAL)
    return registry


def process_registry() -> ProcessRegistry:
    """Both organizational processes, under their Fig. 4 case prefixes."""
    registry = ProcessRegistry()
    registry.register(healthcare_treatment_process(), HT_PREFIX)
    registry.register(clinical_trial_process(), CT_PREFIX)
    return registry


def _entry(
    user: str,
    role: str,
    action: str,
    obj: str | None,
    task: str,
    case: str,
    timestamp: str,
    status: Status = Status.SUCCESS,
) -> LogEntry:
    return LogEntry.at(user, role, action, obj, task, case, timestamp, status)


def paper_audit_trail() -> AuditTrail:
    """The audit trail of Fig. 4, verbatim."""
    e = _entry
    entries = [
        e("John", GP, "read", "[Jane]EPR/Clinical", "T01", "HT-1", "201003121210"),
        e("John", GP, "write", "[Jane]EPR/Clinical", "T02", "HT-1", "201003121212"),
        e("John", GP, "cancel", None, "T02", "HT-1", "201003121216", Status.FAILURE),
        e("John", GP, "read", "[Jane]EPR/Clinical", "T01", "HT-1", "201003121218"),
        e("John", GP, "write", "[Jane]EPR/Clinical", "T05", "HT-1", "201003121220"),
        e("John", GP, "read", "[David]EPR/Demographics", "T01", "HT-2", "201003121230"),
        e("Bob", CARDIOLOGIST, "read", "[Jane]EPR/Clinical", "T06", "HT-1", "201003141010"),
        e("Bob", CARDIOLOGIST, "write", "[Jane]EPR/Clinical", "T09", "HT-1", "201003141025"),
        e("Charlie", RADIOLOGIST, "read", "[Jane]EPR/Clinical", "T10", "HT-1", "201003201640"),
        e("Charlie", RADIOLOGIST, "execute", "ScanSoftware", "T11", "HT-1", "201003201645"),
        e("Charlie", RADIOLOGIST, "write", "[Jane]EPR/Clinical/Scan", "T12", "HT-1", "201003201730"),
        e("Bob", CARDIOLOGIST, "read", "[Jane]EPR/Clinical", "T06", "HT-1", "201003301010"),
        e("Bob", CARDIOLOGIST, "write", "[Jane]EPR/Clinical", "T07", "HT-1", "201003301020"),
        e("John", GP, "read", "[Jane]EPR/Clinical", "T01", "HT-1", "201004151210"),
        e("John", GP, "write", "[Jane]EPR/Clinical", "T02", "HT-1", "201004151210"),
        e("John", GP, "write", "[Jane]EPR/Clinical", "T03", "HT-1", "201004151215"),
        e("John", GP, "write", "[Jane]EPR/Clinical", "T04", "HT-1", "201004151220"),
        e("Bob", CARDIOLOGIST, "write", "ClinicalTrial/Criteria", "T91", "CT-1", "201004151450"),
        e("Bob", CARDIOLOGIST, "read", "[Alice]EPR/Clinical", "T06", "HT-10", "201004151500"),
        e("Bob", CARDIOLOGIST, "read", "[Jane]EPR/Clinical", "T06", "HT-11", "201004151501"),
        e("Bob", CARDIOLOGIST, "read", "[David]EPR/Clinical", "T06", "HT-20", "201004151515"),
        e("Bob", CARDIOLOGIST, "write", "ClinicalTrial/ListOfSelCand", "T92", "CT-1", "201004151520"),
        e("Bob", CARDIOLOGIST, "read", "[Alice]EPR/Demographics", "T06", "HT-21", "201004151530"),
        e("Bob", CARDIOLOGIST, "read", "[David]EPR/Demographics", "T06", "HT-30", "201004151550"),
        e("Bob", CARDIOLOGIST, "write", "ClinicalTrial/ListOfEnrCand", "T93", "CT-1", "201004201200"),
        e("Bob", CARDIOLOGIST, "write", "ClinicalTrial/Measurements", "T94", "CT-1", "201004221600"),
        e("Bob", CARDIOLOGIST, "write", "ClinicalTrial/Measurements", "T94", "CT-1", "201004291600"),
        e("Bob", CARDIOLOGIST, "write", "ClinicalTrial/Results", "T95", "CT-1", "201004301200"),
    ]
    return AuditTrail(entries)


#: The cases of Fig. 4 that are valid executions of their claimed process.
COMPLIANT_CASES = frozenset({"HT-1", "CT-1"})

#: The fresh treatment cases Bob opened purely to harvest EPRs for the
#: trial — each is a single T06 access, not a valid HT execution.
REPURPOSED_CASES = frozenset({"HT-10", "HT-11", "HT-20", "HT-21", "HT-30"})

#: HT-2 is a different patient's treatment that has only begun: its trail
#: is a valid *prefix* (compliant so far, to be resumed later).
OPEN_CASES = frozenset({"HT-2"})
