"""The appendix examples of the paper (Figs 7-10), in both notations.

For each figure this module provides the COWS specification verbatim
(:data:`FIG7_COWS` ... :data:`FIG10_COWS`, parseable with
:func:`repro.cows.parse`) and an equivalent BPMN process built with the
library's builder, so the encoder can be cross-checked against the
hand-written terms.
"""

from __future__ import annotations

from repro.bpmn.builder import ProcessBuilder
from repro.bpmn.model import Process

#: Fig. 7 — start -> task -> end within pool P.
FIG7_COWS = "P.T!<> | P.T?<>.P.E!<> | P.E?<>"

#: Fig. 8 — an exclusive gateway choosing between T1 and T2.
FIG8_COWS = """
P.T!<>
| P.T?<>. P.G!<>
| P.G?<>. [ +k, sys ] ( sys.T1!<> | sys.T2!<>
    | sys.T1?<>.(kill(k) | {| P.T1!<> |})
    | sys.T2?<>.(kill(k) | {| P.T2!<> |}) )
| P.T1?<>. P.E1!<>
| P.E1?<>
| P.T2?<>. P.E2!<>
| P.E2?<>
"""

#: Fig. 9 — a task that proceeds normally or signals sys.Err.
FIG9_COWS = """
P.T!<>
| P.T?<>. [ +k, sys ] ( sys.Err!<> | sys.T2!<>
    | sys.Err?<>.(kill(k) | {| P.T1!<> |})
    | sys.T2?<>.(kill(k) | {| P.T2!<> |}) )
| P.T1?<>. P.E1!<>
| P.E1?<>
| P.T2?<>. P.E2!<>
| P.E2?<>
"""

#: Fig. 10 — two pools exchanging messages in a cycle.
FIG10_COWS = """
P1.T1!<>
| *( [?z] P1.S2?<?z>. P1.T1!<> )
| *( P1.T1?<>. P1.E1!<> )
| *( P1.E1?<>. P2.S3!<msg1> )
| *( [?z] P2.S3?<?z>. P2.T2!<> )
| *( P2.T2?<>. P2.E2!<> )
| *( P2.E2?<>. P1.S2!<msg2> )
"""


def fig7_process() -> Process:
    """The BPMN process of Fig. 7(a): S -> T -> E in pool P."""
    builder = ProcessBuilder("fig7", purpose="fig7")
    builder.pool("P").start_event("S").task("T").end_event("E")
    builder.chain("S", "T", "E")
    return builder.build()


def fig8_process() -> Process:
    """The BPMN process of Fig. 8(a): an exclusive choice between T1 and T2."""
    builder = ProcessBuilder("fig8", purpose="fig8")
    pool = builder.pool("P")
    pool.start_event("S").task("T").exclusive_gateway("G")
    pool.task("T1").end_event("E1").task("T2").end_event("E2")
    builder.chain("S", "T", "G")
    builder.flow("G", "T1").flow("G", "T2")
    builder.chain("T1", "E1")
    builder.chain("T2", "E2")
    return builder.build()


def fig9_process() -> Process:
    """The BPMN process of Fig. 9(a): task T with an attached error event.

    On success the token reaches T2; on error it is diverted to T1 (the
    error-handling task).
    """
    builder = ProcessBuilder("fig9", purpose="fig9")
    pool = builder.pool("P")
    pool.start_event("S").task("T")
    pool.task("T1").end_event("E1").task("T2").end_event("E2")
    builder.chain("S", "T", "T2", "E2")
    builder.chain("T1", "E1")
    builder.error_flow("T", "T1")
    return builder.build()


def fig10_process() -> Process:
    """The BPMN process of Fig. 10(a): two pools ping-ponging messages."""
    builder = ProcessBuilder("fig10", purpose="fig10")
    pool1 = builder.pool("P1")
    pool1.start_event("S1")
    pool1.message_start_event("S2", message="msg2")
    pool1.task("T1")
    pool1.message_end_event("E1", message="msg1")
    pool2 = builder.pool("P2")
    pool2.message_start_event("S3", message="msg1")
    pool2.task("T2")
    pool2.message_end_event("E2", message="msg2")
    builder.chain("S1", "T1", "E1")
    builder.chain("S2", "T1")
    builder.chain("S3", "T2", "E2")
    return builder.build()
