"""A second domain scenario: insurance claim handling vs marketing.

The paper's purpose taxonomy (via the XSPA healthcare profile it cites)
includes *payment* and *marketing* next to treatment and research; this
scenario instantiates the framework outside the hospital:

* :func:`claim_handling_process` — the **claim-handling** purpose: an
  agent registers a claim; an adjuster investigates, possibly ordering
  an external expert assessment (with an error retry on the
  investigation); the payments office settles approved claims.
* :func:`marketing_process` — the **marketing** purpose: an analyst
  builds a campaign audience from customer profiles and sends offers.
* :func:`insurance_policy` — customer files may be read/written for
  claim handling; profiles may be used for marketing only with consent.
* :func:`insurance_audit_trail` — a day of activity with an embedded
  re-purposing attack: an adjuster trawls customer files under fresh
  claim cases to build a marketing audience (the Fig. 4 pattern
  transplanted).

Identifiers: claim cases ``CL-n``, marketing cases ``MK-n``.
"""

from __future__ import annotations

from repro.audit.model import AuditTrail, LogEntry, Status
from repro.bpmn.builder import ProcessBuilder
from repro.bpmn.model import Process
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import ConsentRegistry, Policy, UserDirectory
from repro.policy.parser import parse_policy
from repro.policy.registry import ProcessRegistry

CLAIM_HANDLING = "claimhandling"
MARKETING = "marketing"

CL_PREFIX = "CL"
MK_PREFIX = "MK"

AGENT = "Agent"
ADJUSTER = "Adjuster"
PAYMENTS = "PaymentsOfficer"
ANALYST = "MarketingAnalyst"
CLERK = "Clerk"  # generalization of Agent and PaymentsOfficer


def claim_handling_process() -> Process:
    """Claim handling across three pools with an expert side-process."""
    builder = ProcessBuilder("claim-handling", purpose=CLAIM_HANDLING)

    agent = builder.pool(AGENT)
    agent.start_event("S1", name="Claim reported")
    agent.task("C01", name="Register claim")
    agent.message_end_event("E1", message="claim_filed", name="Forward to adjuster")
    builder.chain("S1", "C01", "E1")

    adjuster = builder.pool(ADJUSTER)
    adjuster.message_start_event("S2", message="claim_filed")
    adjuster.task("C02", name="Investigate claim")
    adjuster.exclusive_gateway("G1", name="Expert needed?")
    adjuster.task("C03", name="Order expert assessment")
    adjuster.message_throw_event("V1", message="assessment_order")
    adjuster.message_catch_event("V2", message="assessment_done")
    adjuster.exclusive_gateway("M1")
    adjuster.task("C04", name="Decide claim")
    adjuster.exclusive_gateway("G2", name="Approved?")
    adjuster.message_end_event("E2", message="settlement_order", name="To payments")
    adjuster.end_event("E3", name="Claim rejected")
    builder.chain("S2", "C02", "G1")
    builder.flow("G1", "C03").flow("G1", "M1")
    builder.chain("C03", "V1", "V2", "M1")
    builder.chain("M1", "C04", "G2")
    builder.flow("G2", "E2").flow("G2", "E3")
    builder.error_flow("C02", "C02")  # incomplete file: investigate again

    expert = builder.pool("Expert")
    expert.message_start_event("S3", message="assessment_order")
    expert.task("C10", name="Assess damage")
    expert.message_end_event("E4", message="assessment_done")
    builder.chain("S3", "C10", "E4")

    payments = builder.pool(PAYMENTS)
    payments.message_start_event("S4", message="settlement_order")
    payments.task("C05", name="Verify account")
    payments.task("C06", name="Pay out")
    payments.end_event("E5", name="Settled")
    builder.chain("S4", "C05", "C06", "E5")

    return builder.build()


def marketing_process() -> Process:
    """Campaign building: audience -> offers -> evaluation (loop)."""
    builder = ProcessBuilder("marketing-campaign", purpose=MARKETING)
    analyst = builder.pool(ANALYST)
    analyst.start_event("S1", name="Campaign starts")
    analyst.task("M01", name="Define campaign")
    analyst.task("M02", name="Select audience from profiles")
    analyst.task("M03", name="Send offers")
    analyst.exclusive_gateway("G1", name="Another wave?")
    analyst.task("M04", name="Evaluate response")
    analyst.end_event("E1", name="Campaign done")
    builder.chain("S1", "M01", "M02", "M03", "G1")
    builder.flow("G1", "M03")  # another wave of offers
    builder.flow("G1", "M04")
    builder.chain("M04", "E1")
    return builder.build()


def insurance_role_hierarchy() -> RoleHierarchy:
    hierarchy = RoleHierarchy()
    hierarchy.add_role(CLERK)
    hierarchy.add_role(AGENT, CLERK)
    hierarchy.add_role(PAYMENTS, CLERK)
    hierarchy.add_role(ADJUSTER)
    hierarchy.add_role(ANALYST)
    hierarchy.add_role("Expert")
    return hierarchy


INSURANCE_POLICY_TEXT = """
# claim handling: the customer file is fair game for the handlers
(Clerk, read, [.]CustomerFile, claimhandling)
(Clerk, write, [.]CustomerFile/Claims, claimhandling)
(Adjuster, read, [.]CustomerFile, claimhandling)
(Adjuster, write, [.]CustomerFile/Claims, claimhandling)
(Expert, read, [.]CustomerFile/Claims, claimhandling)
(PaymentsOfficer, read, [.]CustomerFile/Payments, claimhandling)
(PaymentsOfficer, write, [.]CustomerFile/Payments, claimhandling)
# marketing: profiles only with consent
(MarketingAnalyst, read, [X]CustomerFile/Profile, marketing)
(MarketingAnalyst, write, Campaign, marketing)
(MarketingAnalyst, read, Campaign, marketing)
"""


def insurance_policy() -> Policy:
    return parse_policy(INSURANCE_POLICY_TEXT)


def insurance_user_directory() -> UserDirectory:
    directory = UserDirectory()
    directory.assign("Amira", AGENT)
    directory.assign("Ade", ADJUSTER)
    directory.assign("Xin", "Expert")
    directory.assign("Pat", PAYMENTS)
    directory.assign("Mika", ANALYST)
    return directory


def insurance_consent_registry() -> ConsentRegistry:
    registry = ConsentRegistry()
    registry.grant("Noor", MARKETING)
    return registry


def insurance_registry() -> ProcessRegistry:
    registry = ProcessRegistry()
    registry.register(claim_handling_process(), CL_PREFIX)
    registry.register(marketing_process(), MK_PREFIX)
    return registry


def _entry(user, role, action, obj, task, case, ts, status=Status.SUCCESS):
    return LogEntry.at(user, role, action, obj, task, case, ts, status)


def insurance_audit_trail() -> AuditTrail:
    """A day of claims plus an embedded profile-harvesting attack.

    CL-1 is a complete, expert-assisted claim; CL-2 a rejected one.
    MK-1 is a legitimate campaign.  CL-10..CL-12 are the attack: the
    adjuster opens customer files under fresh claim cases while actually
    building a marketing audience.
    """
    e = _entry
    entries = [
        # CL-1: full happy path with an expert assessment and a retry.
        e("Amira", AGENT, "write", "[Noor]CustomerFile/Claims", "C01", "CL-1", "202601050900"),
        e("Ade", ADJUSTER, "read", "[Noor]CustomerFile", "C02", "CL-1", "202601051000"),
        e("Ade", ADJUSTER, "cancel", None, "C02", "CL-1", "202601051015", Status.FAILURE),
        e("Ade", ADJUSTER, "read", "[Noor]CustomerFile", "C02", "CL-1", "202601051100"),
        e("Ade", ADJUSTER, "write", "[Noor]CustomerFile/Claims", "C03", "CL-1", "202601051130"),
        e("Xin", "Expert", "read", "[Noor]CustomerFile/Claims", "C10", "CL-1", "202601060900"),
        e("Ade", ADJUSTER, "write", "[Noor]CustomerFile/Claims", "C04", "CL-1", "202601061400"),
        e("Pat", PAYMENTS, "read", "[Noor]CustomerFile/Payments", "C05", "CL-1", "202601070900"),
        e("Pat", PAYMENTS, "write", "[Noor]CustomerFile/Payments", "C06", "CL-1", "202601070930"),
        # CL-2: investigated and rejected, no expert.
        e("Amira", AGENT, "write", "[Ravi]CustomerFile/Claims", "C01", "CL-2", "202601051300"),
        e("Ade", ADJUSTER, "read", "[Ravi]CustomerFile", "C02", "CL-2", "202601051400"),
        e("Ade", ADJUSTER, "write", "[Ravi]CustomerFile/Claims", "C04", "CL-2", "202601051500"),
        # MK-1: legitimate campaign over consenting customers.
        e("Mika", ANALYST, "write", "Campaign/Definition", "M01", "MK-1", "202601080900"),
        e("Mika", ANALYST, "read", "[Noor]CustomerFile/Profile", "M02", "MK-1", "202601080930"),
        e("Mika", ANALYST, "write", "Campaign/Audience", "M02", "MK-1", "202601080940"),
        e("Mika", ANALYST, "write", "Campaign/Offers", "M03", "MK-1", "202601081000"),
        e("Mika", ANALYST, "write", "Campaign/Offers", "M03", "MK-1", "202601090900"),
        e("Mika", ANALYST, "write", "Campaign/Report", "M04", "MK-1", "202601100900"),
        # The attack: Ade harvests profiles under fresh claim cases.
        e("Ade", ADJUSTER, "read", "[Noor]CustomerFile/Profile", "C02", "CL-10", "202601081010"),
        e("Ade", ADJUSTER, "read", "[Ravi]CustomerFile/Profile", "C02", "CL-11", "202601081012"),
        e("Ade", ADJUSTER, "read", "[Sena]CustomerFile/Profile", "C02", "CL-12", "202601081015"),
    ]
    return AuditTrail(entries)


#: Ground truth for the insurance trail.
INSURANCE_COMPLIANT_CASES = frozenset({"CL-1", "CL-2", "MK-1"})
INSURANCE_REPURPOSED_CASES = frozenset({"CL-10", "CL-11", "CL-12"})
