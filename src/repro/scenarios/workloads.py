"""Parameterized workload generators for the scalability experiments.

Two families:

* **synthetic process families** — processes with a single tunable knob
  (length, branching, looping, parallelism), used by the benchmarks to
  sweep Algorithm 1's cost drivers and to exhibit the trace blow-up of
  the naive baseline (experiment E8);
* **hospital-scale workloads** — a synthetic "day at the hospital" in the
  spirit of the Geneva University Hospitals figure the paper cites
  (20,000 records opened every day): many concurrent treatment cases,
  a configurable fraction of them infringing, with ground truth for
  precision/recall accounting (experiment E11).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.audit.generator import TaskAction, TaskProfile, TrailGenerator
from repro.audit.model import AuditTrail, LogEntry, Status
from repro.bpmn.builder import ProcessBuilder
from repro.bpmn.encode import EncodedProcess, encode
from repro.bpmn.model import Process
from repro.policy.model import ObjectRef
from repro.scenarios.healthcare import (
    CARDIOLOGIST,
    GP,
    MEDICAL_LAB_TECH,
    RADIOLOGIST,
    healthcare_treatment_process,
    role_hierarchy,
)

# ---------------------------------------------------------------------------
# synthetic process families


def sequential_process(n_tasks: int, role: str = "Staff") -> Process:
    """A straight-line process: S -> T1 -> ... -> Tn -> E."""
    if n_tasks < 1:
        raise ValueError("need at least one task")
    builder = ProcessBuilder(f"seq-{n_tasks}", purpose=f"seq-{n_tasks}")
    pool = builder.pool(role)
    pool.start_event("S")
    for i in range(1, n_tasks + 1):
        pool.task(f"T{i}")
    pool.end_event("E")
    builder.chain("S", *(f"T{i}" for i in range(1, n_tasks + 1)), "E")
    return builder.build()


def xor_process(n_branches: int, role: str = "Staff") -> Process:
    """S -> T0 -> XOR -> one of B1..Bn -> XOR-join -> E."""
    if n_branches < 2:
        raise ValueError("need at least two branches")
    builder = ProcessBuilder(f"xor-{n_branches}", purpose=f"xor-{n_branches}")
    pool = builder.pool(role)
    pool.start_event("S").task("T0").exclusive_gateway("G")
    pool.exclusive_gateway("J").end_event("E")
    builder.chain("S", "T0", "G")
    for i in range(1, n_branches + 1):
        pool.task(f"B{i}")
        builder.flow("G", f"B{i}").flow(f"B{i}", "J")
    builder.chain("J", "E")
    return builder.build()


def loop_process(body_tasks: int, role: str = "Staff") -> Process:
    """A loop: S -> T1..Tn -> XOR -> (back to T1 | E).

    The cycle contains tasks, so the process is well-founded — but its
    trace set is infinite, which is what breaks the naive baseline.
    """
    if body_tasks < 1:
        raise ValueError("need at least one body task")
    builder = ProcessBuilder(f"loop-{body_tasks}", purpose=f"loop-{body_tasks}")
    pool = builder.pool(role)
    pool.start_event("S")
    for i in range(1, body_tasks + 1):
        pool.task(f"T{i}")
    pool.exclusive_gateway("G").end_event("E")
    builder.chain("S", *(f"T{i}" for i in range(1, body_tasks + 1)), "G")
    builder.flow("G", "T1")
    builder.flow("G", "E")
    return builder.build()


def parallel_process(n_branches: int, role: str = "Staff") -> Process:
    """S -> T0 -> AND-split -> B1..Bn (concurrently) -> AND-join -> E."""
    if n_branches < 2:
        raise ValueError("need at least two branches")
    builder = ProcessBuilder(f"par-{n_branches}", purpose=f"par-{n_branches}")
    pool = builder.pool(role)
    pool.start_event("S").task("T0").parallel_gateway("G")
    pool.parallel_gateway("J").task("TZ").end_event("E")
    builder.chain("S", "T0", "G")
    for i in range(1, n_branches + 1):
        pool.task(f"B{i}")
        builder.flow("G", f"B{i}").flow(f"B{i}", "J")
    builder.chain("J", "TZ", "E")
    return builder.build()


def staged_xor_process(stages: int, width: int = 2, role: str = "Staff") -> Process:
    """*stages* consecutive XOR choices of *width* branches each.

    The number of observable traces is ``width ** stages`` — the
    combinatorial generator for the naive-baseline blow-up bench.
    """
    if stages < 1 or width < 2:
        raise ValueError("need stages >= 1 and width >= 2")
    builder = ProcessBuilder(
        f"stagedxor-{stages}x{width}", purpose=f"stagedxor-{stages}x{width}"
    )
    pool = builder.pool(role)
    pool.start_event("S")
    previous = "S"
    for stage in range(1, stages + 1):
        split, join = f"G{stage}", f"J{stage}"
        pool.exclusive_gateway(split)
        pool.exclusive_gateway(join)
        builder.flow(previous, split)
        for branch in range(1, width + 1):
            task = f"T{stage}_{branch}"
            pool.task(task)
            builder.flow(split, task).flow(task, join)
        previous = join
    pool.end_event("E")
    builder.flow(previous, "E")
    return builder.build()


# ---------------------------------------------------------------------------
# hospital-scale workload


#: What staff actually do inside the Fig. 1 tasks (objects per task).
HOSPITAL_PROFILE = TaskProfile(
    actions={
        "T01": [
            TaskAction("read", "[{subject}]EPR/Clinical"),
            TaskAction("read", "[{subject}]EPR/Demographics"),
        ],
        "T02": [TaskAction("write", "[{subject}]EPR/Clinical")],
        "T03": [TaskAction("write", "[{subject}]EPR/Clinical")],
        "T04": [TaskAction("write", "[{subject}]EPR/Clinical")],
        "T05": [TaskAction("write", "[{subject}]EPR/Clinical")],
        "T06": [TaskAction("read", "[{subject}]EPR/Clinical")],
        "T07": [TaskAction("write", "[{subject}]EPR/Clinical")],
        "T08": [TaskAction("write", "[{subject}]EPR/Clinical")],
        "T09": [TaskAction("write", "[{subject}]EPR/Clinical")],
        "T10": [TaskAction("read", "[{subject}]EPR/Clinical")],
        "T11": [TaskAction("execute", "ScanSoftware")],
        "T12": [TaskAction("write", "[{subject}]EPR/Clinical/Scan")],
        "T13": [TaskAction("read", "[{subject}]EPR/Clinical")],
        "T14": [TaskAction("execute", "LabAnalyzer")],
        "T15": [TaskAction("write", "[{subject}]EPR/Clinical/Tests")],
    }
)

#: Default staffing of the Fig. 1 pools.
HOSPITAL_STAFF: dict[str, list[tuple[str, str]]] = {
    GP: [("John", GP), ("Grace", GP)],
    CARDIOLOGIST: [("Bob", CARDIOLOGIST), ("Carol", CARDIOLOGIST)],
    RADIOLOGIST: [("Charlie", RADIOLOGIST)],
    MEDICAL_LAB_TECH: [("Dana", MEDICAL_LAB_TECH)],
}


@dataclass(frozen=True)
class HospitalWorkload:
    """A generated day of hospital logs with per-case ground truth.

    ``violation_kinds`` maps each non-compliant case to its injected
    violation class (``mimicry`` / ``wrong-role`` / ``skip`` /
    ``reorder``); compliant cases are absent from it.
    """

    trail: AuditTrail
    ground_truth: dict[str, bool]  # case -> is compliant
    encoded: EncodedProcess
    violation_kinds: dict[str, str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.violation_kinds is None:
            object.__setattr__(self, "violation_kinds", {})

    @property
    def case_count(self) -> int:
        return len(self.ground_truth)

    @property
    def violation_count(self) -> int:
        return sum(1 for ok in self.ground_truth.values() if not ok)

    def cases_of_kind(self, kind: str) -> list[str]:
        return [c for c, k in self.violation_kinds.items() if k == kind]


#: The default mix of injected violation classes (weights).
DEFAULT_VIOLATION_MIX: dict[str, float] = {"mimicry": 1.0}

#: All supported violation classes.
VIOLATION_KINDS = ("mimicry", "wrong-role", "skip", "reorder")


def hospital_day(
    n_cases: int,
    violation_rate: float = 0.1,
    seed: int = 0,
    min_steps: int = 2,
    violation_mix: dict[str, float] | None = None,
) -> HospitalWorkload:
    """Generate *n_cases* treatment cases, a fraction of them infringing.

    ``violation_mix`` weights the injected violation classes:

    * ``mimicry`` — a single fresh-case T06 read (the HT-11 pattern);
    * ``wrong-role`` — a compliant run whose first entry is relabeled to
      a role outside the GP pool;
    * ``skip`` — a compliant run with the opening task's entries dropped;
    * ``reorder`` — a compliant run whose first two distinct-task blocks
      swap their timestamps.

    All four constructions are provably non-compliant (they each break
    the mandatory ``GP.T01`` opening of the Fig. 1 process), so the
    ground truth is exact by construction.
    """
    if not 0.0 <= violation_rate <= 1.0:
        raise ValueError("violation_rate must be within [0, 1]")
    mix = violation_mix or DEFAULT_VIOLATION_MIX
    unknown = set(mix) - set(VIOLATION_KINDS)
    if unknown:
        raise ValueError(f"unknown violation kinds: {sorted(unknown)}")
    kinds = sorted(mix)
    weights = [mix[k] for k in kinds]

    process = healthcare_treatment_process()
    encoded = encode(process)
    rng = random.Random(seed)
    generator = TrailGenerator(
        encoded,
        users_by_role=HOSPITAL_STAFF,
        profile=HOSPITAL_PROFILE,
        hierarchy=role_hierarchy(),
        seed=rng.randrange(2**31),
        start_time=datetime(2010, 3, 1, 7, 0),
    )
    entries: list[LogEntry] = []
    truth: dict[str, bool] = {}
    violation_kinds: dict[str, str] = {}
    clock = datetime(2010, 3, 1, 7, 0)
    for index in range(1, n_cases + 1):
        case = f"HT-{index}"
        subject = f"Patient{index}"
        clock += timedelta(minutes=rng.randint(1, 10))
        if rng.random() < violation_rate:
            kind = rng.choices(kinds, weights=weights)[0]
            case_entries = _violating_case(
                generator, rng, case, subject, kind, min_steps
            )
            violation_kinds[case] = kind
            truth[case] = False
        else:
            generated = generator.generate_case(
                case, subject, min_steps=min_steps
            )
            case_entries = generated.trail.entries
            truth[case] = True
        if case_entries:
            offset = clock - min(e.timestamp for e in case_entries)
            entries.extend(e.shifted(offset) for e in case_entries)
    return HospitalWorkload(
        trail=AuditTrail(entries),
        ground_truth=truth,
        encoded=encoded,
        violation_kinds=violation_kinds,
    )


def _violating_case(
    generator: TrailGenerator,
    rng: random.Random,
    case: str,
    subject: str,
    kind: str,
    min_steps: int,
) -> list[LogEntry]:
    """Construct one provably non-compliant case of the given class."""
    from dataclasses import replace

    if kind == "mimicry":
        return [
            LogEntry(
                user="Bob",
                role=CARDIOLOGIST,
                action="read",
                obj=ObjectRef.parse(f"[{subject}]EPR/Clinical"),
                task="T06",
                case=case,
                timestamp=datetime(2010, 3, 1),
                status=Status.SUCCESS,
            )
        ]
    base = generator.generate_case(
        case, subject, min_steps=max(min_steps, 3)
    ).trail.entries
    first_task = base[0].task  # always T01: the process opens with it
    if kind == "wrong-role":
        base[0] = replace(base[0], role=MEDICAL_LAB_TECH, user="Dana")
        return base
    if kind == "skip":
        return [e for e in base if e.task != first_task]
    if kind == "reorder":
        # Swap the first entry with the first entry of the next task.
        other = next(i for i, e in enumerate(base) if e.task != first_task)
        t0, t1 = base[0].timestamp, base[other].timestamp
        base[0], base[other] = (
            replace(base[other], timestamp=t0),
            replace(base[0], timestamp=t1),
        )
        return base
    raise ValueError(f"unknown violation kind {kind!r}")
