"""Command-line interface for the purpose-control toolkit.

Installed as the ``repro`` console script::

    repro validate  treatment.json
    repro lint      treatment.json trial.json --policy policy.txt \\
                    --role Cardiologist:Physician --format sarif --out lint.sarif
    repro encode    treatment.json --format dot > treatment.dot
    repro check     --process HT:treatment.json --trail day.xes --case HT-1
    repro audit     --process HT:treatment.json --process CT:trial.json \\
                    --trail day.xes --metrics metrics.json
    repro generate  --process HT:treatment.json --cases 50 --out day.xes
    repro stats     --process HT:treatment.json --trail day.xes
    repro serve     --process HT:treatment.json --port 7687 \\
                    --shards 4 --store audit.db
    repro demo

Process arguments use ``PREFIX:file.json``: the case prefix (the ``HT``
of ``HT-1``) paired with a process document produced by
:func:`repro.bpmn.serialize.dumps`.  Trails are XES files
(:mod:`repro.audit.xes`) or SQLite audit stores (``.db``/``.sqlite``,
:mod:`repro.audit.store`).

Telemetry (``docs/observability.md``): ``check``/``audit``/``generate``
and ``stats`` accept ``--metrics DEST`` (metrics snapshot; ``-`` =
stdout) with ``--metrics-format json|prometheus``, ``--events DEST``
(JSON-lines event log; ``-`` = stderr), and ``--trace DEST`` (span
trace; ``-`` = stderr) with ``--trace-format json|chrome``.  ``repro
stats`` runs a full audit and prints a human-readable telemetry summary
after the report.  ``--otlp DEST`` (also on ``serve``) exports spans
and metrics as OTLP/JSON — to a JSON-lines file or an ``http(s)://``
collector; ``repro trace CASE --from FILE`` renders a case's span tree
from such a file, and ``repro top URL`` live-samples a running
service's per-shard throughput, queue depth, and ingest latency.

Resilience (``docs/robustness.md``): ``repro audit`` accepts
``--workers N`` (parallel, crash-isolated case auditing), ``--on-error
{fail,skip,quarantine}``, ``--case-timeout SECONDS`` and ``--retries N``.

Compiled replay (``docs/compilation.md``): ``repro compile`` builds each
purpose's automaton eagerly and persists it under ``--automaton-dir``;
``repro audit --compiled`` replays through (in-memory) automata, and
``repro audit --automaton-dir DIR`` additionally loads/persists the
warm artifacts so later runs — and parallel workers — skip re-encoding
and re-exploration entirely.

Streaming (``docs/serving.md``): ``repro serve`` runs the audit daemon —
a JSON-lines TCP endpoint fanning entries out over ``--shards`` online
monitors, persisting the stream to ``--store`` in batched transactions,
with ``/healthz`` and ``/metrics`` on ``--http-port``.  SIGTERM (or
SIGINT) drains gracefully: intake stops, shards finish, the store is
flushed and integrity-checked, automata are checkpointed.

Static verification (``docs/analysis.md``): ``repro lint`` runs the
diagnostics engine (structural PC1xx, soundness PC2xx, policy PC3xx,
performance PC4xx) over one or more process documents, optionally
cross-checked against ``--policy FILE`` under ``--role`` hierarchy
specs, rendering ``--format text|json|sarif``; ``--strict`` makes
warnings fail the run.

Exit codes: 0 — success / compliant / lint clean; 1 — infringements or
lint errors found; 2 — bad input.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.audit.model import AuditTrail
from repro.audit.store import AuditStore
from repro.audit.xes import export_xes, import_xes
from repro.bpmn.dot import process_to_dot
from repro.bpmn.encode import encode
from repro.bpmn.serialize import loads as load_process
from repro.bpmn.validate import non_well_founded_cycles, structural_problems
from repro.core.auditor import PurposeControlAuditor
from repro.core.compliance import ComplianceChecker
from repro.core.resilience import Quarantine
from repro.cows.pretty import pretty
from repro.errors import ReproError
from repro.obs import (
    NULL_EVENTS,
    NULL_TRACER,
    MetricsRegistry,
    Telemetry,
    Tracer,
    dumps_json,
    format_summary,
    json_lines_logger,
    to_prometheus,
)
from repro.policy.registry import ProcessRegistry

EXIT_OK = 0
EXIT_INFRINGEMENT = 1
EXIT_BAD_INPUT = 2


def _read_process(path_text: str):
    """Load a process document: .json (native) or .bpmn/.xml (BPMN 2.0).

    Validation is deferred to encoding time (``registry.encoded_for``),
    so one invalid process poisons only its own cases — the auditor
    contains the failure as UNDECIDABLE instead of refusing the whole
    run (``repro validate`` remains the eager checker).
    """
    path = Path(path_text)
    if not path.exists():
        raise ReproError(f"process file not found: {path}")
    if path.suffix in (".bpmn", ".xml"):
        from repro.bpmn.xml import process_from_bpmn_xml

        return process_from_bpmn_xml(path.read_text(), validated=False)
    return load_process(path.read_text(), validated=False)


def _load_registry(specs: Sequence[str]) -> ProcessRegistry:
    registry = ProcessRegistry()
    for spec in specs:
        prefix, separator, path = spec.partition(":")
        if not separator or not prefix or not path:
            raise ReproError(
                f"--process expects PREFIX:file, got {spec!r}"
            )
        registry.register(_read_process(path), prefix)
    return registry


def _load_hierarchy(specs: Sequence[str] | None):
    from repro.policy.hierarchy import RoleHierarchy

    hierarchy = RoleHierarchy()
    for spec in specs or ():
        child, separator, parent = spec.partition(":")
        if not separator or not child or not parent:
            raise ReproError(f"--role expects CHILD:PARENT, got {spec!r}")
        hierarchy.add_role(child, parent)
    return hierarchy


def _load_trail(
    path_text: str, quarantine: Quarantine | None = None
) -> AuditTrail:
    """Load a trail; with a *quarantine*, per-record failures are
    diverted to it instead of aborting the load (``--on-error
    quarantine``)."""
    path = Path(path_text)
    if not path.exists():
        raise ReproError(f"trail file not found: {path}")
    if path.suffix in (".db", ".sqlite"):
        from repro.errors import IntegrityError

        with AuditStore(str(path)) as store:
            if quarantine is None:
                store.verify_integrity()
                return store.query()
            try:
                store.verify_integrity()
            except IntegrityError as error:
                broken_seq = getattr(error, "first_bad_seq", None)
                trail = store.query(quarantine=quarantine)
                # An undecodable row is dead-lettered by query() itself;
                # only a tampered-but-decodable row needs its own record.
                already = {
                    record.position
                    for record in quarantine.entries
                    if record.source == "store"
                }
                if broken_seq not in already:
                    quarantine.add(
                        source="store",
                        position=broken_seq,
                        reason=f"integrity check failed: {error}",
                    )
                return trail
            return store.query(quarantine=quarantine)
    return import_xes(path.read_text(), quarantine=quarantine)


# ---------------------------------------------------------------------------
# telemetry plumbing


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--metrics", metavar="DEST",
        help="write a metrics snapshot to DEST after the run ('-' = stdout)",
    )
    group.add_argument(
        "--metrics-format", choices=("json", "prometheus"), default="json",
    )
    group.add_argument(
        "--events", metavar="DEST",
        help="stream JSON-lines telemetry events to DEST ('-' = stderr)",
    )
    group.add_argument(
        "--trace", metavar="DEST",
        help="write a span trace to DEST after the run ('-' = stderr)",
    )
    group.add_argument(
        "--trace-format", choices=("json", "chrome"), default="json",
    )
    group.add_argument(
        "--otlp", metavar="DEST",
        help="export spans + metrics as OTLP/JSON to DEST — a JSON-lines "
        "file, or an http(s):// collector base URL (implies tracing)",
    )


def _telemetry_from_args(
    args: argparse.Namespace, force: bool = False
) -> Telemetry:
    """Build the Telemetry bundle the flags ask for (disabled when none)."""
    wants_otlp = bool(getattr(args, "otlp", None))
    wants_metrics = bool(getattr(args, "metrics", None)) or force or wants_otlp
    wants_events = bool(getattr(args, "events", None))
    wants_trace = bool(getattr(args, "trace", None)) or wants_otlp
    if not (wants_metrics or wants_events or wants_trace):
        return Telemetry.disabled()
    events = NULL_EVENTS
    if wants_events:
        destination = sys.stderr if args.events == "-" else args.events
        events = json_lines_logger(destination)
    return Telemetry.create(
        registry=MetricsRegistry(),
        events=events,
        tracer=Tracer() if wants_trace else NULL_TRACER,
    )


def _write_output(destination: str, text: str, default_stream) -> None:
    if destination == "-":
        default_stream.write(text if text.endswith("\n") else text + "\n")
    else:
        Path(destination).write_text(
            text if text.endswith("\n") else text + "\n"
        )


def _emit_telemetry(args: argparse.Namespace, telemetry: Telemetry) -> None:
    """Flush the requested snapshot/trace artifacts after a command."""
    if not telemetry.enabled:
        return
    if getattr(args, "metrics", None):
        if args.metrics_format == "prometheus":
            text = to_prometheus(telemetry.registry)
        else:
            text = dumps_json(telemetry.registry)
        _write_output(args.metrics, text, sys.stdout)
    if getattr(args, "trace", None):
        _write_output(
            args.trace, telemetry.tracer.dumps(args.trace_format), sys.stderr
        )
    if getattr(args, "otlp", None):
        from repro.obs import OtlpExporter

        OtlpExporter(args.otlp).export(
            tracer=telemetry.tracer, registry=telemetry.registry
        )


# ---------------------------------------------------------------------------
# subcommands


def _cmd_validate(args: argparse.Namespace) -> int:
    path = Path(args.process_file)
    if path.suffix in (".bpmn", ".xml"):
        from repro.bpmn.xml import process_from_bpmn_xml

        process = process_from_bpmn_xml(path.read_text(), validated=False)
    else:
        process = load_process(path.read_text(), validated=False)
    problems = structural_problems(process)
    for problem in problems:
        print(f"problem: {problem}")
    if problems:
        print(f"{process.process_id}: INVALID ({len(problems)} problem(s))")
        return EXIT_BAD_INPUT
    silent_cycles = non_well_founded_cycles(process)
    if silent_cycles:
        for cycle in silent_cycles:
            print("silent cycle: " + " -> ".join(cycle))
        print(
            f"{process.process_id}: NOT WELL-FOUNDED "
            f"({len(silent_cycles)} silent cycle(s); Algorithm 1 inapplicable)"
        )
        return EXIT_BAD_INPUT
    print(
        f"{process.process_id}: valid, well-founded "
        f"({len(process)} elements, {len(process.task_ids)} tasks, "
        f"pools: {', '.join(process.pools)})"
    )
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import LintOptions, lint_processes, render

    processes = [_read_process(path) for path in args.process_files]
    policy = None
    if args.policy:
        from repro.policy.parser import parse_policy

        policy_path = Path(args.policy)
        if not policy_path.exists():
            raise ReproError(f"policy file not found: {policy_path}")
        policy = parse_policy(policy_path.read_text())
    if args.budget < 1:
        raise ReproError("--budget must be a positive state count")
    telemetry = _telemetry_from_args(args)
    report = lint_processes(
        processes,
        policy=policy,
        hierarchy=_load_hierarchy(args.role),
        options=LintOptions(state_budget=args.budget),
        telemetry=telemetry,
    )
    _write_output(args.out, render(report, args.format), sys.stdout)
    if args.out != "-":
        print(report.summary())
    _emit_telemetry(args, telemetry)
    return report.exit_code(strict=args.strict)


def _cmd_encode(args: argparse.Namespace) -> int:
    process = _read_process(args.process_file)
    if args.format == "dot":
        print(process_to_dot(process))
        return EXIT_OK
    encoded = encode(process, validated=True)
    if args.format == "cows":
        print(pretty(encoded.term))
    else:  # summary
        print(f"process : {process.process_id}")
        print(f"purpose : {encoded.purpose}")
        print(f"roles   : {', '.join(sorted(encoded.roles))}")
        print(f"tasks   : {', '.join(sorted(encoded.tasks))}")
    return EXIT_OK


def _cmd_check(args: argparse.Namespace) -> int:
    registry = _load_registry(args.process)
    trail = _load_trail(args.trail)
    case_trail = trail.for_case(args.case)
    if len(case_trail) == 0:
        print(f"case {args.case}: no entries in trail")
        return EXIT_BAD_INPUT
    purpose = registry.purpose_of_case(args.case)
    telemetry = _telemetry_from_args(args)
    checker = ComplianceChecker(
        registry.encoded_for(purpose),
        hierarchy=_load_hierarchy(args.role),
        telemetry=telemetry,
    )
    result = checker.check(case_trail)
    if result.compliant:
        status = "compliant (open)" if result.may_continue else "compliant (complete)"
        print(f"case {args.case} [{purpose}]: {status}, "
              f"{result.trail_length} entries replayed")
        _emit_telemetry(args, telemetry)
        return EXIT_OK
    entry = result.failed_entry
    print(
        f"case {args.case} [{purpose}]: INFRINGEMENT at entry "
        f"{result.failed_index} ({entry.user} {entry.role} {entry.task})"
    )
    from repro.core.explain import explain

    explanation = explain(checker, case_trail.entries, result)
    if explanation is not None:
        print(f"diagnosis: {explanation}")
    if args.verbose:
        for step in result.steps:
            print(f"  {step}")
    _emit_telemetry(args, telemetry)
    return EXIT_INFRINGEMENT


def _print_parallel_outcomes(outcomes, quarantine) -> bool:
    """Print the outcome summary of a parallel audit; True if all clean."""
    from repro.core.resilience import OutcomeKind

    counts: dict[str, int] = {}
    for outcome in outcomes.values():
        counts[outcome.kind.value] = counts.get(outcome.kind.value, 0) + 1
    ordered = ", ".join(
        f"{counts[kind.value]} {kind.value}"
        for kind in OutcomeKind
        if counts.get(kind.value)
    )
    print(f"Parallel audit: {len(outcomes)} case(s) — {ordered or 'empty'}")
    clean = True
    for outcome in outcomes.values():
        if outcome.kind is not OutcomeKind.COMPLIANT:
            clean = False
            print(f"  {outcome}")
    if quarantine is not None and quarantine:
        clean = False
        print(quarantine.summary())
    return clean


def _cmd_audit(args: argparse.Namespace) -> int:
    registry = _load_registry(args.process)
    telemetry = _telemetry_from_args(args)
    quarantine = (
        Quarantine(telemetry) if args.on_error == "quarantine" else None
    )
    trail = _load_trail(args.trail, quarantine=quarantine)
    if args.workers > 1:
        from repro.core.parallel import audit_cases_parallel
        from repro.core.resilience import RetryPolicy

        outcomes = audit_cases_parallel(
            registry,
            trail,
            workers=args.workers,
            hierarchy=_load_hierarchy(args.role),
            telemetry=telemetry,
            retry_policy=RetryPolicy(max_attempts=args.retries + 1),
            case_timeout_s=args.case_timeout,
            compiled=args.compiled,
            automaton_dir=args.automaton_dir,
        )
        clean = _print_parallel_outcomes(outcomes, quarantine)
        _emit_telemetry(args, telemetry)
        return EXIT_OK if clean else EXIT_INFRINGEMENT
    auditor = PurposeControlAuditor(
        registry,
        hierarchy=_load_hierarchy(args.role),
        telemetry=telemetry,
        on_error=args.on_error,
        case_timeout_s=args.case_timeout,
        compiled=args.compiled or None,
        automaton_dir=args.automaton_dir,
    )
    report = auditor.audit(trail, quarantine=quarantine)
    print(report.summary())
    _emit_telemetry(args, telemetry)
    return EXIT_OK if report.compliant else EXIT_INFRINGEMENT


def _cmd_compile(args: argparse.Namespace) -> int:
    """Eagerly compile every registered purpose into a persisted automaton."""
    from repro.compile import (
        AutomatonCache,
        compile_automaton,
        compile_table,
        fingerprint_encoded,
    )

    registry = _load_registry(args.process)
    hierarchy = _load_hierarchy(args.role)
    telemetry = _telemetry_from_args(args)
    cache = AutomatonCache(args.automaton_dir, telemetry=telemetry)
    failures = 0
    for purpose in sorted(registry.purposes()):
        try:
            encoded = registry.encoded_for(purpose)
            fingerprint = fingerprint_encoded(encoded, hierarchy=hierarchy)
            automaton = cache.load(purpose, fingerprint)
            if automaton is not None and not args.force:
                print(
                    f"{purpose}: up to date "
                    f"({automaton.state_count} state(s), "
                    f"{automaton.transition_count} transition(s), "
                    f"fingerprint {fingerprint[:12]})"
                )
            else:
                checker = ComplianceChecker(
                    encoded, hierarchy=hierarchy, telemetry=telemetry
                )
                automaton = compile_automaton(
                    checker,
                    fingerprint=fingerprint,
                    max_states=args.max_states,
                    telemetry=telemetry,
                )
                path = cache.save(automaton)
                print(
                    f"{purpose}: compiled {automaton.state_count} state(s), "
                    f"{automaton.transition_count} transition(s), "
                    f"fingerprint {fingerprint[:12]} -> {path}"
                )
            if args.table:
                existing = (
                    None if args.force
                    else cache.load_table(purpose, fingerprint)
                )
                if existing is not None:
                    existing.close()
                    print(f"{purpose}: table up to date")
                    continue
                table = compile_table(automaton, telemetry=telemetry)
                table_file = cache.save_table(table)
                print(
                    f"{purpose}: table {table.n_states} state(s) x "
                    f"{table.n_symbols} symbol(s), pool {len(table.pool)}, "
                    f"coverage {table.coverage:.2f} -> {table_file}"
                )
        except ReproError as error:
            failures += 1
            print(f"{purpose}: FAILED ({error})", file=sys.stderr)
    _emit_telemetry(args, telemetry)
    return EXIT_BAD_INPUT if failures else EXIT_OK


def _cmd_stats(args: argparse.Namespace) -> int:
    """Audit the trail with telemetry forced on; print the human summary."""
    registry = _load_registry(args.process)
    trail = _load_trail(args.trail)
    telemetry = _telemetry_from_args(args, force=True)
    auditor = PurposeControlAuditor(
        registry, hierarchy=_load_hierarchy(args.role), telemetry=telemetry
    )
    report = auditor.audit(trail)
    print(report.summary())
    print()
    print(format_summary(telemetry.registry))
    _emit_telemetry(args, telemetry)
    return EXIT_OK if report.compliant else EXIT_INFRINGEMENT


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.audit.generator import TrailGenerator

    registry = _load_registry(args.process)
    telemetry = _telemetry_from_args(args)
    m_cases = telemetry.registry.counter(
        "cases_generated_total", "synthetic cases generated, by purpose"
    )
    m_entries = telemetry.registry.counter(
        "entries_generated_total", "synthetic log entries generated, by purpose"
    )
    purposes = sorted(registry.purposes())
    entries = []
    for purpose in purposes:
        encoded = registry.encoded_for(purpose)
        prefix = registry.case_prefix_of(purpose)
        users = {role: [(f"user-{role}", role)] for role in encoded.roles}
        generator = TrailGenerator(encoded, users_by_role=users, seed=args.seed)
        with telemetry.tracer.span("generate", purpose=purpose):
            for index in range(1, args.cases + 1):
                generated = generator.generate_case(
                    f"{prefix}-{index}", f"Subject{index}", min_steps=2
                )
                entries.extend(generated.trail)
                m_cases.inc(purpose=purpose)
                m_entries.inc(len(generated.trail), purpose=purpose)
    trail = AuditTrail(entries)
    document = export_xes(trail)
    if args.out == "-":
        print(document)
    else:
        Path(args.out).write_text(document)
        print(f"wrote {len(trail)} entries ({args.cases} case(s) per purpose) "
              f"to {args.out}")
    _emit_telemetry(args, telemetry)
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the streaming audit daemon until SIGTERM/SIGINT, then drain."""
    import asyncio
    import json as _json
    import signal

    from repro.serve import AuditService, ServeConfig, ShardRouter

    audit_config = None
    if args.config:
        from repro.control import load_config
        from repro.obs.log import CONTROL_CONFIG_LOADED

        audit_config = load_config(args.config)
        registry = audit_config.registry()
        hierarchy = audit_config.hierarchy
    elif args.scenario:
        import repro.scenarios as scenarios

        if args.scenario == "paper":
            registry = scenarios.process_registry()
            hierarchy = scenarios.role_hierarchy()
        else:
            registry = scenarios.insurance_registry()
            hierarchy = scenarios.insurance_role_hierarchy()
    elif args.process:
        registry = _load_registry(args.process)
        hierarchy = _load_hierarchy(args.role)
    else:
        raise ReproError(
            "serve needs --config FILE, --process PREFIX:FILE or --scenario"
        )
    # A live /metrics endpoint needs a live registry, flags or not.
    telemetry = _telemetry_from_args(args, force=args.http_port >= 0)
    if audit_config is not None:
        if not args.no_preflight:
            report = audit_config.preflight(telemetry=telemetry)
            if not report.clean:
                lines = "; ".join(
                    f"{d.code} {d.process_id}: {d.message}"
                    for d in report.errors
                )
                raise ReproError(
                    f"config preflight failed ({len(report.errors)} lint "
                    f"error(s); --no-preflight overrides): {lines}"
                )
        telemetry.events.emit(
            CONTROL_CONFIG_LOADED,
            source=audit_config.source,
            version=audit_config.version,
            fingerprint=audit_config.fingerprint(),
            tenants=sorted(t.purpose for t in audit_config.tenants),
            preflight=not args.no_preflight,
        )
    if args.recover and args.wal_dir is None:
        raise ReproError("--recover needs --wal-dir (the log to replay)")
    if args.supervise and args.wal_dir is None:
        raise ReproError(
            "--supervise needs --wal-dir (restarts replay from the WAL)"
        )
    flags = dict(
        shards=args.shards,
        store_path=args.store,
        flush_interval_s=args.flush_interval,
        flush_max_batch=args.flush_batch,
        case_timeout_s=args.case_timeout,
        queue_capacity=args.queue_capacity,
        compiled=True if args.compiled else None,
        automaton_dir=args.automaton_dir,
        wal_dir=args.wal_dir,
        supervise=args.supervise,
        hang_timeout_s=args.hang_timeout,
        max_shard_restarts=args.max_shard_restarts,
    )
    if audit_config is not None:
        # Config budgets win over flag defaults; explicit flags the
        # config does not set still apply.
        config = audit_config.serve_config(**flags)
    else:
        config = ServeConfig(**flags)
    router = ShardRouter(
        registry, hierarchy=hierarchy, config=config, telemetry=telemetry
    )
    control = None
    if args.http_port >= 0:
        from repro.control import ControlPlane

        control = ControlPlane(
            router=router, config=audit_config, telemetry=telemetry
        )
    service = AuditService(
        router,
        host=args.host,
        port=args.port,
        http_port=None if args.http_port < 0 else args.http_port,
        control=control,
    )

    async def _run():
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await service.start(recover=args.recover)
        if args.recover and router.recovery_report is not None:
            # The recovery outcome, parseable, before "listening" — a
            # wrapper that waits for the port only proceeds once the
            # rebuilt state is known good.
            print(
                _json.dumps(
                    {"recovered": router.recovery_report.to_dict()}
                ),
                flush=True,
            )
        # One parseable line so wrappers (and the drain test) can find
        # the ephemeral ports.
        print(
            _json.dumps(
                {
                    "listening": {
                        "host": args.host,
                        "port": service.port,
                        "http_port": service.http_port,
                    }
                }
            ),
            flush=True,
        )
        await stop.wait()
        return await service.drain()

    report = asyncio.run(_run())
    print(
        _json.dumps(
            {
                "drained": {
                    "entries_received": report.entries_received,
                    "entries_written": report.entries_written,
                    "cases": report.cases,
                    "quarantined_cases": report.quarantined_cases,
                    "store_intact": report.store_intact,
                }
            }
        ),
        flush=True,
    )
    _emit_telemetry(args, telemetry)
    if report.store_intact is False:
        return EXIT_BAD_INPUT
    return EXIT_OK


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render a case's span tree from an OTLP/JSON export file."""
    from repro.obs.console import load_otlp_spans, render_case

    path = Path(args.otlp_file)
    if not path.exists():
        raise ReproError(f"OTLP export file not found: {path}")
    spans = load_otlp_spans(str(path))
    text = render_case(spans, args.case)
    print(text)
    return EXIT_OK if "no trace found" not in text else EXIT_INFRINGEMENT


def _cmd_top(args: argparse.Namespace) -> int:
    """Live per-shard view of a running service (Ctrl-C exits)."""
    import json as _json
    import time as _time
    import urllib.request

    from repro.obs.console import TopSampler

    base = args.url.rstrip("/")
    if not base.startswith(("http://", "https://")):
        base = "http://" + base

    def fetch(path: str) -> dict:
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return _json.loads(response.read().decode("utf-8"))

    sampler = TopSampler(fetch)
    remaining = args.count
    try:
        while True:
            print(sampler.render(), flush=True)
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    break
            _time.sleep(args.interval)
            print()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return EXIT_OK


def _cmd_control(args: argparse.Namespace) -> int:
    """Operator console: query/triage a service or a store file.

    ``--url`` talks HTTP to a running daemon; ``--store`` (optionally
    with ``--config``) runs the same API in-process over a store file.
    Every action prints the JSON payload; API errors (status >= 400)
    exit 2, like any other bad input.
    """
    import json as _json

    from repro.control import (
        ControlPlane,
        HttpControlClient,
        LocalControlClient,
        load_config,
    )

    if args.url:
        base = args.url.rstrip("/")
        if not base.startswith(("http://", "https://")):
            base = "http://" + base
        client = HttpControlClient(base)
    elif args.store:
        config = load_config(args.config) if args.config else None
        plane = ControlPlane(store_path=args.store, config=config)
        client = LocalControlClient(plane)
    else:
        raise ReproError(
            "control needs --url (a running daemon) or --store (a file)"
        )

    action = args.action
    if action == "tenants":
        status, payload = client.tenants()
    elif action == "verdicts":
        status, payload = client.verdicts(
            purpose=args.purpose,
            outcome=args.outcome,
            since=args.since,
            until=args.until,
            after_case=args.after_case,
            limit=args.limit,
        )
    elif action == "case":
        status, payload = client.case(args.case)
    elif action == "trail":
        status, payload = client.trail(
            args.case, after_seq=args.after_seq, limit=args.limit
        )
    elif action == "quarantine":
        status, payload = client.quarantine()
    elif action == "requeue":
        status, payload = client.requeue(args.case, wait_s=args.wait)
    elif action == "dismiss":
        status, payload = client.dismiss(
            args.case, actor=args.actor, reason=args.reason
        )
    elif action == "reaudit":
        status, payload = client.reaudit(
            config=args.reaudit_config,
            ledger=args.ledger,
            ledger_out=args.ledger_out,
            fingerprint_log=args.fingerprint_log,
            full=True if args.full else None,
            include_records=True if args.include_records else None,
        )
    elif action == "config":
        status, payload = client.config_info()
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown control action: {action}")

    print(_json.dumps(payload, indent=2, sort_keys=True))
    return EXIT_OK if status < 400 else EXIT_BAD_INPUT


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        paper_audit_trail,
        process_registry,
        role_hierarchy,
    )

    auditor = PurposeControlAuditor(
        process_registry(), hierarchy=role_hierarchy()
    )
    report = auditor.audit(paper_audit_trail())
    print("Purpose control on the paper's running example (Figs 1-4):\n")
    print(report.summary())
    return EXIT_OK if report.compliant else EXIT_INFRINGEMENT


# ---------------------------------------------------------------------------
# argument parsing


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Purpose control: verify that data were processed "
        "for the intended purpose (Petkovic, Prandi & Zannone, 2011).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="validate a BPMN process document"
    )
    validate.add_argument("process_file")
    validate.set_defaults(handler=_cmd_validate)

    lint = commands.add_parser(
        "lint",
        help="statically verify process models: soundness, policy "
        "cross-checks, performance lint (docs/analysis.md)",
    )
    lint.add_argument("process_files", nargs="+", metavar="PROCESS_FILE")
    lint.add_argument(
        "--policy", metavar="FILE",
        help="data-protection policy document to cross-check (PC3xx)",
    )
    lint.add_argument(
        "--role", action="append", metavar="CHILD:PARENT",
        help="role specialization, e.g. Cardiologist:Physician (repeatable)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (exit 1)",
    )
    lint.add_argument(
        "--budget", type=int, default=20_000, metavar="STATES",
        help="soundness state budget; past it the analysis degrades to "
        "an 'inconclusive' info diagnostic (default: 20000)",
    )
    lint.add_argument(
        "--out", default="-", metavar="DEST",
        help="write the report to DEST instead of stdout",
    )
    _add_telemetry_args(lint)
    lint.set_defaults(handler=_cmd_lint)

    encode_cmd = commands.add_parser(
        "encode", help="encode a process into COWS (or export DOT)"
    )
    encode_cmd.add_argument("process_file")
    encode_cmd.add_argument(
        "--format", choices=("summary", "cows", "dot"), default="summary"
    )
    encode_cmd.set_defaults(handler=_cmd_encode)

    check = commands.add_parser("check", help="replay one case (Algorithm 1)")
    check.add_argument(
        "--process", action="append", required=True, metavar="PREFIX:FILE"
    )
    check.add_argument("--trail", required=True, help="XES file or SQLite store")
    check.add_argument("--case", required=True)
    check.add_argument(
        "--role", action="append", metavar="CHILD:PARENT",
        help="role specialization, e.g. Cardiologist:Physician (repeatable)",
    )
    check.add_argument("--verbose", action="store_true")
    _add_telemetry_args(check)
    check.set_defaults(handler=_cmd_check)

    audit = commands.add_parser("audit", help="audit every case of a trail")
    audit.add_argument(
        "--process", action="append", required=True, metavar="PREFIX:FILE"
    )
    audit.add_argument("--trail", required=True)
    audit.add_argument(
        "--role", action="append", metavar="CHILD:PARENT",
        help="role specialization, e.g. Cardiologist:Physician (repeatable)",
    )
    resilience = audit.add_argument_group("resilience")
    resilience.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 audits cases in parallel with "
        "crash isolation (default: 1, serial)",
    )
    resilience.add_argument(
        "--on-error", choices=("fail", "skip", "quarantine"), default="fail",
        help="unexpected per-case failures: abort the audit (fail, "
        "default), contain them as findings (skip), or also divert "
        "malformed input records to a dead-letter list (quarantine)",
    )
    resilience.add_argument(
        "--case-timeout", type=float, default=None, metavar="SECONDS",
        help="per-case wall-clock replay budget (contained as TIMEOUT)",
    )
    resilience.add_argument(
        "--retries", type=int, default=2,
        help="re-dispatches per case after worker loss (default: 2)",
    )
    compilation = audit.add_argument_group("compiled replay")
    compilation.add_argument(
        "--compiled", action="store_true",
        help="replay through in-memory purpose automata "
        "(docs/compilation.md)",
    )
    compilation.add_argument(
        "--automaton-dir", metavar="DIR", default=None,
        help="load/persist compiled automata in DIR (implies --compiled); "
        "invalid artifacts are recompiled transparently",
    )
    _add_telemetry_args(audit)
    audit.set_defaults(handler=_cmd_audit)

    compile_cmd = commands.add_parser(
        "compile",
        help="compile purpose automata and persist them as artifacts",
    )
    compile_cmd.add_argument(
        "--process", action="append", required=True, metavar="PREFIX:FILE"
    )
    compile_cmd.add_argument(
        "--automaton-dir", required=True, metavar="DIR",
        help="directory receiving the .automaton.json artifacts",
    )
    compile_cmd.add_argument(
        "--role", action="append", metavar="CHILD:PARENT",
        help="role specialization, e.g. Cardiologist:Physician (repeatable)",
    )
    compile_cmd.add_argument(
        "--max-states", type=int, default=50_000,
        help="automaton state bound (mirrors the frontier guard; "
        "default: 50000)",
    )
    compile_cmd.add_argument(
        "--force", action="store_true",
        help="recompile even when a valid artifact exists",
    )
    compile_cmd.add_argument(
        "--table", action="store_true",
        help="also flatten each automaton into a dense binary transition "
        "table (.table.bin) for mmap-backed replay",
    )
    _add_telemetry_args(compile_cmd)
    compile_cmd.set_defaults(handler=_cmd_compile)

    stats = commands.add_parser(
        "stats",
        help="audit a trail and print a human-readable telemetry summary",
    )
    stats.add_argument(
        "--process", action="append", required=True, metavar="PREFIX:FILE"
    )
    stats.add_argument("--trail", required=True)
    stats.add_argument(
        "--role", action="append", metavar="CHILD:PARENT",
        help="role specialization, e.g. Cardiologist:Physician (repeatable)",
    )
    _add_telemetry_args(stats)
    stats.set_defaults(handler=_cmd_stats)

    generate = commands.add_parser(
        "generate", help="generate a synthetic compliant trail (XES)"
    )
    generate.add_argument(
        "--process", action="append", required=True, metavar="PREFIX:FILE"
    )
    generate.add_argument("--cases", type=int, default=10)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", default="-")
    _add_telemetry_args(generate)
    generate.set_defaults(handler=_cmd_generate)

    serve = commands.add_parser(
        "serve",
        help="run the streaming audit daemon (docs/serving.md)",
    )
    serve.add_argument(
        "--config", metavar="FILE", default=None,
        help="declarative audit config (JSON/TOML): tenants, hierarchy "
        "and budgets in one versioned document (docs/control-plane.md); "
        "replaces --process/--scenario/--role",
    )
    serve.add_argument(
        "--no-preflight", action="store_true",
        help="skip the repro-lint preflight over --config tenants "
        "(lint errors normally refuse startup)",
    )
    serve.add_argument(
        "--process", action="append", metavar="PREFIX:FILE",
        help="case-prefix:process-document pair (repeatable)",
    )
    serve.add_argument(
        "--scenario", choices=("paper", "insurance"), default=None,
        help="serve a built-in scenario's registry instead of --process",
    )
    serve.add_argument(
        "--role", action="append", metavar="CHILD:PARENT",
        help="role specialization, e.g. Cardiologist:Physician (repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port for the JSON-lines stream (0 = ephemeral)",
    )
    serve.add_argument(
        "--http-port", type=int, default=0,
        help="port for /healthz and /metrics (0 = ephemeral; "
        "-1 disables HTTP)",
    )
    serve.add_argument(
        "--shards", type=int, default=4,
        help="online-monitor shards; cases are consistent-hashed "
        "across them (default: 4)",
    )
    serve.add_argument(
        "--store", metavar="PATH", default=None,
        help="persist the stream to this SQLite audit store",
    )
    serve.add_argument(
        "--flush-interval", type=float, default=0.5, metavar="SECONDS",
        help="store flush cadence (default: 0.5)",
    )
    serve.add_argument(
        "--flush-batch", type=int, default=256, metavar="N",
        help="flush early once N entries are buffered (default: 256)",
    )
    serve.add_argument(
        "--case-timeout", type=float, default=None, metavar="SECONDS",
        help="cumulative per-case processing budget; cases over it are "
        "quarantined (TIMEOUT) without stalling the stream",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=10_000, metavar="N",
        help="bounded per-shard queue depth; busy/shed watermarks "
        "derive from it (default: 10000)",
    )
    serve_robustness = serve.add_argument_group(
        "crash safety (docs/robustness.md)"
    )
    serve_robustness.add_argument(
        "--wal-dir", metavar="DIR", default=None,
        help="per-shard write-ahead ingest log: every accepted entry "
        "is CRC-framed here before it is acknowledged",
    )
    serve_robustness.add_argument(
        "--recover", action="store_true",
        help="rebuild in-flight state from the store + WAL delta "
        "before listening (after a crash; needs --wal-dir)",
    )
    serve_robustness.add_argument(
        "--supervise", action="store_true",
        help="watch shard heartbeats; restart crashed/hung shards "
        "from durable history (needs --wal-dir)",
    )
    serve_robustness.add_argument(
        "--hang-timeout", type=float, default=None, metavar="SECONDS",
        help="a supervised shard silent this long mid-case is treated "
        "as hung and replaced (default: hangs are not policed)",
    )
    serve_robustness.add_argument(
        "--max-shard-restarts", type=int, default=2, metavar="N",
        help="restarts per shard before its cases are re-homed to the "
        "surviving shards (default: 2)",
    )
    serve_compilation = serve.add_argument_group("compiled replay")
    serve_compilation.add_argument(
        "--compiled", action="store_true",
        help="replay through purpose automata (docs/compilation.md)",
    )
    serve_compilation.add_argument(
        "--automaton-dir", metavar="DIR", default=None,
        help="load/persist compiled automata in DIR (implies --compiled); "
        "drain checkpoints them",
    )
    _add_telemetry_args(serve)
    serve.set_defaults(handler=_cmd_serve)

    trace_cmd = commands.add_parser(
        "trace",
        help="render a case's span tree from an OTLP/JSON export",
    )
    trace_cmd.add_argument("case", help="case id, e.g. HT-1")
    trace_cmd.add_argument(
        "--from", dest="otlp_file", required=True, metavar="FILE",
        help="the JSON-lines file a --otlp run wrote",
    )
    trace_cmd.set_defaults(handler=_cmd_trace)

    top = commands.add_parser(
        "top",
        help="live per-shard throughput/latency view of a running service",
    )
    top.add_argument(
        "url", help="the service's HTTP endpoint, e.g. 127.0.0.1:8080"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh cadence (default: 2.0)",
    )
    top.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="exit after N samples (default: run until Ctrl-C)",
    )
    top.set_defaults(handler=_cmd_top)

    control = commands.add_parser(
        "control",
        help="operator console: query verdicts, triage quarantine, "
        "re-audit (docs/control-plane.md)",
    )
    control.add_argument(
        "--url", default=None, metavar="URL",
        help="HTTP endpoint of a running daemon, e.g. 127.0.0.1:8080",
    )
    control.add_argument(
        "--store", default=None, metavar="PATH",
        help="run the API in-process over this audit store (no daemon)",
    )
    control.add_argument(
        "--config", default=None, metavar="FILE",
        help="audit config to mount alongside --store (enables verdict "
        "queries and re-audit over the store)",
    )
    control_actions = control.add_subparsers(
        dest="action", required=True, metavar="ACTION"
    )
    control_actions.add_parser(
        "tenants", help="list tenants (purpose, prefix, fingerprint)"
    )
    verdicts = control_actions.add_parser(
        "verdicts", help="query per-case verdicts with filters"
    )
    verdicts.add_argument("--purpose", default=None)
    verdicts.add_argument(
        "--outcome", default=None,
        help="completed | infringing | open | quarantined",
    )
    verdicts.add_argument(
        "--since", default=None, metavar="ISO-8601",
        help="only cases with trail activity at/after this instant",
    )
    verdicts.add_argument(
        "--until", default=None, metavar="ISO-8601",
        help="only cases with trail activity at/before this instant",
    )
    verdicts.add_argument(
        "--after-case", default=None, metavar="CASE",
        help="keyset cursor: resume after this case id",
    )
    verdicts.add_argument("--limit", type=int, default=None, metavar="N")
    case_cmd = control_actions.add_parser(
        "case", help="one case's verdict, findings, trace and trail refs"
    )
    case_cmd.add_argument("case")
    trail_cmd = control_actions.add_parser(
        "trail", help="a case's audit-trail entries (paginated)"
    )
    trail_cmd.add_argument("case")
    trail_cmd.add_argument(
        "--after-seq", type=int, default=0, metavar="SEQ",
        help="keyset cursor: entries with store seq > SEQ",
    )
    trail_cmd.add_argument("--limit", type=int, default=None, metavar="N")
    control_actions.add_parser(
        "quarantine", help="list quarantined cases and their failure kinds"
    )
    requeue = control_actions.add_parser(
        "requeue", help="replay a quarantined case through its shard"
    )
    requeue.add_argument("case")
    requeue.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="how long to wait for the replay verdict (default: 5.0)",
    )
    dismiss = control_actions.add_parser(
        "dismiss",
        help="drop a case from quarantine, recording who and why",
    )
    dismiss.add_argument("case")
    dismiss.add_argument("--actor", default="operator")
    dismiss.add_argument("--reason", default="")
    reaudit = control_actions.add_parser(
        "reaudit",
        help="re-audit the store against a (new) config; incremental "
        "when a baseline ledger exists",
    )
    reaudit.add_argument(
        "--config", dest="reaudit_config", default=None, metavar="FILE",
        help="the (possibly edited) config to audit under "
        "(default: the mounted one)",
    )
    reaudit.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="baseline ledger from a previous run (enables incremental)",
    )
    reaudit.add_argument(
        "--ledger-out", default=None, metavar="FILE",
        help="write the resulting ledger here (the next run's baseline)",
    )
    reaudit.add_argument(
        "--fingerprint-log", default=None, metavar="FILE",
        help="append one forensics JSON line per run (CI artifact)",
    )
    reaudit.add_argument(
        "--full", action="store_true",
        help="force a cold full re-audit (ignore any baseline)",
    )
    reaudit.add_argument(
        "--include-records", action="store_true",
        help="include per-case records in the printed payload",
    )
    control_actions.add_parser(
        "config", help="the mounted config's version and fingerprints"
    )
    control.set_defaults(handler=_cmd_control)

    demo = commands.add_parser("demo", help="run the paper's scenario")
    demo.set_defaults(handler=_cmd_demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.handler(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_BAD_INPUT
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_BAD_INPUT


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
