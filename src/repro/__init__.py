"""repro — purpose control for personal data processing.

A full reproduction of *"Purpose Control: Did You Process the Data for
the Intended Purpose?"* (Petković, Prandi & Zannone, SDM @ VLDB 2011):
a-posteriori verification that audited data usage is a valid execution of
the organizational process implementing the purpose claimed at access
time.

Quickstart::

    from repro import (
        ComplianceChecker, encode,
        healthcare_treatment_process, paper_audit_trail, role_hierarchy,
    )

    process = healthcare_treatment_process()          # Fig. 1
    checker = ComplianceChecker(encode(process), role_hierarchy())
    trail = paper_audit_trail()                       # Fig. 4
    print(checker.check(trail.for_case("HT-1")).compliant)   # True
    print(checker.check(trail.for_case("HT-11")).compliant)  # False: re-purposing

Package map:

* :mod:`repro.cows` — the COWS process calculus and its LTS semantics;
* :mod:`repro.bpmn` — BPMN processes, validation, the COWS encoding;
* :mod:`repro.policy` — data-protection policies and request evaluation;
* :mod:`repro.audit` — audit trails, the tamper-evident store, generators;
* :mod:`repro.core` — WeakNext, Algorithm 1, the auditor, baselines;
* :mod:`repro.conformance` — the Petri-net token-replay baseline;
* :mod:`repro.obs` — telemetry: metrics, structured events, span traces;
* :mod:`repro.scenarios` — the paper's figures and synthetic workloads.
"""

from repro.audit import AuditStore, AuditTrail, LogEntry, Status, TrailGenerator
from repro.bpmn import ProcessBuilder, encode, validate
from repro.core import (
    AuditReport,
    ComplianceChecker,
    ComplianceResult,
    NaiveChecker,
    PurposeControlAuditor,
    SeverityModel,
)
from repro.errors import ReproError
from repro.obs import MetricsRegistry, Telemetry
from repro.policy import (
    AccessRequest,
    ObjectRef,
    Policy,
    PolicyDecisionPoint,
    ProcessRegistry,
    RoleHierarchy,
    Statement,
    UserDirectory,
    parse_policy,
)
from repro.scenarios import (
    clinical_trial_process,
    healthcare_treatment_process,
    paper_audit_trail,
    paper_policy,
    process_registry,
    role_hierarchy,
)

__version__ = "1.0.0"

__all__ = [
    "AccessRequest",
    "AuditReport",
    "AuditStore",
    "AuditTrail",
    "ComplianceChecker",
    "ComplianceResult",
    "LogEntry",
    "MetricsRegistry",
    "NaiveChecker",
    "ObjectRef",
    "Policy",
    "PolicyDecisionPoint",
    "ProcessBuilder",
    "ProcessRegistry",
    "PurposeControlAuditor",
    "ReproError",
    "RoleHierarchy",
    "Statement",
    "SeverityModel",
    "Status",
    "Telemetry",
    "TrailGenerator",
    "UserDirectory",
    "__version__",
    "clinical_trial_process",
    "encode",
    "healthcare_treatment_process",
    "paper_audit_trail",
    "paper_policy",
    "parse_policy",
    "process_registry",
    "role_hierarchy",
    "validate",
]
