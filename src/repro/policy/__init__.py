"""Data-protection policies: the preventive half of purpose control.

Implements Definitions 1-3 of the paper: statements ``(s, a, o, p)``,
access requests ``(u, a, o, q, c)``, role and object hierarchies, and the
authorization check — including consent-conditional statements and the
purpose -> process registry that ties policies to organizational
processes.
"""

from repro.policy.chains import Act, Chain, ChainPolicy, ChainVerdict
from repro.policy.engine import Decision, PolicyDecisionPoint
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import (
    ANY_SUBJECT,
    EXECUTE,
    READ,
    WRITE,
    AccessRequest,
    ConsentRegistry,
    ObjectRef,
    Policy,
    Statement,
    UserDirectory,
)
from repro.policy.parser import format_policy, parse_policy, parse_statement
from repro.policy.registry import ProcessRegistry

__all__ = [
    "ANY_SUBJECT",
    "Act",
    "Chain",
    "ChainPolicy",
    "ChainVerdict",
    "EXECUTE",
    "READ",
    "WRITE",
    "AccessRequest",
    "ConsentRegistry",
    "Decision",
    "ObjectRef",
    "Policy",
    "PolicyDecisionPoint",
    "ProcessRegistry",
    "RoleHierarchy",
    "Statement",
    "UserDirectory",
    "format_policy",
    "parse_policy",
    "parse_statement",
]
