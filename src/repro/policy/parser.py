"""Textual syntax for data protection statements, matching Fig. 3.

A policy document is a sequence of lines; blank lines and ``#`` comments
are ignored.  Each statement line is a 4-tuple::

    (Physician, read, [.]EPR/Clinical, treatment)
    (MedicalLabTech, write, [.]EPR/Clinical/Tests, treatment)
    (Physician, read, [X]EPR, clinicaltrial)

The subject tag of the object follows the paper's conventions:

* ``[.]`` or ``[*]`` — any data subject;
* ``[X]`` — any *consenting* data subject (the statement becomes
  consent-conditional, footnote 3);
* ``[Jane]`` — the named subject only;
* no tag — a subject-less resource such as ``ClinicalTrial/Criteria``.
"""

from __future__ import annotations

from repro.errors import PolicySyntaxError
from repro.policy.model import ObjectRef, Policy, Statement

#: The consent placeholder of Fig. 3's last row.
CONSENT_TAG = "X"


def parse_statement(line: str) -> Statement:
    """Parse one ``(subject, action, object, purpose)`` statement."""
    text = line.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise PolicySyntaxError(f"statement must be parenthesized: {line!r}")
    fields = [field.strip() for field in text[1:-1].split(",")]
    if len(fields) != 4:
        raise PolicySyntaxError(
            f"statement needs exactly 4 fields, got {len(fields)}: {line!r}"
        )
    subject, action, object_text, purpose = fields
    if not all(fields):
        raise PolicySyntaxError(f"statement has empty fields: {line!r}")
    requires_consent = False
    if object_text.startswith(f"[{CONSENT_TAG}]"):
        requires_consent = True
        object_text = "[*]" + object_text[len(CONSENT_TAG) + 2 :]
    try:
        obj = ObjectRef.parse(object_text)
    except Exception as error:
        raise PolicySyntaxError(f"bad object in {line!r}: {error}") from error
    return Statement(
        subject=subject,
        action=action,
        obj=obj,
        purpose=purpose,
        requires_consent=requires_consent,
    )


def parse_policy(text: str) -> Policy:
    """Parse a multi-line policy document into a :class:`Policy`."""
    policy = Policy()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            policy.add(parse_statement(line))
        except PolicySyntaxError as error:
            raise PolicySyntaxError(f"line {line_number}: {error}") from error
    return policy


def format_policy(policy: Policy) -> str:
    """Render a policy back into the textual syntax (round-trippable)."""
    lines = []
    for statement in policy:
        obj_text = str(statement.obj)
        if statement.requires_consent and obj_text.startswith("[.]"):
            obj_text = f"[{CONSENT_TAG}]" + obj_text[3:]
        lines.append(
            f"({statement.subject}, {statement.action}, "
            f"{obj_text}, {statement.purpose})"
        )
    return "\n".join(lines)
