"""Data-protection policy model (Definitions 1 and 2 of the paper).

* :class:`ObjectRef` — hierarchical, subject-tagged resources with the
  partial order ``>=O`` ("[Jane]EPR >=O [Jane]EPR/Clinical");
* :class:`Statement` — a data protection statement ``(s, a, o, p)``:
  who may perform which action on which object for which purpose;
* :class:`Policy` — a set of statements;
* :class:`AccessRequest` — ``(u, a, o, q, c)``: a user asking to perform
  an action on an object within task ``q`` of process instance ``c``;
* :class:`UserDirectory` — the user -> active-roles assignment the
  evaluation needs ("u has role r2 active", Definition 3);
* :class:`ConsentRegistry` — which data subjects consented to which
  purposes, supporting the consent-conditional statement of Fig. 3
  (``(Physician, read, [X]EPR, clinicaltrial)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import PolicyError

#: The built-in action vocabulary of Section 3.1.  Free-form action names
#: are allowed everywhere; these constants just avoid typos.
READ = "read"
WRITE = "write"
EXECUTE = "execute"

#: The wildcard subject of statements like ``[.]EPR`` — any data subject.
ANY_SUBJECT = "*"


@dataclass(frozen=True, slots=True)
class ObjectRef:
    """A hierarchical resource reference, optionally tagged with a subject.

    ``[Jane]EPR/Clinical`` parses to ``ObjectRef("Jane", ("EPR", "Clinical"))``;
    a plain ``ClinicalTrial/Criteria`` has ``subject=None``.  Statements
    use ``subject=ANY_SUBJECT`` for "any patient" (written ``[.]`` in the
    paper's Fig. 3).
    """

    subject: Optional[str]
    path: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise PolicyError("an object reference needs a non-empty path")
        if any(not part for part in self.path):
            raise PolicyError("object path components must be non-empty")

    @classmethod
    def parse(cls, text: str) -> "ObjectRef":
        """Parse ``[Jane]EPR/Clinical``, ``[.]EPR``, ``[*]EPR`` or ``A/B``."""
        subject: Optional[str] = None
        rest = text.strip()
        if rest.startswith("["):
            end = rest.find("]")
            if end < 0:
                raise PolicyError(f"unterminated subject tag in {text!r}")
            tag = rest[1:end].strip()
            subject = ANY_SUBJECT if tag in (".", "*", "") else tag
            rest = rest[end + 1 :]
        if not rest:
            raise PolicyError(f"object reference {text!r} has no path")
        return cls(subject, tuple(part for part in rest.split("/") if part))

    def __str__(self) -> str:
        path = "/".join(self.path)
        if self.subject is None:
            return path
        tag = "." if self.subject == ANY_SUBJECT else self.subject
        return f"[{tag}]{path}"

    def covers(self, other: "ObjectRef") -> bool:
        """Whether ``self >=O other`` — self's subtree contains *other*.

        Subject rules: the wildcard covers any subject (including none);
        a named subject only covers the same subject; a subject-less
        reference only covers subject-less ones.
        """
        if self.subject != ANY_SUBJECT and self.subject != other.subject:
            return False
        if len(self.path) > len(other.path):
            return False
        return other.path[: len(self.path)] == self.path

    def with_subject(self, subject: str) -> "ObjectRef":
        return ObjectRef(subject, self.path)


@dataclass(frozen=True, slots=True)
class Statement:
    """A data protection statement ``(s, a, o, p)`` (Definition 1).

    ``subject`` names either a role or a concrete user; evaluation tries
    both interpretations.  ``requires_consent`` marks statements like the
    ``[X]EPR`` row of Fig. 3: the data subject must have consented to the
    statement's purpose.
    """

    subject: str
    action: str
    obj: ObjectRef
    purpose: str
    requires_consent: bool = False

    def __str__(self) -> str:
        tag = "[consent] " if self.requires_consent else ""
        return f"{tag}({self.subject}, {self.action}, {self.obj}, {self.purpose})"


@dataclass
class Policy:
    """A data protection policy: a set of statements (Definition 1)."""

    statements: list[Statement] = field(default_factory=list)

    def add(self, statement: Statement) -> "Policy":
        self.statements.append(statement)
        return self

    def extend(self, statements: Iterable[Statement]) -> "Policy":
        self.statements.extend(statements)
        return self

    def for_purpose(self, purpose: str) -> list[Statement]:
        return [s for s in self.statements if s.purpose == purpose]

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


@dataclass(frozen=True, slots=True)
class AccessRequest:
    """An access request ``(u, a, o, q, c)`` (Definition 2)."""

    user: str
    action: str
    obj: ObjectRef
    task: str
    case: str

    def __str__(self) -> str:
        return (
            f"({self.user}, {self.action}, {self.obj}, "
            f"task={self.task}, case={self.case})"
        )


class UserDirectory:
    """The user -> active-roles assignment used by Definition 3.

    The paper assumes role membership is established at authentication
    time; this directory is that post-authentication view.
    """

    def __init__(self) -> None:
        self._roles: dict[str, set[str]] = {}

    def assign(self, user: str, *roles: str) -> "UserDirectory":
        if not user:
            raise PolicyError("user names must be non-empty")
        self._roles.setdefault(user, set()).update(roles)
        return self

    def revoke(self, user: str, role: str) -> "UserDirectory":
        self._roles.get(user, set()).discard(role)
        return self

    def roles_of(self, user: str) -> frozenset[str]:
        return frozenset(self._roles.get(user, ()))

    def users(self) -> frozenset[str]:
        return frozenset(self._roles)

    def users_with_role(self, role: str) -> frozenset[str]:
        return frozenset(u for u, roles in self._roles.items() if role in roles)


class ConsentRegistry:
    """Which data subjects consented to which purposes.

    In the running example Jane did **not** consent to research purposes,
    so the consent-conditional clinical-trial statement never applies to
    her EPR (footnote 3 of the paper).
    """

    def __init__(self) -> None:
        self._consents: dict[str, set[str]] = {}

    def grant(self, subject: str, purpose: str) -> "ConsentRegistry":
        self._consents.setdefault(subject, set()).add(purpose)
        return self

    def withdraw(self, subject: str, purpose: str) -> "ConsentRegistry":
        self._consents.get(subject, set()).discard(purpose)
        return self

    def has_consented(self, subject: Optional[str], purpose: str) -> bool:
        if subject is None:
            return False
        return purpose in self._consents.get(subject, ())

    def consenting_subjects(self, purpose: str) -> frozenset[str]:
        return frozenset(
            s for s, purposes in self._consents.items() if purpose in purposes
        )
