"""The Chain method — the other operational purpose model (related work [27]).

Al-Fedaghi's Chain method specifies privacy policy as the "chains of
acts" users may perform on personal information: purposes are implicit
in the allowed *sequences of acts* (create, collect, process, disclose,
...).  The paper's Section 6 credits it as the only other operational
purpose model and criticizes it on two counts:

1. it forces business behaviour to be specified at the **action** level,
   "introducing an undesirable complexity into process models" (no reuse
   of existing BPMN assets);
2. it is **preventive** and "lacks capability to reconstruct the
   sequence of acts when chains are executed concurrently".

This module implements the method so benchmark E12b can demonstrate both
points empirically: a :class:`ChainPolicy` accepts act sequences that
are interleavings of its chains; the greedy online matcher that a
preventive enforcement point must use mis-attributes acts once chains
overlap, producing false verdicts that Algorithm 1 (which has cases to
separate instances) does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import PolicyError

if TYPE_CHECKING:  # pragma: no cover - avoids a policy <-> audit import cycle
    from repro.audit.model import AuditTrail, LogEntry


@dataclass(frozen=True)
class Act:
    """One act of a chain: an action verb on an object-path prefix."""

    action: str
    object_prefix: tuple[str, ...]

    @classmethod
    def parse(cls, text: str) -> "Act":
        action, _, path = text.partition(" ")
        if not action or not path:
            raise PolicyError(f"an act needs 'action path', got {text!r}")
        return cls(action, tuple(path.split("/")))

    def matches(self, entry: LogEntry) -> bool:
        if entry.action != self.action or entry.obj is None:
            return False
        path = entry.obj.path
        return path[: len(self.object_prefix)] == self.object_prefix

    def __str__(self) -> str:
        return f"{self.action} {'/'.join(self.object_prefix)}"


@dataclass(frozen=True)
class Chain:
    """An allowed chain of acts (implicitly defining a purpose)."""

    name: str
    acts: tuple[Act, ...]

    def __post_init__(self) -> None:
        if not self.acts:
            raise PolicyError(f"chain {self.name!r} has no acts")

    def __len__(self) -> int:
        return len(self.acts)


@dataclass
class ChainPolicy:
    """A set of allowed chains (the Chain method's policy object)."""

    chains: list[Chain] = field(default_factory=list)

    def add_chain(self, name: str, acts: Iterable[str | Act]) -> "ChainPolicy":
        parsed = tuple(
            act if isinstance(act, Act) else Act.parse(act) for act in acts
        )
        self.chains.append(Chain(name, parsed))
        return self

    # -- the preventive, greedy online matcher --------------------------------
    def check_greedy(self, trail: AuditTrail | list[LogEntry]) -> "ChainVerdict":
        """The enforcement a preventive chain monitor can actually run.

        Each incoming act must extend some in-progress chain instance or
        start a new chain whose first act matches; the matcher is greedy
        and — crucially — has **no case information**, the paper's
        criticism: when chains execute concurrently it cannot reconstruct
        which instance an act belongs to.
        """
        in_progress: list[tuple[Chain, int]] = []  # (chain, next act index)
        accepted = 0
        for entry in trail:
            matched = False
            for index, (chain, position) in enumerate(in_progress):
                if chain.acts[position].matches(entry):
                    if position + 1 == len(chain.acts):
                        in_progress.pop(index)
                    else:
                        in_progress[index] = (chain, position + 1)
                    matched = True
                    break
            if not matched:
                for chain in self.chains:
                    if chain.acts[0].matches(entry):
                        if len(chain.acts) > 1:
                            in_progress.append((chain, 1))
                        matched = True
                        break
            if not matched:
                return ChainVerdict(False, accepted, entry)
            accepted += 1
        return ChainVerdict(True, accepted, None)

    def check_per_case(self, trail: AuditTrail) -> dict[str, "ChainVerdict"]:
        """What the matcher would do *if* it had case separation — the
        information Algorithm 1 gets for free from Definition 4 logs."""
        return {
            case: self.check_greedy(trail.for_case(case))
            for case in trail.cases()
        }


@dataclass(frozen=True)
class ChainVerdict:
    compliant: bool
    accepted: int
    failed_entry: Optional[LogEntry]

    def __bool__(self) -> bool:
        return self.compliant
