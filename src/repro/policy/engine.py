"""Access-request evaluation — Definition 3 of the paper.

An access request ``(u, a, o, q, c)`` is authorized when some statement
``(s, a', o', p)`` of the policy satisfies all of:

(i)   ``s = u``, or ``s`` is a role, the user has an active role ``r2``
      and ``r2 >=R s`` (the user's role specializes the statement's);
(ii)  ``a = a'``;
(iii) ``o' >=O o`` (the statement's object subtree contains the request's);
(iv)  ``c`` is an instance of ``p`` and ``q`` is a task in ``p``.

Statements flagged ``requires_consent`` additionally demand that the data
subject of the requested object consented to the statement's purpose —
the mechanism behind footnote 3: a physician asking for EPRs *for
clinical trial* only sees consenting patients' records.

This engine is the *preventive* half of the framework; Section 3.5 notes
purpose control must be complemented by exactly such a mechanism.  The
a-posteriori half is :mod:`repro.core.compliance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.policy.hierarchy import RoleHierarchy
from repro.policy.model import (
    AccessRequest,
    ConsentRegistry,
    Policy,
    Statement,
    UserDirectory,
)
from repro.policy.registry import ProcessRegistry


@dataclass(frozen=True)
class Decision:
    """The outcome of evaluating an access request."""

    permit: bool
    request: AccessRequest
    matched: Optional[Statement] = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.permit


class PolicyDecisionPoint:
    """Evaluates access requests against a data protection policy."""

    def __init__(
        self,
        policy: Policy,
        users: UserDirectory,
        hierarchy: RoleHierarchy,
        registry: ProcessRegistry,
        consent: ConsentRegistry | None = None,
    ):
        self._policy = policy
        self._users = users
        self._hierarchy = hierarchy
        self._registry = registry
        self._consent = consent or ConsentRegistry()

    def evaluate(self, request: AccessRequest) -> Decision:
        """Definition 3: permit iff some statement matches the request."""
        failures: list[str] = []
        for statement in self._policy:
            failure = self._mismatch(statement, request)
            if failure is None:
                return Decision(
                    permit=True,
                    request=request,
                    matched=statement,
                    reason=f"matched statement {statement}",
                )
            failures.append(f"{statement}: {failure}")
        return Decision(
            permit=False,
            request=request,
            reason="no statement matches; " + "; ".join(failures[:3]),
        )

    def is_authorized(self, request: AccessRequest) -> bool:
        return self.evaluate(request).permit

    # -- matching --------------------------------------------------------
    def _mismatch(
        self, statement: Statement, request: AccessRequest
    ) -> Optional[str]:
        """The first Definition-3 condition *statement* fails, or None."""
        if not self._subject_matches(statement.subject, request.user):
            return "subject mismatch"
        if statement.action != request.action:
            return "action mismatch"
        if not statement.obj.covers(request.obj):
            return "object not covered"
        if not self._registry.is_instance_of(request.case, statement.purpose):
            return "case is not an instance of the statement's purpose"
        if not self._registry.task_in_purpose(request.task, statement.purpose):
            return "task does not belong to the purpose's process"
        if statement.requires_consent and not self._consent.has_consented(
            request.obj.subject, statement.purpose
        ):
            return "data subject has not consented to the purpose"
        return None

    def _subject_matches(self, subject: str, user: str) -> bool:
        if subject == user:
            return True
        for active_role in self._users.roles_of(user):
            if self._hierarchy.is_specialization_of(active_role, subject):
                return True
        return False
