"""The purpose -> organizational-process registry.

The central idea of the paper (Section 3.1) is that a *purpose* is
represented by the organizational process implemented to achieve the
corresponding goal.  This registry realizes the link: it maps purpose
names to BPMN processes and resolves *cases* (process instances, the
``c`` of Definitions 2/4) to the purpose they instantiate.

Cases follow the paper's naming scheme — ``HT-1``, ``CT-1``: a prefix
identifying the process and an instance number.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.bpmn.encode import EncodedProcess, encode
from repro.bpmn.model import Process
from repro.errors import UnknownPurposeError


class ProcessRegistry:
    """Registered organizational processes, indexed by purpose and case prefix."""

    def __init__(self) -> None:
        self._by_purpose: dict[str, Process] = {}
        self._by_prefix: dict[str, str] = {}
        self._encoded: dict[str, EncodedProcess] = {}

    def register(self, process: Process, case_prefix: str) -> "ProcessRegistry":
        """Register *process* under its purpose and the given case prefix."""
        purpose = process.purpose
        if purpose in self._by_purpose:
            raise UnknownPurposeError(
                f"purpose {purpose!r} is already registered"
            )
        if case_prefix in self._by_prefix:
            raise UnknownPurposeError(
                f"case prefix {case_prefix!r} is already registered"
            )
        self._by_purpose[purpose] = process
        self._by_prefix[case_prefix] = purpose
        return self

    def purposes(self) -> frozenset[str]:
        return frozenset(self._by_purpose)

    def process_for(self, purpose: str) -> Process:
        try:
            return self._by_purpose[purpose]
        except KeyError:
            raise UnknownPurposeError(f"no process registered for purpose {purpose!r}") from None

    def encoded_for(self, purpose: str) -> EncodedProcess:
        """The (cached) COWS encoding of the purpose's process."""
        cached = self._encoded.get(purpose)
        if cached is None:
            cached = encode(self.process_for(purpose))
            self._encoded[purpose] = cached
        return cached

    def purpose_of_case(self, case: str) -> str:
        """Resolve a case id like ``HT-17`` to its purpose.

        Raises :class:`UnknownPurposeError` for malformed or unknown cases.
        """
        prefix, separator, _ = case.partition("-")
        if not separator or not prefix:
            raise UnknownPurposeError(
                f"case id {case!r} does not follow the <prefix>-<n> scheme"
            )
        try:
            return self._by_prefix[prefix]
        except KeyError:
            raise UnknownPurposeError(
                f"case {case!r} references unknown process prefix {prefix!r}"
            ) from None

    def process_of_case(self, case: str) -> Process:
        return self.process_for(self.purpose_of_case(case))

    def is_instance_of(self, case: str, purpose: str) -> bool:
        """Definition 3 (iv), first half: is *case* an instance of *purpose*?"""
        try:
            return self.purpose_of_case(case) == purpose
        except UnknownPurposeError:
            return False

    def task_in_purpose(self, task: str, purpose: str) -> bool:
        """Definition 3 (iv), second half: is *task* a task of the process?"""
        try:
            return task in self.process_for(purpose).task_ids
        except UnknownPurposeError:
            return False

    def __iter__(self) -> Iterator[Process]:
        return iter(self._by_purpose.values())

    def __len__(self) -> int:
        return len(self._by_purpose)

    def case_prefix_of(self, purpose: str) -> Optional[str]:
        for prefix, registered in self._by_prefix.items():
            if registered == purpose:
                return prefix
        return None
