"""The role hierarchy ``>=R`` of Section 3.1.

Roles are organized in a partial order reflecting generalization and
specialization: ``r1 >=R r2`` means *r1 is a specialization of r2* (a
Cardiologist is a Physician).  The hierarchy supports multiple parents
(a role may specialize several more general roles) and rejects cycles.

Two call sites depend on it:

* policy evaluation (Definition 3): a statement granted to role ``r1``
  applies to a user whose active role ``r2`` satisfies ``r2 >=R r1``;
* Algorithm 1 (line 5): a log entry with role ``e.role`` may match an
  observable label ``r . q`` when ``r`` is a generalization of
  ``e.role``.
"""

from __future__ import annotations

from repro.errors import PolicyError


class RoleHierarchy:
    """A DAG of roles under the specialization order.

    The order is reflexive: every role is a specialization of itself,
    even when it was never explicitly added (so a flat organization needs
    no setup at all).
    """

    def __init__(self) -> None:
        self._parents: dict[str, frozenset[str]] = {}
        self._ancestor_cache: dict[str, frozenset[str]] = {}

    def add_role(self, role: str, *parents: str) -> "RoleHierarchy":
        """Declare *role*, optionally as a specialization of *parents*.

        May be called repeatedly for the same role; parent sets accumulate.
        Raises :class:`PolicyError` if the addition would create a cycle.
        """
        if not role:
            raise PolicyError("role names must be non-empty")
        existing = self._parents.get(role, frozenset())
        merged = existing | frozenset(parents)
        for parent in parents:
            if not parent:
                raise PolicyError("role names must be non-empty")
            if parent == role or role in self._ancestors_uncached(parent):
                raise PolicyError(
                    f"adding {role!r} below {parent!r} would create a cycle"
                )
        self._parents[role] = merged
        for parent in parents:
            self._parents.setdefault(parent, frozenset())
        self._ancestor_cache.clear()
        return self

    def _ancestors_uncached(self, role: str) -> frozenset[str]:
        seen: set[str] = set()
        stack = [role]
        while stack:
            current = stack.pop()
            parents = self._parents.get(current, frozenset())
            for parent in parents:
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return frozenset(seen)

    def ancestors(self, role: str) -> frozenset[str]:
        """Every strict generalization of *role*."""
        cached = self._ancestor_cache.get(role)
        if cached is None:
            cached = self._ancestors_uncached(role)
            self._ancestor_cache[role] = cached
        return cached

    def roles(self) -> frozenset[str]:
        """Every role ever mentioned."""
        return frozenset(self._parents)

    def is_specialization_of(self, role: str, ancestor: str) -> bool:
        """Whether ``role >=R ancestor`` (reflexive)."""
        if role == ancestor:
            return True
        return ancestor in self.ancestors(role)

    def generalizations(self, role: str) -> frozenset[str]:
        """*role* together with all its ancestors (the upward closure)."""
        return self.ancestors(role) | {role}

    def __contains__(self, role: str) -> bool:
        return role in self._parents

    # -- serialization (e.g. shipping the hierarchy to worker processes) --
    def to_parent_map(self) -> dict[str, list[str]]:
        """A plain ``role -> sorted parents`` dict, JSON/pickle friendly."""
        return {
            role: sorted(parents) for role, parents in self._parents.items()
        }

    @classmethod
    def from_parent_map(cls, parent_map: dict[str, list[str]]) -> "RoleHierarchy":
        """Rebuild a hierarchy from :meth:`to_parent_map` output."""
        hierarchy = cls()
        for role, parents in parent_map.items():
            hierarchy.add_role(role, *parents)
        return hierarchy
