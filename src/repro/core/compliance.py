"""Algorithm 1 — compliance of an audit trail with a purpose.

Given the COWS encoding of the organizational process implementing a
purpose and the portion of the audit trail belonging to one process
instance (case), the algorithm replays the trail over the process's
transition system and decides whether the trail is a valid execution:

* an entry whose task is *active* in a configuration and which succeeded
  is **absorbed** — the 1-to-n mapping between tasks and log entries of
  Section 3.5 (one task, many logged actions);
* otherwise the entry must be simulated by one of the configuration's
  WeakNext transitions: a matching ``r . q`` task label for successful
  entries, the ``sys.Err`` label for failed ones;
* if no configuration can simulate the entry, the replay stops and an
  infringement is reported.

The checker keeps a *set* of configurations (deduplicated on
``(state, active)``) because gateways make the process nondeterministic
from the auditor's viewpoint — Fig. 6's St10/St11 situation, where two
states allow the same next activity.

:class:`ComplianceSession` exposes the same replay incrementally, for the
"resume the analysis when new actions are recorded" mode Section 4
mentions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.audit.model import AuditTrail, LogEntry
from repro.bpmn.encode import EncodedProcess
from repro.core.configuration import Configuration
from repro.core.observables import ErrorEvent, Observables, TaskEvent
from repro.core.weaknext import WeakNextEngine
from repro.errors import ReproError
from repro.obs import ENTRY_REPLAYED, FRONTIER_GROWN, NULL_TELEMETRY, Telemetry
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS
from repro.policy.hierarchy import RoleHierarchy


class FrontierExplosionError(ReproError):
    """The configuration frontier exceeded the configured bound."""


#: How an entry was simulated.
ABSORBED = "absorbed"
TASK_TRANSITION = "task"
ERROR_TRANSITION = "error"
REJECTED = "rejected"


@dataclass(frozen=True)
class ReplayStep:
    """The audit record of replaying one log entry."""

    index: int
    entry: LogEntry
    outcome: str
    frontier_size: int
    events: tuple[str, ...] = ()

    def __str__(self) -> str:
        return (
            f"step {self.index}: {self.entry.role}.{self.entry.task} "
            f"[{self.entry.status}] -> {self.outcome} "
            f"({self.frontier_size} configuration(s))"
        )


@dataclass
class ComplianceResult:
    """The verdict of Algorithm 1 on one case's trail."""

    compliant: bool
    trail_length: int
    steps: list[ReplayStep] = field(default_factory=list)
    failed_index: Optional[int] = None
    failed_entry: Optional[LogEntry] = None
    final_configurations: tuple[Configuration, ...] = ()
    configurations_created: int = 0

    def __bool__(self) -> bool:
        return self.compliant

    @property
    def accepted_prefix_length(self) -> int:
        """How many entries were simulated before failure (all, if compliant)."""
        if self.failed_index is None:
            return self.trail_length
        return self.failed_index

    @property
    def may_continue(self) -> bool:
        """Whether further activities are still possible (Section 4: the
        analysis should be resumed when new actions are recorded)."""
        return any(conf.next for conf in self.final_configurations)

    def active_task_sets(self) -> frozenset[frozenset[tuple[str, str]]]:
        """The distinct active-task sets of the final frontier (Fig. 6 view)."""
        return frozenset(conf.active for conf in self.final_configurations)


class ComplianceSession:
    """Incremental replay of a case's entries (Algorithm 1, one entry at a time)."""

    def __init__(
        self,
        engine: WeakNextEngine,
        initial: Configuration,
        max_frontier: int = 10_000,
        dedupe_frontier: bool = True,
        telemetry: Telemetry | None = None,
    ):
        self._engine = engine
        self._frontier: list[Configuration] = [initial]
        self._max_frontier = max_frontier
        self._dedupe = dedupe_frontier
        self._steps: list[ReplayStep] = []
        self._failed: Optional[tuple[int, LogEntry]] = None
        self._count = 0
        self._created = 1
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self._m_entries = tel.registry.counter(
            "replay_entries_total", "log entries replayed, by outcome"
        )
        self._m_frontier = tel.registry.histogram(
            "replay_frontier_size",
            "configuration frontier size after each replay step",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_seconds = tel.registry.histogram(
            "replay_seconds", "wall time per replayed log entry"
        )

    # -- state -----------------------------------------------------------
    @property
    def compliant(self) -> bool:
        return self._failed is None

    @property
    def frontier(self) -> tuple[Configuration, ...]:
        return tuple(self._frontier)

    @property
    def steps(self) -> list[ReplayStep]:
        return list(self._steps)

    @property
    def entries_fed(self) -> int:
        return self._count

    @property
    def may_continue(self) -> bool:
        """Whether further activities are still possible from here."""
        if self._failed is not None:
            return False
        return any(conf.next for conf in self._frontier)

    # -- the algorithm ------------------------------------------------------
    def feed(self, entry: LogEntry) -> bool:
        """Replay one entry; returns whether the trail is still compliant.

        Once non-compliant, further entries are recorded as rejected
        without exploring (the paper's algorithm stops at the first
        infringement; we keep accepting input so callers can account for
        the full trail).
        """
        index = self._count
        self._count += 1
        if self._failed is not None:
            self._steps.append(ReplayStep(index, entry, REJECTED, 0))
            self._m_entries.inc(outcome=REJECTED)
            return False
        started = time.perf_counter() if self._tel.enabled else 0.0
        previous_size = len(self._frontier)

        observables = self._engine.observables
        next_frontier: list[Configuration] = []
        seen: set[Configuration] = set()
        outcomes: set[str] = set()
        events: list[str] = []

        for conf in self._frontier:
            absorbable = (
                entry.succeeded
                and observables.entry_task_active(conf.active, entry)
            )
            if absorbable:
                # Line 16: the task stays active; the configuration
                # survives unchanged.
                if not self._dedupe or conf not in seen:
                    seen.add(conf)
                    next_frontier.append(conf)
                outcomes.add(ABSORBED)
                continue
            # Lines 9-13: look for a WeakNext transition simulating the entry.
            for successor in conf.next:
                event = successor[0]
                if not observables.event_matches_entry(event, entry):
                    continue
                reached = Configuration.reached(self._engine, successor)
                self._created += 1
                if not self._dedupe or reached not in seen:
                    seen.add(reached)
                    next_frontier.append(reached)
                outcomes.add(
                    ERROR_TRANSITION
                    if isinstance(event, ErrorEvent)
                    else TASK_TRANSITION
                )
                events.append(str(event))

        if not next_frontier:
            self._failed = (index, entry)
            self._steps.append(ReplayStep(index, entry, REJECTED, 0))
            self._record_step(index, entry, REJECTED, 0, previous_size, started)
            return False
        if len(next_frontier) > self._max_frontier:
            raise FrontierExplosionError(
                f"configuration frontier grew past {self._max_frontier}"
            )
        self._frontier = next_frontier
        outcome = _summarize_outcomes(outcomes)
        self._steps.append(
            ReplayStep(index, entry, outcome, len(next_frontier), tuple(events))
        )
        self._record_step(
            index, entry, outcome, len(next_frontier), previous_size, started
        )
        return True

    def _record_step(
        self,
        index: int,
        entry: LogEntry,
        outcome: str,
        frontier_size: int,
        previous_size: int,
        started: float,
    ) -> None:
        self._m_entries.inc(outcome=outcome)
        if not self._tel.enabled:
            return
        duration = time.perf_counter() - started
        self._m_frontier.observe(frontier_size)
        self._m_seconds.observe(duration)
        self._tel.events.emit(
            ENTRY_REPLAYED,
            index=index,
            case=entry.case,
            role=entry.role,
            task=entry.task,
            status=str(entry.status),
            outcome=outcome,
            frontier=frontier_size,
            duration_s=round(duration, 6),
        )
        if frontier_size > previous_size:
            self._tel.events.emit(
                FRONTIER_GROWN,
                index=index,
                case=entry.case,
                size=frontier_size,
                previous=previous_size,
            )

    def result(self) -> ComplianceResult:
        failed_index, failed_entry = self._failed or (None, None)
        return ComplianceResult(
            compliant=self._failed is None,
            trail_length=self._count,
            steps=list(self._steps),
            failed_index=failed_index,
            failed_entry=failed_entry,
            final_configurations=tuple(self._frontier)
            if self._failed is None
            else (),
            configurations_created=self._created,
        )


def _summarize_outcomes(outcomes: set[str]) -> str:
    if len(outcomes) == 1:
        return next(iter(outcomes))
    return "+".join(sorted(outcomes))


class ComplianceChecker:
    """Runs Algorithm 1 for one organizational process (purpose).

    Reusable across cases and objects: the WeakNext cache is shared, so
    auditing many instances of the same process amortizes exploration —
    the property behind the paper's scalability argument (Section 7).
    """

    def __init__(
        self,
        encoded: EncodedProcess,
        hierarchy: RoleHierarchy | None = None,
        max_silent_states: int = 50_000,
        max_frontier: int = 10_000,
        dedupe_frontier: bool = True,
        silent_tasks: frozenset[str] = frozenset(),
        telemetry: Telemetry | None = None,
    ):
        """``silent_tasks`` marks tasks the IT systems cannot log; their
        execution becomes unobservable so trails missing them still
        replay (Section 7's "silent activities").  ``dedupe_frontier=False``
        disables the configuration deduplication of design decision D2 —
        exists for the ablation benchmark only; leave it on in production
        use.  ``telemetry`` (default: disabled) instruments the engine and
        every session this checker creates — see :mod:`repro.obs`."""
        self._encoded = encoded
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._observables = Observables.from_encoded(
            encoded, hierarchy, silent_tasks=frozenset(silent_tasks)
        )
        self._engine = WeakNextEngine(
            self._observables,
            max_silent_states=max_silent_states,
            telemetry=self._tel,
        )
        self._initial = Configuration.initial(self._engine, encoded.term)
        self._max_frontier = max_frontier
        self._dedupe = dedupe_frontier
        self._automaton = None

    @property
    def encoded(self) -> EncodedProcess:
        return self._encoded

    @property
    def engine(self) -> WeakNextEngine:
        return self._engine

    @property
    def observables(self) -> Observables:
        return self._observables

    @property
    def initial_configuration(self) -> Configuration:
        return self._initial

    @property
    def purpose(self) -> str:
        return self._encoded.purpose

    @property
    def automaton(self):
        """The attached purpose automaton, if compiled replay is enabled."""
        return self._automaton

    def attach_automaton(self, automaton) -> "ComplianceChecker":
        """Enable the compiled fast path: sessions replay through
        *automaton* (see :mod:`repro.compile`), falling back to the
        interpreted engine on automaton miss or explosion.

        The automaton memoizes the deduplicated step function, so it is
        incompatible with the ``dedupe_frontier=False`` ablation.
        """
        if not self._dedupe:
            raise ValueError(
                "compiled replay requires dedupe_frontier=True"
            )
        automaton.bind(self._engine, self._initial)
        self._automaton = automaton
        return self

    def session(self):
        """A fresh incremental replay starting at the process's initial
        state — compiled when an automaton is attached, interpreted
        otherwise."""
        if self._automaton is not None:
            from repro.compile.replay import CompiledSession

            return CompiledSession(
                self._automaton,
                max_frontier=self._max_frontier,
                telemetry=self._tel,
                fallback=self.interpreted_session,
            )
        return self.interpreted_session()

    def interpreted_session(self) -> ComplianceSession:
        """A fresh *interpreted* replay (ignores any attached automaton)."""
        return ComplianceSession(
            self._engine,
            self._initial,
            max_frontier=self._max_frontier,
            dedupe_frontier=self._dedupe,
            telemetry=self._tel,
        )

    def check(self, trail: AuditTrail | Iterable[LogEntry]) -> ComplianceResult:
        """Run Algorithm 1 on a (case-projected) trail."""
        session = self.session()
        with self._tel.tracer.span("replay", purpose=self.purpose):
            for entry in trail:
                session.feed(entry)
        return session.result()
