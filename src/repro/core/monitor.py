"""Online purpose-control monitoring.

Section 4: "the analysis of the audit trail may lead the computation to
a state for which further activities are still possible.  In this case
the analysis should be resumed when new actions within the process
instance are recorded."  The :class:`OnlineMonitor` is that resumable
mode as a streaming component: log entries are observed one by one (as a
log shipper would deliver them), each case keeps its incremental
:class:`~repro.core.compliance.ComplianceSession`, and infringements are
raised the moment the offending entry arrives — not at the next batch
audit.

Temporal constraints (:mod:`repro.core.temporal`) integrate through
:meth:`OnlineMonitor.sweep`: invoked periodically with the current time,
it times out open cases that exceeded their duration or inactivity
budget — turning the paper's "maximum duration" remark into an
operational check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Optional

from repro.audit.model import LogEntry
from repro.core.auditor import Infringement, InfringementKind
from repro.core.compliance import (
    ComplianceChecker,
    ComplianceResult,
    ComplianceSession,
)
from repro.core.resilience import OutcomeKind, classify_failure
from repro.core.temporal import TemporalConstraints, TemporalViolation
from repro.errors import UnknownPurposeError
from repro.obs import (
    CASE_FAILED,
    INFRINGEMENT_RAISED,
    MONITOR_SWEEP,
    NULL_TELEMETRY,
    Telemetry,
)
from repro.policy.hierarchy import RoleHierarchy
from repro.policy.registry import ProcessRegistry


class CaseState(Enum):
    """The monitor's view of one process instance."""

    OPEN = "open"  # compliant so far, more activity possible
    COMPLETED = "completed"  # compliant and no further activity possible
    INFRINGING = "infringing"  # an entry could not be simulated
    TIMED_OUT = "timed-out"  # a temporal constraint fired
    UNDECIDABLE = "undecidable"  # the case's process defeats Algorithm 1
    FAILED = "failed"  # an unexpected exception was contained to the case

    def __str__(self) -> str:
        return self.value


#: States in which further entries are short-circuited (reported once).
_TERMINAL_STATES = frozenset(
    {
        CaseState.INFRINGING,
        CaseState.TIMED_OUT,
        CaseState.UNDECIDABLE,
        CaseState.FAILED,
    }
)


@dataclass
class MonitoredCase:
    """Book-keeping for one case under observation."""

    case: str
    purpose: Optional[str]
    session: Optional[ComplianceSession]
    state: CaseState = CaseState.OPEN
    entries: list[LogEntry] = field(default_factory=list)
    first_seen: Optional[datetime] = None
    last_seen: Optional[datetime] = None
    failure_kind: Optional[OutcomeKind] = None

    @property
    def entry_count(self) -> int:
        return len(self.entries)


class OnlineMonitor:
    """Streaming Algorithm 1 over every case of an organization's logs."""

    def __init__(
        self,
        registry: ProcessRegistry,
        hierarchy: RoleHierarchy | None = None,
        temporal: dict[str, TemporalConstraints] | None = None,
        telemetry: Telemetry | None = None,
        compiled: "bool | None" = None,
        automaton_dir: "str | None" = None,
        automaton_max_states: int = 50_000,
        table: bool = True,
        checker_wrapper=None,
    ):
        """``temporal`` maps purpose names to their temporal constraints;
        ``telemetry`` (default: disabled) instruments the monitor and its
        checkers — see :mod:`repro.obs`.

        ``compiled=True`` replays each case over a purpose automaton
        (``docs/compilation.md``), making the per-event cost of a warm
        monitor an O(1) dict lookup; ``automaton_dir`` persists the
        automata (implies ``compiled``) and :meth:`sweep` doubles as the
        checkpoint tick.  ``table`` (the default) additionally attaches
        a cached dense transition table when the automaton directory
        holds one — the mmap-backed fastest tier; ``table=False`` pins
        compiled replay to the lazy DFA.

        ``checker_wrapper`` is the ``(checker, purpose) -> checker``
        middleware seam shared with the batch auditor — the hook
        :mod:`repro.testing.faults` plugs into."""
        self._registry = registry
        self._hierarchy = hierarchy
        self._temporal = dict(temporal or {})
        self._compiled = compiled if compiled is not None else automaton_dir is not None
        self._automaton_max_states = automaton_max_states
        self._table = table
        self._checker_wrapper = checker_wrapper
        self._checkpoints: list = []
        self._checkers: dict[str, ComplianceChecker] = {}
        self._cases: dict[str, MonitoredCase] = {}
        self._infringements: list[Infringement] = []
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        self._automaton_cache = None
        if automaton_dir is not None:
            from repro.compile import AutomatonCache

            self._automaton_cache = AutomatonCache(automaton_dir, telemetry=tel)
        self._m_entries = tel.registry.counter(
            "monitor_entries_total", "log entries observed by the monitor"
        ).series()
        self._m_cases = tel.registry.gauge(
            "monitor_cases", "cases under observation, by state"
        )
        self._m_sweep_seconds = tel.registry.histogram(
            "monitor_sweep_seconds", "wall time per temporal sweep"
        )
        self._m_errors = tel.registry.counter(
            "audit_errors_total", "contained per-case audit failures, by kind"
        )

    def prewarm(self) -> None:
        """Build and warm every registered purpose's checker up front.

        A monitor serving a live stream should pay checker setup —
        encoding, the JSON automaton artifact parse, the table mmap —
        at startup, not on the first entry of each purpose mid-stream.
        A purpose whose setup fails is skipped: the same failure
        reproduces at observe time, where per-case containment charges
        it to the case instead of the monitor.
        """
        for purpose in sorted(self._registry.purposes()):
            try:
                self._checker_for(purpose)
            except Exception:
                continue

    # -- internals --------------------------------------------------------
    def _checker_for(self, purpose: str) -> ComplianceChecker:
        checker = self._checkers.get(purpose)
        if checker is None:
            checker = ComplianceChecker(
                self._registry.encoded_for(purpose),
                hierarchy=self._hierarchy,
                telemetry=self._tel,
            )
            if self._compiled:
                from repro.compile import CheckpointWriter, warm_checker

                automaton = warm_checker(
                    checker,
                    cache=self._automaton_cache,
                    max_states=self._automaton_max_states,
                    telemetry=self._tel,
                    table=self._table,
                )
                if self._automaton_cache is not None:
                    self._checkpoints.append(
                        CheckpointWriter(
                            automaton,
                            self._automaton_cache.path_for(
                                automaton.purpose, automaton.fingerprint
                            ),
                            telemetry=self._tel,
                        )
                    )
            if self._checker_wrapper is not None:
                checker = self._checker_wrapper(checker, purpose)
            self._checkers[purpose] = checker
        return checker

    def _transition(self, monitored: MonitoredCase, state: CaseState) -> None:
        """Move a case to *state*, keeping the per-state gauges current."""
        if monitored.state is not state:
            self._m_cases.dec(state=monitored.state.value)
            monitored.state = state
            self._m_cases.inc(state=state.value)

    def _contain_failure(
        self, case: str, purpose: Optional[str], error: BaseException
    ) -> tuple[MonitoredCase, Infringement]:
        """File a contained per-case failure; the monitor keeps running."""
        kind = classify_failure(error)
        state = (
            CaseState.UNDECIDABLE
            if kind is OutcomeKind.UNDECIDABLE
            else CaseState.FAILED
        )
        finding_kind = {
            OutcomeKind.UNDECIDABLE: InfringementKind.UNDECIDABLE,
            OutcomeKind.TIMEOUT: InfringementKind.TIMEOUT,
        }.get(kind, InfringementKind.AUDIT_ERROR)
        monitored = self._cases.get(case)
        if monitored is None:
            monitored = MonitoredCase(case, purpose, None, state)
            self._cases[case] = monitored
            self._m_cases.inc(state=state.value)
        else:
            self._transition(monitored, state)
        monitored.failure_kind = kind
        detail = f"monitoring did not complete: {error}"
        states = getattr(error, "states_explored", None)
        if states is not None:
            detail += f" (states explored: {states})"
        infringement = Infringement(finding_kind, case, detail)
        self._infringements.append(infringement)
        self._m_errors.inc(kind=kind.value)
        self._tel.events.emit(
            CASE_FAILED,
            case=case,
            kind=kind.value,
            error=str(error),
            error_type=type(error).__name__,
            retries=0,
        )
        return monitored, infringement

    def _open_case(self, case: str) -> MonitoredCase:
        try:
            purpose = self._registry.purpose_of_case(case)
        except UnknownPurposeError as error:
            monitored = MonitoredCase(case, None, None, CaseState.INFRINGING)
            self._cases[case] = monitored
            self._m_cases.inc(state=CaseState.INFRINGING.value)
            self._infringements.append(
                Infringement(InfringementKind.UNKNOWN_PURPOSE, case, str(error))
            )
            self._tel.events.emit(
                INFRINGEMENT_RAISED,
                case=case,
                kind=InfringementKind.UNKNOWN_PURPOSE.value,
                detail=str(error),
            )
            return monitored
        try:
            session = self._checker_for(purpose).session()
        except Exception as error:
            # e.g. a non-well-founded process in the registry: contain it
            # to this case instead of killing the stream.
            monitored, _ = self._contain_failure(case, purpose, error)
            return monitored
        monitored = MonitoredCase(case, purpose, session)
        self._cases[case] = monitored
        self._m_cases.inc(state=CaseState.OPEN.value)
        return monitored

    # -- the streaming API -----------------------------------------------
    def observe(self, entry: LogEntry) -> list[Infringement]:
        """Feed one log entry; returns the infringements it triggered."""
        self._m_entries.inc()
        monitored = self._cases.get(entry.case)
        raised: list[Infringement] = []
        if monitored is None:
            monitored = self._open_case(entry.case)
            if monitored.purpose is None or monitored.session is None:
                # unknown purpose, or a failure contained at case open:
                # the finding was just recorded — hand it to the caller.
                monitored.entries.append(entry)
                return [self._infringements[-1]]
        monitored.entries.append(entry)
        monitored.first_seen = monitored.first_seen or entry.timestamp
        monitored.last_seen = entry.timestamp

        if monitored.state in _TERMINAL_STATES:
            # Already reported; don't spam per entry.  INFRINGING and
            # TIMED_OUT sessions still absorb the entry as a rejected
            # step so the replay accounting (and :meth:`case_result`)
            # stays byte-identical to a batch replay of the full trail.
            if monitored.session is not None and monitored.state in (
                CaseState.INFRINGING,
                CaseState.TIMED_OUT,
            ):
                try:
                    monitored.session.feed(entry)
                except Exception:  # pragma: no cover - belt and braces
                    pass
            return []
        assert monitored.session is not None
        try:
            still_ok = monitored.session.feed(entry)
        except Exception as error:
            _, infringement = self._contain_failure(
                entry.case, monitored.purpose, error
            )
            return [infringement]
        if not still_ok:
            self._transition(monitored, CaseState.INFRINGING)
            infringement = Infringement(
                InfringementKind.INVALID_EXECUTION,
                entry.case,
                f"entry for task {entry.task} by {entry.user} "
                f"({entry.role}) is not part of a valid "
                f"{monitored.purpose!r} execution",
                entry,
            )
            self._infringements.append(infringement)
            raised.append(infringement)
            self._tel.events.emit(
                INFRINGEMENT_RAISED,
                case=entry.case,
                kind=InfringementKind.INVALID_EXECUTION.value,
                detail=infringement.detail,
            )
        elif not monitored.session.may_continue:
            self._transition(monitored, CaseState.COMPLETED)
        else:
            self._transition(monitored, CaseState.OPEN)
        return raised

    def sweep(self, now: datetime) -> list[TemporalViolation]:
        """Time out open cases against their purpose's temporal policy.

        Call periodically (e.g. from a scheduler).  A case flagged here
        transitions to TIMED_OUT and is reported once.
        """
        started = time.perf_counter() if self._tel.enabled else 0.0
        raised: list[TemporalViolation] = []
        checked = 0
        for monitored in self._cases.values():
            if monitored.state is not CaseState.OPEN or monitored.purpose is None:
                continue
            constraints = self._temporal.get(monitored.purpose)
            if constraints is None:
                continue
            from repro.audit.model import AuditTrail

            checked += 1
            violations = constraints.check(
                monitored.case,
                AuditTrail(monitored.entries),
                now=now,
                case_open=True,
            )
            if violations:
                self._transition(monitored, CaseState.TIMED_OUT)
                raised.extend(violations)
        self.checkpoint()
        if self._tel.enabled:
            duration = time.perf_counter() - started
            self._m_sweep_seconds.observe(duration)
            self._tel.events.emit(
                MONITOR_SWEEP,
                checked=checked,
                violations=len(raised),
                cases=len(self._cases),
                duration_s=round(duration, 6),
            )
        return raised

    def contain(self, case: str, error: BaseException) -> Infringement:
        """Publicly contain *error* to *case* (quarantine the case).

        The streaming audit service uses this to take a stuck or
        misbehaving case out of rotation — e.g. one that blew its
        per-entry wall-clock budget — without touching the rest of the
        stream.  The case transitions to a terminal state, the failure
        is classified exactly like an in-replay exception
        (:func:`~repro.core.resilience.classify_failure`), and the
        returned infringement is the finding that was filed.
        """
        _, infringement = self._contain_failure(
            case, self.case_purpose(case), error
        )
        return infringement

    def reset_case(self, case: str) -> list[LogEntry]:
        """Forget a case entirely, returning its observed entry history.

        The control plane's quarantine *requeue* is built on this: pop
        the case's state (keeping the per-state gauge honest), then
        re-:meth:`observe` the returned entries through a fresh session —
        a from-scratch replay of exactly what was seen, so a transient
        failure (a crashed checker, a blown budget) gets a second,
        deterministic chance.  Unknown cases return an empty history.
        """
        monitored = self._cases.pop(case, None)
        if monitored is None:
            return []
        self._m_cases.dec(state=monitored.state.value)
        return list(monitored.entries)

    def checkpoint(self, force: bool = False) -> None:
        """Persist newly materialized automaton states (no-op without an
        ``automaton_dir``).  :meth:`sweep` calls this on every tick; a
        draining service calls it once more with ``force=True``."""
        for writer in self._checkpoints:
            writer.maybe_save(force=force)

    # -- inspection ---------------------------------------------------------
    def case_state(self, case: str) -> Optional[CaseState]:
        monitored = self._cases.get(case)
        return monitored.state if monitored else None

    def case_purpose(self, case: str) -> Optional[str]:
        monitored = self._cases.get(case)
        return monitored.purpose if monitored else None

    def case_failure_kind(self, case: str) -> Optional[OutcomeKind]:
        """How a contained case failed (None for healthy cases)."""
        monitored = self._cases.get(case)
        return monitored.failure_kind if monitored else None

    def case_result(self, case: str) -> Optional[ComplianceResult]:
        """The case's incremental replay result so far.

        Byte-identical (:func:`repro.testing.differential.verdict_digest`)
        to a batch replay of the same entries; ``None`` for cases with no
        live session (unknown purpose, contained failures).
        """
        monitored = self._cases.get(case)
        if monitored is None or monitored.session is None:
            return None
        return monitored.session.result()

    def cases(self) -> list[str]:
        """Every case under observation, in first-seen order."""
        return list(self._cases)

    def open_cases(self) -> list[str]:
        return [
            c for c, m in self._cases.items() if m.state is CaseState.OPEN
        ]

    def infringing_cases(self) -> list[str]:
        return [
            c
            for c, m in self._cases.items()
            if m.state in (CaseState.INFRINGING, CaseState.TIMED_OUT)
        ]

    def failed_cases(self) -> list[str]:
        """Cases whose monitoring was contained (UNDECIDABLE / FAILED)."""
        return [
            c
            for c, m in self._cases.items()
            if m.state in (CaseState.UNDECIDABLE, CaseState.FAILED)
        ]

    @property
    def infringements(self) -> list[Infringement]:
        return list(self._infringements)

    def statistics(self) -> dict[str, int]:
        counts = {state.value: 0 for state in CaseState}
        for monitored in self._cases.values():
            counts[monitored.state.value] += 1
        counts["entries"] = sum(m.entry_count for m in self._cases.values())
        return counts
