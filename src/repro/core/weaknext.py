"""The WeakNext function (Definition 7) and its decidability guard.

``WeakNext(s)`` is the set of states reachable from *s* with **exactly
one** observable label, traversing any finite number of silent
transitions first::

    WeakNext(s) = { s' |  s -l0-> ... -lk-> sk -l-> s'
                          with every li silent and l observable }

Each result carries the observable event taken and the set of tasks
active in the reached state — the ingredients of a configuration
(Definition 6).

Termination (Proposition 1 / Corollary 1): WeakNext is decidable iff the
process is finitely observable w.r.t. L.  Well-founded BPMN processes
guarantee this; as a defense in depth the engine also counts the silent
states it closes over and raises :class:`NotFinitelyObservableError`
past a configurable bound, so a hand-written COWS term with a silent
livelock fails loudly instead of hanging.
"""

from __future__ import annotations

import time
from collections import deque

from repro.bpmn.encode import EncodedProcess
from repro.core.observables import Observables, ObservableEvent
from repro.cows.congruence import normalize
from repro.cows.lts import LTS
from repro.cows.terms import Nil, Term, active_tasks
from repro.errors import NotFinitelyObservableError
from repro.obs import NULL_TELEMETRY, Telemetry, WEAKNEXT_COMPUTED
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS

#: One WeakNext result: the observable event taken, the state reached,
#: and the (role, task) pairs active in that state.
NextState = tuple[ObservableEvent, Term, frozenset[tuple[str, str]]]


def state_active_tasks(state: Term) -> frozenset[tuple[str, str]]:
    """The active (role, task) pairs of a state, as plain strings."""
    return frozenset(
        (role.value, task.value) for role, task in active_tasks(state)
    )


class WeakNextEngine:
    """Computes and memoizes WeakNext over a closed COWS service."""

    def __init__(
        self,
        observables: Observables,
        max_silent_states: int = 50_000,
        telemetry: Telemetry | None = None,
    ):
        self._observables = observables
        self._max_silent_states = max_silent_states
        # The LTS is used purely for its memoized, kill-prioritized,
        # closed-label successor computation; its initial state is unused.
        self._lts = LTS(initial=Nil(), closed=True)
        self._cache: dict[Term, tuple[NextState, ...]] = {}
        self._silent_states_explored = 0
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = tel
        # Instruments are bound once here so the hot path pays a single
        # attribute load + (possibly no-op) call per touch.
        self._m_hits = tel.registry.counter(
            "weaknext_cache_hits_total", "WeakNext frontiers served from memo"
        )
        self._m_misses = tel.registry.counter(
            "weaknext_cache_misses_total", "WeakNext frontiers computed fresh"
        )
        self._m_silent = tel.registry.histogram(
            "weaknext_silent_states",
            "silent states closed over per fresh WeakNext computation",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_seconds = tel.registry.histogram(
            "weaknext_seconds", "wall time per fresh WeakNext computation"
        )

    @classmethod
    def for_encoded(
        cls,
        encoded: EncodedProcess,
        observables: Observables | None = None,
        max_silent_states: int = 50_000,
        telemetry: Telemetry | None = None,
    ) -> "WeakNextEngine":
        return cls(
            observables or Observables.from_encoded(encoded),
            max_silent_states=max_silent_states,
            telemetry=telemetry,
        )

    @property
    def observables(self) -> Observables:
        return self._observables

    @property
    def silent_states_explored(self) -> int:
        """Total silent states closed over so far (cost accounting)."""
        return self._silent_states_explored

    def weak_next(self, state: Term) -> tuple[NextState, ...]:
        """``WeakNext(state)`` with memoization.  *state* must be canonical."""
        cached = self._cache.get(state)
        if cached is not None:
            self._m_hits.inc()
            return cached
        self._m_misses.inc()
        started = time.perf_counter() if self._tel.enabled else 0.0

        results: list[NextState] = []
        seen_results: set[tuple[ObservableEvent, Term]] = set()
        visited: set[Term] = {state}
        queue: deque[Term] = deque([state])
        while queue:
            current = queue.popleft()
            for label, target in self._lts.successors(current):
                event = self._observables.classify(label)
                if event is not None:
                    key = (event, target)
                    if key not in seen_results:
                        seen_results.add(key)
                        results.append(
                            (event, target, state_active_tasks(target))
                        )
                elif target not in visited:
                    if len(visited) >= self._max_silent_states:
                        raise NotFinitelyObservableError(
                            "WeakNext exceeded the silent-state bound "
                            f"({self._max_silent_states}); the process is "
                            "likely not finitely observable (not "
                            "well-founded)",
                            states_explored=len(visited),
                        )
                    visited.add(target)
                    queue.append(target)
        self._silent_states_explored += len(visited)
        computed = tuple(results)
        self._cache[state] = computed
        if self._tel.enabled:
            duration = time.perf_counter() - started
            self._m_silent.observe(len(visited))
            self._m_seconds.observe(duration)
            self._tel.events.emit(
                WEAKNEXT_COMPUTED,
                silent_states=len(visited),
                results=len(computed),
                cache_size=len(self._cache),
                duration_s=round(duration, 6),
            )
        return computed

    def normalize(self, term: Term) -> Term:
        """Canonicalize a term so it can be fed to :meth:`weak_next`."""
        return normalize(term)

    def cache_size(self) -> int:
        return len(self._cache)
