"""Infringement-severity metrics (the paper's future work, Section 7).

The conclusion of the paper proposes "metrics for measuring the severity
of privacy infringements" to narrow down which detected deviations an
auditor should investigate first.  This module implements a transparent,
deterministic scoring model over the evidence Algorithm 1 already
produces:

========================  =====================================================
factor                    meaning
========================  =====================================================
``progress``              fraction of the trail replayed before failure — a
                          case rejected at entry 0 (a fabricated case) is more
                          suspicious than one failing at the last step
``rejected_entries``      how many entries could not be simulated
``sensitivity``           the most sensitive object touched by rejected
                          entries, from a configurable path-prefix weight map
``cross_purpose``         whether a rejected entry's task belongs to a
                          *different* registered process — direct evidence of
                          re-purposing (the clinical-trial attack of Fig. 4)
========================  =====================================================

``score`` combines the factors into [0, 10]::

    score = 4 * (1 - progress)
          + 2 * min(rejected_entries, 5) / 5
          + 3 * sensitivity
          + 1 * cross_purpose
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.audit.model import LogEntry
from repro.policy.registry import ProcessRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.auditor import CaseAuditResult

#: Default object-sensitivity weights by leading path components.
DEFAULT_SENSITIVITY: dict[tuple[str, ...], float] = {
    ("EPR", "Clinical"): 1.0,
    ("EPR", "Demographics"): 0.6,
    ("EPR",): 0.8,
}


@dataclass(frozen=True)
class SeverityAssessment:
    """The severity of one infringing case."""

    score: float
    progress: float
    rejected_entries: int
    sensitivity: float
    cross_purpose: bool

    def __str__(self) -> str:
        return (
            f"severity {self.score:.1f}/10 "
            f"(progress={self.progress:.0%}, rejected={self.rejected_entries}, "
            f"sensitivity={self.sensitivity:.1f}, cross_purpose={self.cross_purpose})"
        )


class SeverityModel:
    """Scores infringing cases; see the module docstring for the formula."""

    def __init__(
        self,
        registry: Optional[ProcessRegistry] = None,
        sensitivity: Optional[Mapping[tuple[str, ...], float]] = None,
    ):
        self._registry = registry
        self._sensitivity = dict(
            DEFAULT_SENSITIVITY if sensitivity is None else sensitivity
        )

    def object_sensitivity(self, entry: LogEntry) -> float:
        """The sensitivity weight of the entry's object (0 if object-less)."""
        if entry.obj is None:
            return 0.0
        best = 0.0
        path = entry.obj.path
        for prefix, weight in self._sensitivity.items():
            if path[: len(prefix)] == prefix and weight > best:
                best = weight
        return best

    def is_cross_purpose(self, entry: LogEntry, claimed_purpose: str) -> bool:
        """Whether the entry's task belongs to another registered process."""
        if self._registry is None:
            return False
        for purpose in self._registry.purposes():
            if purpose == claimed_purpose:
                continue
            if self._registry.task_in_purpose(entry.task, purpose):
                return True
        return False

    def assess(self, case_result: "CaseAuditResult") -> SeverityAssessment:
        """Score an audited case (meaningful for infringing cases)."""
        replay = case_result.replay
        if replay is None or replay.trail_length == 0:
            return SeverityAssessment(
                score=10.0,
                progress=0.0,
                rejected_entries=0,
                sensitivity=1.0,
                cross_purpose=False,
            )
        progress = replay.accepted_prefix_length / replay.trail_length
        rejected = replay.trail_length - replay.accepted_prefix_length
        rejected_entries = [
            step.entry
            for step in replay.steps[replay.accepted_prefix_length :]
        ]
        sensitivity = max(
            (self.object_sensitivity(e) for e in rejected_entries), default=0.0
        )
        claimed = case_result.purpose or ""
        cross = any(
            self.is_cross_purpose(e, claimed) for e in rejected_entries
        )
        score = (
            4.0 * (1.0 - progress)
            + 2.0 * min(rejected, 5) / 5.0
            + 3.0 * sensitivity
            + (1.0 if cross else 0.0)
        )
        return SeverityAssessment(
            score=round(min(score, 10.0), 3),
            progress=progress,
            rejected_entries=rejected,
            sensitivity=sensitivity,
            cross_purpose=cross,
        )
