"""The observable label set L of Section 3.5.

Audit trails record less than the COWS transition system produces: only
task executions and error events are IT-observable.  Formally::

    L = { r . q | r in R and q in Q }  union  { sys . Err }

This module classifies raw COWS labels into observable events
(:class:`TaskEvent`, :class:`ErrorEvent`) or silence, and matches
observable events against log entries — including the role-hierarchy
generalization of Algorithm 1, line 5 (an entry by a Cardiologist matches
a label of the Physician pool when Cardiologist specializes Physician).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.audit.model import LogEntry
from repro.bpmn.encode import ERROR_OPERATION, EncodedProcess
from repro.cows.labels import CommLabel, Label
from repro.policy.hierarchy import RoleHierarchy


@dataclass(frozen=True, slots=True)
class TaskEvent:
    """The observable execution of task *task* by pool role *role* (``r . q``)."""

    role: str
    task: str

    def __str__(self) -> str:
        return f"{self.role}.{self.task}"


@dataclass(frozen=True, slots=True)
class ErrorEvent:
    """The observable error label ``sys . Err``."""

    def __str__(self) -> str:
        return f"sys.{ERROR_OPERATION}"


ObservableEvent = Union[TaskEvent, ErrorEvent]


class Observables:
    """The observable vocabulary of one encoded process."""

    def __init__(
        self,
        roles: frozenset[str],
        tasks: frozenset[str],
        hierarchy: RoleHierarchy | None = None,
        silent_tasks: frozenset[str] = frozenset(),
    ):
        """``silent_tasks`` declares tasks that the IT systems cannot log
        (Section 7's "silent activities": a physician discussing patient
        data over the phone).  Their execution is treated as unobservable,
        so WeakNext steps over them and Algorithm 1 accepts trails in
        which they leave no entries."""
        self.roles = roles
        self.tasks = tasks
        self.hierarchy = hierarchy or RoleHierarchy()
        self.silent_tasks = frozenset(silent_tasks)

    @classmethod
    def from_encoded(
        cls,
        encoded: EncodedProcess,
        hierarchy: RoleHierarchy | None = None,
        silent_tasks: frozenset[str] = frozenset(),
    ) -> "Observables":
        unknown = set(silent_tasks) - set(encoded.tasks)
        if unknown:
            raise ValueError(
                f"silent tasks {sorted(unknown)} do not exist in the process"
            )
        return cls(encoded.roles, encoded.tasks, hierarchy, silent_tasks)

    def classify(self, label: Label) -> Optional[ObservableEvent]:
        """The observable event *label* denotes, or ``None`` if silent."""
        if not isinstance(label, CommLabel):
            return None
        partner = label.endpoint.partner.value
        operation = label.endpoint.operation.value
        if operation == ERROR_OPERATION:
            return ErrorEvent()
        if (
            partner in self.roles
            and operation in self.tasks
            and operation not in self.silent_tasks
        ):
            return TaskEvent(partner, operation)
        return None

    def is_observable(self, label: Label) -> bool:
        return self.classify(label) is not None

    # -- matching against log entries -----------------------------------
    def role_matches(self, entry_role: str, pool_role: str) -> bool:
        """Whether the entry's role specializes the pool's role (line 5)."""
        return self.hierarchy.is_specialization_of(entry_role, pool_role)

    def event_matches_entry(self, event: ObservableEvent, entry: LogEntry) -> bool:
        """Algorithm 1, line 10: does taking *event* simulate *entry*?

        A task label matches a *successful* entry for the same task by a
        role specializing the pool role; the error label matches any
        *failed* entry.
        """
        if isinstance(event, ErrorEvent):
            return entry.failed
        return (
            entry.succeeded
            and event.task == entry.task
            and self.role_matches(entry.role, event.role)
        )

    def entry_task_active(
        self, active: frozenset[tuple[str, str]], entry: LogEntry
    ) -> bool:
        """Algorithm 1, line 8: is the entry's task among the active ones?"""
        return any(
            task == entry.task and self.role_matches(entry.role, role)
            for role, task in active
        )
