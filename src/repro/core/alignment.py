"""Optimal trail-to-process alignments.

Where :mod:`repro.core.explain` classifies the *first* deviation, an
alignment quantifies the *whole* distance between a trail and the
process: the cheapest sequence of moves that relates them.

Moves (the standard alignment vocabulary of conformance checking,
adapted to Algorithm 1's semantics):

* **synchronous** (cost 0) — the entry is absorbed by an active task or
  simulated by a WeakNext transition, exactly as in Algorithm 1;
* **log move** (cost 1) — the entry has no counterpart in the process:
  it is skipped (extra / illegitimate work);
* **model move** (cost 1) — the process performs an observable step with
  no log evidence: work that should have been logged (or done) first.

A compliant trail aligns at cost 0; the cost of a non-compliant one
measures *how far* it is from legitimate behaviour, and the move
sequence is a concrete repair plan ("perform GP.T01 ... before this
entry").  Costs feed the severity model and give auditors a graded
signal where the boolean verdict is all-or-nothing.

The search is uniform-cost (Dijkstra) over (configuration, position)
states, bounded by ``max_cost`` and ``max_expansions``; within those
bounds the returned alignment is optimal.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

from repro.audit.model import LogEntry
from repro.core.compliance import ComplianceChecker
from repro.core.configuration import Configuration
from repro.cows.terms import Term


class MoveKind(Enum):
    SYNC = "sync"
    LOG = "log-only"  # entry without a process counterpart
    MODEL = "model-only"  # process step without a logged counterpart

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Move:
    kind: MoveKind
    label: str  # the event or entry the move concerns

    def __str__(self) -> str:
        if self.kind is MoveKind.SYNC:
            return f"sync({self.label})"
        if self.kind is MoveKind.LOG:
            return f"log-only({self.label})"
        return f"model-only({self.label})"


@dataclass(frozen=True)
class Alignment:
    """An optimal alignment of a trail against a process."""

    cost: int
    moves: tuple[Move, ...]
    complete: bool  # False when the search budget was exhausted

    @property
    def is_perfect(self) -> bool:
        return self.complete and self.cost == 0

    @property
    def log_moves(self) -> tuple[Move, ...]:
        return tuple(m for m in self.moves if m.kind is MoveKind.LOG)

    @property
    def model_moves(self) -> tuple[Move, ...]:
        return tuple(m for m in self.moves if m.kind is MoveKind.MODEL)

    def fitness(self, trail_length: int) -> float:
        """A [0, 1] fitness: 1 - cost / (trail length + model moves)."""
        denominator = max(trail_length + len(self.model_moves), 1)
        return max(0.0, 1.0 - self.cost / denominator)

    def __str__(self) -> str:
        rendered = " ".join(str(m) for m in self.moves)
        return f"cost={self.cost} [{rendered}]"


#: Internal search node identity.
_StateKey = tuple[Term, frozenset[tuple[str, str]], int]


def align(
    checker: ComplianceChecker,
    entries: Iterable[LogEntry],
    max_cost: int = 25,
    max_expansions: int = 50_000,
) -> Alignment:
    """The cheapest alignment of *entries* against the checker's process.

    Returns ``Alignment(complete=False, ...)`` with the best bound found
    when the search budget runs out (pathological trails against large
    processes); otherwise the result is optimal.
    """
    trail = list(entries)
    observables = checker.engine.observables
    engine = checker.engine
    initial = checker.session().frontier[0]

    # Priorities are (cost, log-move count): among equally cheap repairs
    # the one explaining entries through the process (model moves) beats
    # the one deleting log evidence -- more actionable for an auditor.
    counter = itertools.count()  # tie-breaker, keeps heap entries orderable
    start_key: _StateKey = (initial.state, initial.active, 0)
    Priority = tuple[int, int]
    heap: list[
        tuple[Priority, int, Configuration, int, tuple[Move, ...]]
    ] = [((0, 0), next(counter), initial, 0, ())]
    best: dict[_StateKey, Priority] = {start_key: (0, 0)}
    expansions = 0

    while heap and expansions < max_expansions:
        priority, _, conf, position, moves = heapq.heappop(heap)
        cost, log_count = priority
        key: _StateKey = (conf.state, conf.active, position)
        if priority > best.get(key, (max_cost, max_cost)):
            continue
        expansions += 1
        if position == len(trail):
            return Alignment(cost=cost, moves=moves, complete=True)

        entry = trail[position]

        def push(next_priority, next_conf, next_position, move):
            if next_priority[0] > max_cost:
                return
            next_key: _StateKey = (
                next_conf.state, next_conf.active, next_position,
            )
            if next_priority < best.get(next_key, (max_cost + 1, 0)):
                best[next_key] = next_priority
                heapq.heappush(
                    heap,
                    (
                        next_priority,
                        next(counter),
                        next_conf,
                        next_position,
                        moves + (move,),
                    ),
                )

        # Synchronous absorption (Algorithm 1, line 16).
        if entry.succeeded and observables.entry_task_active(
            conf.active, entry
        ):
            push(
                (cost, log_count),
                conf,
                position + 1,
                Move(MoveKind.SYNC, f"{entry.role}.{entry.task}"),
            )
        # Synchronous simulation + model moves share the successor scan.
        for successor in conf.next:
            event = successor[0]
            reached = Configuration.reached(engine, successor)
            if observables.event_matches_entry(event, entry):
                push(
                    (cost, log_count),
                    reached,
                    position + 1,
                    Move(MoveKind.SYNC, str(event)),
                )
            push(
                (cost + 1, log_count),
                reached,
                position,
                Move(MoveKind.MODEL, str(event)),
            )
        # Log move: the entry is extra.
        push(
            (cost + 1, log_count + 1),
            conf,
            position + 1,
            Move(MoveKind.LOG, f"{entry.role}.{entry.task}"),
        )

    # Budget exhausted: report the cheapest full-log-move bound.
    fallback = tuple(
        Move(MoveKind.LOG, f"{e.role}.{e.task}") for e in trail
    )
    return Alignment(cost=len(trail), moves=fallback, complete=False)
