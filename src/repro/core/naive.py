"""The naive purpose-control baseline the paper's introduction dismisses.

Section 1: "A naive approach for purpose control would be to generate
the transition system of the COWS process model and then verify if the
audit trail corresponds to a valid trace of the transition system.
Unfortunately, the number of possible traces can be infinite, for
instance when the process has a loop, making this approach not
feasible."

This module implements exactly that approach so benchmark E8 can measure
the blow-up: it *enumerates* the observable traces of the process (each
trace annotated with the active-task sets along the way, so the 1-to-n
task/entry absorption works the same as in Algorithm 1) up to a depth and
count budget, then checks the trail against every enumerated trace
independently.

On loop-free processes it agrees with Algorithm 1 (the property tests of
E14 assert this).  On processes with cycles it must truncate, and honest
truncation yields the verdict ``UNDETERMINED`` — the infeasibility the
paper points out.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from repro.audit.model import AuditTrail, LogEntry
from repro.bpmn.encode import EncodedProcess
from repro.core.configuration import Configuration
from repro.core.observables import Observables, ObservableEvent
from repro.core.weaknext import WeakNextEngine
from repro.policy.hierarchy import RoleHierarchy

#: One enumerated observable step: the event plus the active tasks after it.
TraceStep = tuple[ObservableEvent, frozenset[tuple[str, str]]]

#: A fully enumerated observable trace.
ObservableTrace = tuple[TraceStep, ...]


class Verdict(Enum):
    COMPLIANT = "compliant"
    NON_COMPLIANT = "non-compliant"
    #: The enumeration budget was exhausted before an accepting trace was
    #: found — the naive method cannot decide (loops!).
    UNDETERMINED = "undetermined"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class NaiveResult:
    verdict: Verdict
    traces_enumerated: int
    truncated: bool

    @property
    def compliant(self) -> bool:
        return self.verdict is Verdict.COMPLIANT


class NaiveChecker:
    """Trace-enumeration compliance checking (the infeasible baseline)."""

    def __init__(
        self,
        encoded: EncodedProcess,
        hierarchy: RoleHierarchy | None = None,
        max_traces: int = 200_000,
        max_silent_states: int = 50_000,
    ):
        self._observables = Observables.from_encoded(encoded, hierarchy)
        self._engine = WeakNextEngine(
            self._observables, max_silent_states=max_silent_states
        )
        self._initial = Configuration.initial(self._engine, encoded.term)
        self._max_traces = max_traces

    # -- enumeration -----------------------------------------------------
    def enumerate_traces(
        self, max_depth: int, max_traces: int | None = None
    ) -> Iterator[ObservableTrace]:
        """Depth-first enumeration of observable traces up to *max_depth*.

        Every prefix boundary is emitted as its own trace when the state
        deadlocks or the depth budget runs out; intermediate prefixes are
        *not* emitted separately (the matcher accepts mid-trace success).
        """
        budget = self._max_traces if max_traces is None else max_traces
        emitted = 0
        stack: list[tuple[Configuration, ObservableTrace, int]] = [
            (self._initial, (), 0)
        ]
        while stack:
            conf, trace, depth = stack.pop()
            if depth >= max_depth or not conf.next:
                yield trace
                emitted += 1
                if emitted >= budget:
                    return
                continue
            for successor in conf.next:
                event, _, active = successor
                reached = Configuration.reached(self._engine, successor)
                stack.append((reached, trace + ((event, active),), depth + 1))

    def count_traces(self, max_depth: int) -> tuple[int, bool]:
        """How many observable traces exist up to *max_depth* (count, truncated)."""
        count = 0
        for _ in self.enumerate_traces(max_depth):
            count += 1
        return count, count >= self._max_traces

    # -- checking ------------------------------------------------------------
    def check(
        self, trail: AuditTrail | Iterable[LogEntry], depth_margin: int = 2
    ) -> NaiveResult:
        """Check *trail* by matching it against every enumerated trace.

        The depth bound is ``len(trail) + depth_margin``: absorption can
        only shrink the number of observable steps a trail needs, so any
        accepting trace has at most one observable per entry; the margin
        covers trailing silent-to-observable slack conservatively.
        """
        entries = list(trail)
        max_depth = len(entries) + depth_margin
        enumerated = 0
        truncated = False
        for trace in self.enumerate_traces(max_depth):
            enumerated += 1
            if self._accepts(trace, entries):
                return NaiveResult(Verdict.COMPLIANT, enumerated, truncated)
        if enumerated >= self._max_traces:
            truncated = True
        verdict = Verdict.UNDETERMINED if truncated else Verdict.NON_COMPLIANT
        return NaiveResult(verdict, enumerated, truncated)

    def _accepts(self, trace: ObservableTrace, entries: list[LogEntry]) -> bool:
        """Match a trail against one linear trace (with task absorption)."""
        observables = self._observables
        position = 0
        active: frozenset[tuple[str, str]] = frozenset()
        for entry in entries:
            if entry.succeeded and observables.entry_task_active(active, entry):
                continue  # absorbed by the currently active task
            if position >= len(trace):
                return False
            event, next_active = trace[position]
            if not observables.event_matches_entry(event, entry):
                return False
            active = next_active
            position += 1
        return True
