"""Purpose control — the paper's primary contribution.

* :mod:`repro.core.observables` — the observable label set L (§3.5);
* :mod:`repro.core.configuration` — configurations (Definition 6);
* :mod:`repro.core.weaknext` — the WeakNext function (Definition 7);
* :mod:`repro.core.compliance` — **Algorithm 1**, batch and incremental;
* :mod:`repro.core.auditor` — the end-to-end auditor (policy + replay);
* :mod:`repro.core.naive` — the infeasible trace-enumeration baseline (§1);
* :mod:`repro.core.severity` — infringement severity metrics (§7);
* :mod:`repro.core.resilience` — fault containment: rich per-case
  outcomes, retry policies, per-case budgets, quarantine;
* :mod:`repro.core.parallel` — fault-isolated parallel auditing (§7).
"""

from repro.core.auditor import (
    AuditReport,
    CaseAuditResult,
    Infringement,
    InfringementKind,
    PurposeControlAuditor,
)
from repro.core.compliance import (
    ABSORBED,
    ERROR_TRANSITION,
    REJECTED,
    TASK_TRANSITION,
    ComplianceChecker,
    ComplianceResult,
    ComplianceSession,
    FrontierExplosionError,
    ReplayStep,
)
from repro.core.alignment import Alignment, Move, MoveKind, align
from repro.core.configuration import Configuration
from repro.core.explain import DeviationKind, Explanation, explain
from repro.core.monitor import CaseState, MonitoredCase, OnlineMonitor
from repro.core.naive import NaiveChecker, NaiveResult, Verdict
from repro.core.parallel import (
    CaseVerdict,
    audit_cases_parallel,
    verdicts_from_outcomes,
)
from repro.core.resilience import (
    CaseOutcome,
    OutcomeKind,
    Quarantine,
    QuarantinedEntry,
    RetryPolicy,
    classify_failure,
    replay_with_deadline,
)
from repro.core.temporal import (
    TemporalConstraints,
    TemporalViolation,
    TemporalViolationKind,
)
from repro.core.observables import ErrorEvent, Observables, ObservableEvent, TaskEvent
from repro.core.severity import (
    DEFAULT_SENSITIVITY,
    SeverityAssessment,
    SeverityModel,
)
from repro.core.weaknext import NextState, WeakNextEngine, state_active_tasks

__all__ = [
    "ABSORBED",
    "DEFAULT_SENSITIVITY",
    "ERROR_TRANSITION",
    "REJECTED",
    "TASK_TRANSITION",
    "Alignment",
    "Move",
    "MoveKind",
    "align",
    "AuditReport",
    "CaseAuditResult",
    "CaseState",
    "DeviationKind",
    "Explanation",
    "explain",
    "MonitoredCase",
    "OnlineMonitor",
    "TemporalConstraints",
    "TemporalViolation",
    "TemporalViolationKind",
    "audit_cases_parallel",
    "classify_failure",
    "replay_with_deadline",
    "verdicts_from_outcomes",
    "CaseOutcome",
    "CaseVerdict",
    "OutcomeKind",
    "Quarantine",
    "QuarantinedEntry",
    "RetryPolicy",
    "ComplianceChecker",
    "ComplianceResult",
    "ComplianceSession",
    "Configuration",
    "ErrorEvent",
    "FrontierExplosionError",
    "Infringement",
    "InfringementKind",
    "NaiveChecker",
    "NaiveResult",
    "NextState",
    "Observables",
    "ObservableEvent",
    "PurposeControlAuditor",
    "ReplayStep",
    "SeverityAssessment",
    "SeverityModel",
    "TaskEvent",
    "Verdict",
    "WeakNextEngine",
    "state_active_tasks",
]
