"""Configurations — Definition 6 of the paper.

A configuration is a triple ``(state, active_tasks, next)``:

* ``state`` — the current COWS state (canonical form);
* ``active`` — the ``(role, task)`` pairs active in that state;
* ``next`` — the WeakNext frontier: the observable events executable
  from the state, each with its target state and active-task set.

Identity (equality/hashing) is by ``(state, active)`` only: ``next`` is
derived data, and deduplicating configurations on the semantic pair keeps
the frontier of Algorithm 1 small (design decision D2 of DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.weaknext import NextState, WeakNextEngine, state_active_tasks
from repro.cows.terms import Term


@dataclass(frozen=True)
class Configuration:
    """One point of Algorithm 1's frontier (Definition 6)."""

    state: Term
    active: frozenset[tuple[str, str]]
    next: tuple[NextState, ...] = field(compare=False)

    @classmethod
    def initial(cls, engine: WeakNextEngine, state: Term) -> "Configuration":
        """The starting configuration of a replay.

        A BPMN process is always triggered by a start event, so the
        initial active-task set is empty (Section 4) — asserted here as a
        sanity check on the encoding.
        """
        canonical = engine.normalize(state)
        active = state_active_tasks(canonical)
        return cls(
            state=canonical, active=active, next=engine.weak_next(canonical)
        )

    @classmethod
    def reached(
        cls, engine: WeakNextEngine, successor: NextState
    ) -> "Configuration":
        """The configuration created by taking one WeakNext transition."""
        _, state, active = successor
        return cls(state=state, active=active, next=engine.weak_next(state))

    def describe(self) -> str:
        """A Fig. 6 style rendering: the active-task set of the state."""
        if not self.active:
            return "(empty)"
        inner = ", ".join(
            f"{role}.{task}" for role, task in sorted(self.active)
        )
        return "{" + inner + "}"
